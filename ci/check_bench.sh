#!/usr/bin/env bash
# Validate committed BENCH_*.json trajectory points against per-file
# schemas: every report must parse, carry its required top-level keys,
# and contain only finite numbers (NaN/Infinity are not valid JSON but
# a hand-edited file could smuggle them as strings or via a lenient
# writer — reject both). Other sessions build on these numbers; a
# truncated or hand-edited report must not survive CI.
#
# Usage: ci/check_bench.sh [FILE...]   (defaults to BENCH_*.json in
# the repo root; unknown BENCH files fail — add a schema when adding a
# report.)
set -euo pipefail

cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  files=(BENCH_*.json)
fi

python3 - "${files[@]}" <<'EOF'
import json
import math
import sys

# Required top-level keys per committed report. A new BENCH file needs
# an entry here (the point of the check: schemas are explicit, not
# inferred from whatever got committed).
SCHEMAS = {
    "BENCH_2.json": ["config", "unit", "contenders", "ablations"],
    "BENCH_3.json": ["config", "unit", "throughput"],
    "BENCH_5.json": ["config", "topology", "model", "checks", "variants"],
    "BENCH_6.json": ["config", "unit", "throughput"],
    "BENCH_7.json": ["config", "unit", "contenders", "ablations", "sort_kernels"],
    "BENCH_8.json": ["config", "unit", "delta_sweep", "sustained"],
    "BENCH_9.json": ["config", "unit", "sweep", "anytime", "server"],
    "BENCH_10.json": ["config", "unit", "sweep", "anytime", "capped", "server"],
}

def walk(value, path, errors):
    if isinstance(value, float):
        if not math.isfinite(value):
            errors.append(f"{path}: non-finite number {value!r}")
    elif isinstance(value, str):
        if value.strip().lower() in ("nan", "inf", "infinity", "-inf", "-infinity"):
            errors.append(f"{path}: string-smuggled non-finite {value!r}")
    elif isinstance(value, dict):
        for key, item in value.items():
            walk(item, f"{path}.{key}", errors)
    elif isinstance(value, list):
        for i, item in enumerate(value):
            walk(item, f"{path}[{i}]", errors)

failed = False
for name in sys.argv[1:]:
    base = name.rsplit("/", 1)[-1]
    errors = []
    if base not in SCHEMAS:
        errors.append("no schema registered in ci/check_bench.sh (add one)")
        report = None
    else:
        try:
            # parse_constant rejects the non-standard NaN/Infinity
            # literals Python's json would otherwise accept.
            with open(name) as handle:
                report = json.load(
                    handle,
                    parse_constant=lambda c: (_ for _ in ()).throw(
                        ValueError(f"non-finite literal {c}")
                    ),
                )
        except (OSError, ValueError) as exc:
            errors.append(f"does not parse: {exc}")
            report = None
    if report is not None:
        if not isinstance(report, dict):
            errors.append("top level is not an object")
        else:
            for key in SCHEMAS[base]:
                if key not in report:
                    errors.append(f"missing required key {key!r}")
            walk(report, base, errors)
    if errors:
        failed = True
        print(f"FAIL {name}")
        for error in errors:
            print(f"  - {error}")
    else:
        print(f"ok   {name}")

sys.exit(1 if failed else 0)
EOF
