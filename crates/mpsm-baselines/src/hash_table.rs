//! Bucket-chained hash tables for the hash-join baselines.
//!
//! Two flavours, matching how the two baselines use them:
//!
//! * [`SharedChainedTable`] — one global table built *concurrently* by
//!   many workers. Entry storage is pre-carved into per-worker windows
//!   (no allocation during build), but the bucket heads are shared
//!   atomics updated with CAS — the fine-grained synchronization and
//!   random remote writes that the Wisconsin join pays for (paper
//!   Figure 2a).
//! * [`LocalChainedTable`] — an unsynchronized single-owner table for
//!   the cache-sized fragments of the radix join.
//!
//! Both chain entries by index (no pointers), use a multiplicative
//! Fibonacci hash on the 64-bit key, and size the directory to the next
//! power of two ≥ the build cardinality.

use std::sync::atomic::{AtomicUsize, Ordering};

use mpsm_core::Tuple;

/// Multiplicative (Fibonacci) hash of a 64-bit key into `2^bits`.
#[inline]
pub fn hash_key(key: u64, mask: usize) -> usize {
    (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & mask
}

/// Sentinel: empty bucket / end of chain.
const NIL: usize = usize::MAX;

/// An entry slot: the tuple plus the index of the next entry in its
/// chain. `next` is atomic only because build threads publish entries
/// with a CAS on the bucket head; once the build barrier passes, probes
/// read it relaxed.
#[derive(Debug)]
pub struct Entry {
    /// Stored build tuple.
    pub tuple: Tuple,
    /// Index of the next chain entry, or `NIL`.
    next: AtomicUsize,
}

impl Default for Entry {
    fn default() -> Self {
        Entry { tuple: Tuple::default(), next: AtomicUsize::new(NIL) }
    }
}

/// Directory size (power of two ≥ `n`, at least 1).
fn directory_size(n: usize) -> usize {
    n.next_power_of_two().max(1)
}

/// The shared, latched table of the Wisconsin join.
pub struct SharedChainedTable {
    heads: Vec<AtomicUsize>,
    entries: Vec<Entry>,
    mask: usize,
    /// CAS retries observed during the build — a direct measure of the
    /// synchronization the paper's commandment C3 forbids.
    contention: AtomicUsize,
}

impl SharedChainedTable {
    /// Allocate a table for `capacity` build tuples.
    pub fn new(capacity: usize) -> Self {
        let size = directory_size(capacity);
        SharedChainedTable {
            heads: (0..size).map(|_| AtomicUsize::new(NIL)).collect(),
            entries: (0..capacity).map(|_| Entry::default()).collect(),
            mask: size - 1,
            contention: AtomicUsize::new(0),
        }
    }

    /// Split the entry storage into per-worker windows for the parallel
    /// build. Windows are disjoint, so filling them needs no
    /// synchronization — only the head CAS does.
    pub fn carve_windows(&mut self, sizes: &[usize]) -> Vec<BuildWindow<'_>> {
        assert_eq!(sizes.iter().sum::<usize>(), self.entries.len(), "windows must cover entries");
        let heads = &self.heads;
        let mask = self.mask;
        let contention = &self.contention;
        let mut out = Vec::with_capacity(sizes.len());
        let mut base = 0usize;
        let mut remaining = self.entries.as_mut_slice();
        for &sz in sizes {
            let (win, rest) = remaining.split_at_mut(sz);
            out.push(BuildWindow { heads, mask, contention, entries: win, base, used: 0 });
            remaining = rest;
            base += sz;
        }
        out
    }

    /// Probe with `key`, invoking `on_match` for every stored tuple with
    /// an equal key.
    pub fn probe(&self, key: u64, mut on_match: impl FnMut(Tuple)) {
        let mut idx = self.heads[hash_key(key, self.mask)].load(Ordering::Acquire);
        while idx != NIL {
            let e = &self.entries[idx];
            if e.tuple.key == key {
                on_match(e.tuple);
            }
            idx = e.next.load(Ordering::Relaxed);
        }
    }

    /// CAS retries observed while building (0 = no contention).
    pub fn contention_events(&self) -> usize {
        self.contention.load(Ordering::Relaxed)
    }

    /// Number of directory buckets.
    pub fn buckets(&self) -> usize {
        self.heads.len()
    }
}

/// One worker's disjoint slice of the shared entry storage.
pub struct BuildWindow<'a> {
    heads: &'a [AtomicUsize],
    mask: usize,
    contention: &'a AtomicUsize,
    entries: &'a mut [Entry],
    base: usize,
    used: usize,
}

impl<'a> BuildWindow<'a> {
    /// Insert one tuple: fill the next local slot, then publish it on
    /// the shared bucket chain with a CAS loop (the latch).
    pub fn insert(&mut self, tuple: Tuple) {
        let slot = self.used;
        assert!(slot < self.entries.len(), "build window overflow");
        self.used += 1;
        let global_idx = self.base + slot;
        let bucket = &self.heads[hash_key(tuple.key, self.mask)];
        self.entries[slot].tuple = tuple;
        let mut head = bucket.load(Ordering::Relaxed);
        loop {
            self.entries[slot].next.store(head, Ordering::Relaxed);
            match bucket.compare_exchange_weak(
                head,
                global_idx,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => {
                    self.contention.fetch_add(1, Ordering::Relaxed);
                    head = actual;
                }
            }
        }
    }
}

/// Single-owner, unsynchronized chained table (radix-join fragments).
pub struct LocalChainedTable {
    heads: Vec<usize>,
    tuples: Vec<Tuple>,
    next: Vec<usize>,
    mask: usize,
}

impl LocalChainedTable {
    /// Build from the build-side tuples of one fragment.
    pub fn build(build: &[Tuple]) -> Self {
        let size = directory_size(build.len());
        let mask = size - 1;
        let mut heads = vec![NIL; size];
        let mut next = vec![NIL; build.len()];
        let mut tuples = Vec::with_capacity(build.len());
        for (i, t) in build.iter().enumerate() {
            let b = hash_key(t.key, mask);
            next[i] = heads[b];
            heads[b] = i;
            tuples.push(*t);
        }
        LocalChainedTable { heads, tuples, next, mask }
    }

    /// Probe with `key`.
    pub fn probe(&self, key: u64, mut on_match: impl FnMut(Tuple)) {
        let mut idx = self.heads[hash_key(key, self.mask)];
        while idx != NIL {
            if self.tuples[idx].key == key {
                on_match(self.tuples[idx]);
            }
            idx = self.next[idx];
        }
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(key: u64, payload: u64) -> Tuple {
        Tuple::new(key, payload)
    }

    #[test]
    fn local_table_build_and_probe() {
        let build = vec![t(1, 10), t(2, 20), t(1, 11)];
        let table = LocalChainedTable::build(&build);
        let mut hits = Vec::new();
        table.probe(1, |m| hits.push(m.payload));
        hits.sort_unstable();
        assert_eq!(hits, vec![10, 11]);
        let mut none = 0;
        table.probe(99, |_| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn local_table_empty() {
        let table = LocalChainedTable::build(&[]);
        assert!(table.is_empty());
        let mut hits = 0;
        table.probe(0, |_| hits += 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn shared_table_single_threaded() {
        let mut table = SharedChainedTable::new(4);
        {
            let mut windows = table.carve_windows(&[4]);
            for &k in &[7u64, 7, 8, 9] {
                windows[0].insert(t(k, k * 10));
            }
        }
        let mut hits = Vec::new();
        table.probe(7, |m| hits.push(m.payload));
        hits.sort_unstable();
        assert_eq!(hits, vec![70, 70]);
    }

    #[test]
    fn shared_table_concurrent_build_is_lossless() {
        let n = 10_000usize;
        let workers = 8;
        let per = n / workers;
        let mut table = SharedChainedTable::new(n);
        {
            let windows = table.carve_windows(&vec![per; workers]);
            std::thread::scope(|s| {
                for (w, mut win) in windows.into_iter().enumerate() {
                    s.spawn(move || {
                        for i in 0..per {
                            let key = ((w * per + i) % 512) as u64;
                            win.insert(t(key, (w * per + i) as u64));
                        }
                    });
                }
            });
        }
        // Every key k in 0..512 appears once per inserted index i with
        // i % 512 == k (workers insert global indices 0..n).
        let mut total = 0usize;
        for key in 0..512u64 {
            let expected = (0..n).filter(|i| (i % 512) as u64 == key).count();
            let mut c = 0;
            table.probe(key, |_| c += 1);
            assert_eq!(c, expected, "key {key}");
            total += c;
        }
        assert_eq!(total, n);
    }

    #[test]
    fn shared_table_hot_bucket_is_lossless_under_contention() {
        // Hammer a single bucket from many threads starting together:
        // every CAS race must be retried, never lost.
        let n = 8 * 4096;
        let mut table = SharedChainedTable::new(n);
        {
            let windows = table.carve_windows(&[4096; 8]);
            let barrier = std::sync::Barrier::new(8);
            std::thread::scope(|s| {
                for mut win in windows {
                    let barrier = &barrier;
                    s.spawn(move || {
                        barrier.wait();
                        for i in 0..4096u64 {
                            win.insert(t(42, i)); // same key, same bucket
                        }
                    });
                }
            });
        }
        let mut c = 0usize;
        table.probe(42, |_| c += 1);
        assert_eq!(c, n, "CAS races must retry, never drop entries");
        // Contention is scheduling-dependent, so it is reported but not
        // asserted; the Figure 2a audit exercises it at scale.
        let _ = table.contention_events();
    }

    #[test]
    fn directory_is_power_of_two() {
        for n in [0usize, 1, 2, 3, 100, 1023, 1024] {
            assert!(directory_size(n).is_power_of_two());
            assert!(directory_size(n) >= n.max(1));
        }
    }

    #[test]
    #[should_panic(expected = "windows must cover entries")]
    fn carve_must_cover() {
        let mut table = SharedChainedTable::new(10);
        let _ = table.carve_windows(&[3, 3]);
    }
}
