//! Baseline join algorithms the MPSM paper compares against (§2, §5, §6).
//!
//! * [`wisconsin`] — the **Wisconsin hash join** (Blanas, Li, Patel,
//!   SIGMOD 2011 \[1\]): a single shared hash table built concurrently by
//!   all workers and probed randomly across NUMA partitions. It violates
//!   commandments C2 and C3 by design — that is the paper's point
//!   (Figure 2a) — and this implementation keeps the violations
//!   (CAS-latched shared buckets, random remote probes).
//! * [`radix`] — the **radix join** pioneered by MonetDB \[19\] and tuned
//!   by Kim et al. \[17\]: histogram-based multi-pass partitioning of both
//!   inputs into cache-sized fragments, then per-fragment hash joins.
//!   This is the algorithm family behind Vectorwise's join engine, and
//!   serves as this repository's stand-in for the paper's Vectorwise
//!   contender (see DESIGN.md §3.7).
//! * [`sort_merge_classic`] — the classic sort-merge join with a global
//!   merge phase, the strawman MPSM explicitly avoids ("we refrain from
//!   merging the sorted runs [...] as doing so would heavily reduce the
//!   parallelization power").
//! * [`nested_loop`] — an independent O(|R|·|S|) oracle (plus a faster
//!   sort-count oracle) used by the test suites of every crate.
//!
//! All baselines implement [`mpsm_core::join::JoinAlgorithm`], so the
//! benchmark harness can swap them freely.

pub mod hash_table;
pub mod nested_loop;
pub mod parallel_merge;
pub mod radix;
pub mod sort_merge_classic;
pub mod wisconsin;

pub use radix::RadixJoin;
pub use sort_merge_classic::ClassicSortMergeJoin;
pub use wisconsin::WisconsinHashJoin;
