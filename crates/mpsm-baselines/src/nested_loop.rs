//! Reference joins used as test oracles.
//!
//! Two independent implementations with different failure modes:
//!
//! * [`nested_loop_count`] / [`nested_loop_collect`] — the textbook
//!   O(|R|·|S|) nested loop; unbeatable as ground truth, usable only on
//!   small inputs;
//! * [`oracle_count`] — sort both key columns with the *standard
//!   library* sort (not this repository's sort) and multiply duplicate
//!   group sizes; O(n log n), shares no code with the algorithms under
//!   test.

use mpsm_core::Tuple;

/// O(|R|·|S|) match count.
pub fn nested_loop_count(r: &[Tuple], s: &[Tuple]) -> u64 {
    r.iter().map(|rt| s.iter().filter(|st| st.key == rt.key).count() as u64).sum()
}

/// O(|R|·|S|) materialized result: `(key, r.payload, s.payload)` rows in
/// deterministic (r-major) order.
pub fn nested_loop_collect(r: &[Tuple], s: &[Tuple]) -> Vec<(u64, u64, u64)> {
    let mut out = Vec::new();
    for rt in r {
        for st in s {
            if rt.key == st.key {
                out.push((rt.key, rt.payload, st.payload));
            }
        }
    }
    out
}

/// O(n log n) match count via std-sorted key columns and duplicate-group
/// multiplication.
pub fn oracle_count(r: &[Tuple], s: &[Tuple]) -> u64 {
    let mut rk: Vec<u64> = r.iter().map(|t| t.key).collect();
    let mut sk: Vec<u64> = s.iter().map(|t| t.key).collect();
    rk.sort_unstable();
    sk.sort_unstable();
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < rk.len() && j < sk.len() {
        if rk[i] < sk[j] {
            i += 1;
        } else if rk[i] > sk[j] {
            j += 1;
        } else {
            let key = rk[i];
            let i0 = i;
            while i < rk.len() && rk[i] == key {
                i += 1;
            }
            let j0 = j;
            while j < sk.len() && sk[j] == key {
                j += 1;
            }
            count += ((i - i0) as u64) * ((j - j0) as u64);
        }
    }
    count
}

/// The paper's benchmark aggregate computed naively (oracle for
/// `max_payload_sum`).
pub fn oracle_max_payload_sum(r: &[Tuple], s: &[Tuple]) -> Option<u64> {
    let mut max = None;
    for rt in r {
        for st in s {
            if rt.key == st.key {
                let v = rt.payload.wrapping_add(st.payload);
                max = Some(max.map_or(v, |m: u64| m.max(v)));
            }
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyed(keys: &[u64]) -> Vec<Tuple> {
        keys.iter().enumerate().map(|(i, &k)| Tuple::new(k, i as u64)).collect()
    }

    #[test]
    fn oracles_agree_on_random_input() {
        let mut state = 77u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 55
        };
        let r: Vec<Tuple> = (0..400).map(|i| Tuple::new(next(), i)).collect();
        let s: Vec<Tuple> = (0..600).map(|i| Tuple::new(next(), i)).collect();
        assert_eq!(nested_loop_count(&r, &s), oracle_count(&r, &s));
    }

    #[test]
    fn collect_matches_count() {
        let r = keyed(&[1, 2, 2]);
        let s = keyed(&[2, 2, 3]);
        assert_eq!(nested_loop_collect(&r, &s).len() as u64, nested_loop_count(&r, &s));
        assert_eq!(oracle_count(&r, &s), 4);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(oracle_count(&[], &[]), 0);
        assert_eq!(nested_loop_count(&keyed(&[1]), &[]), 0);
        assert_eq!(oracle_max_payload_sum(&[], &keyed(&[1])), None);
    }

    #[test]
    fn max_payload_sum_oracle() {
        let r = keyed(&[5, 6]); // payloads 0, 1
        let s = keyed(&[6, 5]); // payloads 0, 1
                                // Matches: (5: 0+1), (6: 1+0) → max 1.
        assert_eq!(oracle_max_payload_sum(&r, &s), Some(1));
    }
}
