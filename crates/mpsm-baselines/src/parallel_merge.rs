//! Parallel k-way merge — steel-manning the classic sort-merge join.
//!
//! The paper dismisses the traditional global merge as "hard to
//! parallelize" and MPSM avoids it entirely. To make that comparison
//! fair, this module implements the *strong* version of the strawman: a
//! rank-partitioned parallel k-way merge (the merge-path idea lifted to
//! k runs). The output is cut into `T` equal ranges; for each range
//! boundary a key-space binary search finds per-run split positions
//! whose piecewise merge is independent, so `T` workers merge into
//! disjoint output windows without synchronization.
//!
//! [`ClassicSortMergeJoin`](crate::sort_merge_classic) exposes it via
//! `with_parallel_merge(true)`; the `complexity_model` experiment shows
//! that even with the merge parallelized the extra full materialization
//! keeps the classic join behind MPSM — the paper's argument holds
//! against the strong strawman too.

use mpsm_core::worker::{run_parallel, WorkerPool};
use mpsm_core::Tuple;

/// Per-run split positions for one output rank boundary: positions
/// `p[i]` such that `Σ p[i] == rank` and every element left of a split
/// is `≤` every element right of any split.
fn rank_split(runs: &[Vec<Tuple>], rank: usize) -> Vec<usize> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    debug_assert!(rank <= total);
    if rank == 0 {
        return vec![0; runs.len()];
    }
    if rank == total {
        return runs.iter().map(|r| r.len()).collect();
    }

    // Binary search the smallest key `k` with count(key ≤ k) ≥ rank.
    let count_le =
        |k: u64| -> usize { runs.iter().map(|r| r.partition_point(|t| t.key <= k)).sum() };
    let mut lo = 0u64;
    let mut hi = u64::MAX;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if count_le(mid) >= rank {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let k = lo;

    // Take everything < k, then distribute the elements == k until the
    // rank is met (deterministically, in run order).
    let mut positions: Vec<usize> = runs.iter().map(|r| r.partition_point(|t| t.key < k)).collect();
    let mut have: usize = positions.iter().sum();
    debug_assert!(have <= rank);
    for (p, run) in positions.iter_mut().zip(runs) {
        while have < rank && *p < run.len() && run[*p].key == k {
            *p += 1;
            have += 1;
        }
        if have == rank {
            break;
        }
    }
    debug_assert_eq!(have, rank);
    positions
}

/// Sequential k-way merge of run segments into `out` (binary-heap
/// cursor merge; segments are small enough per worker that the heap
/// stays in cache).
fn merge_segment(runs: &[Vec<Tuple>], from: &[usize], to: &[usize], out: &mut [Tuple]) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = runs
        .iter()
        .enumerate()
        .filter(|(i, _)| from[*i] < to[*i])
        .map(|(i, r)| Reverse((r[from[i]].key, i, from[i])))
        .collect();
    let mut w = 0usize;
    while let Some(Reverse((_, run, off))) = heap.pop() {
        out[w] = runs[run][off];
        w += 1;
        let next = off + 1;
        if next < to[run] {
            heap.push(Reverse((runs[run][next].key, run, next)));
        }
    }
    debug_assert_eq!(w, out.len());
}

/// Merge sorted runs into one globally sorted vector using `threads`
/// workers over disjoint rank ranges.
pub fn parallel_kway_merge(runs: Vec<Vec<Tuple>>, threads: usize) -> Vec<Tuple> {
    merge_dispatch(runs, threads, None)
}

/// [`parallel_kway_merge`] on a persistent [`WorkerPool`] (one rank
/// range per pool worker) so phase-structured callers — the classic
/// sort-merge join merges both inputs back to back — do not re-spawn
/// threads per merge.
pub fn parallel_kway_merge_in(pool: &mut WorkerPool, runs: Vec<Vec<Tuple>>) -> Vec<Tuple> {
    let threads = pool.threads();
    merge_dispatch(runs, threads, Some(pool))
}

fn merge_dispatch(
    runs: Vec<Vec<Tuple>>,
    threads: usize,
    pool: Option<&mut WorkerPool>,
) -> Vec<Tuple> {
    assert!(threads > 0);
    let total: usize = runs.iter().map(|r| r.len()).sum();
    if total == 0 {
        return Vec::new();
    }

    // Rank boundaries and their per-run split positions.
    let bounds: Vec<Vec<usize>> =
        (0..=threads).map(|t| rank_split(&runs, t * total / threads)).collect();

    let mut out = vec![Tuple::default(); total];
    {
        // Carve the output into the workers' disjoint windows, handed
        // to their worker through take-once cells.
        let mut windows: Vec<&mut [Tuple]> = Vec::with_capacity(threads);
        let mut rest = out.as_mut_slice();
        for t in 0..threads {
            let len = (t + 1) * total / threads - t * total / threads;
            let (head, tail) = rest.split_at_mut(len);
            windows.push(head);
            rest = tail;
        }
        let slots = mpsm_core::worker::OwnedSlots::new(windows);
        let merge_one = |t: usize| {
            let win = slots.take(t);
            merge_segment(&runs, &bounds[t], &bounds[t + 1], win);
        };
        match pool {
            Some(pool) => {
                pool.run(merge_one);
            }
            None => {
                run_parallel(threads, merge_one);
            }
        }
    }
    out
}

/// Sequential reference (used by the classic join when parallel merge
/// is disabled, and by tests).
pub fn sequential_kway_merge(runs: Vec<Vec<Tuple>>) -> Vec<Tuple> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = vec![Tuple::default(); total];
    let from: Vec<usize> = vec![0; runs.len()];
    let to: Vec<usize> = runs.iter().map(|r| r.len()).collect();
    merge_segment(&runs, &from, &to, &mut out);
    out
}

/// Parallel merge with an explicit thread count of 1 degenerates to the
/// sequential merge (used to keep the classic join's single-thread path
/// allocation-identical).
pub fn kway_merge(runs: Vec<Vec<Tuple>>, threads: usize) -> Vec<Tuple> {
    if threads <= 1 {
        sequential_kway_merge(runs)
    } else {
        parallel_kway_merge(runs, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsm_core::tuple::is_key_sorted;

    fn sorted_run(keys: &[u64]) -> Vec<Tuple> {
        let mut v: Vec<Tuple> =
            keys.iter().enumerate().map(|(i, &k)| Tuple::new(k, i as u64)).collect();
        v.sort_unstable_by_key(|t| t.key);
        v
    }

    fn random_runs(count: usize, len: usize, seed: u64) -> Vec<Vec<Tuple>> {
        let mut state = seed | 1;
        (0..count)
            .map(|_| {
                let keys: Vec<u64> = (0..len)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        state >> 34
                    })
                    .collect();
                sorted_run(&keys)
            })
            .collect()
    }

    #[test]
    fn parallel_merge_equals_sequential() {
        let runs = random_runs(7, 1000, 3);
        let seq = sequential_kway_merge(runs.clone());
        for threads in [1usize, 2, 3, 8] {
            let par = parallel_kway_merge(runs.clone(), threads);
            assert!(is_key_sorted(&par));
            assert_eq!(
                par.iter().map(|t| t.key).collect::<Vec<_>>(),
                seq.iter().map(|t| t.key).collect::<Vec<_>>(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn merge_preserves_multiset_with_payloads() {
        let runs = random_runs(4, 500, 7);
        let mut expected: Vec<(u64, u64)> =
            runs.iter().flatten().map(|t| (t.key, t.payload)).collect();
        let merged = parallel_kway_merge(runs, 4);
        let mut got: Vec<(u64, u64)> = merged.iter().map(|t| (t.key, t.payload)).collect();
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn duplicate_heavy_runs_split_cleanly() {
        // All keys equal: rank splits land inside one giant duplicate
        // group and must still partition exactly.
        let runs: Vec<Vec<Tuple>> =
            (0..4).map(|r| (0..256).map(|i| Tuple::new(9, r * 256 + i)).collect()).collect();
        let merged = parallel_kway_merge(runs, 8);
        assert_eq!(merged.len(), 1024);
        assert!(merged.iter().all(|t| t.key == 9));
    }

    #[test]
    fn empty_and_ragged_runs() {
        let runs = vec![
            sorted_run(&[5, 6]),
            vec![],
            sorted_run(&[1]),
            sorted_run(&[2, 3, 4, 7, 8, 9, 10]),
        ];
        let merged = parallel_kway_merge(runs, 3);
        let keys: Vec<u64> = merged.iter().map(|t| t.key).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn rank_split_positions_sum_to_rank() {
        let runs = random_runs(5, 300, 11);
        let total = 5 * 300;
        for rank in [0usize, 1, 7, total / 2, total - 1, total] {
            let pos = rank_split(&runs, rank);
            assert_eq!(pos.iter().sum::<usize>(), rank);
            // Split invariant: max key left of splits ≤ min key right.
            let left_max =
                runs.iter().zip(&pos).filter(|(_, &p)| p > 0).map(|(r, &p)| r[p - 1].key).max();
            let right_min =
                runs.iter().zip(&pos).filter(|(r, &p)| p < r.len()).map(|(r, &p)| r[p].key).min();
            if let (Some(l), Some(rt)) = (left_max, right_min) {
                assert!(l <= rt, "rank {rank}: split crosses key order");
            }
        }
    }

    #[test]
    fn more_threads_than_elements() {
        let runs = vec![sorted_run(&[1, 2])];
        let merged = parallel_kway_merge(runs, 16);
        assert_eq!(merged.len(), 2);
        assert!(is_key_sorted(&merged));
    }

    #[test]
    fn pooled_merge_matches_standalone() {
        let runs = random_runs(5, 800, 13);
        let seq = sequential_kway_merge(runs.clone());
        let mut pool = WorkerPool::new(4);
        // Two merges on the same pool — the classic SMJ's usage pattern.
        for _ in 0..2 {
            let merged = parallel_kway_merge_in(&mut pool, runs.clone());
            assert_eq!(
                merged.iter().map(|t| (t.key, t.payload)).collect::<Vec<_>>(),
                seq.iter().map(|t| (t.key, t.payload)).collect::<Vec<_>>()
            );
        }
    }
}
