//! Parallel radix join — the MonetDB \[19\] / Kim et al. \[17\] algorithm
//! and this repository's stand-in for the paper's Vectorwise contender.
//!
//! The join achieves cache locality by partitioning *both* inputs into
//! fragments small enough that the build-side hash table of each
//! fragment fits in cache:
//!
//! 1. **pass 1** — histogram-based parallel range partitioning of `R`
//!    and `S` on the highest `B1` bits (prefix sums, synchronization-free
//!    scatter — the technique MPSM adapts from \[14\]). This is the step
//!    that "writes across NUMA partitions" (paper Figure 2b): every
//!    worker's chunk scatters into every target fragment;
//! 2. **pass 2** — each fragment is sub-partitioned *locally* on the
//!    next `B2` bits (the recursive refinement that keeps TLB pressure
//!    bounded);
//! 3. **join** — for every final fragment pair, build a
//!    [`LocalChainedTable`] over the R side and probe with the S side.
//!    Fragments are distributed over workers by total size (LPT-style)
//!    so no worker starves.
//!
//! Phase mapping in [`JoinStats`]: phase 1 = partition R, phase 2 =
//! partition S, phase 3 = local refinement + join.

use mpsm_core::histogram::RadixDomain;
use mpsm_core::join::{JoinAlgorithm, JoinConfig};
use mpsm_core::partition::range_partition_in;
use mpsm_core::sink::JoinSink;
use mpsm_core::splitter::Splitters;
use mpsm_core::stats::{JoinStats, Phase};
use mpsm_core::worker::{chunk_ranges, WorkerPool};
use mpsm_core::Tuple;

use crate::hash_table::LocalChainedTable;

/// The radix join baseline.
#[derive(Debug, Clone)]
pub struct RadixJoin {
    config: JoinConfig,
    /// Pass-1 bits (global scatter fan-out).
    pass1_bits: u32,
    /// Pass-2 bits (local refinement fan-out); 0 disables pass 2.
    pass2_bits: u32,
}

impl RadixJoin {
    /// Radix join with the classic 2-pass configuration
    /// (`2^8` fragments globally, `2^6` locally).
    pub fn new(config: JoinConfig) -> Self {
        RadixJoin { config, pass1_bits: 8, pass2_bits: 6 }
    }

    /// Override the per-pass radix widths.
    pub fn with_bits(mut self, pass1: u32, pass2: u32) -> Self {
        assert!((1..=16).contains(&pass1), "pass-1 bits out of range");
        assert!(pass2 <= 16, "pass-2 bits out of range");
        self.pass1_bits = pass1;
        self.pass2_bits = pass2;
        self
    }

    /// Access the configuration.
    pub fn config(&self) -> &JoinConfig {
        &self.config
    }

    /// Identity splitters: every radix bucket is its own fragment.
    fn identity_splitters(buckets: usize) -> Splitters {
        Splitters::from_assignment((0..buckets as u32).collect(), buckets)
    }
}

impl JoinAlgorithm for RadixJoin {
    fn name(&self) -> &'static str {
        "Radix (VW-style)"
    }

    fn join_with_sink<S: JoinSink>(&self, r: &[Tuple], s: &[Tuple]) -> (S::Result, JoinStats) {
        let t = self.config.threads;
        let (r, s, _swapped) = self.config.assign_roles(r, s);
        let wall = std::time::Instant::now();
        let mut stats = JoinStats::new(t);
        // One pool for both partition passes and the fragment joins.
        let mut pool = WorkerPool::new(t);

        // The two inputs must agree on the fragment boundaries, so the
        // domain spans both key ranges.
        let domain = RadixDomain::from_tuples([r, s], self.pass1_bits);
        let splitters = Self::identity_splitters(domain.buckets());

        // ---- Pass 1 over R. ----
        let p1 = std::time::Instant::now();
        let r_ranges = chunk_ranges(r.len(), t);
        let r_chunks: Vec<&[Tuple]> = r_ranges.iter().map(|rng| &r[rng.clone()]).collect();
        let r_frags = range_partition_in(&mut pool, &r_chunks, &domain, &splitters);
        stats.record_phase(Phase::One, &vec![p1.elapsed(); t]);

        // ---- Pass 1 over S. ----
        let p2 = std::time::Instant::now();
        let s_ranges = chunk_ranges(s.len(), t);
        let s_chunks: Vec<&[Tuple]> = s_ranges.iter().map(|rng| &s[rng.clone()]).collect();
        let s_frags = range_partition_in(&mut pool, &s_chunks, &domain, &splitters);
        stats.record_phase(Phase::Two, &vec![p2.elapsed(); t]);

        // ---- Assign fragments to workers by size (largest-first). ----
        let mut order: Vec<usize> = (0..r_frags.len()).collect();
        order.sort_unstable_by_key(|&f| std::cmp::Reverse(r_frags[f].len() + s_frags[f].len()));
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); t];
        let mut loads = vec![0usize; t];
        for f in order {
            let w = (0..t).min_by_key(|&w| loads[w]).expect("at least one worker");
            loads[w] += r_frags[f].len() + s_frags[f].len();
            assignment[w].push(f);
        }

        // ---- Pass 2 + fragment joins, in parallel. ----
        let pass2_bits = self.pass2_bits;
        let (partials, d3) = pool.run_timed(|w| {
            let mut sink = S::default();
            for &f in &assignment[w] {
                join_fragment(&r_frags[f], &s_frags[f], pass2_bits, &mut sink);
            }
            sink.finish()
        });
        stats.record_phase(Phase::Three, &d3);

        stats.wall = wall.elapsed();
        (S::combine_all(partials), stats)
    }
}

/// Join one pass-1 fragment pair, refining locally first if configured.
fn join_fragment<S: JoinSink>(r_frag: &[Tuple], s_frag: &[Tuple], pass2_bits: u32, sink: &mut S) {
    if r_frag.is_empty() || s_frag.is_empty() {
        return;
    }
    if pass2_bits == 0 || r_frag.len() <= 64 {
        hash_join_fragment(r_frag, s_frag, sink);
        return;
    }
    // Local refinement: counting-sort both sides into 2^B2 sub-fragments
    // (single-owner, no synchronization — this is the cache-friendly,
    // TLB-friendly part of the radix join).
    let domain = RadixDomain::from_tuples([r_frag, s_frag], pass2_bits);
    let r_sub = local_partition(r_frag, &domain);
    let s_sub = local_partition(s_frag, &domain);
    for (rs, ss) in r_sub.iter().zip(&s_sub) {
        if !rs.is_empty() && !ss.is_empty() {
            hash_join_fragment(rs, ss, sink);
        }
    }
}

/// Sequential counting-sort partition of one fragment.
fn local_partition(frag: &[Tuple], domain: &RadixDomain) -> Vec<Vec<Tuple>> {
    let mut counts = vec![0usize; domain.buckets()];
    for t in frag {
        counts[domain.bucket_of(t.key)] += 1;
    }
    let mut out: Vec<Vec<Tuple>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for t in frag {
        out[domain.bucket_of(t.key)].push(*t);
    }
    out
}

/// Build-and-probe of one final fragment pair.
fn hash_join_fragment<S: JoinSink>(r_frag: &[Tuple], s_frag: &[Tuple], sink: &mut S) {
    let table = LocalChainedTable::build(r_frag);
    for st in s_frag {
        table.probe(st.key, |rt| sink.on_match(rt, *st));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested_loop::oracle_count;

    fn keyed(keys: &[u64]) -> Vec<Tuple> {
        keys.iter().enumerate().map(|(i, &k)| Tuple::new(k, i as u64)).collect()
    }

    fn lcg(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed | 1;
        move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 32
        }
    }

    #[test]
    fn joins_small_relations() {
        let r = keyed(&[1, 5, 9, 5]);
        let s = keyed(&[5, 5, 2, 9]);
        let join = RadixJoin::new(JoinConfig::with_threads(2));
        assert_eq!(join.count(&r, &s), oracle_count(&r, &s));
    }

    #[test]
    fn matches_oracle_across_thread_counts_and_passes() {
        let mut next = lcg(81);
        let r: Vec<Tuple> = (0..900).map(|i| Tuple::new(next() % 2048, i)).collect();
        let s: Vec<Tuple> = (0..2700).map(|i| Tuple::new(next() % 2048, i)).collect();
        let expected = oracle_count(&r, &s);
        for threads in [1, 3, 8] {
            for (b1, b2) in [(4, 0), (8, 6), (2, 8)] {
                let join = RadixJoin::new(JoinConfig::with_threads(threads)).with_bits(b1, b2);
                assert_eq!(join.count(&r, &s), expected, "threads {threads}, bits {b1}/{b2}");
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let join = RadixJoin::new(JoinConfig::with_threads(4));
        assert_eq!(join.count(&[], &[]), 0);
        assert_eq!(join.count(&keyed(&[1]), &[]), 0);
        assert_eq!(join.count(&[], &keyed(&[1])), 0);
    }

    #[test]
    fn skewed_keys_pile_into_one_fragment() {
        // All keys equal: one fragment carries the whole join; the size
        // balancer gives it to a single worker but correctness holds.
        let r = keyed(&vec![7u64; 300]);
        let s = keyed(&vec![7u64; 50]);
        let join = RadixJoin::new(JoinConfig::with_threads(8));
        assert_eq!(join.count(&r, &s), 300 * 50);
    }

    #[test]
    fn fragment_assignment_balances_load() {
        // Uniform keys: loads should end up near-equal. (Indirectly
        // validated through correctness + the LPT assignment being
        // deterministic; here we just exercise multiple fragments per
        // worker.)
        let mut next = lcg(91);
        let r: Vec<Tuple> = (0..4096).map(|i| Tuple::new(next() % 65536, i)).collect();
        let s: Vec<Tuple> = (0..4096).map(|i| Tuple::new(next() % 65536, i)).collect();
        let join = RadixJoin::new(JoinConfig::with_threads(3)).with_bits(6, 4);
        assert_eq!(join.count(&r, &s), oracle_count(&r, &s));
    }
}
