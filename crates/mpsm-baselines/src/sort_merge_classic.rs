//! Classic sort-merge join with a global merge — the strawman MPSM
//! avoids.
//!
//! "Unlike traditional sort-merge joins we refrain from merging the
//! sorted runs to obtain a global sort order [...] as doing so would
//! heavily reduce the parallelization power of modern multi-core
//! machines" (§2.1). This baseline is that traditional algorithm:
//!
//! 1. chunk-sort both inputs in parallel (same run generation as MPSM);
//! 2. **merge all runs of each input into one globally sorted array** —
//!    a k-way heap merge that is inherently sequential (the bottleneck
//!    the quote is about);
//! 3. a single merge join over the two sorted arrays.
//!
//! Comparing its phase breakdown against B-MPSM quantifies exactly what
//! skipping the merge buys (the `complexity_model` experiment). A
//! steel-manned variant with a rank-partitioned *parallel* merge
//! ([`crate::parallel_merge`]) is available via
//! [`ClassicSortMergeJoin::with_parallel_merge`].
//!
//! Phase mapping in [`JoinStats`]: phase 1 = sort runs, phase 2 = global
//! merges, phase 3 = merge join.

use mpsm_core::join::{JoinAlgorithm, JoinConfig};
use mpsm_core::merge::merge_join;
use mpsm_core::sink::JoinSink;
use mpsm_core::sort::three_phase_sort;
use mpsm_core::stats::{JoinStats, Phase};
use mpsm_core::worker::{chunk_ranges, WorkerPool};
use mpsm_core::Tuple;

/// The classic (global-merge) sort-merge join.
#[derive(Debug, Clone)]
pub struct ClassicSortMergeJoin {
    config: JoinConfig,
    parallel_merge: bool,
}

impl ClassicSortMergeJoin {
    /// Create the join with the given worker configuration (sequential
    /// merge, as in the traditional algorithm).
    pub fn new(config: JoinConfig) -> Self {
        ClassicSortMergeJoin { config, parallel_merge: false }
    }

    /// Enable the rank-partitioned parallel merge (the strong strawman;
    /// see [`crate::parallel_merge`]).
    pub fn with_parallel_merge(mut self, enabled: bool) -> Self {
        self.parallel_merge = enabled;
        self
    }

    /// Access the configuration.
    pub fn config(&self) -> &JoinConfig {
        &self.config
    }
}

impl JoinAlgorithm for ClassicSortMergeJoin {
    fn name(&self) -> &'static str {
        "Classic SMJ"
    }

    fn join_with_sink<S: JoinSink>(&self, r: &[Tuple], s: &[Tuple]) -> (S::Result, JoinStats) {
        let t = self.config.threads;
        let (r, s, _swapped) = self.config.assign_roles(r, s);
        let wall = std::time::Instant::now();
        let mut stats = JoinStats::new(t);

        // One pool for run generation and (when steel-manning) the
        // parallel merges; workers park between the phases.
        let mut pool = WorkerPool::new(t);

        // Phase 1: parallel run generation for both inputs.
        let r_ranges = chunk_ranges(r.len(), t);
        let (r_runs, d1r) = pool.run_timed(|w| {
            let mut run = r[r_ranges[w].clone()].to_vec();
            three_phase_sort(&mut run);
            run
        });
        stats.record_phase(Phase::One, &d1r);
        let s_ranges = chunk_ranges(s.len(), t);
        let (s_runs, d1s) = pool.run_timed(|w| {
            let mut run = s[s_ranges[w].clone()].to_vec();
            three_phase_sort(&mut run);
            run
        });
        stats.record_phase(Phase::One, &d1s);

        // Phase 2: the global merges — the bottleneck. Sequential by
        // default (the traditional algorithm); rank-partitioned parallel
        // when steel-manning.
        let merge_start = std::time::Instant::now();
        let (r_sorted, s_sorted) = if self.parallel_merge && t > 1 {
            (
                crate::parallel_merge::parallel_kway_merge_in(&mut pool, r_runs),
                crate::parallel_merge::parallel_kway_merge_in(&mut pool, s_runs),
            )
        } else {
            (
                crate::parallel_merge::sequential_kway_merge(r_runs),
                crate::parallel_merge::sequential_kway_merge(s_runs),
            )
        };
        let merge_time = merge_start.elapsed();
        let mut merge_durations = vec![std::time::Duration::ZERO; t];
        if self.parallel_merge {
            // All workers busy for the merge wall time.
            merge_durations = vec![merge_time; t];
        } else {
            // Sequential: only worker 0 is busy; attributing it there
            // makes the imbalance visible in the stats.
            merge_durations[0] = merge_time;
        }
        stats.record_phase(Phase::Two, &merge_durations);

        // Phase 3: one sequential merge join over the sorted arrays.
        let join_start = std::time::Instant::now();
        let mut sink = S::default();
        merge_join(&r_sorted, &s_sorted, &mut sink);
        let mut join_durations = vec![std::time::Duration::ZERO; t];
        join_durations[0] = join_start.elapsed();
        stats.record_phase(Phase::Three, &join_durations);

        stats.wall = wall.elapsed();
        (sink.finish(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested_loop::oracle_count;

    fn keyed(keys: &[u64]) -> Vec<Tuple> {
        keys.iter().enumerate().map(|(i, &k)| Tuple::new(k, i as u64)).collect()
    }

    #[test]
    fn parallel_merge_variant_matches_oracle() {
        let mut state = 23u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 53
        };
        let r: Vec<Tuple> = (0..700).map(|i| Tuple::new(next(), i)).collect();
        let s: Vec<Tuple> = (0..1400).map(|i| Tuple::new(next(), i)).collect();
        let expected = oracle_count(&r, &s);
        let join = ClassicSortMergeJoin::new(JoinConfig::with_threads(4)).with_parallel_merge(true);
        assert_eq!(join.count(&r, &s), expected);
    }

    #[test]
    fn matches_oracle() {
        let mut state = 17u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 53
        };
        let r: Vec<Tuple> = (0..800).map(|i| Tuple::new(next(), i)).collect();
        let s: Vec<Tuple> = (0..1600).map(|i| Tuple::new(next(), i)).collect();
        let expected = oracle_count(&r, &s);
        for threads in [1, 4, 8] {
            let join = ClassicSortMergeJoin::new(JoinConfig::with_threads(threads));
            assert_eq!(join.count(&r, &s), expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_inputs() {
        let join = ClassicSortMergeJoin::new(JoinConfig::with_threads(4));
        assert_eq!(join.count(&[], &[]), 0);
        assert_eq!(join.count(&keyed(&[1]), &[]), 0);
    }

    #[test]
    fn merge_phase_is_attributed_to_one_worker() {
        let r = keyed(&(0..5000u64).rev().collect::<Vec<_>>());
        let s = keyed(&(0..5000u64).collect::<Vec<_>>());
        let join = ClassicSortMergeJoin::new(JoinConfig::with_threads(4));
        let (_, stats) = join.join_with_sink::<mpsm_core::sink::CountSink>(&r, &s);
        // Worker 0 carries phases 2 and 3 alone: imbalance > 1.
        assert!(stats.imbalance() > 1.0, "sequential merge must show as imbalance");
    }
}
