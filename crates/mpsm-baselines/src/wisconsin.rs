//! The Wisconsin ("no-partitioning") hash join of Blanas et al. \[1\].
//!
//! The paper's first contender (§2, Figure 2a): build one global hash
//! table over `R` with all workers inserting concurrently, then probe it
//! with all workers scanning chunks of `S`. Its appeal is simplicity —
//! no partitioning pass at all; its cost on a NUMA machine is exactly
//! what the MPSM commandments forbid:
//!
//! * the build latches shared bucket heads (violates C3) and writes
//!   them randomly across NUMA partitions (violates C1);
//! * the probe reads hash buckets randomly across the whole table
//!   (violates C2 — the prefetcher cannot help).
//!
//! This implementation keeps that behaviour faithfully (CAS-latched
//! chains, random probes) so the access-pattern audit (experiment E11)
//! and the contender benchmark (Figure 12) show the same contrast the
//! paper reports.
//!
//! Phase mapping in [`JoinStats`]: phase 1 = build, phase 2 = probe.

use mpsm_core::join::{JoinAlgorithm, JoinConfig};
use mpsm_core::sink::JoinSink;
use mpsm_core::stats::{JoinStats, Phase};
use mpsm_core::worker::{chunk_ranges, run_parallel_timed};
use mpsm_core::Tuple;

use crate::hash_table::SharedChainedTable;

/// The Wisconsin hash join baseline.
#[derive(Debug, Clone)]
pub struct WisconsinHashJoin {
    config: JoinConfig,
}

impl WisconsinHashJoin {
    /// Create the join with the given worker configuration.
    pub fn new(config: JoinConfig) -> Self {
        WisconsinHashJoin { config }
    }

    /// Access the configuration.
    pub fn config(&self) -> &JoinConfig {
        &self.config
    }

    /// Join and additionally report the build-side CAS contention.
    pub fn join_with_contention<S: JoinSink>(
        &self,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats, usize) {
        let t = self.config.threads;
        let (r, s, _swapped) = self.config.assign_roles(r, s);
        let wall = std::time::Instant::now();
        let mut stats = JoinStats::new(t);

        // ---- Build: all workers insert into one shared table. ----
        let mut table = SharedChainedTable::new(r.len());
        let r_ranges = chunk_ranges(r.len(), t);
        let sizes: Vec<usize> = r_ranges.iter().map(|rng| rng.len()).collect();
        {
            let windows = table.carve_windows(&sizes);
            let mut build_times = vec![std::time::Duration::ZERO; t];
            std::thread::scope(|scope| {
                let handles: Vec<_> = windows
                    .into_iter()
                    .zip(r_ranges.iter())
                    .map(|(mut win, range)| {
                        let chunk = &r[range.clone()];
                        scope.spawn(move || {
                            let start = std::time::Instant::now();
                            for tup in chunk {
                                win.insert(*tup);
                            }
                            start.elapsed()
                        })
                    })
                    .collect();
                for (w, h) in handles.into_iter().enumerate() {
                    build_times[w] = h.join().expect("build worker panicked");
                }
            });
            stats.record_phase(Phase::One, &build_times);
        }
        let contention = table.contention_events();

        // ---- Probe: all workers scan S chunks, probing randomly. ----
        let s_ranges = chunk_ranges(s.len(), t);
        let (partials, probe_times) = run_parallel_timed(t, |w| {
            let mut sink = S::default();
            for st in &s[s_ranges[w].clone()] {
                table.probe(st.key, |rt| sink.on_match(rt, *st));
            }
            sink.finish()
        });
        stats.record_phase(Phase::Two, &probe_times);

        stats.wall = wall.elapsed();
        (S::combine_all(partials), stats, contention)
    }
}

impl JoinAlgorithm for WisconsinHashJoin {
    fn name(&self) -> &'static str {
        "Wisconsin"
    }

    fn join_with_sink<S: JoinSink>(&self, r: &[Tuple], s: &[Tuple]) -> (S::Result, JoinStats) {
        let (result, stats, _contention) = self.join_with_contention::<S>(r, s);
        (result, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested_loop::oracle_count;
    use mpsm_core::sink::CollectSink;

    fn keyed(keys: &[u64]) -> Vec<Tuple> {
        keys.iter().enumerate().map(|(i, &k)| Tuple::new(k, i as u64)).collect()
    }

    fn lcg(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed | 1;
        move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 32
        }
    }

    #[test]
    fn joins_small_relations() {
        let r = keyed(&[1, 5, 9, 5]);
        let s = keyed(&[5, 5, 2, 9]);
        let join = WisconsinHashJoin::new(JoinConfig::with_threads(2));
        assert_eq!(join.count(&r, &s), oracle_count(&r, &s));
    }

    #[test]
    fn matches_oracle_across_thread_counts() {
        let mut next = lcg(61);
        let r: Vec<Tuple> = (0..1000).map(|i| Tuple::new(next() % 700, i)).collect();
        let s: Vec<Tuple> = (0..3000).map(|i| Tuple::new(next() % 700, i)).collect();
        let expected = oracle_count(&r, &s);
        for threads in [1, 2, 4, 8, 16] {
            let join = WisconsinHashJoin::new(JoinConfig::with_threads(threads));
            assert_eq!(join.count(&r, &s), expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_inputs() {
        let join = WisconsinHashJoin::new(JoinConfig::with_threads(4));
        assert_eq!(join.count(&[], &[]), 0);
        assert_eq!(join.count(&keyed(&[1]), &[]), 0);
        assert_eq!(join.count(&[], &keyed(&[1])), 0);
    }

    #[test]
    fn duplicate_cross_products() {
        let r = keyed(&[4, 4, 4]);
        let s = keyed(&[4, 4]);
        let join = WisconsinHashJoin::new(JoinConfig::with_threads(2));
        assert_eq!(join.count(&r, &s), 6);
    }

    #[test]
    fn collects_pairs_with_private_first() {
        let r = keyed(&[2]); // payload 0
        let s = keyed(&[2, 2]); // payloads 0, 1
        let join = WisconsinHashJoin::new(JoinConfig::with_threads(1));
        let (mut rows, _) = join.join_with_sink::<CollectSink>(&r, &s);
        rows.sort_unstable();
        assert_eq!(rows, vec![(2, 0, 0), (2, 0, 1)]);
    }

    #[test]
    fn stats_cover_build_and_probe() {
        let mut next = lcg(67);
        let r: Vec<Tuple> = (0..4000).map(|i| Tuple::new(next() % 1024, i)).collect();
        let s: Vec<Tuple> = (0..4000).map(|i| Tuple::new(next() % 1024, i)).collect();
        let join = WisconsinHashJoin::new(JoinConfig::with_threads(4));
        let (_, stats) = join.join_with_sink::<mpsm_core::sink::CountSink>(&r, &s);
        assert!(stats.wall_ms() > 0.0);
        assert_eq!(stats.per_worker.len(), 4);
    }

    #[test]
    fn skewed_build_keys_still_correct() {
        // All R keys identical: one bucket chain holds everything.
        let r = keyed(&vec![9u64; 400]);
        let s = keyed(&[9, 9, 1]);
        let join = WisconsinHashJoin::new(JoinConfig::with_threads(8));
        assert_eq!(join.count(&r, &s), 800);
    }
}
