//! Criterion bench: latched shared hash table vs. unsynchronized local
//! table — the micro-cost behind the Wisconsin baseline's build phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpsm_baselines::hash_table::{LocalChainedTable, SharedChainedTable};
use mpsm_core::worker::chunk_ranges;
use mpsm_core::Tuple;
use mpsm_workload::unique_keys;

fn dataset(n: usize) -> Vec<Tuple> {
    unique_keys(n, 17).into_iter().enumerate().map(|(i, k)| Tuple::new(k, i as u64)).collect()
}

fn bench_tables(c: &mut Criterion) {
    let n = 1usize << 18;
    let data = dataset(n);
    let mut group = c.benchmark_group("hash_table_build");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(20);

    group.bench_function("local_unsynchronized", |b| b.iter(|| LocalChainedTable::build(&data)));

    for &workers in &[1usize, 4, 8] {
        group.bench_function(BenchmarkId::new("shared_latched", workers), |b| {
            b.iter(|| {
                let mut table = SharedChainedTable::new(n);
                let ranges = chunk_ranges(n, workers);
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let windows = table.carve_windows(&sizes);
                std::thread::scope(|s| {
                    for (mut win, range) in windows.into_iter().zip(ranges.iter()) {
                        let chunk = &data[range.clone()];
                        s.spawn(move || {
                            for t in chunk {
                                win.insert(*t);
                            }
                        });
                    }
                });
                table.contention_events()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("hash_table_probe");
    group.throughput(Throughput::Elements(n as u64));
    let local = LocalChainedTable::build(&data);
    let probes = dataset(n);
    group.bench_function("local_probe", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for p in &probes {
                local.probe(p.key, |_| hits += 1);
            }
            hits
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
