//! Criterion bench: radix histogram computation across granularities —
//! the micro version of Figure 9 ("higher precision of
//! radix-histogramming comes at no additional cost").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpsm_core::histogram::{compute_histogram, RadixDomain};
use mpsm_core::Tuple;
use mpsm_workload::unique_keys;

fn bench_histogram(c: &mut Criterion) {
    let n = 1usize << 20;
    let data: Vec<Tuple> =
        unique_keys(n, 13).into_iter().enumerate().map(|(i, k)| Tuple::new(k, i as u64)).collect();
    let mut group = c.benchmark_group("histogram");
    group.throughput(Throughput::Elements(n as u64));
    for &bits in &[5u32, 7, 9, 11] {
        let domain = RadixDomain::from_range(0, (1 << 32) - 1, bits);
        group.bench_function(BenchmarkId::from_parameter(1usize << bits), |b| {
            b.iter(|| compute_histogram(&data, &domain))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_histogram);
criterion_main!(benches);
