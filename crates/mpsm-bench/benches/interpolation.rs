//! Criterion bench: interpolation search vs. binary search vs. linear
//! scan for the merge-join start points (§3.2.2, Figure 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpsm_core::interpolation::interpolation_lower_bound;
use mpsm_core::Tuple;
use mpsm_workload::unique_keys;

fn sorted_run(n: usize) -> Vec<Tuple> {
    let mut v: Vec<Tuple> = unique_keys(n, 3).into_iter().map(|k| Tuple::new(k, 0)).collect();
    v.sort_unstable_by_key(|t| t.key);
    v
}

fn probes() -> Vec<u64> {
    unique_keys(256, 99)
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("start_point_search");
    for &n in &[1usize << 16, 1 << 20] {
        let run = sorted_run(n);
        let keys = probes();
        group.bench_with_input(BenchmarkId::new("interpolation", n), &run, |b, run| {
            b.iter(|| {
                let mut acc = 0usize;
                for &k in &keys {
                    acc = acc.wrapping_add(interpolation_lower_bound(run, k));
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("binary", n), &run, |b, run| {
            b.iter(|| {
                let mut acc = 0usize;
                for &k in &keys {
                    acc = acc.wrapping_add(run.partition_point(|t| t.key < k));
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
