//! Criterion bench: end-to-end joins of all contenders at a small,
//! CI-friendly scale (the figure binaries cover the full-scale runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpsm_bench::Contender;
use mpsm_core::sink::ChecksumSink;
use mpsm_workload::fk_uniform;

fn bench_joins(c: &mut Criterion) {
    let w = fk_uniform(1 << 17, 4, 42);
    let total = (w.r.len() + w.s.len()) as u64;
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);

    let mut group = c.benchmark_group("join_small_scale");
    group.throughput(Throughput::Elements(total));
    group.sample_size(10);
    for contender in [
        Contender::Mpsm,
        Contender::BMpsm,
        Contender::DMpsm,
        Contender::Radix,
        Contender::Wisconsin,
        Contender::ClassicSmj,
    ] {
        group.bench_function(BenchmarkId::from_parameter(contender.name()), |b| {
            b.iter(|| contender.run::<ChecksumSink>(threads, &w.r, &w.s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
