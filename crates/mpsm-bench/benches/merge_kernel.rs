//! Criterion bench: the merge-join kernel over different match rates
//! and duplicate densities — the galloping kernel ([`merge_join`])
//! against the linear reference ([`merge_join_linear`]) on every
//! scenario, including the one-sided-skew layout where galloping wins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpsm_core::merge::{merge_join, merge_join_linear};
use mpsm_core::sink::{ChecksumSink, JoinSink};
use mpsm_core::Tuple;
use mpsm_workload::unique_keys;

fn sorted(keys: Vec<u64>) -> Vec<Tuple> {
    let mut v: Vec<Tuple> =
        keys.into_iter().enumerate().map(|(i, k)| Tuple::new(k, i as u64)).collect();
    v.sort_unstable_by_key(|t| t.key);
    v
}

/// Bench one scenario with both kernels (the `gallop`/`linear` pair is
/// the ablation the acceptance numbers come from).
fn bench_pair(group: &mut criterion::BenchmarkGroup<'_>, scenario: &str, r: &[Tuple], s: &[Tuple]) {
    group.bench_function(BenchmarkId::new("gallop", scenario), |b| {
        b.iter(|| {
            let mut sink = ChecksumSink::default();
            merge_join(r, s, &mut sink);
            sink.finish()
        })
    });
    group.bench_function(BenchmarkId::new("linear", scenario), |b| {
        b.iter(|| {
            let mut sink = ChecksumSink::default();
            merge_join_linear(r, s, &mut sink);
            sink.finish()
        })
    });
}

fn bench_merge(c: &mut Criterion) {
    let n = 1usize << 19;
    let mut group = c.benchmark_group("merge_kernel");
    group.throughput(Throughput::Elements(2 * n as u64));

    // Disjoint interleaved: zero matches, pure scan speed.
    let r0 = sorted((0..n as u64).map(|k| k * 2).collect());
    let s0 = sorted((0..n as u64).map(|k| k * 2 + 1).collect());
    bench_pair(&mut group, "0pct", &r0, &s0);

    // FK 1:1 — every key matches once.
    let keys = unique_keys(n, 5);
    let r1 = sorted(keys.clone());
    let s1 = sorted(keys);
    bench_pair(&mut group, "100pct", &r1, &s1);

    // Duplicate-heavy: each key 16 times on each side (16×16 groups).
    let dup: Vec<u64> = (0..n as u64).map(|i| i / 16).collect();
    let r2 = sorted(dup.clone());
    let s2 = sorted(dup);
    bench_pair(&mut group, "16x16_groups", &r2, &s2);

    // One-sided skew: a sparse r (every 1024th key) against a dense s —
    // the P-MPSM phase-4 shape where the private run covers a sliver of
    // each public run's domain and galloping skips the dead stretches.
    let r3 = sorted((0..(n as u64 / 1024)).map(|k| k * 1024).collect());
    let s3 = sorted((0..n as u64).collect());
    bench_pair(&mut group, "sparse_vs_dense", &r3, &s3);

    // Regime shift: dense interleaved first half, sparse-vs-dense second
    // half — pins the adaptive gallop budget moving in both directions
    // within a single merge (the fixed-threshold kernel lost the dense
    // half at 0.83× of linear).
    let half = n as u64 / 2;
    let mut r4_keys: Vec<u64> = (0..half).map(|k| k * 2).collect();
    let mut s4_keys: Vec<u64> = (0..half).map(|k| k * 2 + 1).collect();
    let base = 4 * half;
    r4_keys.extend((0..half / 1024).map(|k| base + k * 1024));
    s4_keys.extend((0..half).map(|k| base + k));
    let r4 = sorted(r4_keys);
    let s4 = sorted(s4_keys);
    bench_pair(&mut group, "regime_shift", &r4, &s4);

    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
