//! Criterion bench: the merge-join kernel over different match rates
//! and duplicate densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpsm_core::merge::merge_join;
use mpsm_core::sink::{ChecksumSink, JoinSink};
use mpsm_core::Tuple;
use mpsm_workload::unique_keys;

fn sorted(keys: Vec<u64>) -> Vec<Tuple> {
    let mut v: Vec<Tuple> =
        keys.into_iter().enumerate().map(|(i, k)| Tuple::new(k, i as u64)).collect();
    v.sort_unstable_by_key(|t| t.key);
    v
}

fn bench_merge(c: &mut Criterion) {
    let n = 1usize << 19;
    let mut group = c.benchmark_group("merge_kernel");
    group.throughput(Throughput::Elements(2 * n as u64));

    // Disjoint: zero matches, pure scan speed.
    let r0 = sorted((0..n as u64).map(|k| k * 2).collect());
    let s0 = sorted((0..n as u64).map(|k| k * 2 + 1).collect());
    group.bench_function(BenchmarkId::new("match_rate", "0pct"), |b| {
        b.iter(|| {
            let mut sink = ChecksumSink::default();
            merge_join(&r0, &s0, &mut sink);
            sink.finish()
        })
    });

    // FK 1:1 — every key matches once.
    let keys = unique_keys(n, 5);
    let r1 = sorted(keys.clone());
    let s1 = sorted(keys);
    group.bench_function(BenchmarkId::new("match_rate", "100pct"), |b| {
        b.iter(|| {
            let mut sink = ChecksumSink::default();
            merge_join(&r1, &s1, &mut sink);
            sink.finish()
        })
    });

    // Duplicate-heavy: each key 16 times on each side (16×16 groups).
    let dup: Vec<u64> = (0..n as u64).map(|i| i / 16).collect();
    let r2 = sorted(dup.clone());
    let s2 = sorted(dup);
    group.bench_function(BenchmarkId::new("match_rate", "16x16_groups"), |b| {
        b.iter(|| {
            let mut sink = ChecksumSink::default();
            merge_join(&r2, &s2, &mut sink);
            sink.finish()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
