//! Criterion bench: the synchronization-free scatter (§3.2.1) across
//! worker counts and histogram granularities, plus two ablation pairs:
//!
//! * `scatter_ablation` — write-combining ([`range_partition`]) vs.
//!   per-tuple random stores ([`range_partition_naive`]), single
//!   worker, radix-join-like fan-outs: isolates the store pattern;
//! * `scatter_phase` — the scatter phase as the joins execute it:
//!   pool-resident write-combining ([`range_partition_in`]) vs. the
//!   seed path (thread spawn per call + per-tuple stores).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpsm_core::histogram::{combine_histograms, compute_histogram, RadixDomain};
use mpsm_core::partition::{range_partition, range_partition_in, range_partition_naive};
use mpsm_core::splitter::{equi_height_splitters, Splitters};
use mpsm_core::worker::{chunk_ranges, WorkerPool};
use mpsm_core::Tuple;
use mpsm_workload::unique_keys;

fn dataset(n: usize) -> Vec<Tuple> {
    unique_keys(n, 11).into_iter().enumerate().map(|(i, k)| Tuple::new(k, i as u64)).collect()
}

fn bench_scatter(c: &mut Criterion) {
    let n = 1usize << 20;
    let data = dataset(n);
    let mut group = c.benchmark_group("partition_scatter");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(20);
    for &workers in &[1usize, 4, 8] {
        for &bits in &[6u32, 10] {
            let domain = RadixDomain::from_range(0, (1 << 32) - 1, bits);
            let ranges = chunk_ranges(data.len(), workers);
            let chunks: Vec<&[Tuple]> = ranges.iter().map(|r| &data[r.clone()]).collect();
            let hist = combine_histograms(
                &chunks.iter().map(|ch| compute_histogram(ch, &domain)).collect::<Vec<_>>(),
            );
            let splitters = equi_height_splitters(&hist, workers);
            group.bench_function(BenchmarkId::new(format!("B{bits}"), workers), |b| {
                b.iter(|| range_partition(&chunks, &domain, &splitters))
            });
        }
    }
    group.finish();

    // Ablation: write-combining vs. per-tuple stores at radix-join-like
    // fan-outs (identity splitters: every bucket its own partition).
    // Single worker isolates the store pattern from thread scheduling.
    let mut group = c.benchmark_group("scatter_ablation");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(20);
    for &bits in &[4u32, 8] {
        let parts = 1usize << bits;
        let domain = RadixDomain::from_range(0, (1 << 32) - 1, bits);
        let splitters = Splitters::from_assignment((0..parts as u32).collect(), parts);
        let chunks: Vec<&[Tuple]> = vec![&data];
        group.bench_function(BenchmarkId::new("write_combining", parts), |b| {
            b.iter(|| range_partition(&chunks, &domain, &splitters))
        });
        group.bench_function(BenchmarkId::new("naive", parts), |b| {
            b.iter(|| range_partition_naive(&chunks, &domain, &splitters))
        });
    }
    group.finish();

    // End-to-end scatter phase as the joins run it.
    let mut group = c.benchmark_group("scatter_phase");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(20);
    for &workers in &[4usize, 8] {
        let domain = RadixDomain::from_range(0, (1 << 32) - 1, 8);
        let ranges = chunk_ranges(data.len(), workers);
        let chunks: Vec<&[Tuple]> = ranges.iter().map(|r| &data[r.clone()]).collect();
        let hist = combine_histograms(
            &chunks.iter().map(|ch| compute_histogram(ch, &domain)).collect::<Vec<_>>(),
        );
        let splitters = equi_height_splitters(&hist, workers);
        let mut pool = WorkerPool::new(workers);
        group.bench_function(BenchmarkId::new("pooled_wc", workers), |b| {
            b.iter(|| range_partition_in(&mut pool, &chunks, &domain, &splitters))
        });
        group.bench_function(BenchmarkId::new("seed_spawning", workers), |b| {
            b.iter(|| range_partition_naive(&chunks, &domain, &splitters))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scatter);
criterion_main!(benches);
