//! Criterion bench: the synchronization-free scatter (§3.2.1) across
//! worker counts and histogram granularities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpsm_core::histogram::{combine_histograms, compute_histogram, RadixDomain};
use mpsm_core::partition::range_partition;
use mpsm_core::splitter::equi_height_splitters;
use mpsm_core::worker::chunk_ranges;
use mpsm_core::Tuple;
use mpsm_workload::unique_keys;

fn dataset(n: usize) -> Vec<Tuple> {
    unique_keys(n, 11).into_iter().enumerate().map(|(i, k)| Tuple::new(k, i as u64)).collect()
}

fn bench_scatter(c: &mut Criterion) {
    let n = 1usize << 20;
    let data = dataset(n);
    let mut group = c.benchmark_group("partition_scatter");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(20);
    for &workers in &[1usize, 4, 8] {
        for &bits in &[6u32, 10] {
            let domain = RadixDomain::from_range(0, (1 << 32) - 1, bits);
            let ranges = chunk_ranges(data.len(), workers);
            let chunks: Vec<&[Tuple]> = ranges.iter().map(|r| &data[r.clone()]).collect();
            let hist = combine_histograms(
                &chunks.iter().map(|ch| compute_histogram(ch, &domain)).collect::<Vec<_>>(),
            );
            let splitters = equi_height_splitters(&hist, workers);
            group.bench_function(BenchmarkId::new(format!("B{bits}"), workers), |b| {
                b.iter(|| range_partition(&chunks, &domain, &splitters))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scatter);
criterion_main!(benches);
