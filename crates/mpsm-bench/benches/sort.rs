//! Criterion bench: the paper's three-phase sort (cache-conscious:
//! recursive radix + per-bucket finishing) vs. the seed's naive variant
//! (global insertion pass) vs. std sort vs. introsort-only (§2.3
//! ablation).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use mpsm_core::sort::{
    introsort_only, three_phase_sort, three_phase_sort_bitonic, three_phase_sort_naive,
    three_phase_sort_pr2_baseline, three_phase_sort_tuned, SortKernel, SortScratch, SortTuning,
};
use mpsm_core::Tuple;
use mpsm_workload::unique_keys;

fn dataset(n: usize) -> Vec<Tuple> {
    unique_keys(n, 7).into_iter().enumerate().map(|(i, k)| Tuple::new(k, i as u64)).collect()
}

fn bench_sorts(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort");
    group.sample_size(20);
    for &n in &[1usize << 14, 1 << 17, 1 << 20] {
        let data = dataset(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("three_phase", n), &data, |b, data| {
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    three_phase_sort(&mut d);
                    d
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("three_phase_naive", n), &data, |b, data| {
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    three_phase_sort_naive(&mut d);
                    d
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("std_unstable", n), &data, |b, data| {
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    d.sort_unstable_by_key(|t| t.key);
                    d
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("introsort_only", n), &data, |b, data| {
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    introsort_only(&mut d);
                    d
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("three_phase_bitonic", n), &data, |b, data| {
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    three_phase_sort_bitonic(&mut d);
                    d
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// The PR 7 kernel registry: every finishing kernel through the tuned
/// radix recursion, against the frozen PR 2 sort (the honest
/// before/after pair — it pays two key-range re-scans per recursion
/// level where the tuned path derives child shifts arithmetically).
fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort_kernels");
    group.sample_size(20);
    let mut scratch = SortScratch::default();
    for &n in &[1usize << 17, 1 << 20] {
        let data = dataset(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("pr2_baseline", n), &data, |b, data| {
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    three_phase_sort_pr2_baseline(&mut d);
                    d
                },
                BatchSize::LargeInput,
            )
        });
        for kernel in SortKernel::ALL {
            let tuning = SortTuning::new(kernel, 64);
            group.bench_with_input(BenchmarkId::new(kernel.name(), n), &data, |b, data| {
                b.iter_batched(
                    || data.clone(),
                    |mut d| {
                        three_phase_sort_tuned(&mut d, &tuning, &mut scratch);
                        d
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sorts, bench_kernels);
criterion_main!(benches);
