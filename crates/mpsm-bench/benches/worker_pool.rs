//! Criterion bench: the persistent [`WorkerPool`] vs. per-phase thread
//! spawning ([`run_parallel`]) over a phase-structured workload — the
//! shape of one MPSM join (several short parallel sections separated by
//! barriers), where respawn overhead is paid once per phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpsm_core::worker::{chunk_ranges, run_parallel, WorkerPool};

/// Phases per measured iteration — B-MPSM runs 3, P-MPSM runs 7
/// parallel sections (phases + scans + scatter).
const PHASES: usize = 8;
/// Work items per phase (small on purpose: the spawn overhead, not the
/// work, is what the pair isolates).
const ITEMS: usize = 1 << 14;

fn phase_work(data: &[u64], range: std::ops::Range<usize>) -> u64 {
    data[range].iter().fold(0u64, |acc, &x| acc.wrapping_add(x.wrapping_mul(2654435761)))
}

fn bench_pool(c: &mut Criterion) {
    let data: Vec<u64> = (0..ITEMS as u64).collect();
    let mut group = c.benchmark_group("worker_pool");
    group.throughput(Throughput::Elements((PHASES * ITEMS) as u64));
    group.sample_size(20);
    for &threads in &[2usize, 4, 8] {
        let ranges = chunk_ranges(data.len(), threads);
        group.bench_function(BenchmarkId::new("persistent_pool", threads), |b| {
            b.iter(|| {
                let mut pool = WorkerPool::new(threads);
                let mut total = 0u64;
                for _ in 0..PHASES {
                    total = total.wrapping_add(
                        pool.run(|w| phase_work(&data, ranges[w].clone())).iter().sum::<u64>(),
                    );
                }
                total
            })
        });
        group.bench_function(BenchmarkId::new("spawn_per_phase", threads), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for _ in 0..PHASES {
                    total = total.wrapping_add(
                        run_parallel(threads, |w| phase_work(&data, ranges[w].clone()))
                            .iter()
                            .sum::<u64>(),
                    );
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pool);
criterion_main!(benches);
