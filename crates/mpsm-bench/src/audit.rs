//! NUMA access profiles of the join algorithms (shared by the Figure 2
//! audit and the modeled columns of Figures 12/13).
//!
//! Each function derives, from an algorithm's structure, the
//! *per-worker* access counts by category (local/remote ×
//! sequential/random) plus synchronization events, for a run with
//! `|R| = r`, `|S| = s` and `t` workers on a given topology. Pricing the
//! counts with the Figure 1-calibrated [`CostModel`] predicts the
//! algorithms' relative performance **on the paper's NUMA machine** —
//! the contrast a UMA container cannot measure directly (see DESIGN.md
//! §3.5).

use mpsm_numa::{AccessCounters, AccessKind, CoreId, CostModel, CounterScope, NodeId, Topology};

use crate::harness::Contender;

/// Interconnect saturation: when `T` workers issue *dependent random
/// remote* accesses simultaneously, the cross-socket links saturate and
/// the effective per-access latency grows roughly linearly in the
/// number of contending workers. The coefficient is calibrated against
/// the paper's Figure 12 bars (Wisconsin ≈ 675 s and Vectorwise ≈ 480 s
/// at multiplicity 4, T = 32, |R| = 1600M): `2.3` extra latencies per
/// additional worker reproduces both. MPSM performs *no* random remote
/// accesses, so it is insensitive to this factor — which is exactly the
/// paper's argument for commandments C1/C2.
const INTERCONNECT_SATURATION_PER_WORKER: f64 = 2.3;

fn saturation(t: u64) -> f64 {
    1.0 + INTERCONNECT_SATURATION_PER_WORKER * t.saturating_sub(1) as f64
}

fn log2(x: u64) -> u64 {
    (x.max(2) as f64).log2().ceil() as u64
}

/// Per-worker access profile of P-MPSM.
pub fn mpsm_profile(topo: &Topology, r: u64, s: u64, t: u64) -> AccessCounters {
    let (r_t, s_t) = (r / t.max(1), s / t.max(1));
    let mut w = CounterScope::new(topo.clone(), CoreId(0));
    let home = NodeId(0);
    // P1: copy public chunk, sort locally.
    w.touch_interleaved(true, s_t);
    w.touch(home, true, s_t);
    w.touch(home, false, s_t * log2(s_t));
    // P2: histogram + scatter into precomputed windows (sequential remote).
    w.touch(home, true, 2 * r_t);
    w.touch_interleaved(true, r_t);
    // P3: sort private partition locally.
    w.touch(home, false, r_t * log2(r_t));
    // P4: own run scanned T times locally; 1/T of each S run remotely,
    // sequentially.
    w.touch(home, true, r_t * t);
    w.touch_interleaved(true, s_t);
    w.finish()
}

/// Per-worker access profile of B-MPSM (no partitioning: the full
/// public input is scanned in the join phase).
pub fn b_mpsm_profile(topo: &Topology, r: u64, s: u64, t: u64) -> AccessCounters {
    let (r_t, s_t) = (r / t.max(1), s / t.max(1));
    let mut w = CounterScope::new(topo.clone(), CoreId(0));
    let home = NodeId(0);
    w.touch_interleaved(true, s_t);
    w.touch(home, true, s_t);
    w.touch(home, false, s_t * log2(s_t));
    w.touch(home, false, r_t * log2(r_t));
    // Join: own run scanned T times locally, the *entire* S remotely
    // (sequential).
    w.touch(home, true, r_t * t);
    w.touch_interleaved(true, s);
    w.finish()
}

/// Per-worker access profile of the radix join.
pub fn radix_profile(topo: &Topology, r: u64, s: u64, t: u64) -> AccessCounters {
    let (r_t, s_t) = (r / t.max(1), s / t.max(1));
    let mut w = CounterScope::new(topo.clone(), CoreId(0));
    let home = NodeId(0);
    // Pass 1: scatter both inputs across NUMA partitions (Figure 2b).
    // With 2^B open write cursors the stores are partially stream-like:
    // price 70% as random remote, 30% as sequential remote.
    w.touch(home, true, r_t + s_t);
    w.touch_interleaved(false, (r_t + s_t) * 7 / 10);
    w.touch_interleaved(true, (r_t + s_t) * 3 / 10);
    // Pass 2: local refinement, sequential.
    w.touch(home, true, 2 * (r_t + s_t));
    // Fragment joins: random but cache-local.
    w.touch(home, false, r_t + s_t);
    w.finish()
}

/// Per-worker access profile of the Wisconsin hash join.
pub fn wisconsin_profile(topo: &Topology, r: u64, s: u64, t: u64) -> AccessCounters {
    let (r_t, s_t) = (r / t.max(1), s / t.max(1));
    let mut w = CounterScope::new(topo.clone(), CoreId(0));
    let home = NodeId(0);
    // Build: random writes into the global table + one latch per tuple.
    w.touch(home, true, r_t);
    w.touch_interleaved(false, r_t);
    w.sync(r_t);
    // Probe: one dependent random read of the global table per probe
    // (unique build keys → chain length ~1).
    w.touch(home, true, s_t);
    w.touch_interleaved(false, s_t);
    w.finish()
}

/// Access profile of a contender (classic SMJ ≈ B-MPSM plus a
/// sequential merge, approximated by B-MPSM here; D-MPSM is I/O-bound
/// and not meaningfully priced by the RAM model).
pub fn profile(c: Contender, topo: &Topology, r: u64, s: u64, t: u64) -> AccessCounters {
    match c {
        Contender::Mpsm => mpsm_profile(topo, r, s, t),
        Contender::BMpsm | Contender::ClassicSmj | Contender::DMpsm => {
            b_mpsm_profile(topo, r, s, t)
        }
        Contender::Radix => radix_profile(topo, r, s, t),
        Contender::Wisconsin => wisconsin_profile(topo, r, s, t),
    }
}

/// Modeled per-worker wall time on the paper machine, in ms: the
/// calibrated latency model plus interconnect saturation on random
/// remote traffic.
pub fn modeled_ms(c: Contender, r: u64, s: u64, t: u64) -> f64 {
    let topo = Topology::paper_machine();
    let model = CostModel::paper_calibrated();
    let counters = profile(c, &topo, r, s, t);
    let mut ns = 0.0;
    for kind in AccessKind::ALL {
        let mut cost = model.access_ns(kind, counters.accesses(kind));
        if kind == AccessKind::RemoteRand {
            cost *= saturation(t);
        }
        ns += cost;
    }
    ns += model.sync_ns(counters.syncs());
    ns / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: u64 = 1600 << 20; // the paper's |R|
    const T: u64 = 32;

    #[test]
    fn mpsm_wins_on_the_paper_machine() {
        // The headline result of Figure 12 must fall out of the model:
        // MPSM < radix < Wisconsin at multiplicity 4 and paper scale.
        let s = 4 * R;
        let mpsm = modeled_ms(Contender::Mpsm, R, s, T);
        let radix = modeled_ms(Contender::Radix, R, s, T);
        let wisconsin = modeled_ms(Contender::Wisconsin, R, s, T);
        assert!(mpsm < radix, "MPSM {mpsm:.0} ms must beat radix {radix:.0} ms");
        assert!(radix < wisconsin, "radix {radix:.0} ms must beat Wisconsin {wisconsin:.0} ms");
    }

    #[test]
    fn p_mpsm_beats_b_mpsm_at_scale() {
        let s = 4 * R;
        let p = modeled_ms(Contender::Mpsm, R, s, T);
        let b = modeled_ms(Contender::BMpsm, R, s, T);
        assert!(p < b, "range partitioning must pay off: P {p:.0} vs B {b:.0}");
    }

    #[test]
    fn mpsm_has_no_random_remote_traffic() {
        use mpsm_numa::AccessKind::RemoteRand;
        let topo = Topology::paper_machine();
        let c = mpsm_profile(&topo, R, 4 * R, T);
        assert_eq!(c.accesses(RemoteRand), 0, "commandment C1/C2 by construction");
        assert_eq!(c.syncs(), 0, "commandment C3");
    }

    #[test]
    fn wisconsin_violates_the_commandments() {
        let topo = Topology::paper_machine();
        let c = wisconsin_profile(&topo, R, 4 * R, T);
        assert!(c.syncs() > 0);
        assert!(c.accesses(mpsm_numa::AccessKind::RemoteRand) > 0);
    }

    #[test]
    fn model_scales_with_threads() {
        // More workers → less per-worker time (almost linear for MPSM).
        let s = 4 * R;
        let t8 = modeled_ms(Contender::Mpsm, R, s, 8);
        let t32 = modeled_ms(Contender::Mpsm, R, s, 32);
        assert!(t32 < t8 / 2.0, "expected near-linear scaling: {t8:.0} → {t32:.0}");
    }
}
