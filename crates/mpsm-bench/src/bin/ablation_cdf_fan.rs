//! Ablation — §4.1: CDF precision (`f · T` local bounds per worker).
//!
//! "By increasing f and thus the number of local bounds determined by
//! each worker, more fine grained information about the global data
//! distribution can be collected at negligible costs." This ablation
//! sweeps `f` on the negatively correlated skew workload and reports
//! the phase-2 cost (which should stay flat) and the resulting worker
//! balance (which should improve, then saturate).

use mpsm_bench::table::fmt_ms;
use mpsm_bench::{parse_args, TableBuilder};
use mpsm_core::join::p_mpsm::PMpsmJoin;
use mpsm_core::join::{JoinAlgorithm, JoinConfig};
use mpsm_core::sink::MaxAggSink;
use mpsm_workload::skewed_negative_correlation;

fn main() {
    let args = parse_args();
    println!(
        "Ablation §4.1 — CDF fan f (|R| = {}, negatively correlated skew, threads = {})\n",
        args.scale, args.threads
    );
    let w = skewed_negative_correlation(args.scale, 4, 1 << 32, args.seed);

    let mut table = TableBuilder::new(&[
        "f (bounds per worker = f*T)",
        "phase2 ms",
        "phase4 bottleneck ms",
        "imbalance",
        "total ms",
    ]);
    let mut reference = None;
    for f in [1usize, 2, 4, 8, 16, 32] {
        let mut cfg = JoinConfig::with_threads(args.threads).radix_bits(10);
        cfg.cdf_fan = f;
        let join = PMpsmJoin::new(cfg);
        let (max, stats) = join.join_with_sink::<MaxAggSink>(&w.r, &w.s);
        match &reference {
            None => reference = Some(max),
            Some(r) => assert_eq!(*r, max, "f must not change the result"),
        }
        table.row(&[
            f.to_string(),
            fmt_ms(stats.phases_ms()[1]),
            fmt_ms(stats.phases_ms()[3]),
            format!("{:.3}", stats.imbalance()),
            fmt_ms(stats.wall_ms()),
        ]);
    }
    table.print();
    println!("\n(phase-2 cost flat in f — the bounds come from already-sorted runs — while the\n splitter quality, and with it the balance, improves until the CDF is precise enough)");
}
