//! Ablation — §3.2.2: how P-MPSM enters the public runs.
//!
//! The paper chooses interpolation search over "sequentially searching
//! for the starting point of merge join within each public data chunk
//! \[which\] would incur numerous expensive comparisons". This ablation
//! measures all three strategies on the full join (uniform keys, where
//! interpolation shines, and 80:20-skewed keys, where its guesses
//! degrade and the binary fallback matters).

use mpsm_bench::table::fmt_ms;
use mpsm_bench::{parse_args, TableBuilder};
use mpsm_core::join::p_mpsm::{EntrySearch, PMpsmJoin};
use mpsm_core::join::{JoinAlgorithm, JoinConfig};
use mpsm_core::sink::MaxAggSink;
use mpsm_workload::{fk_uniform, skewed_negative_correlation};

fn main() {
    let args = parse_args();
    println!(
        "Ablation §3.2.2 — phase-4 entry-point search (|R| = {}, m = 4, threads = {})\n",
        args.scale, args.threads
    );

    let uniform = fk_uniform(args.scale, 4, args.seed);
    let skewed = skewed_negative_correlation(args.scale, 4, 1 << 32, args.seed);

    let mut table =
        TableBuilder::new(&["entry search", "uniform join-phase ms", "skewed join-phase ms"]);
    let mut reference = (None, None);
    for (entry, label) in [
        (EntrySearch::Interpolation, "interpolation (paper)"),
        (EntrySearch::Binary, "binary search"),
        (EntrySearch::FullScan, "full scan (strawman)"),
    ] {
        let join = PMpsmJoin::new(JoinConfig::with_threads(args.threads)).with_entry_search(entry);
        let (u_max, u_stats) = join.join_with_sink::<MaxAggSink>(&uniform.r, &uniform.s);
        let (s_max, s_stats) = join.join_with_sink::<MaxAggSink>(&skewed.r, &skewed.s);
        match &reference {
            (None, None) => reference = (Some(u_max), Some(s_max)),
            (u, s) => {
                assert_eq!(*u, Some(u_max), "strategies must agree");
                assert_eq!(*s, Some(s_max), "strategies must agree");
            }
        }
        table.row(&[
            label.to_string(),
            fmt_ms(u_stats.phases_ms()[3]),
            fmt_ms(s_stats.phases_ms()[3]),
        ]);
    }
    table.print();
    println!(
        "\n(interpolation ≈ binary at run granularity — one probe per (worker, run) pair — \
         while the full scan pays |S| instead of |S|/T per worker; the gap widens with T)"
    );
}
