//! `bench_baseline` — the recorded perf trajectory of this repository.
//!
//! Runs the Figure-12-style contender sweep (all six join algorithms on
//! the uniform FK workload) plus the hot-path ablation pairs
//! (write-combining vs. naive scatter, per-bucket vs. global-insertion
//! sort, galloping vs. linear merge, persistent pool vs. per-phase
//! spawning) and writes the medians as JSON — `BENCH_2.json` at the
//! repo root is the committed first point of the trajectory; future
//! perf PRs are judged against it.
//!
//! ```text
//! cargo run --release -p mpsm-bench --bin bench_baseline
//!     [--scale N] [--threads N] [--seed N] [--trials N] [--quick]
//!     [--out PATH]
//! ```
//!
//! `--quick` divides the scale by 8 (the CI `bench-smoke` job). The
//! binary validates every reported number is finite and panics
//! otherwise, so a broken hot path cannot silently write garbage into
//! the trajectory.

use std::time::Instant;

use mpsm_bench::Contender;
use mpsm_core::histogram::RadixDomain;
use mpsm_core::merge::{merge_join, merge_join_linear};
use mpsm_core::partition::{range_partition, range_partition_naive};
use mpsm_core::sink::{ChecksumSink, CountSink, JoinSink};
use mpsm_core::sort::{three_phase_sort, three_phase_sort_naive};
use mpsm_core::splitter::Splitters;
use mpsm_core::worker::{run_parallel, WorkerPool};
use mpsm_core::Tuple;
use mpsm_workload::{fk_uniform, unique_keys};

struct Args {
    scale: usize,
    threads: usize,
    seed: u64,
    trials: usize,
    quick: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1 << 20,
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        seed: 42,
        trials: 3,
        quick: false,
        out: "BENCH_2.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    let num = |it: &mut dyn Iterator<Item = String>, flag: &str| -> usize {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| panic!("{flag} needs a number"))
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => args.scale = num(&mut it, "--scale"),
            "--threads" => args.threads = num(&mut it, "--threads"),
            "--seed" => args.seed = num(&mut it, "--seed") as u64,
            "--trials" => args.trials = num(&mut it, "--trials"),
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().unwrap_or_else(|| panic!("--out needs a path")),
            other => panic!(
                "unknown flag {other}; supported: --scale --threads --seed --trials --quick --out"
            ),
        }
    }
    // Applied after the loop so `--quick --scale N` and `--scale N
    // --quick` agree: quick mode always means an eighth of the scale.
    if args.quick {
        args.scale /= 8;
    }
    assert!(args.scale > 0 && args.threads > 0 && args.trials > 0);
    args
}

fn median(mut v: Vec<f64>) -> f64 {
    assert!(!v.is_empty());
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in measurements"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// A number destined for the JSON file: validated finite at creation.
fn finite(label: &str, v: f64) -> f64 {
    assert!(v.is_finite(), "{label} is not finite: {v}");
    v
}

fn fmt(v: f64) -> String {
    format!("{:.3}", v)
}

/// Median ns/tuple (normalized by `norm` tuples) of `trials` timed runs.
fn timed_ns_per_tuple(trials: usize, norm: usize, mut f: impl FnMut()) -> f64 {
    let samples: Vec<f64> = (0..trials)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e9 / norm as f64
        })
        .collect();
    median(samples)
}

fn contender_sweep(args: &Args, out: &mut Vec<String>) {
    let w = fk_uniform(args.scale, 1, args.seed);
    let contenders = [
        Contender::Mpsm,
        Contender::BMpsm,
        Contender::DMpsm,
        Contender::Radix,
        Contender::Wisconsin,
        Contender::ClassicSmj,
    ];
    let mut expected: Option<u64> = None;
    let mut rows = Vec::new();
    for &c in &contenders {
        let mut phase_samples: [Vec<f64>; 4] = Default::default();
        let mut wall_samples = Vec::new();
        for _ in 0..args.trials {
            let (count, stats) = c.run::<CountSink>(args.threads, &w.r, &w.s);
            // The perf harness doubles as a correctness tripwire: all
            // contenders must produce the same cardinality.
            match expected {
                None => expected = Some(count),
                Some(e) => assert_eq!(count, e, "{} disagrees on the join result", c.name()),
            }
            let p = stats.phases_ms();
            for (samples, ms) in phase_samples.iter_mut().zip(p) {
                samples.push(ms * 1e6 / args.scale as f64);
            }
            wall_samples.push(stats.wall_ms() * 1e6 / args.scale as f64);
        }
        let phases: Vec<String> =
            phase_samples.iter().map(|s| fmt(finite(c.name(), median(s.clone())))).collect();
        let total = fmt(finite(c.name(), median(wall_samples)));
        eprintln!("  {:<12} total {total} ns/tuple  phases [{}]", c.name(), phases.join(", "));
        rows.push(format!(
            "    {{\"algorithm\": \"{}\", \"phases_ns_per_tuple\": [{}], \"total_ns_per_tuple\": {total}}}",
            c.name(),
            phases.join(", ")
        ));
    }
    out.push(format!("  \"contenders\": [\n{}\n  ]", rows.join(",\n")));
}

fn ablation_pair(name: &str, optimized: f64, naive: f64, out: &mut Vec<String>) {
    let optimized = finite(name, optimized);
    let naive = finite(name, naive);
    let speedup = finite(name, naive / optimized);
    eprintln!(
        "  {name:<24} optimized {} naive {} speedup {}x",
        fmt(optimized),
        fmt(naive),
        fmt(speedup)
    );
    out.push(format!(
        "    \"{name}\": {{\"optimized_ns_per_tuple\": {}, \"naive_ns_per_tuple\": {}, \"speedup\": {}}}",
        fmt(optimized),
        fmt(naive),
        fmt(speedup)
    ));
}

fn ablations(args: &Args, out: &mut Vec<String>) {
    let n = args.scale;
    let data: Vec<Tuple> = unique_keys(n, args.seed)
        .into_iter()
        .enumerate()
        .map(|(i, k)| Tuple::new(k, i as u64))
        .collect();
    let mut rows = Vec::new();

    // Scatter: one worker, 256-way fan (the radix-join pass-1 shape).
    {
        let bits = 8u32;
        let parts = 1usize << bits;
        let domain = RadixDomain::from_range(0, (1 << 32) - 1, bits);
        let splitters = Splitters::from_assignment((0..parts as u32).collect(), parts);
        let chunks: Vec<&[Tuple]> = vec![&data];
        let opt = timed_ns_per_tuple(args.trials, n, || {
            std::hint::black_box(range_partition(&chunks, &domain, &splitters));
        });
        let naive = timed_ns_per_tuple(args.trials, n, || {
            std::hint::black_box(range_partition_naive(&chunks, &domain, &splitters));
        });
        ablation_pair("scatter_parts256", opt, naive, &mut rows);
    }

    // Sort: per-bucket finishing (+ recursion) vs. global insertion.
    {
        let opt = timed_ns_per_tuple(args.trials, n, || {
            let mut d = data.clone();
            three_phase_sort(&mut d);
            std::hint::black_box(d);
        });
        let naive = timed_ns_per_tuple(args.trials, n, || {
            let mut d = data.clone();
            three_phase_sort_naive(&mut d);
            std::hint::black_box(d);
        });
        ablation_pair("sort_three_phase", opt, naive, &mut rows);
    }

    // Merge: galloping vs. linear on the sparse-vs-dense shape.
    {
        let r: Vec<Tuple> = (0..(n as u64 / 1024)).map(|k| Tuple::new(k * 1024, k)).collect();
        let s: Vec<Tuple> = (0..n as u64).map(|k| Tuple::new(k, k)).collect();
        let opt = timed_ns_per_tuple(args.trials, n, || {
            let mut sink = ChecksumSink::default();
            merge_join(&r, &s, &mut sink);
            std::hint::black_box(sink.finish());
        });
        let naive = timed_ns_per_tuple(args.trials, n, || {
            let mut sink = ChecksumSink::default();
            merge_join_linear(&r, &s, &mut sink);
            std::hint::black_box(sink.finish());
        });
        ablation_pair("merge_sparse_vs_dense", opt, naive, &mut rows);
    }

    // Worker pool: 8 phases of small parallel sections at 4 workers.
    {
        let phases = 8usize;
        let threads = 4usize;
        let work = |w: usize| -> u64 { (w as u64).wrapping_mul(2654435761) };
        let opt = timed_ns_per_tuple(args.trials, phases * threads, || {
            let mut pool = WorkerPool::new(threads);
            for _ in 0..phases {
                std::hint::black_box(pool.run(work));
            }
        });
        let naive = timed_ns_per_tuple(args.trials, phases * threads, || {
            for _ in 0..phases {
                std::hint::black_box(run_parallel(threads, work));
            }
        });
        ablation_pair("worker_pool_8_phases", opt, naive, &mut rows);
    }

    out.push(format!("  \"ablations\": {{\n{}\n  }}", rows.join(",\n")));
}

fn main() {
    let args = parse_args();
    eprintln!(
        "bench_baseline: |R| = {}, threads = {}, seed = {}, trials = {}",
        args.scale, args.threads, args.seed, args.trials
    );

    let mut sections = Vec::new();
    sections.push(format!(
        "  \"config\": {{\"scale\": {}, \"threads\": {}, \"seed\": {}, \"trials\": {}, \"quick\": {}}}",
        args.scale, args.threads, args.seed, args.trials, args.quick
    ));
    sections.push("  \"unit\": \"median ns per |R|-tuple\"".to_string());
    eprintln!("contender sweep (fig. 12 shape, multiplicity 1):");
    contender_sweep(&args, &mut sections);
    eprintln!("hot-path ablations:");
    ablations(&args, &mut sections);

    let json = format!("{{\n{}\n}}\n", sections.join(",\n"));
    assert!(!json.to_ascii_lowercase().contains("nan"), "NaN leaked into the report");
    std::fs::write(&args.out, &json).expect("write report");
    eprintln!("wrote {}", args.out);
}
