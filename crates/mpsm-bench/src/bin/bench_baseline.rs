//! `bench_baseline` — the recorded perf trajectory of this repository.
//!
//! Runs the Figure-12-style contender sweep (all six join algorithms on
//! the uniform FK workload) plus the hot-path ablation pairs
//! (write-combining vs. naive scatter, per-bucket vs. global-insertion
//! sort, galloping vs. linear merge, persistent pool vs. per-phase
//! spawning) and writes the medians as JSON — `BENCH_2.json` at the
//! repo root is the committed first point of the trajectory; future
//! perf PRs are judged against it.
//!
//! ```text
//! cargo run --release -p mpsm-bench --bin bench_baseline
//!     [--scale N] [--threads N] [--seed N] [--trials N] [--quick]
//!     [--out PATH]
//! ```
//!
//! `--quick` divides the scale by 8 (the CI `bench-smoke` job). The
//! binary validates every reported number is finite and panics
//! otherwise, so a broken hot path cannot silently write garbage into
//! the trajectory.

use std::time::Instant;

use mpsm_bench::Contender;
use mpsm_core::histogram::RadixDomain;
use mpsm_core::merge::{merge_join, merge_join_linear};
use mpsm_core::partition::{range_partition, range_partition_naive};
use mpsm_core::sink::{ChecksumSink, CountSink, JoinSink};
use mpsm_core::sort::simd::simd_active;
use mpsm_core::sort::{
    three_phase_sort, three_phase_sort_naive, three_phase_sort_pr2_baseline,
    three_phase_sort_tuned, SortKernel, SortScratch, SortTuning,
};
use mpsm_core::splitter::Splitters;
use mpsm_core::worker::{run_parallel, WorkerPool};
use mpsm_core::Tuple;
use mpsm_workload::{fk_uniform, unique_keys};

struct Args {
    scale: usize,
    threads: usize,
    seed: u64,
    trials: usize,
    quick: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1 << 20,
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        seed: 42,
        trials: 3,
        quick: false,
        out: "BENCH_2.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    let num = |it: &mut dyn Iterator<Item = String>, flag: &str| -> usize {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| panic!("{flag} needs a number"))
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => args.scale = num(&mut it, "--scale"),
            "--threads" => args.threads = num(&mut it, "--threads"),
            "--seed" => args.seed = num(&mut it, "--seed") as u64,
            "--trials" => args.trials = num(&mut it, "--trials"),
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().unwrap_or_else(|| panic!("--out needs a path")),
            other => panic!(
                "unknown flag {other}; supported: --scale --threads --seed --trials --quick --out"
            ),
        }
    }
    // Applied after the loop so `--quick --scale N` and `--scale N
    // --quick` agree: quick mode always means an eighth of the scale.
    if args.quick {
        args.scale /= 8;
    }
    assert!(args.scale > 0 && args.threads > 0 && args.trials > 0);
    args
}

fn median(mut v: Vec<f64>) -> f64 {
    assert!(!v.is_empty());
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in measurements"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// A number destined for the JSON file: validated finite at creation.
fn finite(label: &str, v: f64) -> f64 {
    assert!(v.is_finite(), "{label} is not finite: {v}");
    v
}

fn fmt(v: f64) -> String {
    format!("{:.3}", v)
}

/// Median ns/tuple (normalized by `norm` tuples) of `trials` timed runs.
fn timed_ns_per_tuple(trials: usize, norm: usize, mut f: impl FnMut()) -> f64 {
    let samples: Vec<f64> = (0..trials)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e9 / norm as f64
        })
        .collect();
    median(samples)
}

fn contender_sweep(args: &Args, out: &mut Vec<String>) {
    let w = fk_uniform(args.scale, 1, args.seed);
    let contenders = [
        Contender::Mpsm,
        Contender::BMpsm,
        Contender::DMpsm,
        Contender::Radix,
        Contender::Wisconsin,
        Contender::ClassicSmj,
    ];
    let mut expected: Option<u64> = None;
    let mut rows = Vec::new();
    for &c in &contenders {
        let mut phase_samples: [Vec<f64>; 4] = Default::default();
        let mut wall_samples = Vec::new();
        for _ in 0..args.trials {
            let (count, stats) = c.run::<CountSink>(args.threads, &w.r, &w.s);
            // The perf harness doubles as a correctness tripwire: all
            // contenders must produce the same cardinality.
            match expected {
                None => expected = Some(count),
                Some(e) => assert_eq!(count, e, "{} disagrees on the join result", c.name()),
            }
            let p = stats.phases_ms();
            for (samples, ms) in phase_samples.iter_mut().zip(p) {
                samples.push(ms * 1e6 / args.scale as f64);
            }
            wall_samples.push(stats.wall_ms() * 1e6 / args.scale as f64);
        }
        let phases: Vec<String> =
            phase_samples.iter().map(|s| fmt(finite(c.name(), median(s.clone())))).collect();
        let total = fmt(finite(c.name(), median(wall_samples)));
        eprintln!("  {:<12} total {total} ns/tuple  phases [{}]", c.name(), phases.join(", "));
        rows.push(format!(
            "    {{\"algorithm\": \"{}\", \"phases_ns_per_tuple\": [{}], \"total_ns_per_tuple\": {total}}}",
            c.name(),
            phases.join(", ")
        ));
    }
    out.push(format!("  \"contenders\": [\n{}\n  ]", rows.join(",\n")));
}

fn ablation_pair(name: &str, optimized: f64, naive: f64, out: &mut Vec<String>) {
    let optimized = finite(name, optimized);
    let naive = finite(name, naive);
    let speedup = finite(name, naive / optimized);
    eprintln!(
        "  {name:<24} optimized {} naive {} speedup {}x",
        fmt(optimized),
        fmt(naive),
        fmt(speedup)
    );
    out.push(format!(
        "    \"{name}\": {{\"optimized_ns_per_tuple\": {}, \"naive_ns_per_tuple\": {}, \"speedup\": {}}}",
        fmt(optimized),
        fmt(naive),
        fmt(speedup)
    ));
}

fn ablations(args: &Args, out: &mut Vec<String>) {
    let n = args.scale;
    let data: Vec<Tuple> = unique_keys(n, args.seed)
        .into_iter()
        .enumerate()
        .map(|(i, k)| Tuple::new(k, i as u64))
        .collect();
    let mut rows = Vec::new();

    // Scatter: one worker, 256-way fan (the radix-join pass-1 shape).
    {
        let bits = 8u32;
        let parts = 1usize << bits;
        let domain = RadixDomain::from_range(0, (1 << 32) - 1, bits);
        let splitters = Splitters::from_assignment((0..parts as u32).collect(), parts);
        let chunks: Vec<&[Tuple]> = vec![&data];
        let opt = timed_ns_per_tuple(args.trials, n, || {
            std::hint::black_box(range_partition(&chunks, &domain, &splitters));
        });
        let naive = timed_ns_per_tuple(args.trials, n, || {
            std::hint::black_box(range_partition_naive(&chunks, &domain, &splitters));
        });
        ablation_pair("scatter_parts256", opt, naive, &mut rows);
    }

    // Sort: per-bucket finishing (+ recursion) vs. global insertion.
    {
        let opt = timed_ns_per_tuple(args.trials, n, || {
            let mut d = data.clone();
            three_phase_sort(&mut d);
            std::hint::black_box(d);
        });
        let naive = timed_ns_per_tuple(args.trials, n, || {
            let mut d = data.clone();
            three_phase_sort_naive(&mut d);
            std::hint::black_box(d);
        });
        ablation_pair("sort_three_phase", opt, naive, &mut rows);
    }

    // Merge: galloping vs. linear on the sparse-vs-dense shape.
    {
        let r: Vec<Tuple> = (0..(n as u64 / 1024)).map(|k| Tuple::new(k * 1024, k)).collect();
        let s: Vec<Tuple> = (0..n as u64).map(|k| Tuple::new(k, k)).collect();
        let opt = timed_ns_per_tuple(args.trials, n, || {
            let mut sink = ChecksumSink::default();
            merge_join(&r, &s, &mut sink);
            std::hint::black_box(sink.finish());
        });
        let naive = timed_ns_per_tuple(args.trials, n, || {
            let mut sink = ChecksumSink::default();
            merge_join_linear(&r, &s, &mut sink);
            std::hint::black_box(sink.finish());
        });
        ablation_pair("merge_sparse_vs_dense", opt, naive, &mut rows);
    }

    // Worker pool: 8 phases of small parallel sections at 4 workers.
    {
        let phases = 8usize;
        let threads = 4usize;
        let work = |w: usize| -> u64 { (w as u64).wrapping_mul(2654435761) };
        let opt = timed_ns_per_tuple(args.trials, phases * threads, || {
            let mut pool = WorkerPool::new(threads);
            for _ in 0..phases {
                std::hint::black_box(pool.run(work));
            }
        });
        let naive = timed_ns_per_tuple(args.trials, phases * threads, || {
            for _ in 0..phases {
                std::hint::black_box(run_parallel(threads, work));
            }
        });
        ablation_pair("worker_pool_8_phases", opt, naive, &mut rows);
    }

    out.push(format!("  \"ablations\": {{\n{}\n  }}", rows.join(",\n")));
}

/// Key distributions the kernel matrix sweeps (names are stable JSON
/// values).
fn matrix_dataset(dist: &str, n: usize, seed: u64) -> Vec<Tuple> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state
    };
    (0..n)
        .map(|i| {
            let key = match dist {
                // The repo's canonical join-key domain (`unique_keys`,
                // `fk_uniform`) is 32-bit; the headline A/B below runs
                // on the same shape.
                "uniform" => next() >> 32,
                // Exponentially spread magnitudes: a few radix buckets
                // hold most tuples at every level.
                "skew_zipf" => 1u64 << (next() % 60),
                // 1024 distinct keys: duplicate-heavy buckets finish in
                // long equal runs.
                "dup_heavy" => next() % 1024,
                other => panic!("unknown distribution {other}"),
            };
            Tuple::new(key, i as u64)
        })
        .collect()
}

/// The sort-kernel ablation matrix (kernel × block × distribution) plus
/// the headline tuned-vs-PR2 speedup the trajectory is judged on.
fn sort_kernel_matrix(args: &Args, out: &mut Vec<String>) {
    let kernels: Vec<SortKernel> =
        SortKernel::ALL.into_iter().filter(|k| *k != SortKernel::Simd || simd_active()).collect();
    let blocks = [16usize, 64, 128];
    let dists = ["uniform", "skew_zipf", "dup_heavy"];
    // Matrix cells run at a quarter scale — enough to recurse past the
    // cache-resident threshold, cheap enough for 27 cells in CI smoke.
    let cell_n = (args.scale / 4).max(1 << 12);
    let mut rows = Vec::new();
    let mut scratch = SortScratch::default();
    for dist in dists {
        let data = matrix_dataset(dist, cell_n, args.seed);
        for &kernel in &kernels {
            for block in blocks {
                let tuning = SortTuning::new(kernel, block);
                let ns = timed_ns_per_tuple(args.trials, cell_n, || {
                    let mut d = data.clone();
                    three_phase_sort_tuned(&mut d, &tuning, &mut scratch);
                    std::hint::black_box(d);
                });
                let ns = finite(kernel.name(), ns);
                eprintln!(
                    "  {:<20} block {block:>3}  {dist:<9} {} ns/tuple",
                    kernel.name(),
                    fmt(ns)
                );
                rows.push(format!(
                    "    {{\"kernel\": \"{}\", \"block\": {block}, \"distribution\": \"{dist}\", \
                     \"ns_per_tuple\": {}}}",
                    kernel.name(),
                    fmt(ns)
                ));
            }
        }
    }

    // Headline: the auto-tuned kernel vs. the frozen PR 2 sort at full
    // scale, interleaved A/B with alternating order, minimum of the
    // reps (on a shared box scheduling noise only ever adds time). The
    // sweep runs at the headline scale, not the canned
    // `AUTO_TUNE_TUPLES`: the block/prefetch trade-offs shift with the
    // working-set size, and this number is the one the trajectory is
    // judged on.
    let (tuned, sweep_ns) = SortTuning::sweep(args.scale)
        .into_iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("sweep times are finite"))
        .expect("sweep has candidates");
    eprintln!("  sweep winner at scale: {} ({} ns/tuple)", tuned.describe(), fmt(sweep_ns));
    let data = matrix_dataset("uniform", args.scale, args.seed);
    let reps = (2 * args.trials + 1).max(15);
    let (mut pr2_best, mut tuned_best) = (f64::INFINITY, f64::INFINITY);
    for rep in 0..reps {
        let mut one = |which: u8| {
            let mut d = data.clone();
            let start = Instant::now();
            if which == 0 {
                three_phase_sort_pr2_baseline(&mut d);
            } else {
                three_phase_sort_tuned(&mut d, &tuned, &mut scratch);
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / args.scale as f64;
            std::hint::black_box(d);
            ns
        };
        // Alternate which side runs first so neither systematically
        // pays the cold-cache rep.
        let order: [u8; 2] = if rep % 2 == 0 { [0, 1] } else { [1, 0] };
        for which in order {
            let ns = one(which);
            if which == 0 {
                pr2_best = pr2_best.min(ns);
            } else {
                tuned_best = tuned_best.min(ns);
            }
        }
    }
    let pr2_best = finite("sort_pr2_baseline", pr2_best);
    let tuned_best = finite("sort_tuned", tuned_best);
    let speedup = finite("sort_speedup", pr2_best / tuned_best);
    eprintln!(
        "  tuned_vs_pr2             tuned {} pr2 {} speedup {}x",
        fmt(tuned_best),
        fmt(pr2_best),
        fmt(speedup)
    );
    out.push(format!(
        "  \"sort_kernels\": {{\n    \"auto_tuned\": \"{}\", \"simd_active\": {},\n    \
         \"tuned_ns_per_tuple\": {}, \"pr2_baseline_ns_per_tuple\": {}, \"speedup_vs_pr2\": {},\n    \
         \"matrix\": [\n{}\n    ]\n  }}",
        tuned.describe(),
        simd_active(),
        fmt(tuned_best),
        fmt(pr2_best),
        fmt(speedup),
        rows.join(",\n")
    ));
}

fn main() {
    let args = parse_args();
    eprintln!(
        "bench_baseline: |R| = {}, threads = {}, seed = {}, trials = {}",
        args.scale, args.threads, args.seed, args.trials
    );

    let mut sections = Vec::new();
    sections.push(format!(
        "  \"config\": {{\"scale\": {}, \"threads\": {}, \"seed\": {}, \"trials\": {}, \"quick\": {}}}",
        args.scale, args.threads, args.seed, args.trials, args.quick
    ));
    sections.push("  \"unit\": \"median ns per |R|-tuple\"".to_string());
    eprintln!("contender sweep (fig. 12 shape, multiplicity 1):");
    contender_sweep(&args, &mut sections);
    eprintln!("hot-path ablations:");
    ablations(&args, &mut sections);
    eprintln!("sort-kernel matrix (kernel x block x distribution):");
    sort_kernel_matrix(&args, &mut sections);

    let json = format!("{{\n{}\n}}\n", sections.join(",\n"));
    assert!(!json.to_ascii_lowercase().contains("nan"), "NaN leaked into the report");
    std::fs::write(&args.out, &json).expect("write report");
    eprintln!("wrote {}", args.out);
}
