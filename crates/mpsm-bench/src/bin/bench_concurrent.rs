//! `bench_concurrent` — throughput of the multi-query scheduler vs.
//! serialized single-query execution.
//!
//! N closed-loop clients submit paper queries to one
//! [`mpsm_exec::Scheduler`] over a shared worker pool; the serialized
//! baseline runs the same queries one after another through the classic
//! [`mpsm_exec::paper_query`] path (which provisions fresh workers per
//! query — exactly what every concurrent caller would do without the
//! scheduler). `BENCH_3.json` at the repo root records the committed
//! trajectory point: aggregate queries/second at 1, 2, 4, and 8
//! clients, each with its speedup over the serialized baseline.
//!
//! ```text
//! cargo run --release -p mpsm-bench --bin bench_concurrent
//!     [--scale N] [--threads N] [--seed N] [--trials N]
//!     [--queries N] [--quick] [--out PATH]
//! ```
//!
//! `--queries` is per client; `--quick` divides the scale by 8. Every
//! reported number is validated finite, and every scheduled query's
//! result is compared against its serial twin, so a broken scheduler
//! cannot write a plausible-looking report.

use std::sync::Arc;
use std::time::Instant;

use mpsm_core::join::p_mpsm::PMpsmJoin;
use mpsm_core::{JoinConfig, Tuple};
use mpsm_exec::{paper_query, QuerySpec, Relation, Scheduler, SchedulerConfig};
use mpsm_workload::fk_uniform;

struct Args {
    scale: usize,
    threads: usize,
    seed: u64,
    trials: usize,
    queries: usize,
    quick: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        // Short operational-BI-sized queries: the regime where
        // multi-query scheduling (vs. per-query worker provisioning)
        // is the interesting design point. At much larger scales the
        // per-query setup cost this bench isolates amortizes away.
        scale: 1 << 14,
        threads: 4,
        seed: 42,
        trials: 5,
        queries: 8,
        quick: false,
        out: "BENCH_3.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    let num = |it: &mut dyn Iterator<Item = String>, flag: &str| -> usize {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| panic!("{flag} needs a number"))
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => args.scale = num(&mut it, "--scale"),
            "--threads" => args.threads = num(&mut it, "--threads"),
            "--seed" => args.seed = num(&mut it, "--seed") as u64,
            "--trials" => args.trials = num(&mut it, "--trials"),
            "--queries" => args.queries = num(&mut it, "--queries"),
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().unwrap_or_else(|| panic!("--out needs a path")),
            other => panic!(
                "unknown flag {other}; supported: --scale --threads --seed --trials --queries --quick --out"
            ),
        }
    }
    if args.quick {
        args.scale /= 8;
    }
    assert!(args.scale > 0 && args.threads > 0 && args.trials > 0 && args.queries > 0);
    args
}

fn median(mut v: Vec<f64>) -> f64 {
    assert!(!v.is_empty());
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in measurements"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

fn finite(label: &str, v: f64) -> f64 {
    assert!(v.is_finite(), "{label} is not finite: {v}");
    v
}

/// Query `i`'s selections — distinct per query so the clients are not
/// all running one cached plan shape.
fn preds(i: u64) -> (impl Fn(&Tuple) -> bool + Copy, impl Fn(&Tuple) -> bool + Copy) {
    let modulus = 2 + i % 4;
    (move |t: &Tuple| !t.key.is_multiple_of(modulus), move |t: &Tuple| t.key % 7 != i % 7)
}

fn main() {
    let args = parse_args();
    eprintln!(
        "bench_concurrent: |R| = {}, pool = {} workers, {} queries/client, seed = {}, trials = {}",
        args.scale, args.threads, args.queries, args.seed, args.trials
    );

    let w = fk_uniform(args.scale, 1, args.seed);
    let r = Arc::new(Relation::new("R", w.r.clone()));
    let s = Arc::new(Relation::new("S", w.s.clone()));
    let algo = PMpsmJoin::new(JoinConfig::with_threads(args.threads));

    // Expected results per query shape (correctness tripwire for every
    // measured run below).
    let expected: Vec<Option<u64>> = (0..args.queries as u64)
        .map(|i| {
            let (pr, ps) = preds(i);
            paper_query(&r, &s, pr, ps, &algo, args.threads).max_payload_sum
        })
        .collect();

    let client_counts = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    for &clients in &client_counts {
        let total_queries = clients * args.queries;

        // Serialized baseline: the same query mix, one at a time,
        // through the single-query API (fresh workers per query).
        let serial_qps = median(
            (0..args.trials)
                .map(|_| {
                    let start = Instant::now();
                    for q in 0..total_queries {
                        let i = (q % args.queries) as u64;
                        let (pr, ps) = preds(i);
                        let out = paper_query(&r, &s, pr, ps, &algo, args.threads);
                        assert_eq!(
                            out.max_payload_sum, expected[i as usize],
                            "serial query {i} disagrees"
                        );
                    }
                    total_queries as f64 / start.elapsed().as_secs_f64()
                })
                .collect(),
        );

        // Concurrent: `clients` closed-loop submitters over one shared
        // pool.
        let mut queue_waits_ms = Vec::new();
        let concurrent_qps = median(
            (0..args.trials)
                .map(|_| {
                    // More in-flight queries than pool widths buys no
                    // extra parallelism (the pool is the bottleneck) but
                    // does buy coordinator contention; cap the budget.
                    let scheduler = Scheduler::new(
                        SchedulerConfig::new(args.threads)
                            .max_in_flight(clients.min(args.threads))
                            .queue_capacity(total_queries),
                    );
                    let start = Instant::now();
                    std::thread::scope(|scope| {
                        for _ in 0..clients {
                            let scheduler = &scheduler;
                            let r = &r;
                            let s = &s;
                            let expected = &expected;
                            scope.spawn(move || {
                                for i in 0..args.queries as u64 {
                                    let (pr, ps) = preds(i);
                                    let ticket = scheduler
                                        .submit(QuerySpec::join(r, s).filter_r(pr).filter_s(ps))
                                        .expect("within admission budget");
                                    let out = ticket.wait().expect("scheduled query failed");
                                    assert_eq!(
                                        out.result.max_payload_sum, expected[i as usize],
                                        "scheduled query {i} disagrees"
                                    );
                                }
                            });
                        }
                    });
                    let elapsed = start.elapsed().as_secs_f64();
                    let m = scheduler.metrics();
                    assert_eq!(m.completed, total_queries as u64, "all queries must finish");
                    queue_waits_ms.push(m.queue_wait_micros as f64 / 1e3 / total_queries as f64);
                    total_queries as f64 / elapsed
                })
                .collect(),
        );

        let label = format!("clients={clients}");
        let serial_qps = finite(&label, serial_qps);
        let concurrent_qps = finite(&label, concurrent_qps);
        let speedup = finite(&label, concurrent_qps / serial_qps);
        let mean_queue_wait = finite(&label, median(queue_waits_ms));
        eprintln!(
            "  {clients} client(s): {concurrent_qps:7.2} q/s shared pool vs {serial_qps:7.2} q/s serialized \
             (speedup {speedup:.3}x, mean queue wait {mean_queue_wait:.3} ms)"
        );
        rows.push(format!(
            "    {{\"clients\": {clients}, \"queries\": {total_queries}, \
             \"concurrent_qps\": {concurrent_qps:.3}, \"serial_qps\": {serial_qps:.3}, \
             \"speedup_vs_serial\": {speedup:.3}, \"mean_queue_wait_ms\": {mean_queue_wait:.3}}}"
        ));
    }

    let json = format!(
        "{{\n  \"config\": {{\"scale\": {}, \"pool_threads\": {}, \"queries_per_client\": {}, \
         \"seed\": {}, \"trials\": {}, \"quick\": {}}},\n  \"unit\": \"aggregate queries per second \
         (median of trials)\",\n  \"throughput\": [\n{}\n  ]\n}}\n",
        args.scale,
        args.threads,
        args.queries,
        args.seed,
        args.trials,
        args.quick,
        rows.join(",\n")
    );
    assert!(!json.to_ascii_lowercase().contains("nan"), "NaN leaked into the report");
    std::fs::write(&args.out, &json).expect("write report");
    eprintln!("wrote {}", args.out);
}
