//! `bench_htap` — analytic query cost under live writes (the HTAP
//! read path over mutable relations).
//!
//! Two experiments against one [`mpsm_exec::Session`]:
//!
//! 1. **Delta-fraction sweep** (compaction held off): the same
//!    analytic join runs with the R-side delta log preloaded to 0%,
//!    5%, 10%, and 25% of the base cardinality. Reports analytic
//!    ns/tuple per point plus the slowdown relative to the clean
//!    (0%) run — the price of merging the snapshot's delta on the fly
//!    instead of reading pure cached base runs.
//! 2. **Sustained writes**: a writer thread appends batches as fast as
//!    it can while a closed-loop analytic client keeps querying, with
//!    the background compactor folding deltas past its threshold.
//!    Reports sustained write ops/s, analytic queries/s, and how many
//!    compactions landed.
//!
//! `BENCH_8.json` at the repo root records the committed trajectory
//! point.
//!
//! ```text
//! cargo run --release -p mpsm-bench --bin bench_htap
//!     [--scale N] [--threads N] [--queries N] [--seed N] [--trials N]
//!     [--write-batches N] [--quick] [--out PATH]
//! ```
//!
//! `--quick` divides the scale by 8. Every reported number is
//! validated finite, and every analytic result is checked against a
//! closed-form expectation — a snapshot that loses writes, tears, or
//! double-counts cannot write a plausible-looking report.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use mpsm_core::Tuple;
use mpsm_exec::{CompactionConfig, QuerySpec, Relation, RunCacheConfig, SchedulerConfig, Session};

struct Args {
    scale: usize,
    threads: usize,
    queries: usize,
    seed: u64,
    trials: usize,
    write_batches: usize,
    quick: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1 << 16,
        threads: 4,
        queries: 12,
        seed: 42,
        trials: 3,
        write_batches: 64,
        quick: false,
        out: "BENCH_8.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    let num = |it: &mut dyn Iterator<Item = String>, flag: &str| -> usize {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| panic!("{flag} needs a number"))
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => args.scale = num(&mut it, "--scale"),
            "--threads" => args.threads = num(&mut it, "--threads"),
            "--queries" => args.queries = num(&mut it, "--queries"),
            "--seed" => args.seed = num(&mut it, "--seed") as u64,
            "--trials" => args.trials = num(&mut it, "--trials"),
            "--write-batches" => args.write_batches = num(&mut it, "--write-batches"),
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().unwrap_or_else(|| panic!("--out needs a path")),
            other => panic!(
                "unknown flag {other}; supported: --scale --threads --queries --seed --trials \
                 --write-batches --quick --out"
            ),
        }
    }
    if args.quick {
        args.scale /= 8;
    }
    assert!(args.scale > 16 && args.threads > 0 && args.queries > 0);
    assert!(args.trials > 0 && args.write_batches > 0);
    args
}

fn median(mut v: Vec<f64>) -> f64 {
    assert!(!v.is_empty());
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in measurements"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

fn finite(label: &str, v: f64) -> f64 {
    assert!(v.is_finite(), "{label} is not finite: {v}");
    v
}

fn lcg(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 32
    }
}

/// Base relation: every key in `0..scale` exactly once (shuffled
/// insertion order), payload = key. Any pair joins 1:1 and
/// `max(payload + payload)` has the closed form `2 * (scale - 1)`.
fn relation(name: &str, scale: usize, seed: u64) -> Relation {
    let mut keys: Vec<u64> = (0..scale as u64).collect();
    let mut next = lcg(seed);
    for i in (1..keys.len()).rev() {
        keys.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    Relation::new(name, keys.into_iter().map(|k| Tuple::new(k, k)).collect())
}

/// Delta appends for the sweep: existing keys, payload = key — every
/// append joins but the closed-form max is unchanged, so a lost or
/// doubled delta shows up in the checked cardinality instead.
fn delta_batch(scale: usize, count: usize, seed: u64) -> Vec<Tuple> {
    let mut next = lcg(seed ^ 0xD0_17A);
    (0..count).map(|_| Tuple::new(next() % scale as u64, next() % scale as u64)).collect()
}

/// Experiment 1: analytic cost vs. preloaded delta fraction.
fn delta_sweep(args: &Args) -> Vec<String> {
    let fractions = [0usize, 5, 10, 25];
    let mut rows = Vec::new();
    let mut clean_ns = None;
    for &pct in &fractions {
        let delta_ops = args.scale * pct / 100;
        let mut ns_trials = Vec::new();
        for trial in 0..args.trials {
            // Fresh session per trial; compaction manual so the delta
            // stays exactly where the sweep put it.
            let session = Session::with_compaction(
                SchedulerConfig::new(args.threads),
                RunCacheConfig::default(),
                CompactionConfig::manual(),
            );
            let r = session.register(relation("R", args.scale, args.seed));
            let s = session.register(relation("S", args.scale, args.seed ^ 1));
            if delta_ops > 0 {
                session
                    .append("R", delta_batch(args.scale, delta_ops, args.seed + trial as u64))
                    .expect("R is registered");
            }
            assert_eq!(session.delta_len("R"), Some(delta_ops), "sweep delta held in place");
            // Warm round pays the compulsory cache misses; measured
            // rounds read cached base runs + the live delta merge.
            let warm = session.query(QuerySpec::join(&r, &s)).expect("warm query").result;
            assert_eq!(warm.max_payload_sum, Some(2 * (args.scale as u64 - 1)));
            assert_eq!(warm.r_selected, args.scale + delta_ops, "delta visible exactly once");
            let tuples_per_query = (2 * args.scale + delta_ops) as f64;
            let start = Instant::now();
            for q in 0..args.queries {
                let out = session.query(QuerySpec::join(&r, &s)).expect("analytic query").result;
                assert_eq!(
                    out.max_payload_sum,
                    Some(2 * (args.scale as u64 - 1)),
                    "trial {trial} query {q} disagrees with the closed form"
                );
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            ns_trials.push(elapsed / (args.queries as f64 * tuples_per_query));
        }
        let label = format!("delta={pct}%");
        let ns_per_tuple = finite(&label, median(ns_trials));
        let clean = *clean_ns.get_or_insert(ns_per_tuple);
        let vs_clean = finite(&label, ns_per_tuple / clean);
        eprintln!(
            "  delta {pct:2}% ({delta_ops:6} ops): {ns_per_tuple:7.2} ns/tuple \
             ({vs_clean:.3}x vs clean)"
        );
        rows.push(format!(
            "    {{\"delta_fraction_pct\": {pct}, \"delta_ops\": {delta_ops}, \
             \"analytic_ns_per_tuple\": {ns_per_tuple:.3}, \"vs_clean\": {vs_clean:.3}}}"
        ));
    }
    rows
}

/// Experiment 2: analytic throughput under a sustained write stream,
/// background compactor on.
fn sustained_writes(args: &Args) -> String {
    let batch = (args.scale / 64).max(16);
    let session = Session::with_compaction(
        SchedulerConfig::new(args.threads),
        RunCacheConfig::default(),
        CompactionConfig::default()
            .threshold(batch * 4)
            .interval(std::time::Duration::from_millis(5)),
    );
    let r = session.register(relation("R", args.scale, args.seed));
    let s = session.register(relation("S", args.scale, args.seed ^ 1));

    let writes_done = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let (analytic_qps, write_ops_per_sec, analytic_queries) = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let start = Instant::now();
            for b in 0..args.write_batches {
                session
                    .append("R", delta_batch(args.scale, batch, args.seed.wrapping_add(b as u64)))
                    .expect("R is registered");
                writes_done.fetch_add(batch as u64, Ordering::Relaxed);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            writes_done.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
        });
        let start = Instant::now();
        let mut queries = 0u64;
        // Closed loop until the writer finishes (minimum of `queries`
        // so the denominator is never zero).
        while queries < args.queries as u64 || !writer.is_finished() {
            let out = session.query(QuerySpec::join(&r, &s)).expect("analytic query").result;
            assert_eq!(
                out.max_payload_sum,
                Some(2 * (args.scale as u64 - 1)),
                "analytic answer drifted under writes"
            );
            // The snapshot sees the base plus some delta prefix —
            // never less than the base, never a torn partial batch
            // beyond what was appended when it was captured.
            assert!(out.r_selected >= args.scale, "snapshot lost base tuples");
            queries += 1;
            if queries >= 10_000 {
                stop.store(true, Ordering::Relaxed);
            }
        }
        let qps = queries as f64 / start.elapsed().as_secs_f64();
        (qps, writer.join().expect("writer panicked"), queries)
    });

    // Drain: fold whatever is left so the end state is checkable.
    while session.delta_len("R").unwrap_or(0) > 0 {
        session.compact("R");
    }
    let metrics = session.scheduler().metrics();
    let final_version = session.relation("R").expect("registered").version();
    let total_written = writes_done.load(Ordering::Relaxed);
    let expected_len = args.scale as u64 + total_written;
    assert_eq!(
        session.relation("R").expect("registered").len() as u64,
        expected_len,
        "compacted base must hold every written tuple exactly once"
    );
    assert!(metrics.compactions >= 1, "sustained writes never triggered compaction");
    let label = "sustained";
    let analytic_qps = finite(label, analytic_qps);
    let write_rate = finite(label, write_ops_per_sec);
    eprintln!(
        "  sustained: {analytic_qps:7.2} analytic q/s while absorbing {write_rate:9.0} write \
         ops/s ({} compactions, final base v{final_version}, {analytic_queries} queries)",
        metrics.compactions
    );
    format!(
        "  \"sustained\": {{\"analytic_qps\": {analytic_qps:.3}, \
         \"write_ops_per_sec\": {write_rate:.1}, \"writes_total\": {total_written}, \
         \"analytic_queries\": {analytic_queries}, \"compactions\": {}, \
         \"final_base_version\": {final_version}}}",
        metrics.compactions
    )
}

fn main() {
    let args = parse_args();
    eprintln!(
        "bench_htap: |R| = |S| = {}, pool = {} workers, {} queries/point, seed = {}, \
         trials = {}, write batches = {}",
        args.scale, args.threads, args.queries, args.seed, args.trials, args.write_batches
    );
    eprintln!("delta-fraction sweep (compaction manual):");
    let sweep_rows = delta_sweep(&args);
    eprintln!("sustained write stream (compactor on):");
    let sustained = sustained_writes(&args);

    let json = format!(
        "{{\n  \"config\": {{\"scale\": {}, \"pool_threads\": {}, \"queries_per_point\": {}, \
         \"seed\": {}, \"trials\": {}, \"write_batches\": {}, \"quick\": {}}},\n  \
         \"unit\": \"analytic ns per logical input tuple (median of trials); writes are delta \
         ops\",\n  \"delta_sweep\": [\n{}\n  ],\n{}\n}}\n",
        args.scale,
        args.threads,
        args.queries,
        args.seed,
        args.trials,
        args.write_batches,
        args.quick,
        sweep_rows.join(",\n"),
        sustained
    );
    assert!(!json.to_ascii_lowercase().contains("nan"), "NaN leaked into the report");
    std::fs::write(&args.out, &json).expect("write report");
    eprintln!("wrote {}", args.out);
}
