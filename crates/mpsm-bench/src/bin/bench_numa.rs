//! `bench_numa` — the NUMA commandments, measured in the *real* join
//! code path.
//!
//! Runs all three MPSM variants through [`mpsm_core::ExecContext`] on
//! the paper-machine topology (4 nodes × 8 cores, Figure 11) and
//! records each phase's local/remote × sequential/random access split
//! as the production execution path counted it — not a sidecar
//! simulation. `BENCH_5.json` at the repository root holds the
//! committed trajectory point.
//!
//! The report self-validates the commandments and panics (failing CI's
//! smoke step) if any regresses:
//!
//! * **C1** — no remote *random* accesses in any sort or partition
//!   phase of B-/P-MPSM (sorting happens in node-local runs; the
//!   scatter writes remotely only sequentially into disjoint windows);
//! * **C2** — B-MPSM's merge phase reads remote runs strictly
//!   sequentially; P-MPSM's interpolation entry probes are its only
//!   random remote reads and stay sub-linear;
//! * **C3** — zero synchronization events recorded inside any phase;
//! * **locality** — P-MPSM's private sort (phase 3) and merge
//!   (phase 4) are ≥ 95% node-local on the paper machine.
//!
//! ```text
//! cargo run --release -p mpsm-bench --bin bench_numa
//!     [--scale N] [--trials N] [--seed N] [--quick] [--out PATH]
//! ```
//!
//! `--quick` divides the scale by 8 and halves the trials (the CI smoke
//! configuration). Wall-clock numbers are medians over `--trials`.

use std::time::Instant;

use mpsm_core::join::b_mpsm::BMpsmJoin;
use mpsm_core::join::d_mpsm::{DMpsmConfig, DMpsmJoin};
use mpsm_core::join::p_mpsm::PMpsmJoin;
use mpsm_core::sink::CountSink;
use mpsm_core::{ExecContext, JoinAlgorithm, JoinConfig, Phase};
use mpsm_numa::{AccessCounters, AccessKind};
use mpsm_workload::fk_uniform;

struct Args {
    scale: usize,
    trials: usize,
    seed: u64,
    quick: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        // 128k ⋈ 128k over 32 simulated workers: large enough that
        // every worker's partition clears the cache-resident sort
        // threshold, small enough for the CI box.
        scale: 1 << 17,
        trials: 5,
        seed: 42,
        quick: false,
        out: "BENCH_5.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    let num = |it: &mut dyn Iterator<Item = String>, flag: &str| -> usize {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| panic!("{flag} needs a number"))
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => args.scale = num(&mut it, "--scale"),
            "--trials" => args.trials = num(&mut it, "--trials"),
            "--seed" => args.seed = num(&mut it, "--seed") as u64,
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().unwrap_or_else(|| panic!("--out needs a path")),
            other => {
                panic!("unknown flag {other}; supported: --scale --trials --seed --quick --out")
            }
        }
    }
    if args.quick {
        args.scale /= 8;
        args.trials = (args.trials / 2).max(2);
    }
    assert!(args.scale > 0 && args.trials > 0);
    args
}

fn median(mut v: Vec<f64>) -> f64 {
    assert!(!v.is_empty());
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in measurements"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

fn finite(label: &str, v: f64) -> f64 {
    assert!(v.is_finite(), "{label} is not finite: {v}");
    v
}

/// One phase's audited split, as JSON.
fn phase_json(variant: &str, phase: Phase, c: &AccessCounters) -> String {
    let label = format!("{variant} phase {}", phase as usize + 1);
    let local = 1.0 - c.remote_fraction();
    format!(
        "      {{\"phase\": {}, \"total\": {}, \"local_seq\": {}, \"local_rand\": {}, \
         \"remote_seq\": {}, \"remote_rand\": {}, \"local_fraction\": {:.6}, \
         \"random_fraction\": {:.6}, \"syncs\": {}}}",
        phase as usize + 1,
        c.total_accesses(),
        c.accesses(AccessKind::LocalSeq),
        c.accesses(AccessKind::LocalRand),
        c.accesses(AccessKind::RemoteSeq),
        c.accesses(AccessKind::RemoteRand),
        finite(&label, local),
        finite(&label, c.random_fraction()),
        c.syncs(),
    )
}

struct VariantReport {
    name: &'static str,
    wall_ms: f64,
    count: u64,
    phases: Vec<(Phase, AccessCounters)>,
}

impl VariantReport {
    fn phase(&self, phase: Phase) -> &AccessCounters {
        &self.phases.iter().find(|(p, _)| *p == phase).expect("phase recorded").1
    }

    fn json(&self) -> String {
        let phases: Vec<String> =
            self.phases.iter().map(|(p, c)| phase_json(self.name, *p, c)).collect();
        format!(
            "    {{\"name\": \"{}\", \"wall_ms_median\": {:.3}, \"join_count\": {},\n    \
             \"phases\": [\n{}\n    ]}}",
            self.name,
            self.wall_ms,
            self.count,
            phases.join(",\n")
        )
    }
}

/// Run one variant `trials` times on a fresh paper-machine context,
/// returning median wall time and the last trial's phase counters
/// (deterministic workload → identical counters every trial, which the
/// run asserts).
fn run_variant(
    name: &'static str,
    trials: usize,
    join: &dyn Fn(&ExecContext) -> (u64, f64),
) -> VariantReport {
    let mut walls = Vec::with_capacity(trials);
    let mut count = 0;
    let mut phases: Vec<(Phase, AccessCounters)> = Vec::new();
    for trial in 0..trials {
        let cx = ExecContext::paper_machine();
        let (c, wall_ms) = join(&cx);
        let snapshot: Vec<(Phase, AccessCounters)> =
            Phase::ALL.iter().map(|&p| (p, cx.phase_counters(p))).collect();
        if trial == 0 {
            count = c;
            phases = snapshot;
        } else {
            assert_eq!(c, count, "{name}: join cardinality changed between trials");
            assert_eq!(phases, snapshot, "{name}: access audit changed between trials");
        }
        walls.push(wall_ms);
    }
    VariantReport { name, wall_ms: finite(name, median(walls)), count, phases }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "bench_numa: |R| = |S| = {}, topology 4 nodes x 8 cores (32 workers), seed = {}, \
         trials = {}",
        args.scale, args.seed, args.trials
    );

    let w = fk_uniform(args.scale, 1, args.seed);
    let threads = ExecContext::paper_machine().threads();
    let b = BMpsmJoin::new(JoinConfig::with_threads(threads));
    let p = PMpsmJoin::new(JoinConfig::with_threads(threads));
    let d = DMpsmJoin::new(DMpsmConfig::with_join(JoinConfig::with_threads(threads)));

    let reports = vec![
        run_variant("B-MPSM", args.trials, &|cx| {
            let start = Instant::now();
            let (count, _stats) = b.join_in::<CountSink>(cx, &w.r, &w.s);
            (count, start.elapsed().as_secs_f64() * 1e3)
        }),
        run_variant("P-MPSM", args.trials, &|cx| {
            let start = Instant::now();
            let (count, _stats) = p.join_in::<CountSink>(cx, &w.r, &w.s);
            (count, start.elapsed().as_secs_f64() * 1e3)
        }),
        run_variant("D-MPSM", args.trials, &|cx| {
            let start = Instant::now();
            let (count, _stats) = d.join_in::<CountSink>(cx, &w.r, &w.s);
            (count, start.elapsed().as_secs_f64() * 1e3)
        }),
    ];

    // ---- Correctness tripwire: all variants agree. ----
    let expected = reports[0].count;
    for rep in &reports {
        assert_eq!(rep.count, expected, "{} disagrees on the join cardinality", rep.name);
    }

    // ---- The commandments, asserted on the audited real path. ----
    let b_rep = &reports[0];
    let p_rep = &reports[1];
    for rep in [b_rep, p_rep] {
        // C3: nothing in any phase synchronizes on shared state.
        for (phase, c) in &rep.phases {
            assert_eq!(c.syncs(), 0, "{}: syncs in phase {:?} (C3)", rep.name, phase);
        }
        // C1: sort/partition phases never touch remote memory randomly.
        for phase in [Phase::One, Phase::Two, Phase::Three] {
            assert_eq!(
                rep.phase(phase).accesses(AccessKind::RemoteRand),
                0,
                "{}: remote random access in phase {:?} (C1)",
                rep.name,
                phase
            );
        }
    }
    // C2 (B-MPSM): the merge phase scans every remote run, but only
    // sequentially.
    let b_merge = b_rep.phase(Phase::Three);
    assert!(b_merge.accesses(AccessKind::RemoteSeq) > 0, "B-MPSM merge must scan remote runs");
    assert_eq!(b_merge.accesses(AccessKind::RemoteRand), 0, "B-MPSM remote reads sequential (C2)");

    // Locality (P-MPSM): private sort and merge ≥ 95% node-local.
    let p_sort_local = 1.0 - p_rep.phase(Phase::Three).remote_fraction();
    let p_merge_local = 1.0 - p_rep.phase(Phase::Four).remote_fraction();
    assert!(p_sort_local >= 0.95, "P-MPSM sort locality regressed: {p_sort_local:.4} < 0.95");
    assert!(p_merge_local >= 0.95, "P-MPSM merge locality regressed: {p_merge_local:.4} < 0.95");
    // P-MPSM's only random remote reads are the interpolation entry
    // probes: T² pairs × (log2|S_j| + 1) probes is a hard ceiling.
    let probe_ceiling = {
        let t = threads as u64;
        let run_len = (args.scale as u64 / t).max(2);
        t * t * (run_len.ilog2() as u64 + 1)
    };
    let p_probes = p_rep.phase(Phase::Four).accesses(AccessKind::RemoteRand);
    assert!(
        p_probes <= probe_ceiling,
        "P-MPSM merge random remote reads exceed the entry-probe ceiling: {p_probes} > {probe_ceiling}"
    );

    for rep in &reports {
        let merged = AccessCounters::merged(rep.phases.iter().map(|(_, c)| c));
        // The merge/join phase per the stats table: phase 3 for B-MPSM,
        // phase 4 for P-/D-MPSM.
        let merge = if rep.name == "B-MPSM" { Phase::Three } else { Phase::Four };
        eprintln!(
            "  {:7}: {:9.2} ms median, {} results, {:.1}% local overall, merge phase {:.1}% local",
            rep.name,
            rep.wall_ms,
            rep.count,
            (1.0 - merged.remote_fraction()) * 100.0,
            (1.0 - rep.phase(merge).remote_fraction()) * 100.0,
        );
    }

    let variants: Vec<String> = reports.iter().map(|r| r.json()).collect();
    let json = format!(
        "{{\n  \"config\": {{\"scale\": {}, \"seed\": {}, \"trials\": {}, \"quick\": {}}},\n  \
         \"topology\": {{\"nodes\": 4, \"cores_per_node\": 8, \"workers\": {}}},\n  \
         \"model\": \"tuple-granular access audit of the real join path (see mpsm_core::context)\",\n  \
         \"checks\": {{\"c1_no_remote_random_in_sort_phases\": true, \
         \"c2_bmpsm_remote_reads_sequential\": true, \"c3_zero_syncs\": true, \
         \"pmpsm_sort_local_fraction\": {:.6}, \"pmpsm_merge_local_fraction\": {:.6}, \
         \"locality_threshold\": 0.95}},\n  \"variants\": [\n{}\n  ]\n}}\n",
        args.scale,
        args.seed,
        args.trials,
        args.quick,
        threads,
        p_sort_local,
        p_merge_local,
        variants.join(",\n")
    );
    assert!(!json.to_ascii_lowercase().contains("nan"), "NaN leaked into the report");
    std::fs::write(&args.out, &json).expect("write report");
    eprintln!("wrote {}", args.out);
}
