//! `bench_run_cache` — repeated-query throughput with the sorted-run
//! cache vs. uncached execution.
//!
//! Closed-loop clients draw join pairs from a Zipf distribution over a
//! handful of registered relations and submit them to a
//! [`mpsm_exec::Session`]. The cached session serves repeat inputs
//! from its run cache (skipping partition + sort; phases 1–3 of the
//! join collapse to zero), the baseline session runs every query from
//! scratch. `BENCH_6.json` at the repo root records the committed
//! trajectory point: cached vs uncached queries/second plus the
//! cache's hit/miss/eviction counters.
//!
//! ```text
//! cargo run --release -p mpsm-bench --bin bench_run_cache
//!     [--scale N] [--relations N] [--threads N] [--queries N]
//!     [--theta CENTI] [--seed N] [--trials N] [--quick] [--out PATH]
//! ```
//!
//! `--queries` is per client; `--theta` is the Zipf exponent in
//! hundredths (80 = 0.8); `--quick` divides the scale by 8. Every
//! reported number is validated finite, and every query's result is
//! checked against a closed-form expectation, so a cache serving stale
//! or misattributed runs cannot write a plausible-looking report.

use std::sync::Arc;
use std::time::Instant;

use mpsm_core::Tuple;
use mpsm_exec::{QuerySpec, Relation, SchedulerConfig, Session};

struct Args {
    scale: usize,
    relations: usize,
    threads: usize,
    queries: usize,
    /// Zipf exponent in hundredths (80 → 0.8).
    theta: usize,
    seed: u64,
    trials: usize,
    quick: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1 << 16,
        relations: 4,
        threads: 4,
        queries: 24,
        theta: 80,
        seed: 42,
        trials: 3,
        quick: false,
        out: "BENCH_6.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    let num = |it: &mut dyn Iterator<Item = String>, flag: &str| -> usize {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| panic!("{flag} needs a number"))
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => args.scale = num(&mut it, "--scale"),
            "--relations" => args.relations = num(&mut it, "--relations"),
            "--threads" => args.threads = num(&mut it, "--threads"),
            "--queries" => args.queries = num(&mut it, "--queries"),
            "--theta" => args.theta = num(&mut it, "--theta"),
            "--seed" => args.seed = num(&mut it, "--seed") as u64,
            "--trials" => args.trials = num(&mut it, "--trials"),
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().unwrap_or_else(|| panic!("--out needs a path")),
            other => panic!(
                "unknown flag {other}; supported: --scale --relations --threads --queries \
                 --theta --seed --trials --quick --out"
            ),
        }
    }
    if args.quick {
        args.scale /= 8;
    }
    assert!(args.scale > 1 && args.relations > 0 && args.threads > 0);
    assert!(args.queries > 0 && args.trials > 0);
    args
}

fn median(mut v: Vec<f64>) -> f64 {
    assert!(!v.is_empty());
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in measurements"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

fn finite(label: &str, v: f64) -> f64 {
    assert!(v.is_finite(), "{label} is not finite: {v}");
    v
}

fn lcg(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 32
    }
}

/// Inverse-CDF Zipf sampler over `n` ranks with exponent `theta`:
/// rank 0 is the hottest relation, matching the operational-BI
/// pattern of a few hot tables joined over and over.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, theta: f64) -> Self {
        let weights: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cdf }
    }

    fn draw(&self, next: &mut impl FnMut() -> u64) -> usize {
        let u = next() as f64 / (u32::MAX as f64 + 1.0);
        self.cdf.iter().position(|&c| u < c).unwrap_or(self.cdf.len() - 1)
    }
}

/// Relation `t`: every key in `0..scale` exactly once (insertion order
/// shuffled per relation, Fisher–Yates), payload `key + t` — so any
/// pair joins 1:1 and `max(payload + payload)` has the closed form
/// checked below.
fn relation(t: usize, scale: usize, seed: u64) -> Relation {
    let mut keys: Vec<u64> = (0..scale as u64).collect();
    let mut next = lcg(seed ^ (t as u64).wrapping_mul(0x517c_c1b7_2722_0a95));
    for i in (1..keys.len()).rev() {
        keys.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    let tuples = keys.into_iter().map(|k| Tuple::new(k, k + t as u64)).collect();
    Relation::new(format!("T{t}"), tuples)
}

fn expected_max(scale: usize, i: usize, j: usize) -> Option<u64> {
    Some(2 * (scale as u64 - 1) + i as u64 + j as u64)
}

/// The query mix: `clients` closed-loop submitters, each drawing
/// `queries` Zipf-distributed (R, S) pairs. Deterministic per seed so
/// the cached and uncached sessions run the identical stream.
fn run_mix(
    session: &Session,
    rels: &[Arc<Relation>],
    zipf: &Zipf,
    clients: usize,
    queries: usize,
    scale: usize,
    seed: u64,
) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let rels = &rels;
            scope.spawn(move || {
                let mut next = lcg(seed ^ (client as u64).wrapping_mul(0x9E37_79B9));
                for q in 0..queries {
                    let (i, j) = (zipf.draw(&mut next), zipf.draw(&mut next));
                    let out = session
                        .query(QuerySpec::join(&rels[i], &rels[j]))
                        .unwrap_or_else(|e| panic!("client {client} query {q}: {e}"));
                    assert_eq!(
                        out.result.max_payload_sum,
                        expected_max(scale, i, j),
                        "client {client} query {q} (T{i} ⋈ T{j}) disagrees"
                    );
                }
            });
        }
    });
    (clients * queries) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let args = parse_args();
    let theta = args.theta as f64 / 100.0;
    eprintln!(
        "bench_run_cache: |T| = {} × {} relations, pool = {} workers, {} queries/client, \
         zipf θ = {theta}, seed = {}, trials = {}",
        args.scale, args.relations, args.threads, args.queries, args.seed, args.trials
    );
    let zipf = Zipf::new(args.relations, theta);

    let client_counts = [1usize, 4];
    let mut rows = Vec::new();
    for &clients in &client_counts {
        let total_queries = clients * args.queries;
        let mut cached_qps_trials = Vec::new();
        let mut uncached_qps_trials = Vec::new();
        let mut last_stats = None;
        for _ in 0..args.trials {
            // Fresh sessions per trial: each cached trial pays its
            // compulsory misses, so the speedup below includes them.
            let uncached = Session::uncached(
                SchedulerConfig::new(args.threads)
                    .max_in_flight(clients.min(args.threads))
                    .queue_capacity(total_queries),
            );
            let urels: Vec<_> = (0..args.relations)
                .map(|t| uncached.register(relation(t, args.scale, args.seed)))
                .collect();
            uncached_qps_trials.push(run_mix(
                &uncached,
                &urels,
                &zipf,
                clients,
                args.queries,
                args.scale,
                args.seed,
            ));

            let cached = Session::new(
                SchedulerConfig::new(args.threads)
                    .max_in_flight(clients.min(args.threads))
                    .queue_capacity(total_queries),
            );
            let crels: Vec<_> = (0..args.relations)
                .map(|t| cached.register(relation(t, args.scale, args.seed)))
                .collect();
            cached_qps_trials.push(run_mix(
                &cached,
                &crels,
                &zipf,
                clients,
                args.queries,
                args.scale,
                args.seed,
            ));

            // Tripwires: the cache actually engaged, and EXPLAIN says so.
            let stats = cached.run_cache().expect("cached session").stats();
            assert!(stats.hits > 0, "no cache hits in a repeated-query mix: {stats:?}");
            assert_eq!(
                stats.hits + stats.misses,
                2 * total_queries as u64,
                "every query side consults the cache"
            );
            let explain = cached
                .query(QuerySpec::join(&crels[0], &crels[0]))
                .expect("explain probe")
                .result
                .plan
                .explain();
            assert!(explain.contains("RunCache ["), "EXPLAIN lacks the cache node:\n{explain}");
            last_stats = Some(stats);
        }

        let label = format!("clients={clients}");
        let cached_qps = finite(&label, median(cached_qps_trials));
        let uncached_qps = finite(&label, median(uncached_qps_trials));
        let speedup = finite(&label, cached_qps / uncached_qps);
        let stats = last_stats.expect("at least one trial");
        let hit_rate = finite(&label, stats.hits as f64 / (stats.hits + stats.misses) as f64);
        eprintln!(
            "  {clients} client(s): {cached_qps:7.2} q/s cached vs {uncached_qps:7.2} q/s uncached \
             (speedup {speedup:.3}x; {} hits / {} misses / {} evictions)",
            stats.hits, stats.misses, stats.evictions
        );
        rows.push(format!(
            "    {{\"clients\": {clients}, \"queries\": {total_queries}, \
             \"cached_qps\": {cached_qps:.3}, \"uncached_qps\": {uncached_qps:.3}, \
             \"speedup_vs_uncached\": {speedup:.3}, \"hits\": {}, \"misses\": {}, \
             \"evictions\": {}, \"hit_rate\": {hit_rate:.3}}}",
            stats.hits, stats.misses, stats.evictions
        ));
    }

    let json = format!(
        "{{\n  \"config\": {{\"scale\": {}, \"relations\": {}, \"pool_threads\": {}, \
         \"queries_per_client\": {}, \"zipf_theta\": {theta}, \"seed\": {}, \"trials\": {}, \
         \"quick\": {}}},\n  \"unit\": \"queries per second (median of trials; cached pays its \
         compulsory misses)\",\n  \"throughput\": [\n{}\n  ]\n}}\n",
        args.scale,
        args.relations,
        args.threads,
        args.queries,
        args.seed,
        args.trials,
        args.quick,
        rows.join(",\n")
    );
    assert!(!json.to_ascii_lowercase().contains("nan"), "NaN leaked into the report");
    std::fs::write(&args.out, &json).expect("write report");
    eprintln!("wrote {}", args.out);
}
