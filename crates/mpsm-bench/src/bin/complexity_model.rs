//! Experiment E9 — §2.2 / §3.2: the complexity model, predicted vs.
//! measured.
//!
//! Per-worker cost approximations from the paper:
//!
//! ```text
//! B-MPSM: |S|/T·log(|S|/T) + |R|/T·log(|R|/T) + |R| + |S|
//! P-MPSM: |S|/T·log(|S|/T) + |R|/T + |R|/T·log(|R|/T) + |R| + |S|/T
//! ```
//!
//! Range partitioning pays off iff `|R|/T ≤ |S| − |S|/T` — for `T ≥ 2`
//! and `|R| ≤ |S|` always. This binary prints the predicted per-worker
//! cost ratio next to measured wall times over a thread sweep, plus the
//! classic global-merge sort-merge join to show what skipping the merge
//! buys.

use mpsm_baselines::ClassicSortMergeJoin;
use mpsm_bench::table::fmt_ms;
use mpsm_bench::{parse_args, Contender, TableBuilder};
use mpsm_core::join::{JoinAlgorithm, JoinConfig};
use mpsm_core::sink::MaxAggSink;
use mpsm_workload::fk_uniform;

fn log2(x: f64) -> f64 {
    if x > 1.0 {
        x.log2()
    } else {
        0.0
    }
}

/// Paper §2.2: per-worker cost of B-MPSM.
fn b_mpsm_cost(r: f64, s: f64, t: f64) -> f64 {
    s / t * log2(s / t) + r / t * log2(r / t) + r + s
}

/// Paper §3.2: per-worker cost of P-MPSM.
fn p_mpsm_cost(r: f64, s: f64, t: f64) -> f64 {
    s / t * log2(s / t) + r / t + r / t * log2(r / t) + r + s / t
}

fn main() {
    let args = parse_args();
    let w = fk_uniform(args.scale, 4, args.seed);
    let (r, s) = (w.r.len() as f64, w.s.len() as f64);
    println!(
        "§2.2 / §3.2 — complexity model vs. measurement (|R| = {}, |S| = {})\n",
        w.r.len(),
        w.s.len()
    );

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut table = TableBuilder::new(&[
        "T",
        "model B/P ratio",
        "B-MPSM ms",
        "P-MPSM ms",
        "measured B/P",
        "ClassicSMJ ms",
        "ClassicSMJ(par-merge) ms",
    ]);
    for &t in &[1usize, 2, 4, 8, cores.min(16), cores] {
        let model_ratio = b_mpsm_cost(r, s, t as f64) / p_mpsm_cost(r, s, t as f64);
        let (_, b_stats) = Contender::BMpsm.run::<MaxAggSink>(t, &w.r, &w.s);
        let (_, p_stats) = Contender::Mpsm.run::<MaxAggSink>(t, &w.r, &w.s);
        let (_, c_stats) = Contender::ClassicSmj.run::<MaxAggSink>(t, &w.r, &w.s);
        let steel =
            ClassicSortMergeJoin::new(JoinConfig::with_threads(t)).with_parallel_merge(true);
        let (_, steel_stats) = steel.join_with_sink::<MaxAggSink>(&w.r, &w.s);
        table.row(&[
            t.to_string(),
            format!("{model_ratio:.2}x"),
            fmt_ms(b_stats.wall_ms()),
            fmt_ms(p_stats.wall_ms()),
            format!("{:.2}x", b_stats.wall_ms() / p_stats.wall_ms()),
            fmt_ms(c_stats.wall_ms()),
            fmt_ms(steel_stats.wall_ms()),
        ]);
    }
    table.print();
    println!(
        "\n(model: partitioning pays off for T >= 2 when |R| <= |S|. The classic SMJ's \
         sequential merge caps its scaling; even the steel-manned parallel merge \
         keeps it behind MPSM — the extra full materialization never pays.)"
    );
}
