//! Experiment E10 — §3.1 / Figure 4: D-MPSM under a RAM budget.
//!
//! Sweeps the buffer-pool budget and reports the resident-page
//! high-water mark, hit/miss/prefetch/release counters, and the
//! simulated I/O time on the paper's disk-array profile — demonstrating
//! that the windowed, page-index-driven processing keeps the join's RAM
//! footprint bounded by the window, not by the data volume.

use mpsm_bench::table::fmt_ms;
use mpsm_bench::{parse_args, TableBuilder};
use mpsm_core::join::d_mpsm::{DMpsmConfig, DMpsmJoin};
use mpsm_core::join::JoinConfig;
use mpsm_core::sink::MaxAggSink;
use mpsm_storage::MemBackend;
use mpsm_workload::fk_uniform;

fn main() {
    let args = parse_args();
    let w = fk_uniform(args.scale, 4, args.seed);
    let page_records = 4096u32;
    let total_pages = ((w.r.len() + w.s.len()) as u32).div_ceil(page_records);
    println!(
        "§3.1 — D-MPSM budget sweep (|R| = {}, m = 4, {} pages of {} tuples, threads = {})\n",
        args.scale, total_pages, page_records, args.threads
    );

    let mut table = TableBuilder::new(&[
        "budget pages",
        "hwm pages",
        "hits",
        "misses",
        "prefetches",
        "releases",
        "join ms",
        "sim I/O ms",
    ]);
    let mut reference = None;
    for budget in [16usize, 64, 256, 1024] {
        let mut cfg = DMpsmConfig::with_join(JoinConfig::with_threads(args.threads));
        cfg.page_records = page_records;
        cfg.budget_pages = budget;
        let join = DMpsmJoin::new(cfg);
        let (max, stats, report) = join
            .join_on::<MemBackend, MaxAggSink>(MemBackend::disk_array(), &w.r, &w.s)
            .expect("in-memory backend cannot fail");
        match &reference {
            None => reference = Some(max),
            Some(r) => assert_eq!(*r, max, "budget must not change the result"),
        }
        table.row(&[
            budget.to_string(),
            report.buffer.high_water_pages.to_string(),
            report.buffer.hits.to_string(),
            report.buffer.misses.to_string(),
            report.buffer.prefetches.to_string(),
            report.buffer.releases.to_string(),
            fmt_ms(stats.wall_ms()),
            fmt_ms(report.simulated_io_ms),
        ]);
    }
    table.print();
    println!(
        "\n(Figure 4: only the active window is resident — the high-water mark tracks the \
         budget/window, not the {total_pages}-page data volume)"
    );
}
