//! Experiment E1 — Figure 1: NUMA-affine vs. NUMA-agnostic processing.
//!
//! Reproduces the three micro-benchmarks that motivate the paper's
//! commandments. Penalties that need physical NUMA distance (remote
//! memory) are *modeled* via the calibrated cost model; the
//! synchronization experiment (2) and the NUMA-affine variants are also
//! *measured* for real. See `mpsm-numa::microbench`.
//!
//! Paper reference values (32 workers × 50M tuples):
//!   (1) sort          12 946 ms local     vs. 41 734 ms global   (3.22×)
//!   (2) partitioning   7 440 ms prefix    vs. 22 756 ms sync     (3.06×)
//!   (3) merge join       837 ms local     vs.  1 000 ms remote   (1.19×)

use mpsm_bench::{parse_args, TableBuilder};
use mpsm_numa::microbench::{figure1, MicrobenchConfig};
use mpsm_numa::Topology;

fn main() {
    let args = parse_args();
    let workers = args.threads;
    let cfg = MicrobenchConfig {
        topology: Topology::paper_machine(),
        workers,
        tuples_per_worker: (args.scale / workers).max(1 << 12),
        seed: args.seed,
        ..MicrobenchConfig::default()
    };
    println!(
        "Figure 1 — NUMA-affine vs. NUMA-agnostic ({} workers × {} tuples, paper topology 4×8×2)\n",
        cfg.workers, cfg.tuples_per_worker
    );

    let paper: &[(&str, f64, f64)] = &[
        ("(1) sort", 12_946.0, 41_734.0),
        ("(2) partitioning", 7_440.0, 22_756.0),
        ("(3) merge join", 837.0, 1_000.0),
    ];

    let results = figure1(&cfg);
    let mut table = TableBuilder::new(&[
        "experiment",
        "variant",
        "modeled ms",
        "measured ms",
        "modeled ratio",
        "paper ratio",
    ]);
    for (res, &(_, p_aff, p_agn)) in results.iter().zip(paper) {
        let paper_ratio = p_agn / p_aff;
        for (variant, is_affine) in [(&res.affine, true), (&res.agnostic, false)] {
            table.row(&[
                if is_affine { res.name.to_string() } else { String::new() },
                variant.label.to_string(),
                format!("{:.1}", variant.modeled_ms),
                variant.measured_ms.map_or("-".into(), |m| format!("{m:.1}")),
                if is_affine { String::new() } else { format!("{:.2}x", res.modeled_ratio()) },
                if is_affine { String::new() } else { format!("{paper_ratio:.2}x") },
            ]);
        }
    }
    table.print();

    println!("\nAccess-pattern summary (why the agnostic variants lose):");
    for res in &results {
        println!(
            "  {:<18} agnostic: {:>5.1}% remote, {:>5.1}% random, {} sync events",
            res.name,
            res.agnostic.counters.remote_fraction() * 100.0,
            res.agnostic.counters.random_fraction() * 100.0,
            res.agnostic.counters.syncs()
        );
    }
}
