//! Experiment E11 — Figure 2: access-pattern audit of the three join
//! families.
//!
//! Figure 2 of the paper is a qualitative diagram: Wisconsin builds and
//! probes a global hash table randomly across NUMA partitions, the
//! radix join scatters both inputs across partitions, MPSM writes only
//! locally and reads remote runs sequentially. This binary makes the
//! diagram quantitative: per-worker access counts by category
//! (local/remote × sequential/random) and synchronization events,
//! priced with the calibrated cost model (including interconnect
//! saturation on random remote traffic) — see `mpsm_bench::audit`.

use mpsm_bench::audit::{modeled_ms, profile};
use mpsm_bench::{parse_args, Contender, TableBuilder};
use mpsm_numa::{AccessKind, Topology};

fn main() {
    let args = parse_args();
    let topo = Topology::paper_machine();
    let t = 32u64; // audit at the paper's parallelism on the paper machine
    let r = args.scale as u64;
    let s = r * 4;

    println!(
        "Figure 2 — access-pattern audit (paper machine, T = {t}, |R| = {r}, |S| = {s} = 4·|R|)\n"
    );

    let rows: &[(Contender, &str)] = &[
        (Contender::Mpsm, "none"),
        (Contender::BMpsm, "none (but joins all of S)"),
        (Contender::Radix, "C1 (pass-1 scatter)"),
        (Contender::Wisconsin, "C1+C2 (random remote build/probe), C3 (latches)"),
    ];

    let mut table = TableBuilder::new(&[
        "algorithm",
        "local seq",
        "local rand",
        "remote seq",
        "remote rand",
        "syncs",
        "modeled ms/worker",
        "violates",
    ]);
    for &(c, violations) in rows {
        let counters = profile(c, &topo, r, s, t);
        table.row(&[
            c.name().to_string(),
            counters.accesses(AccessKind::LocalSeq).to_string(),
            counters.accesses(AccessKind::LocalRand).to_string(),
            counters.accesses(AccessKind::RemoteSeq).to_string(),
            counters.accesses(AccessKind::RemoteRand).to_string(),
            counters.syncs().to_string(),
            format!("{:.1}", modeled_ms(c, r, s, t)),
            violations.to_string(),
        ]);
    }
    table.print();
    println!(
        "\n(the diagram of Figure 2, quantified: MPSM's only remote traffic is sequential; \
         the contenders pay saturated random remote latencies and — Wisconsin — latches)"
    );
}
