//! Experiment — Figure 4 as a time series: the D-MPSM page window.
//!
//! Samples the buffer pool's resident-page count while the join phase
//! runs and renders it as an ASCII trace: the paper's Figure 4 claims
//! that at any moment only the active window (white) is in RAM while
//! passed pages are released (green) and upcoming pages are prefetched
//! (yellow). A flat, budget-bounded trace over a data volume many times
//! the budget is that claim, observed.

use std::time::Duration;

use mpsm_bench::parse_args;
use mpsm_core::join::d_mpsm::{DMpsmConfig, DMpsmJoin};
use mpsm_core::join::JoinConfig;
use mpsm_core::sink::CountSink;
use mpsm_storage::MemBackend;
use mpsm_workload::fk_uniform;

fn main() {
    let args = parse_args();
    let w = fk_uniform(args.scale, 4, args.seed);
    let page_records = 1024u32;
    let budget = 96usize;
    let total_pages = (w.r.len() + w.s.len()).div_ceil(page_records as usize);

    let mut cfg = DMpsmConfig::with_join(JoinConfig::with_threads(args.threads));
    cfg.page_records = page_records;
    cfg.budget_pages = budget;
    cfg.sample_residency = Some(Duration::from_micros(500));
    let join = DMpsmJoin::new(cfg);

    println!(
        "Figure 4 — window trace (|R| = {}, m = 4, {} pages total, budget {} pages, T = {})\n",
        args.scale, total_pages, budget, args.threads
    );
    let (count, stats, report) = join
        .join_on::<MemBackend, CountSink>(MemBackend::disk_array(), &w.r, &w.s)
        .expect("in-memory backend cannot fail");
    println!(
        "join: {count} matches in {:.1} ms; high-water {} pages of {} total\n",
        stats.wall_ms(),
        report.buffer.high_water_pages,
        total_pages
    );

    // Downsample the trace to ~40 rows and render bars.
    let trace = &report.residency_trace;
    if trace.is_empty() {
        println!("(trace empty — join finished before the first sample)");
        return;
    }
    let rows = 40.min(trace.len());
    let peak = trace.iter().map(|&(_, p)| p).max().unwrap().max(1);
    println!("{:>9}  {:>9}  window (peak = {peak} pages; '.' = budget mark)", "ms", "pages");
    for row in 0..rows {
        let idx = row * (trace.len() - 1) / rows.max(1);
        let (ms, pages) = trace[idx];
        let width = 50usize;
        let bar_len = pages * width / peak;
        let budget_mark = (budget.min(peak) * width / peak).min(width.saturating_sub(1));
        let mut bar: Vec<char> = vec![' '; width];
        for c in bar.iter_mut().take(bar_len) {
            *c = '#';
        }
        if bar[budget_mark] == ' ' {
            bar[budget_mark] = '.';
        }
        println!("{ms:>9.1}  {pages:>9}  |{}|", bar.iter().collect::<String>());
    }
    println!(
        "\n(the window hugs the budget for the whole join — residency is bounded by the\n \
         window, not by the {total_pages}-page data volume; paper Figure 4)"
    );
}
