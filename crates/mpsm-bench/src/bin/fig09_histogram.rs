//! Experiment E3 — Figure 9: fine-grained histograms at little
//! overhead.
//!
//! Sweeps the radix-histogram granularity 32…2048 buckets (B = 5…11)
//! and measures the three phase-2 sub-steps (histogram, prefix sums,
//! partitioning/scatter). The paper's point: finer radix histograms are
//! effectively free, while *comparison-based* partitioning against
//! explicit bounds is several times slower — so P-MPSM can afford very
//! precise skew information.

use std::time::Instant;

use mpsm_bench::table::fmt_ms;
use mpsm_bench::{parse_args, TableBuilder};
use mpsm_core::histogram::{combine_histograms, compute_histogram, prefix_sums, RadixDomain};
use mpsm_core::partition::range_partition;
use mpsm_core::splitter::equi_height_splitters;
use mpsm_core::worker::{chunk_ranges, run_parallel};
use mpsm_core::Tuple;
use mpsm_workload::fk_uniform;

fn main() {
    let args = parse_args();
    println!(
        "Figure 9 — histogram granularity sweep (|R| = {}, threads = {})\n",
        args.scale, args.threads
    );
    let w = fk_uniform(args.scale, 1, args.seed);
    let t = args.threads;
    let ranges = chunk_ranges(w.r.len(), t);
    let chunks: Vec<&[Tuple]> = ranges.iter().map(|rng| &w.r[rng.clone()]).collect();

    let mut table = TableBuilder::new(&[
        "granularity",
        "histogram ms",
        "prefix ms",
        "partition ms",
        "total ms",
    ]);

    for bits in 5..=11u32 {
        let domain = RadixDomain::from_range(0, (1 << 32) - 1, bits);

        let h0 = Instant::now();
        let histograms = run_parallel(t, |wk| compute_histogram(chunks[wk], &domain));
        let hist_ms = h0.elapsed().as_secs_f64() * 1e3;

        let p0 = Instant::now();
        let global = combine_histograms(&histograms);
        let splitters = equi_height_splitters(&global, t);
        let _ps = prefix_sums(&histograms);
        let prefix_ms = p0.elapsed().as_secs_f64() * 1e3;

        let s0 = Instant::now();
        let parts = range_partition(&chunks, &domain, &splitters);
        let part_ms = s0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), w.r.len());

        table.row(&[
            format!("{} (radix B={bits})", 1usize << bits),
            fmt_ms(hist_ms),
            fmt_ms(prefix_ms),
            fmt_ms(part_ms),
            fmt_ms(hist_ms + prefix_ms + part_ms),
        ]);
    }

    // Comparison-based partitioning against 32 explicit bounds (the
    // right-hand bar of Figure 9).
    let bounds: Vec<u64> = (1..=t as u64).map(|i| i * ((1u64 << 32) / t as u64)).collect();
    let c0 = Instant::now();
    let scattered = run_parallel(t, |wk| {
        let mut parts: Vec<Vec<Tuple>> = vec![Vec::new(); t];
        for tup in chunks[wk] {
            let p = bounds.partition_point(|&b| b <= tup.key).min(t - 1);
            parts[p].push(*tup);
        }
        parts
    });
    let cmp_ms = c0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        scattered.iter().flat_map(|ps| ps.iter().map(|p| p.len())).sum::<usize>(),
        w.r.len()
    );
    table.row(&[
        format!("{t} (explicit bounds, comparison-based)"),
        "-".to_string(),
        "-".to_string(),
        fmt_ms(cmp_ms),
        fmt_ms(cmp_ms),
    ]);

    table.print();
    println!("\n(paper: radix cost flat across granularities; explicit bounds clearly slower)");
}
