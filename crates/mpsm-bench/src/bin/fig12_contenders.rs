//! Experiment E4 — Figure 12: MPSM vs. Vectorwise(radix) vs. Wisconsin
//! on uniform data, multiplicities 1 / 4 / 8 / 16.
//!
//! The paper reports stacked per-phase bars with |R| = 1600M; this
//! binary prints the same series at configurable scale. Expected shape:
//! MPSM clearly ahead of the radix join (paper: 4×) and far ahead of
//! Wisconsin (paper: up to an order of magnitude); all contenders grow
//! with the multiplicity.

use mpsm_bench::audit::modeled_ms;
use mpsm_bench::table::fmt_ms;
use mpsm_bench::{parse_args, Contender, TableBuilder};
use mpsm_core::sink::MaxAggSink;
use mpsm_workload::fk_uniform;

fn main() {
    let args = parse_args();
    println!(
        "Figure 12 — contenders on uniform data (|R| = {}, threads = {}, seed = {})\n",
        args.scale, args.threads, args.seed
    );

    let contenders = [Contender::Mpsm, Contender::Radix, Contender::Wisconsin];
    let mut table = TableBuilder::new(&[
        "algorithm",
        "m",
        "phase1",
        "phase2",
        "phase3",
        "phase4",
        "total ms",
        "NUMA-model ms",
        "max(R.p+S.p)",
    ]);
    for &m in &[1usize, 4, 8, 16] {
        let w = fk_uniform(args.scale, m, args.seed);
        for &c in &contenders {
            let (max, stats) = c.run::<MaxAggSink>(args.threads, &w.r, &w.s);
            let p = stats.phases_ms();
            let modeled = modeled_ms(c, w.r.len() as u64, w.s.len() as u64, args.threads as u64);
            table.row(&[
                c.name().to_string(),
                m.to_string(),
                fmt_ms(p[0]),
                fmt_ms(p[1]),
                fmt_ms(p[2]),
                fmt_ms(p[3]),
                fmt_ms(stats.wall_ms()),
                fmt_ms(modeled),
                max.map_or("NULL".into(), |v| v.to_string()),
            ]);
        }
    }
    table.print();
    println!(
        "\nmeasured = this (UMA) container; NUMA-model ms = the same access pattern priced on \
         the paper's 4-socket machine (DESIGN.md \u{00a7}3.5)."
    );
    println!("(paper, 1600M: MPSM beats Vectorwise ~4x and Wisconsin ~10x at every multiplicity)");
}
