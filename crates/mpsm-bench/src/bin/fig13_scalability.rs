//! Experiment E5 — Figure 13: scalability in the number of cores.
//!
//! MPSM (P-MPSM) and the radix join (Vectorwise stand-in) over a thread
//! sweep; the paper sweeps 2…64 on a 32-physical-core box and sees MPSM
//! scale almost linearly up to 32, then flatten under hyperthreading.
//! We sweep past the host's physical cores to reproduce the flattening.

use mpsm_bench::audit::modeled_ms;
use mpsm_bench::table::fmt_ms;
use mpsm_bench::{parse_args, Contender, TableBuilder};
use mpsm_core::sink::MaxAggSink;
use mpsm_workload::fk_uniform;

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut sweep: Vec<usize> = vec![1, 2, 4, 8, 16];
    if cores > 16 {
        sweep.push(cores.min(32));
    }
    sweep.push(cores);
    sweep.push(cores * 2); // past physical cores: expect flattening
    sweep.dedup();

    println!(
        "Figure 13 — scalability (|R| = {}, multiplicity 4, host has {} cores)\n",
        args.scale, cores
    );
    let w = fk_uniform(args.scale, 4, args.seed);

    let mut table = TableBuilder::new(&[
        "threads",
        "MPSM ms",
        "MPSM speedup",
        "VW(radix) ms",
        "VW speedup",
        "model MPSM",
        "model VW",
    ]);
    let mut base = (0.0f64, 0.0f64);
    for (i, &t) in sweep.iter().enumerate() {
        let (_, mpsm_stats) = Contender::Mpsm.run::<MaxAggSink>(t, &w.r, &w.s);
        let (_, radix_stats) = Contender::Radix.run::<MaxAggSink>(t, &w.r, &w.s);
        let (m_ms, v_ms) = (mpsm_stats.wall_ms(), radix_stats.wall_ms());
        if i == 0 {
            base = (m_ms, v_ms);
        }
        table.row(&[
            t.to_string(),
            fmt_ms(m_ms),
            format!("{:.2}x", base.0 / m_ms),
            fmt_ms(v_ms),
            format!("{:.2}x", base.1 / v_ms),
            fmt_ms(modeled_ms(Contender::Mpsm, w.r.len() as u64, w.s.len() as u64, t as u64)),
            fmt_ms(modeled_ms(Contender::Radix, w.r.len() as u64, w.s.len() as u64, t as u64)),
        ]);
    }
    table.print();
    println!("\n(paper: MPSM scales ~linearly to 32 physical cores, flat at 64 HT contexts)");
}
