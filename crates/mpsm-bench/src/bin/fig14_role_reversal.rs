//! Experiment E6 — Figure 14: effect of role reversal.
//!
//! P-MPSM with the *smaller* relation private (correct) vs. the
//! *larger* relation private (reversed), for multiplicities 1/4/8/16.
//! The paper's complexity argument: with |R| < |S| the private-R plan
//! costs |R|/T + |R| + |S|/T in the partition+join phases against
//! |S|/T + |S| + |R|/T reversed — at multiplicity 1 no difference, and
//! the gap widens with m.

use mpsm_bench::table::fmt_ms;
use mpsm_bench::{parse_args, TableBuilder};
use mpsm_core::join::p_mpsm::PMpsmJoin;
use mpsm_core::join::{JoinAlgorithm, JoinConfig};
use mpsm_core::sink::MaxAggSink;
use mpsm_workload::fk_uniform;

fn main() {
    let args = parse_args();
    println!("Figure 14 — role reversal (|R| = {}, threads = {})\n", args.scale, args.threads);
    let join = PMpsmJoin::new(JoinConfig::with_threads(args.threads));

    let mut table =
        TableBuilder::new(&["private", "m", "phase1", "phase2", "phase3", "phase4", "total ms"]);
    for &m in &[1usize, 4, 8, 16] {
        let w = fk_uniform(args.scale, m, args.seed);
        // Correct roles: R (smaller) private.
        let (a, correct) = join.join_with_sink::<MaxAggSink>(&w.r, &w.s);
        // Reversed: S (larger) private.
        let (b, reversed) = join.join_with_sink::<MaxAggSink>(&w.s, &w.r);
        assert_eq!(a, b, "role reversal must not change the result");
        for (label, stats) in [("R (small)", &correct), ("S (large)", &reversed)] {
            let p = stats.phases_ms();
            table.row(&[
                label.to_string(),
                m.to_string(),
                fmt_ms(p[0]),
                fmt_ms(p[1]),
                fmt_ms(p[2]),
                fmt_ms(p[3]),
                fmt_ms(stats.wall_ms()),
            ]);
        }
    }
    table.print();
    println!("\n(paper: identical at m=1; the larger S grows, the worse the reversed plan)");
}
