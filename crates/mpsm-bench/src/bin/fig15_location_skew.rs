//! Experiment E7 — Figure 15: location skew in S (32 workers,
//! multiplicity 4 in the paper).
//!
//! Three arrangements of the *same* S multiset:
//!   * `T join partitions` — uniform placement (no location skew);
//!   * `1 local join partition` — extreme clustering, partners of `R_i`
//!     all in the worker's own `S_i`;
//!   * `1 remote join partition` — extreme clustering rotated by one
//!     worker, partners all in one remote run.
//!
//! The paper finds location skew *helps* (the join partners of a
//! partition are better clustered in S) and local vs. remote differs
//! only mildly thanks to sequential remote scans.

use mpsm_bench::table::fmt_ms;
use mpsm_bench::{parse_args, TableBuilder};
use mpsm_core::join::p_mpsm::PMpsmJoin;
use mpsm_core::join::{JoinAlgorithm, JoinConfig};
use mpsm_core::sink::MaxAggSink;
use mpsm_workload::{extreme_location_skew, fk_uniform};

fn main() {
    let args = parse_args();
    println!(
        "Figure 15 — location skew in S (|R| = {}, multiplicity 4, threads = {})\n",
        args.scale, args.threads
    );
    let base = fk_uniform(args.scale, 4, args.seed);
    let join = PMpsmJoin::new(JoinConfig::with_threads(args.threads));

    let mut variants: Vec<(&str, Vec<mpsm_core::Tuple>)> = Vec::new();
    variants.push(("T join partitions (none)", base.s.clone()));
    let mut local = base.s.clone();
    extreme_location_skew(&mut local, args.threads, 0, args.seed);
    variants.push(("1 local join partition", local));
    let mut remote = base.s.clone();
    extreme_location_skew(&mut remote, args.threads, 1, args.seed);
    variants.push(("1 remote join partition", remote));

    let mut table = TableBuilder::new(&[
        "location skew",
        "phase1",
        "phase2",
        "phase3",
        "phase4",
        "total ms",
        "result",
    ]);
    let mut reference = None;
    for (label, s) in &variants {
        let (max, stats) = join.join_with_sink::<MaxAggSink>(&base.r, s);
        match &reference {
            None => reference = Some(max),
            Some(r) => assert_eq!(*r, max, "rearranging S must not change the result"),
        }
        let p = stats.phases_ms();
        table.row(&[
            label.to_string(),
            fmt_ms(p[0]),
            fmt_ms(p[1]),
            fmt_ms(p[2]),
            fmt_ms(p[3]),
            fmt_ms(stats.wall_ms()),
            max.map_or("NULL".into(), |v| v.to_string()),
        ]);
    }
    table.print();
    println!("\n(paper: clustered variants beat the unclustered one; local ≈ remote)");
}
