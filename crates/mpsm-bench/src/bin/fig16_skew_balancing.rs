//! Experiment E8 — Figure 16: negatively correlated 80:20 skew and the
//! splitter computation.
//!
//! R has 80% of its keys in the high 20% of the domain, S the opposite
//! (multiplicity 4). Equi-height R partitioning (Figure 16b) balances
//! the blue sort bars but ruins the green join bars; the cost-balanced
//! splitters (Figure 16c) balance `sort + join` per worker. Histograms
//! at B = 10 (granularity 1024), as in the paper.

use mpsm_bench::table::fmt_ms;
use mpsm_bench::{parse_args, TableBuilder};
use mpsm_core::join::p_mpsm::{PMpsmJoin, SplitterPolicy};
use mpsm_core::join::{JoinAlgorithm, JoinConfig};
use mpsm_core::sink::MaxAggSink;
use mpsm_workload::skewed_negative_correlation;

fn main() {
    let args = parse_args();
    println!(
        "Figure 16 — negatively correlated skew (|R| = {}, m = 4, threads = {}, B = 10)\n",
        args.scale, args.threads
    );
    let w = skewed_negative_correlation(args.scale, 4, 1 << 32, args.seed);
    let cfg = JoinConfig::with_threads(args.threads).radix_bits(10);

    for (policy, label) in [
        (SplitterPolicy::EquiHeight, "equi-height R partitioning (Figure 16b)"),
        (SplitterPolicy::CostBalanced, "equi-cost R-and-S splitters (Figure 16c)"),
    ] {
        let join = PMpsmJoin::new(cfg.clone()).with_splitter_policy(policy);
        let (max, stats) = join.join_with_sink::<MaxAggSink>(&w.r, &w.s);
        println!("{label}: total {} ms, result {max:?}", fmt_ms(stats.wall_ms()));
        println!("  imbalance (slowest worker / average): {:.2}", stats.imbalance());
        let mut table =
            TableBuilder::new(&["worker", "phase1", "phase2", "phase3", "phase4", "total"]);
        for (wk, phases) in stats.per_worker.iter().enumerate() {
            let ms: Vec<f64> = phases.iter().map(|d| d.as_secs_f64() * 1e3).collect();
            table.row(&[
                format!("W{wk}"),
                fmt_ms(ms[0]),
                fmt_ms(ms[1]),
                fmt_ms(ms[2]),
                fmt_ms(ms[3]),
                fmt_ms(ms.iter().sum()),
            ]);
        }
        table.print();
        println!();
    }
    println!("(paper: equi-height shows badly unbalanced join bars; splitters even them out)");
}
