//! Internal: per-phase timing of the three-phase sort (development aid).
use mpsm_core::sort::{insertion, intro, radix, INSERTION_CUTOFF};
use mpsm_core::Tuple;
use mpsm_workload::unique_keys;
use std::time::Instant;

fn main() {
    let n = 1 << 23;
    let data: Vec<Tuple> =
        unique_keys(n, 7).into_iter().enumerate().map(|(i, k)| Tuple::new(k, i as u64)).collect();

    let mut d = data.clone();
    let t0 = Instant::now();
    let bounds = radix::msd_radix_partition(&mut d);
    let radix_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    for w in bounds.windows(2) {
        let bucket = &mut d[w[0]..w[1]];
        if bucket.len() > INSERTION_CUTOFF {
            intro::introsort_coarse(bucket, INSERTION_CUTOFF);
        }
    }
    let intro_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    insertion::insertion_sort(&mut d);
    let ins_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(mpsm_core::tuple::is_key_sorted(&d));

    let mut d2 = data.clone();
    let t0 = Instant::now();
    intro::introsort_coarse(&mut d2, 0);
    let full_intro_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(mpsm_core::tuple::is_key_sorted(&d2));

    let mut d3 = data.clone();
    let t0 = Instant::now();
    d3.sort_unstable_by_key(|t| t.key);
    let std_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut d4 = data.clone();
    let t0 = Instant::now();
    intro::heapsort(&mut d4);
    let heap_ms = t0.elapsed().as_secs_f64() * 1e3;

    println!("radix pass:      {radix_ms:8.1} ms");
    println!("per-bucket intro:{intro_ms:8.1} ms");
    println!("insertion pass:  {ins_ms:8.1} ms");
    println!("full introsort:  {full_intro_ms:8.1} ms");
    println!("heapsort:        {heap_ms:8.1} ms");
    println!("std pdqsort:     {std_ms:8.1} ms");
}
