//! Run every figure experiment in sequence (quick scale by default).
//!
//! ```text
//! cargo run --release -p mpsm-bench --bin repro_all -- --scale 1048576 --threads 8
//! ```
//!
//! Each experiment binary can also be run individually; see DESIGN.md's
//! experiment index for the figure ↔ binary mapping.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig01_numa",
    "fig02_access_audit",
    "fig04_window_trace",
    "fig09_histogram",
    "fig12_contenders",
    "fig13_scalability",
    "fig14_role_reversal",
    "fig15_location_skew",
    "fig16_skew_balancing",
    "sort_comparison",
    "complexity_model",
    "dmpsm_budget",
    "ablation_entry_points",
    "ablation_cdf_fan",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");

    for exp in EXPERIMENTS {
        println!("\n===== {exp} =====\n");
        let path = bin_dir.join(exp);
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp} at {}: {e}", path.display()));
        if !status.success() {
            eprintln!("experiment {exp} failed with {status}");
            std::process::exit(1);
        }
    }
    println!("\nAll experiments completed.");
}
