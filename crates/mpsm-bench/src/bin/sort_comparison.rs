//! Experiment E2 — §2.3: the three-phase sort vs. the standard sort.
//!
//! "We analyzed that this sorting routine is about 30% faster than, for
//! example, the STL sort method — even when up to 32 workers sort their
//! local runs in parallel." This binary compares the paper's sort
//! against Rust's `slice::sort_unstable_by_key` (the STL-equivalent
//! pattern-defeating quicksort) and against introsort without the radix
//! pass (ablation), single-threaded and with all workers busy.

use std::time::Instant;

use mpsm_bench::table::fmt_ms;
use mpsm_bench::{parse_args, TableBuilder};
use mpsm_core::sort::{introsort_only, three_phase_sort};
use mpsm_core::worker::run_parallel;
use mpsm_core::Tuple;
use mpsm_workload::unique_keys;

fn dataset(n: usize, seed: u64) -> Vec<Tuple> {
    unique_keys(n, seed).into_iter().enumerate().map(|(i, k)| Tuple::new(k, i as u64)).collect()
}

fn time_single(mut data: Vec<Tuple>, f: impl Fn(&mut [Tuple])) -> f64 {
    let t0 = Instant::now();
    f(&mut data);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(mpsm_core::tuple::is_key_sorted(&data));
    std::hint::black_box(&data);
    ms
}

fn time_parallel(workers: usize, n: usize, seed: u64, f: impl Fn(&mut [Tuple]) + Sync) -> f64 {
    let chunks: Vec<Vec<Tuple>> = (0..workers).map(|w| dataset(n, seed + w as u64)).collect();
    let t0 = Instant::now();
    run_parallel(workers, |w| {
        let mut chunk = chunks[w].clone();
        f(&mut chunk);
        std::hint::black_box(chunk.len())
    });
    t0.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let args = parse_args();
    let n = args.scale;
    println!("§2.3 — sort comparison ({} tuples per run, seed {})\n", n, args.seed);

    let mut table =
        TableBuilder::new(&["sort", "1 thread ms", "vs std", "all-threads ms", "vs std"]);
    let std_1 = time_single(dataset(n, args.seed), |d| d.sort_unstable_by_key(|t| t.key));
    let std_t = time_parallel(args.threads, n, args.seed, |d| d.sort_unstable_by_key(|t| t.key));
    type SortFn = Box<dyn Fn(&mut [Tuple]) + Sync>;
    let rows: Vec<(&str, SortFn)> = vec![
        ("std sort_unstable", Box::new(|d: &mut [Tuple]| d.sort_unstable_by_key(|t| t.key))),
        ("three-phase (paper)", Box::new(|d: &mut [Tuple]| three_phase_sort(d))),
        ("introsort only (no radix)", Box::new(|d: &mut [Tuple]| introsort_only(d))),
    ];
    for (name, f) in rows {
        let one = time_single(dataset(n, args.seed), &f);
        let many = time_parallel(args.threads, n, args.seed, &f);
        table.row(&[
            name.to_string(),
            fmt_ms(one),
            format!("{:.2}x", std_1 / one),
            fmt_ms(many),
            format!("{:.2}x", std_t / many),
        ]);
    }
    table.print();
    println!("\n(paper: the three-phase sort beats STL sort by ~30%, also under full parallelism)");
}
