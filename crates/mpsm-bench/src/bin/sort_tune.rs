//! Print the sort-kernel auto-tune sweep for this machine.
//!
//! ```text
//! cargo run --release -p mpsm-bench --bin sort_tune [-- --scale N]
//! ```
//!
//! Runs the same deterministic microbench sweep the `SortTuning::auto_tune`
//! knob uses (kernel × block candidates over pseudo-random tuples) and
//! prints ns/tuple per candidate plus the winner. Build with
//! `--features simd-sort` to include the AVX2 column on machines that
//! support it.

use mpsm_core::sort::{insertion, simd, tuning::AUTO_TUNE_TUPLES, SortScratch, SortTuning};
use mpsm_core::Tuple;

/// Time the leaf kernels standalone on many independent `leaf`-tuple
/// random blocks — isolates the finisher from the radix passes so the
/// crossover is visible directly.
fn leaf_probe(leaf: usize) {
    let blocks = (1 << 20) / leaf.max(1);
    let total = blocks * leaf;
    let mut state = 0xC0FFEEu64;
    let master: Vec<Tuple> = (0..total)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            Tuple::new(state >> 32, i as u64)
        })
        .collect();
    let mut scratch = SortScratch::new();
    let mut run = |name: &str, f: &mut dyn FnMut(&mut [Tuple], &mut SortScratch)| {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let mut data = master.clone();
            let start = std::time::Instant::now();
            for chunk in data.chunks_mut(leaf) {
                f(chunk, &mut scratch);
            }
            best = best.min(start.elapsed().as_nanos() as f64 / total as f64);
        }
        println!("  {name:<24} {best:>8.2} ns/tuple");
    };
    println!("leaf kernels on {blocks} blocks of {leaf} tuples:");
    run("insertion", &mut |c, _| insertion::insertion_sort(c));
    run("bitonic", &mut mpsm_core::sort::bitonic::bitonic_sort_with);
    run("simd", &mut simd::bitonic_sort_simd);
}

fn main() {
    let mut n = AUTO_TUNE_TUPLES;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                n = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--scale needs an integer");
                    std::process::exit(2);
                });
            }
            "--leaf" => {
                i += 1;
                let leaf: usize = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(16);
                leaf_probe(leaf);
                return;
            }
            other => {
                eprintln!("unknown arg {other}; usage: sort_tune [--scale N | --leaf N]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!("sort-kernel sweep over {n} tuples (simd path active: {})", simd::simd_active());
    let sweep = SortTuning::sweep(n);
    let mut best = sweep[0];
    for &(t, ns) in &sweep {
        println!("  {:<42} {:>8.2} ns/tuple", t.describe(), ns);
        if ns < best.1 {
            best = (t, ns);
        }
    }
    println!("winner: {} ({:.2} ns/tuple)", best.0.describe(), best.1);

    // Interleaved A/B of the winner against the frozen PR 2 path —
    // both under one protocol so machine drift cannot bias the ratio.
    let mut state = 0x5EED_0007u64;
    let master: Vec<Tuple> = (0..n)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            Tuple::new(state >> 32, i as u64)
        })
        .collect();
    let mut scratch = SortScratch::new();
    let mut pr2 = f64::INFINITY;
    let mut tuned = f64::INFINITY;
    for rep in 0..=11 {
        // Alternate which side runs first so within-pair drift cancels;
        // take the minimum (noise only ever adds time).
        for side in 0..2 {
            let run_pr2 = (rep + side) % 2 == 0;
            let mut data = master.clone();
            let t0 = std::time::Instant::now();
            if run_pr2 {
                mpsm_core::sort::three_phase_sort_pr2_baseline(&mut data);
            } else {
                mpsm_core::sort::three_phase_sort_tuned(&mut data, &best.0, &mut scratch);
            }
            let ns = t0.elapsed().as_nanos() as f64 / n as f64;
            if rep > 0 {
                if run_pr2 {
                    pr2 = pr2.min(ns);
                } else {
                    tuned = tuned.min(ns);
                }
            }
        }
    }
    println!(
        "A/B min of 11: pr2={pr2:.2} ns/t, tuned={tuned:.2} ns/t, speedup {:.3}x",
        pr2 / tuned
    );
}
