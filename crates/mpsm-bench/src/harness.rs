//! Command-line handling and the contender registry shared by all
//! figure binaries.
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --scale N      |R| in tuples (default 1M = 2^20; paper: 1600M)
//! --threads N    worker threads (default: all physical cores)
//! --seed N       workload seed (default 42)
//! --quick        divide the default scale by 8 (CI-friendly)
//! ```
//!
//! so `EXPERIMENTS.md` can state one canonical invocation per figure.

use mpsm_baselines::{ClassicSortMergeJoin, RadixJoin, WisconsinHashJoin};
use mpsm_core::join::b_mpsm::BMpsmJoin;
use mpsm_core::join::d_mpsm::DMpsmJoin;
use mpsm_core::join::p_mpsm::PMpsmJoin;
use mpsm_core::join::{JoinAlgorithm, JoinConfig};
use mpsm_core::sink::JoinSink;
use mpsm_core::stats::JoinStats;
use mpsm_core::Tuple;

/// Parsed command-line arguments.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// `|R|` in tuples.
    pub scale: usize,
    /// Worker threads.
    pub threads: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: 1 << 20,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            seed: 42,
        }
    }
}

/// Parse `std::env::args()`; panics with a usage message on bad input.
pub fn parse_args() -> BenchArgs {
    let mut args = BenchArgs::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--scale needs a number"));
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--threads needs a number"));
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--seed needs a number"));
            }
            "--quick" => {
                args.scale /= 8;
            }
            other => panic!("unknown flag {other}; supported: --scale --threads --seed --quick"),
        }
    }
    assert!(args.scale > 0 && args.threads > 0);
    args
}

/// The contenders of Figure 12, uniformly dispatchable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contender {
    /// P-MPSM (the paper's main algorithm).
    Mpsm,
    /// B-MPSM (no range partitioning).
    BMpsm,
    /// D-MPSM on the simulated disk array.
    DMpsm,
    /// Radix join (Vectorwise stand-in).
    Radix,
    /// Wisconsin no-partitioning hash join.
    Wisconsin,
    /// Classic sort-merge join with global merge.
    ClassicSmj,
}

impl Contender {
    /// Display name matching the paper's labels.
    pub fn name(self) -> &'static str {
        match self {
            Contender::Mpsm => "MPSM",
            Contender::BMpsm => "B-MPSM",
            Contender::DMpsm => "D-MPSM",
            Contender::Radix => "VW(radix)",
            Contender::Wisconsin => "Wisconsin",
            Contender::ClassicSmj => "ClassicSMJ",
        }
    }

    /// Run the contender with sink `S`.
    pub fn run<S: JoinSink>(
        self,
        threads: usize,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats) {
        let cfg = JoinConfig::with_threads(threads);
        match self {
            Contender::Mpsm => PMpsmJoin::new(cfg).join_with_sink::<S>(r, s),
            Contender::BMpsm => BMpsmJoin::new(cfg).join_with_sink::<S>(r, s),
            Contender::DMpsm => DMpsmJoin::with_join_config(cfg).join_with_sink::<S>(r, s),
            Contender::Radix => RadixJoin::new(cfg).join_with_sink::<S>(r, s),
            Contender::Wisconsin => WisconsinHashJoin::new(cfg).join_with_sink::<S>(r, s),
            Contender::ClassicSmj => ClassicSortMergeJoin::new(cfg).join_with_sink::<S>(r, s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsm_core::sink::CountSink;

    #[test]
    fn default_args_are_positive() {
        let a = BenchArgs::default();
        assert!(a.scale > 0);
        assert!(a.threads > 0);
    }

    #[test]
    fn all_contenders_agree_on_a_small_join() {
        let r: Vec<Tuple> = (0..200u64).map(|k| Tuple::new(k % 64, k)).collect();
        let s: Vec<Tuple> = (0..600u64).map(|k| Tuple::new(k % 64, k)).collect();
        let expected = mpsm_baselines::nested_loop::oracle_count(&r, &s);
        for c in [
            Contender::Mpsm,
            Contender::BMpsm,
            Contender::DMpsm,
            Contender::Radix,
            Contender::Wisconsin,
            Contender::ClassicSmj,
        ] {
            let (count, _) = c.run::<CountSink>(4, &r, &s);
            assert_eq!(count, expected, "{}", c.name());
        }
    }
}
