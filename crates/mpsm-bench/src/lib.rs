//! Shared infrastructure of the benchmark harness: scale handling,
//! table rendering, and contender registry. The figure binaries under
//! `src/bin/` and the criterion micro-benchmarks under `benches/` build
//! on this.

pub mod audit;
pub mod harness;
pub mod table;

pub use harness::{parse_args, BenchArgs, Contender};
pub use table::TableBuilder;
