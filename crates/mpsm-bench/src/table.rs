//! Plain-text table rendering for the figure binaries.
//!
//! Every experiment binary prints the rows/series the corresponding
//! paper figure reports; a small right-aligned table keeps the output
//! diff-able and easy to paste into EXPERIMENTS.md.

/// Builder for an aligned text table.
#[derive(Debug, Default)]
pub struct TableBuilder {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TableBuilder { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: append a row of displayable cells.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Render with aligned columns (first column left, rest right).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == 0 {
                        format!("{:<width$}", c, width = widths[i])
                    } else {
                        format!("{:>width$}", c, width = widths[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format milliseconds with sensible precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TableBuilder::new(&["name", "ms"]);
        t.row(&["alpha".into(), "12".into()]);
        t.row(&["b".into(), "12345".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].ends_with("   12"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = TableBuilder::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(fmt_ms(1234.7), "1235");
        assert_eq!(fmt_ms(12.34), "12.3");
        assert_eq!(fmt_ms(0.1234), "0.123");
    }
}
