//! Joining arbitrary row types through the MPSM kernels.
//!
//! The join algorithms operate on the paper's fixed 16-byte
//! `[key, payload]` tuples for inner-loop speed. Real schemas have wider
//! rows and non-integer keys; this module is the API boundary that maps
//! them in and out:
//!
//! * [`join_indices`] — join two slices of any row type through a key
//!   extractor; the tuple payload carries the row index, so the result
//!   is a list of matching `(r_index, s_index)` pairs to be consumed or
//!   materialized by the caller.
//! * [`join_str_keys`] — the paper's §3.2.1 recipe for string keys:
//!   "if long strings are used as join keys, MPSM should work on the
//!   hash codes of those strings". Rows join on a 64-bit hash of the
//!   key; because distinct strings may collide, every candidate pair is
//!   verified against the original strings before it is emitted —
//!   correctness is preserved, only the meaningful output order is
//!   given up (exactly the trade-off the paper describes).

use crate::join::JoinAlgorithm;
use crate::sink::CollectSink;
use crate::tuple::Tuple;

/// Join two row slices on `u64` keys produced by extractors, returning
/// matching `(r_index, s_index)` pairs (unordered).
///
/// Row counts are limited to `u32::MAX` (indices travel through the
/// 64-bit tuple payload with room to spare; the limit keeps the
/// intermediate arrays compact).
pub fn join_indices<R, S, A, KR, KS>(
    algorithm: &A,
    r: &[R],
    key_r: KR,
    s: &[S],
    key_s: KS,
) -> Vec<(usize, usize)>
where
    A: JoinAlgorithm,
    KR: Fn(&R) -> u64,
    KS: Fn(&S) -> u64,
{
    assert!(r.len() < u32::MAX as usize && s.len() < u32::MAX as usize, "row count exceeds u32");
    let r_tuples: Vec<Tuple> =
        r.iter().enumerate().map(|(i, row)| Tuple::new(key_r(row), i as u64)).collect();
    let s_tuples: Vec<Tuple> =
        s.iter().enumerate().map(|(i, row)| Tuple::new(key_s(row), i as u64)).collect();
    let (rows, _stats) = algorithm.join_with_sink::<CollectSink>(&r_tuples, &s_tuples);
    rows.into_iter().map(|(_key, rp, sp)| (rp as usize, sp as usize)).collect()
}

/// FNV-1a, the deterministic 64-bit string hash used by
/// [`join_str_keys`] (kept local so results are stable across Rust
/// versions, unlike `DefaultHasher`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Join two row slices on *string* keys by hashing (paper §3.2.1),
/// verifying every candidate pair against the original strings so hash
/// collisions cannot produce false matches.
pub fn join_str_keys<R, S, A, KR, KS>(
    algorithm: &A,
    r: &[R],
    key_r: KR,
    s: &[S],
    key_s: KS,
) -> Vec<(usize, usize)>
where
    A: JoinAlgorithm,
    KR: Fn(&R) -> &str,
    KS: Fn(&S) -> &str,
{
    let candidates = join_indices(
        algorithm,
        r,
        |row| fnv1a(key_r(row).as_bytes()),
        s,
        |row| fnv1a(key_s(row).as_bytes()),
    );
    candidates.into_iter().filter(|&(ri, si)| key_r(&r[ri]) == key_s(&s[si])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::p_mpsm::PMpsmJoin;
    use crate::join::JoinConfig;

    #[derive(Debug)]
    struct Order {
        id: u64,
        customer: &'static str,
    }

    #[derive(Debug)]
    struct Shipment {
        order_id: u64,
        customer: &'static str,
    }

    fn data() -> (Vec<Order>, Vec<Shipment>) {
        let orders = vec![
            Order { id: 10, customer: "ada" },
            Order { id: 20, customer: "grace" },
            Order { id: 30, customer: "edsger" },
        ];
        let shipments = vec![
            Shipment { order_id: 20, customer: "grace" },
            Shipment { order_id: 10, customer: "ada" },
            Shipment { order_id: 20, customer: "grace" },
            Shipment { order_id: 99, customer: "nobody" },
        ];
        (orders, shipments)
    }

    #[test]
    fn integer_key_extractors() {
        let (orders, shipments) = data();
        let algo = PMpsmJoin::new(JoinConfig::with_threads(2));
        let mut pairs = join_indices(&algo, &orders, |o| o.id, &shipments, |s| s.order_id);
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 0), (1, 2)]);
        // The indices address the original rows.
        for (ri, si) in pairs {
            assert_eq!(orders[ri].id, shipments[si].order_id);
        }
    }

    #[test]
    fn string_keys_join_via_hash() {
        let (orders, shipments) = data();
        let algo = PMpsmJoin::new(JoinConfig::with_threads(2));
        let mut pairs = join_str_keys(&algo, &orders, |o| o.customer, &shipments, |s| s.customer);
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 0), (1, 2)]);
    }

    #[test]
    fn hash_collisions_are_verified_away() {
        // Force a collision: join on a constant hash but distinct keys.
        struct Row;
        let r = vec![Row];
        let s = vec![Row];
        let algo = PMpsmJoin::new(JoinConfig::with_threads(1));
        // Degenerate extractor: everything hashes equal...
        let candidates = join_indices(&algo, &r, |_| 42, &s, |_| 42);
        assert_eq!(candidates.len(), 1, "hash-level match exists");
        // ...but the string-verified join rejects the false pair.
        struct Pinned(&'static str);
        let rp = vec![Pinned("x")];
        let sp = vec![Pinned("y")];
        let verified = join_str_keys(&algo, &rp, |p| p.0, &sp, |p| p.0);
        assert!(verified.is_empty() || rp[verified[0].0].0 == sp[verified[0].1].0);
    }

    #[test]
    fn fnv1a_is_stable_and_discriminating() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"ada"), fnv1a(b"grace"));
        assert_eq!(fnv1a(b"ada"), fnv1a(b"ada"));
    }

    #[test]
    fn empty_inputs() {
        let algo = PMpsmJoin::new(JoinConfig::with_threads(2));
        let empty: Vec<Order> = vec![];
        let (orders, _) = data();
        assert!(join_indices(&algo, &empty, |o| o.id, &orders, |o| o.id).is_empty());
    }
}
