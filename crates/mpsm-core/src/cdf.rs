//! Global S-distribution CDF from local equi-height histograms (§4.1).
//!
//! After phase 1 every worker holds a *sorted* public run `S_i`, so an
//! equi-height histogram of the run costs almost nothing: pick `f · T`
//! evenly spaced elements. The local bounds of all workers are merged
//! into a global cumulative distribution function; between the merged
//! step points the paper interpolates linearly ("the diagonal
//! connections between steps", Figure 8). The splitter computation then
//! probes this CDF with candidate R partition bounds to estimate how
//! much S data a partition would have to process.

use crate::tuple::Tuple;

/// Equi-height bounds of one sorted run: `count` keys splitting the run
/// into equal-cardinality parts. Bound `j` is the key at the end of the
/// `(j+1)`-th part, so each bound "represents" `len / count` tuples.
pub fn equi_height_bounds(sorted: &[Tuple], count: usize) -> Vec<u64> {
    assert!(count > 0, "need at least one bound");
    if sorted.is_empty() {
        return Vec::new();
    }
    debug_assert!(crate::tuple::is_key_sorted(sorted));
    let n = sorted.len();
    (1..=count).map(|j| sorted[(j * n / count).saturating_sub(1).min(n - 1)].key).collect()
}

/// A merged, monotone step function `key → cumulative tuple count`, with
/// linear interpolation between steps.
#[derive(Debug, Clone)]
pub struct Cdf {
    /// `(key, cumulative count ≤ key)`, strictly increasing in both.
    points: Vec<(u64, f64)>,
    total: f64,
}

impl Cdf {
    /// Merge per-worker equi-height bounds into a global CDF.
    ///
    /// `locals` holds, per worker, the bound keys and the run length
    /// they summarize. Every bound of worker `i` contributes a step of
    /// `len_i / bounds_i.len()` tuples at its key.
    pub fn from_local_bounds(locals: &[(Vec<u64>, usize)]) -> Self {
        let mut steps: Vec<(u64, f64)> = Vec::new();
        for (bounds, len) in locals {
            if bounds.is_empty() {
                continue;
            }
            let weight = *len as f64 / bounds.len() as f64;
            for &key in bounds {
                steps.push((key, weight));
            }
        }
        steps.sort_unstable_by_key(|&(k, _)| k);
        // Accumulate, merging equal keys.
        let mut points: Vec<(u64, f64)> = Vec::with_capacity(steps.len());
        let mut cum = 0.0;
        for (key, w) in steps {
            cum += w;
            match points.last_mut() {
                Some(last) if last.0 == key => last.1 = cum,
                _ => points.push((key, cum)),
            }
        }
        Cdf { total: cum, points }
    }

    /// Build the exact CDF of a set of sorted runs (each bound = one
    /// tuple). Used by tests as ground truth and available for callers
    /// with small inputs.
    pub fn exact(runs: &[&[Tuple]]) -> Self {
        let locals: Vec<(Vec<u64>, usize)> =
            runs.iter().map(|r| (r.iter().map(|t| t.key).collect(), r.len())).collect();
        Self::from_local_bounds(&locals)
    }

    /// Total tuple count represented.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Estimated number of tuples with key `≤ key` (linear interpolation
    /// between steps, clamped to `[0, total]`).
    pub fn estimate(&self, key: u64) -> f64 {
        match self.points.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => self.points[i].1,
            Err(0) => {
                // Before the first step: interpolate from (min_key, 0)…
                // we do not know min_key, so clamp to 0 (the paper's CDF
                // likewise starts at the first collected bound).
                match self.points.first() {
                    Some(&(k0, c0)) if k0 > 0 => {
                        // Interpolate from origin for smoothness.
                        c0 * key as f64 / k0 as f64
                    }
                    _ => 0.0,
                }
            }
            Err(i) if i == self.points.len() => self.total,
            Err(i) => {
                let (k0, c0) = self.points[i - 1];
                let (k1, c1) = self.points[i];
                let frac = (key - k0) as f64 / (k1 - k0) as f64;
                c0 + frac * (c1 - c0)
            }
        }
    }

    /// Estimated number of tuples with key in `[lo, hi)`.
    pub fn estimate_range(&self, lo: u64, hi: u64) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        let below_lo = if lo == 0 { 0.0 } else { self.estimate(lo - 1) };
        (self.estimate(hi - 1) - below_lo).max(0.0)
    }

    /// The merged step points (for inspection and plotting).
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_tuples(keys: &[u64]) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = keys.iter().map(|&k| Tuple::new(k, 0)).collect();
        v.sort_unstable_by_key(|t| t.key);
        v
    }

    #[test]
    fn paper_figure_8_example() {
        // Four runs of 8 tuples each, skewed small; 4 local bounds per
        // worker (f·T = 4).
        let s1 = sorted_tuples(&[1, 7, 10, 15, 22, 31, 66, 81]);
        let s2 = sorted_tuples(&[2, 12, 17, 25, 33, 42, 78, 90]);
        let s3 = sorted_tuples(&[4, 9, 13, 30, 37, 48, 54, 75]);
        let s4 = sorted_tuples(&[5, 13, 28, 44, 49, 56, 77, 100]);
        let b1 = equi_height_bounds(&s1, 4);
        let b2 = equi_height_bounds(&s2, 4);
        let b3 = equi_height_bounds(&s3, 4);
        let b4 = equi_height_bounds(&s4, 4);
        assert_eq!(b1, vec![7, 15, 31, 81], "paper's b11..b14");
        assert_eq!(b2, vec![12, 25, 42, 90]);
        assert_eq!(b3, vec![9, 30, 48, 75]);
        assert_eq!(b4, vec![13, 44, 56, 100]);

        let cdf = Cdf::from_local_bounds(&[(b1, 8), (b2, 8), (b3, 8), (b4, 8)]);
        assert_eq!(cdf.total(), 32.0);
        // Half of the distribution sits at/below the 8th bound.
        let mid = cdf.estimate(31);
        assert!((mid - 16.0).abs() <= 2.0, "≈ half at key 31, got {mid}");
        assert_eq!(cdf.estimate(100), 32.0);
        assert_eq!(cdf.estimate(u64::MAX), 32.0);
    }

    #[test]
    fn equi_height_bounds_of_empty_run() {
        assert!(equi_height_bounds(&[], 4).is_empty());
    }

    #[test]
    fn equi_height_bounds_more_bounds_than_tuples() {
        let run = sorted_tuples(&[5, 6]);
        let b = equi_height_bounds(&run, 8);
        assert_eq!(b.len(), 8);
        assert_eq!(*b.last().unwrap(), 6, "last bound is the run max");
    }

    #[test]
    fn cdf_is_monotone() {
        let runs = [sorted_tuples(&[1, 5, 9, 20, 21, 22, 90, 99])];
        let cdf = Cdf::from_local_bounds(&[(equi_height_bounds(&runs[0], 8), 8)]);
        let mut prev = -1.0;
        for key in 0..120 {
            let e = cdf.estimate(key);
            assert!(e >= prev, "CDF must be monotone at key {key}");
            prev = e;
        }
    }

    #[test]
    fn exact_cdf_counts_precisely() {
        let run = sorted_tuples(&[10, 20, 30, 40]);
        let cdf = Cdf::exact(&[&run]);
        assert_eq!(cdf.estimate(10), 1.0);
        assert_eq!(cdf.estimate(25) as i64, 2);
        assert_eq!(cdf.estimate(40), 4.0);
        assert_eq!(cdf.estimate(5) as i64, 0);
    }

    #[test]
    fn estimate_interpolates_between_steps() {
        let cdf = Cdf::from_local_bounds(&[(vec![10, 20], 10)]);
        // Steps: (10, 5), (20, 10). Midpoint interpolates.
        let mid = cdf.estimate(15);
        assert!((mid - 7.5).abs() < 1e-9, "expected 7.5, got {mid}");
    }

    #[test]
    fn finer_local_histograms_improve_precision() {
        // Ground truth: 1000 uniform keys.
        let keys: Vec<u64> = (0..1000u64).map(|i| i * 1000).collect();
        let run = sorted_tuples(&keys);
        let exact = Cdf::exact(&[&run]);
        let coarse = Cdf::from_local_bounds(&[(equi_height_bounds(&run, 4), 1000)]);
        let fine = Cdf::from_local_bounds(&[(equi_height_bounds(&run, 64), 1000)]);
        let probe = 333_333u64;
        let err_coarse = (coarse.estimate(probe) - exact.estimate(probe)).abs();
        let err_fine = (fine.estimate(probe) - exact.estimate(probe)).abs();
        assert!(err_fine <= err_coarse + 1.0, "finer bounds must not be worse");
    }

    #[test]
    fn empty_cdf_estimates_zero() {
        let cdf = Cdf::from_local_bounds(&[]);
        assert_eq!(cdf.total(), 0.0);
        assert_eq!(cdf.estimate(12345), 0.0);
    }

    #[test]
    fn skewed_distribution_shape() {
        // 80% of mass at low keys: CDF must rise steeply early.
        let mut keys = Vec::new();
        for i in 0..800u64 {
            keys.push(i); // low band
        }
        for i in 0..200u64 {
            keys.push(10_000 + i); // high band
        }
        let run = sorted_tuples(&keys);
        let cdf = Cdf::from_local_bounds(&[(equi_height_bounds(&run, 32), 1000)]);
        let low = cdf.estimate(800);
        assert!(low > 700.0, "≈ 800 tuples below key 800, got {low}");
    }
}
