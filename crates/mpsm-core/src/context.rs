//! The unified execution context: topology, placement, arenas,
//! counters, and the shared worker pool in one object.
//!
//! Before this module existed the repository had three ad-hoc ways to
//! hand a join its workers (`join_with_sink_on`, `join_variant_on_pool`,
//! `execute_on`) and the NUMA model lived in a simulation-only sidecar
//! (`mpsm-numa`) consulted only by audit binaries — the *real* join and
//! executor paths allocated wherever and counted nothing. An
//! [`ExecContext`] closes that gap: it owns
//!
//! * a [`Topology`] (the simulated machine),
//! * a [`WorkerPlacement`] mapping every pool worker to a core and
//!   therefore a NUMA node,
//! * a [`NumaArena`] from which all run and partition storage is
//!   allocated with an explicit home node,
//! * per-phase [`AccessCounters`] fed by the join phases themselves,
//! * and a [`SharedWorkerPool`] executing every parallel section.
//!
//! Every execution layer — partitioning, sorting, merging, the three
//! join variants, and `mpsm-exec`'s scheduler — takes the context and
//! flows placement through, so the paper's commandments C1–C3 become
//! *measurable properties of the production code path* instead of
//! claims checked only in a sidecar simulation.
//!
//! ## The access model
//!
//! Counters record *tuple-granular* traffic at phase boundaries, using
//! quantities the phases compute anyway (chunk lengths, histogram
//! counts, merge cursor positions) — zero instrumentation cost inside
//! hot loops, mirroring commandment C3. The model, which the
//! accounting proptests pin:
//!
//! * base relations are **globally interleaved** (unplaced); scanning a
//!   chunk of length `n` records `n` interleaved sequential reads;
//! * copying a chunk into a run records `n` sequential writes against
//!   the run's home node;
//! * sorting a run of length `n` in place records `n` sequential reads
//!   plus `n` random writes against its home (the paper's local sort —
//!   random accesses are the reason C1 demands it be node-local);
//! * the scatter of P-MPSM phase 2 records, per worker, `n` interleaved
//!   sequential re-reads plus one sequential write per tuple against
//!   the home of the *target* partition (remote, but sequential into a
//!   disjoint window — exactly what C1 permits);
//! * a merge-join records the tuples each cursor actually consumed
//!   (sequential, against each run's home), and an interpolation/binary
//!   entry search records `⌈log₂ |run|⌉ + 1` random accesses against
//!   the public run's home (the `O(log log)`-ish probes C2 tolerates);
//! * sub-linear bookkeeping (CDF bounds, splitter computation, prefix
//!   sums) is not counted — the paper calls it "almost free" and it
//!   touches `O(f·T²)` values, not tuples.
//!
//! One context should serve one join (or one scheduled query): derive
//! fresh contexts with [`ExecContext::for_owner`] /
//! [`ExecContext::pinned_to`] instead of reusing one across queries,
//! so audits and arena statistics stay attributable.

use std::sync::Mutex;

use mpsm_numa::{AccessCounters, CounterScope, NodeId, NumaArena, NumaBuf, Topology};

use crate::sort::{SortScratch, SortTuning};
use crate::stats::Phase;
use crate::tuple::Tuple;
use crate::worker::{SharedWorkerPool, WorkerPlacement};

/// Where the context homes the buffers it allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// Each allocation is homed on the node of the worker that will own
    /// it — the paper's design (runs and partitions in local RAM).
    #[default]
    WorkerLocal,
    /// Every allocation is homed on one fixed node, regardless of which
    /// worker owns it — the "first-touch on socket 0" anti-pattern of
    /// an unplaced `malloc`, kept as a deliberately misplaced contender
    /// so the commandments' cost is observable (see
    /// `examples/numa_placement.rs`).
    Pinned(NodeId),
}

/// The unified execution context. See the module docs for the model;
/// construction is cheap (the expensive part, the worker pool, can be
/// shared between contexts via [`ExecContext::for_owner`]).
///
/// ```
/// use mpsm_core::context::ExecContext;
/// use mpsm_core::join::p_mpsm::PMpsmJoin;
/// use mpsm_core::join::{JoinAlgorithm, JoinConfig};
/// use mpsm_core::sink::CountSink;
/// use mpsm_core::Tuple;
/// use mpsm_numa::Topology;
///
/// // Eight workers on a simulated 4-socket machine, two per node.
/// let cx = ExecContext::new(Topology::paper_machine(), 8);
/// let r: Vec<Tuple> = (0..1000u64).map(|k| Tuple::new(k, k)).collect();
/// let s: Vec<Tuple> = (0..1000u64).map(|k| Tuple::new(k, k)).collect();
/// let join = PMpsmJoin::new(JoinConfig::with_threads(8));
/// let (count, _stats) = join.join_in::<CountSink>(&cx, &r, &s);
/// assert_eq!(count, 1000);
/// // The context audited the real execution: the sort phase ran on
/// // node-local partitions.
/// use mpsm_core::stats::Phase;
/// assert!(cx.phase_counters(Phase::Three).remote_fraction() < 0.05);
/// ```
#[derive(Debug)]
pub struct ExecContext {
    placement: WorkerPlacement,
    pool: SharedWorkerPool,
    arena: NumaArena,
    policy: AllocPolicy,
    phase_counters: Mutex<[AccessCounters; 4]>,
    sort_tuning: SortTuning,
    sort_scratch: Vec<Mutex<SortScratch>>,
}

impl ExecContext {
    /// Spawn `threads` pool workers placed round-robin over `topology`'s
    /// hardware contexts (the Figure 11 numbering).
    pub fn new(topology: Topology, threads: usize) -> Self {
        Self::with_pool(topology, SharedWorkerPool::new(threads))
    }

    /// A single-node (non-NUMA) context with `threads` workers — the
    /// default substrate of the classic entry points, where every
    /// access is local by construction.
    pub fn flat(threads: usize) -> Self {
        Self::new(Topology::flat(threads as u32), threads)
    }

    /// The paper's evaluation machine as the joins use it: four nodes ×
    /// eight cores (Figure 11), one worker per physical core — 32
    /// workers, eight per socket.
    pub fn paper_machine() -> Self {
        let topology = Topology::paper_machine();
        let threads = topology.total_cores() as usize;
        Self::new(topology, threads)
    }

    /// Wrap an existing shared pool in a flat (single-node) context of
    /// the pool's width — the compatibility shim behind the classic
    /// `*_on` pool entry points.
    pub fn over_pool(pool: &SharedWorkerPool) -> Self {
        Self::with_pool(Topology::flat(pool.threads() as u32), pool.clone())
    }

    /// Build over an existing pool with round-robin placement on
    /// `topology`.
    pub fn with_pool(topology: Topology, pool: SharedWorkerPool) -> Self {
        let placement = WorkerPlacement::round_robin(topology, pool.threads());
        Self::with_placement(placement, pool)
    }

    /// Build from an explicit placement (one placed core per pool
    /// worker).
    ///
    /// # Panics
    /// Panics if the placement and the pool disagree on the worker
    /// count.
    pub fn with_placement(placement: WorkerPlacement, pool: SharedWorkerPool) -> Self {
        assert_eq!(placement.threads(), pool.threads(), "one placed core per pool worker");
        let arena = NumaArena::new(placement.topology().clone());
        let sort_scratch = (0..pool.threads()).map(|_| Mutex::new(SortScratch::new())).collect();
        ExecContext {
            placement,
            pool,
            arena,
            policy: AllocPolicy::WorkerLocal,
            phase_counters: Mutex::new(Default::default()),
            sort_tuning: SortTuning::current(),
            sort_scratch,
        }
    }

    /// Builder-style override of the allocation policy.
    pub fn alloc_policy(mut self, policy: AllocPolicy) -> Self {
        if let AllocPolicy::Pinned(node) = policy {
            assert!(node.0 < self.topology().nodes, "node {node} outside topology");
        }
        self.policy = policy;
        self
    }

    /// Builder-style override of the sort tuning every run sorted in
    /// this context uses (new contexts start from the process-wide
    /// [`SortTuning::current`]). Derived contexts inherit it, so a
    /// scheduler can auto-tune once and have every query pick it up.
    pub fn with_sort_tuning(mut self, tuning: SortTuning) -> Self {
        self.sort_tuning = tuning;
        self
    }

    /// The sort tuning in effect for this context (surfaced by
    /// EXPLAIN's `SortKernel` line).
    pub fn sort_tuning(&self) -> SortTuning {
        self.sort_tuning
    }

    /// Derive a context for one owner (e.g. one scheduled query): same
    /// workers and placement, phases tagged with `owner` on the pool,
    /// fresh counters and arena so the audit is attributable to this
    /// owner alone.
    pub fn for_owner(&self, owner: u64) -> ExecContext {
        ExecContext {
            placement: self.placement.clone(),
            pool: self.pool.with_owner(owner),
            arena: NumaArena::new(self.topology().clone()),
            policy: self.policy,
            phase_counters: Mutex::new(Default::default()),
            sort_tuning: self.sort_tuning,
            // Fresh per-worker scratch: queries derived from one base
            // context run concurrently on the shared pool, and sharing
            // scratch would serialize their sort phases on its locks.
            sort_scratch: (0..self.pool.threads())
                .map(|_| Mutex::new(SortScratch::new()))
                .collect(),
        }
    }

    /// Derive a context whose workers (and allocations) all sit on one
    /// `node` — the NUMA-affine query placement of the scheduler: a
    /// query pinned to one socket keeps its runs, partitions, and
    /// phases node-local while other queries use the other sockets.
    ///
    /// # Panics
    /// Panics if `node` is outside the topology.
    pub fn pinned_to(&self, node: NodeId) -> ExecContext {
        let placement =
            WorkerPlacement::on_node(self.topology().clone(), node, self.pool.threads());
        ExecContext {
            placement,
            pool: self.pool.clone(),
            arena: NumaArena::new(self.topology().clone()),
            policy: self.policy,
            phase_counters: Mutex::new(Default::default()),
            sort_tuning: self.sort_tuning,
            sort_scratch: (0..self.pool.threads())
                .map(|_| Mutex::new(SortScratch::new()))
                .collect(),
        }
    }

    /// Number of pool workers (the `T` of a join run in this context).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The simulated machine.
    pub fn topology(&self) -> &Topology {
        self.placement.topology()
    }

    /// The worker → core → node map.
    pub fn placement(&self) -> &WorkerPlacement {
        &self.placement
    }

    /// The shared pool executing every parallel section.
    pub fn pool(&self) -> &SharedWorkerPool {
        &self.pool
    }

    /// The arena all run/partition storage is drawn from (per-node
    /// allocation statistics).
    pub fn arena(&self) -> &NumaArena {
        &self.arena
    }

    /// The node worker `w`'s local memory lives on.
    pub fn worker_node(&self, worker: usize) -> NodeId {
        self.placement.node_of(worker)
    }

    /// The home node the current policy assigns to worker `w`'s
    /// allocations ([`AllocPolicy::WorkerLocal`]: the worker's own
    /// node).
    pub fn home_of(&self, worker: usize) -> NodeId {
        match self.policy {
            AllocPolicy::WorkerLocal => self.placement.node_of(worker),
            AllocPolicy::Pinned(node) => node,
        }
    }

    /// A per-worker recording scope classifying accesses against this
    /// context's placement. Scopes are worker-private (commandment C3:
    /// no shared counters in hot paths); finish them and merge via
    /// [`ExecContext::record`].
    pub fn scope(&self, worker: usize) -> CounterScope {
        CounterScope::new(self.topology().clone(), self.placement.core_of(worker))
    }

    /// Allocate a zeroed buffer of `len` tuples homed per policy for
    /// worker `w`.
    pub fn alloc(&self, worker: usize, len: usize) -> NumaBuf<Tuple> {
        self.arena.alloc(self.home_of(worker), len)
    }

    /// Adopt `data` as worker `w`'s run, homed per policy.
    pub fn adopt(&self, worker: usize, data: Vec<Tuple>) -> NumaBuf<Tuple> {
        self.arena.adopt(self.home_of(worker), data)
    }

    /// The shared run-generation prologue of every MPSM variant: copy
    /// `chunk` into a run homed per policy for worker `w` (recording
    /// the interleaved chunk read and the home-side write), then sort
    /// it in place with the audited three-phase sort. Keeping this in
    /// one place keeps the access model identical across variants —
    /// the `4n`-per-sort-phase total the accounting proptests pin.
    pub fn sorted_run(
        &self,
        worker: usize,
        chunk: &[Tuple],
        scope: &mut CounterScope,
    ) -> NumaBuf<Tuple> {
        scope.touch_interleaved(true, chunk.len() as u64);
        let mut run = self.adopt(worker, chunk.to_vec());
        let home = run.home();
        scope.touch(home, true, chunk.len() as u64);
        self.sort_run(worker, &mut run, home, scope);
        run
    }

    /// Sort `run` in place with this context's [`SortTuning`] and
    /// worker `w`'s reusable scratch, recording the traffic against
    /// `home` — the one sort entry point of every execution path, so
    /// the kernel choice and the allocation-free leaves apply to all
    /// MPSM variants and the scheduler alike.
    pub fn sort_run(
        &self,
        worker: usize,
        run: &mut [Tuple],
        home: NodeId,
        scope: &mut CounterScope,
    ) {
        let mut scratch = self.sort_scratch[worker].lock().expect("sort scratch poisoned");
        crate::sort::three_phase_sort_tuned_audited(
            run,
            home,
            scope,
            &self.sort_tuning,
            &mut scratch,
        );
    }

    /// Merge per-worker counters into the context's tally for `phase`.
    pub fn record(&self, phase: Phase, parts: impl IntoIterator<Item = AccessCounters>) {
        let mut log = self.phase_counters.lock().expect("phase counters poisoned");
        for part in parts {
            log[phase as usize].merge(&part);
        }
    }

    /// Counters recorded for one phase so far.
    pub fn phase_counters(&self, phase: Phase) -> AccessCounters {
        self.phase_counters.lock().expect("phase counters poisoned")[phase as usize].clone()
    }

    /// Counters merged over all phases.
    pub fn counters(&self) -> AccessCounters {
        let log = self.phase_counters.lock().expect("phase counters poisoned");
        AccessCounters::merged(log.iter())
    }

    /// Reset all phase counters (e.g. between two joins sharing one
    /// context in a benchmark loop).
    pub fn reset_counters(&self) {
        *self.phase_counters.lock().expect("phase counters poisoned") = Default::default();
    }

    /// If every worker of this context sits on one node, that node
    /// (what the EXPLAIN `Placement` line reports).
    pub fn single_node(&self) -> Option<NodeId> {
        self.placement.single_node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsm_numa::AccessKind;

    #[test]
    fn flat_context_is_single_node() {
        let cx = ExecContext::flat(4);
        assert_eq!(cx.threads(), 4);
        assert_eq!(cx.single_node(), Some(NodeId(0)));
        for w in 0..4 {
            assert_eq!(cx.worker_node(w), NodeId(0));
            assert_eq!(cx.home_of(w), NodeId(0));
        }
    }

    #[test]
    fn paper_machine_context_spreads_over_sockets() {
        let cx = ExecContext::paper_machine();
        assert_eq!(cx.threads(), 32);
        assert_eq!(cx.single_node(), None);
        assert_eq!(cx.worker_node(0), NodeId(0));
        assert_eq!(cx.worker_node(1), NodeId(1));
        assert_eq!(cx.worker_node(4), NodeId(0));
    }

    #[test]
    fn record_accumulates_per_phase() {
        let cx = ExecContext::flat(2);
        let mut a = AccessCounters::new();
        a.record(AccessKind::LocalSeq, 10);
        let mut b = AccessCounters::new();
        b.record(AccessKind::RemoteRand, 5);
        cx.record(Phase::One, [a]);
        cx.record(Phase::One, [b]);
        assert_eq!(cx.phase_counters(Phase::One).total_accesses(), 15);
        assert_eq!(cx.phase_counters(Phase::Two).total_accesses(), 0);
        assert_eq!(cx.counters().total_accesses(), 15);
        cx.reset_counters();
        assert_eq!(cx.counters().total_accesses(), 0);
    }

    #[test]
    fn allocations_follow_the_policy() {
        let cx = ExecContext::new(Topology::paper_machine(), 8);
        let buf = cx.alloc(3, 16);
        assert_eq!(buf.home(), NodeId(3), "worker 3 sits on node 3");
        let pinned = ExecContext::new(Topology::paper_machine(), 8)
            .alloc_policy(AllocPolicy::Pinned(NodeId(1)));
        assert_eq!(pinned.alloc(3, 16).home(), NodeId(1));
        assert_eq!(pinned.adopt(2, vec![Tuple::new(1, 1)]).home(), NodeId(1));
    }

    #[test]
    fn pinned_derivation_moves_all_workers_to_one_node() {
        let base = ExecContext::new(Topology::paper_machine(), 8);
        let pinned = base.pinned_to(NodeId(2));
        assert_eq!(pinned.single_node(), Some(NodeId(2)));
        assert_eq!(pinned.threads(), 8);
        // Same underlying workers: phases served are visible on both.
        pinned.pool().run(|w| w);
        assert_eq!(base.pool().phases_served(), 1);
        // Fresh counters on the derived context.
        assert_eq!(pinned.counters().total_accesses(), 0);
    }

    #[test]
    fn for_owner_shares_pool_but_not_counters() {
        let base = ExecContext::flat(2);
        let mut c = AccessCounters::new();
        c.record(AccessKind::LocalSeq, 7);
        base.record(Phase::Four, [c]);
        let derived = base.for_owner(9);
        assert_eq!(derived.pool().owner(), 9);
        assert_eq!(derived.counters().total_accesses(), 0);
        assert_eq!(base.counters().total_accesses(), 7);
    }

    #[test]
    fn scopes_classify_against_placement() {
        let cx = ExecContext::new(Topology::paper_machine(), 8);
        let mut scope = cx.scope(1); // worker 1 → node 1
        scope.touch(NodeId(1), true, 10);
        scope.touch(NodeId(0), true, 30);
        let c = scope.finish();
        assert!((c.remote_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sort_tuning_propagates_to_derived_contexts() {
        use crate::sort::{SortKernel, SortTuning};
        let base = ExecContext::flat(2);
        assert_eq!(base.sort_tuning(), SortTuning::current());
        let tuned = ExecContext::flat(2)
            .with_sort_tuning(SortTuning::new(SortKernel::IntrosortInsertion, 16));
        assert_eq!(tuned.for_owner(1).sort_tuning().kernel, SortKernel::IntrosortInsertion);
        assert_eq!(tuned.pinned_to(NodeId(0)).sort_tuning().kernel, SortKernel::IntrosortInsertion);
    }

    #[test]
    fn sort_run_sorts_with_the_context_kernel() {
        use crate::tuple::is_key_sorted;
        let cx = ExecContext::flat(2);
        let mut run: Vec<Tuple> = (0..5000u64).rev().map(|k| Tuple::new(k * 3 % 1000, k)).collect();
        let mut scope = cx.scope(0);
        cx.sort_run(0, &mut run, NodeId(0), &mut scope);
        assert!(is_key_sorted(&run));
        let c = scope.finish();
        assert_eq!(c.total_accesses(), 10_000, "n reads + n writes recorded");
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn pinned_policy_rejects_unknown_node() {
        let _ = ExecContext::flat(2).alloc_policy(AllocPolicy::Pinned(NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "one placed core per pool worker")]
    fn mismatched_placement_rejected() {
        let placement = WorkerPlacement::round_robin(Topology::flat(4), 3);
        let _ = ExecContext::with_placement(placement, SharedWorkerPool::new(4));
    }
}
