//! Radix histograms and synchronization-free prefix sums (§3.2.1).
//!
//! P-MPSM redistributes the private input with a scheme that is
//! *branch-free, comparison-free, and synchronization-free*:
//!
//! 1. every worker radix-clusters its chunk on the highest `B` bits of
//!    the (shift-normalized) join key, producing a local histogram;
//! 2. the local histograms are combined into prefix sums
//!    `ps_i[j] = Σ_{k<i} h_k[j]` — the exact start position of worker
//!    `i`'s sub-partition inside target run `j` (Figure 6);
//! 3. every worker then scatters sequentially into its precomputed,
//!    disjoint windows — no latch, no atomic, no cache-line ping-pong.
//!
//! The histogram granularity `B` also drives skew handling: more bits
//! give the splitter computation (§4.2) a finer view of the key
//! distribution at almost no cost (Figure 9).

use crate::sort::radix::RadixShift;
use crate::tuple::Tuple;

/// A radix bucketing of a key domain: `2^bits` buckets over
/// `[min, max]`, bucket of `key` = `(key - base) >> shift` (clamped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RadixDomain {
    shift: RadixShift,
    bits: u32,
}

impl RadixDomain {
    /// Build a domain for `bits` leading bits over the observed
    /// key range `[min, max]`.
    pub fn from_range(min: u64, max: u64, bits: u32) -> Self {
        assert!(bits > 0 && bits <= 32, "radix bits out of range: {bits}");
        RadixDomain { shift: RadixShift::for_range(min, max, bits), bits }
    }

    /// Scan `relations` for their combined key range and build the
    /// domain from it. Empty input yields a 1-bucket domain over `\[0,0\]`.
    pub fn from_tuples<'a>(relations: impl IntoIterator<Item = &'a [Tuple]>, bits: u32) -> Self {
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut any = false;
        for rel in relations {
            for t in rel {
                min = min.min(t.key);
                max = max.max(t.key);
                any = true;
            }
        }
        if !any {
            (min, max) = (0, 0);
        }
        Self::from_range(min, max, bits)
    }

    /// Number of buckets (`2^bits`).
    pub fn buckets(&self) -> usize {
        1usize << self.bits
    }

    /// Number of leading bits used.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Bucket index of `key`.
    #[inline]
    pub fn bucket_of(&self, key: u64) -> usize {
        if key <= self.shift.base {
            return 0;
        }
        (((key - self.shift.base) >> self.shift.shift) as usize).min(self.buckets() - 1)
    }

    /// Smallest key that maps to bucket `b` (the bucket's lower bound).
    pub fn bucket_lower_bound(&self, b: usize) -> u64 {
        self.shift.base.saturating_add((b as u64) << self.shift.shift)
    }

    /// One-past-the-largest key of bucket `b` (saturating at `u64::MAX`).
    pub fn bucket_upper_bound(&self, b: usize) -> u64 {
        if b + 1 >= self.buckets() {
            u64::MAX
        } else {
            self.bucket_lower_bound(b + 1)
        }
    }
}

/// Histogram of one chunk over the domain's buckets.
pub fn compute_histogram(chunk: &[Tuple], domain: &RadixDomain) -> Vec<usize> {
    let mut counts = vec![0usize; domain.buckets()];
    for t in chunk {
        counts[domain.bucket_of(t.key)] += 1;
    }
    counts
}

/// Fold a bucket histogram into a partition histogram using a
/// bucket→partition `assignment` (monotone, from the splitter phase).
pub fn fold_histogram(bucket_hist: &[usize], assignment: &[u32], parts: usize) -> Vec<usize> {
    assert_eq!(bucket_hist.len(), assignment.len());
    let mut out = vec![0usize; parts];
    for (count, &part) in bucket_hist.iter().zip(assignment) {
        out[part as usize] += count;
    }
    out
}

/// Element-wise sum of per-worker histograms (the global histogram).
pub fn combine_histograms(histograms: &[Vec<usize>]) -> Vec<usize> {
    let Some(first) = histograms.first() else {
        return Vec::new();
    };
    let mut out = vec![0usize; first.len()];
    for h in histograms {
        assert_eq!(h.len(), out.len(), "histogram widths differ");
        for (o, c) in out.iter_mut().zip(h) {
            *o += c;
        }
    }
    out
}

/// The paper's prefix sums (Figure 6): `ps[i][j] = Σ_{k<i} h_k[j]` is
/// the start offset of worker `i`'s sub-partition within target run `j`.
pub fn prefix_sums(histograms: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let workers = histograms.len();
    if workers == 0 {
        return Vec::new();
    }
    let width = histograms[0].len();
    let mut ps = vec![vec![0usize; width]; workers];
    for i in 1..workers {
        for j in 0..width {
            ps[i][j] = ps[i - 1][j] + histograms[i - 1][j];
        }
    }
    ps
}

/// Total size of each target partition: column sums of the histograms.
pub fn partition_sizes(histograms: &[Vec<usize>]) -> Vec<usize> {
    combine_histograms(histograms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuples(keys: &[u64]) -> Vec<Tuple> {
        keys.iter().map(|&k| Tuple::new(k, k)).collect()
    }

    #[test]
    fn paper_figure_6_example() {
        // Figure 6: 5-bit join keys in [0, 32), B = 1 bit → 2 buckets
        // split at 16.
        let domain = RadixDomain::from_range(0, 31, 1);
        let c1 = tuples(&[19, 7, 3, 21, 1, 17, 4]);
        let c2 = tuples(&[2, 23, 4, 31, 8, 20, 26]);
        let h1 = compute_histogram(&c1, &domain);
        let h2 = compute_histogram(&c2, &domain);
        assert_eq!(h1, vec![4, 3], "C1: four < 16, three >= 16");
        assert_eq!(h2, vec![3, 4], "C2: three < 16, four >= 16");
        let ps = prefix_sums(&[h1.clone(), h2.clone()]);
        assert_eq!(ps[0], vec![0, 0], "W1 scatters from position 0");
        assert_eq!(ps[1], vec![4, 3], "W2 starts after W1's counts (paper: ps2)");
        assert_eq!(partition_sizes(&[h1, h2]), vec![7, 7]);
    }

    #[test]
    fn bucket_of_respects_bounds() {
        let domain = RadixDomain::from_range(0, (1 << 32) - 1, 10);
        assert_eq!(domain.buckets(), 1024);
        assert_eq!(domain.bucket_of(0), 0);
        assert_eq!(domain.bucket_of((1 << 32) - 1), 1023);
        // Monotone.
        let mut prev = 0;
        for key in (0u64..1 << 32).step_by(1 << 26) {
            let b = domain.bucket_of(key);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        let domain = RadixDomain::from_range(1000, 9000, 4);
        for b in 0..domain.buckets() {
            let lo = domain.bucket_lower_bound(b);
            if b > 0 {
                assert_eq!(domain.bucket_of(lo), b, "lower bound maps into its own bucket");
            }
            let hi = domain.bucket_upper_bound(b);
            assert!(hi > lo);
        }
        assert_eq!(domain.bucket_upper_bound(domain.buckets() - 1), u64::MAX);
    }

    #[test]
    fn keys_below_base_clamp_to_bucket_zero() {
        let domain = RadixDomain::from_range(100, 200, 3);
        assert_eq!(domain.bucket_of(5), 0);
    }

    #[test]
    fn from_tuples_scans_all_relations() {
        let a = tuples(&[50, 60]);
        let b = tuples(&[10, 90]);
        let domain = RadixDomain::from_tuples([a.as_slice(), b.as_slice()], 2);
        assert_eq!(domain.bucket_of(10), 0);
        // The max key lands in a high (not necessarily the last) bucket:
        // the shift guarantees the span fits, not that it fills.
        assert!(domain.bucket_of(90) >= domain.buckets() / 2);
        assert!(domain.bucket_of(90) < domain.buckets());
    }

    #[test]
    fn empty_relations_make_trivial_domain() {
        let domain = RadixDomain::from_tuples(std::iter::empty::<&[Tuple]>(), 4);
        // Degenerate [0, 0] domain: any key clamps into a valid bucket.
        assert!(domain.bucket_of(123) < domain.buckets());
        assert_eq!(domain.bucket_of(0), 0);
    }

    #[test]
    fn fold_maps_buckets_to_partitions() {
        let bucket_hist = vec![5, 3, 2, 1];
        let assignment = vec![0, 0, 1, 1];
        assert_eq!(fold_histogram(&bucket_hist, &assignment, 2), vec![8, 3]);
    }

    #[test]
    fn prefix_sums_are_exclusive_running_totals() {
        let hs = vec![vec![2, 1], vec![3, 4], vec![1, 1]];
        let ps = prefix_sums(&hs);
        assert_eq!(ps, vec![vec![0, 0], vec![2, 1], vec![5, 5]]);
    }

    #[test]
    fn combine_histograms_sums_columns() {
        let hs = vec![vec![1, 2, 3], vec![4, 5, 6]];
        assert_eq!(combine_histograms(&hs), vec![5, 7, 9]);
    }

    #[test]
    fn histogram_counts_every_tuple() {
        let domain = RadixDomain::from_range(0, 1023, 6);
        let chunk: Vec<Tuple> = (0..1024u64).map(|k| Tuple::new(k, 0)).collect();
        let h = compute_histogram(&chunk, &domain);
        assert_eq!(h.iter().sum::<usize>(), 1024);
        assert_eq!(h.len(), 64);
        assert!(h.iter().all(|&c| c == 16), "uniform keys spread uniformly");
    }
}
