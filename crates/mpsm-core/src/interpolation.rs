//! Interpolation search for merge-join start points (§3.2.2, Figure 7).
//!
//! After range partitioning, a private run `R_i` joins with only a
//! fraction of each public run `S_j`. Scanning for the start of that
//! fraction would cost `|S_j| / T` comparisons per run; the paper
//! instead probes with *interpolation search*: assume keys are locally
//! linear, compute the proportional position, and iteratively narrow.
//! On uniform data this converges in `O(log log n)` steps.
//!
//! The implementation is defensive where the paper can afford not to
//! be: heavy duplicates or adversarial distributions make the
//! proportional guess degenerate, so after a bounded number of
//! interpolation steps it falls back to binary search — preserving the
//! `O(log n)` worst case while keeping the uniform-case win.

use crate::tuple::Tuple;

/// Maximum interpolation iterations before falling back to binary
/// search. Uniform data converges in ~`log log n` (< 6 for 2^64).
const MAX_INTERPOLATION_STEPS: u32 = 16;

/// Below this range size, finish with a linear scan: cheaper than more
/// arithmetic.
const LINEAR_CUTOFF: usize = 16;

/// First index in the key-sorted `run` whose key is `>= key`
/// (`run.len()` if none). Exactly `partition_point(|t| t.key < key)`,
/// computed with interpolation.
pub fn interpolation_lower_bound(run: &[Tuple], key: u64) -> usize {
    let mut lo = 0usize;
    let mut hi = run.len();
    let mut steps = 0u32;

    while hi - lo > LINEAR_CUTOFF {
        let k_lo = run[lo].key;
        if key <= k_lo {
            return lo;
        }
        let k_hi = run[hi - 1].key;
        if key > k_hi {
            return hi;
        }
        if k_lo == k_hi || steps >= MAX_INTERPOLATION_STEPS {
            // Degenerate span or slow convergence: binary search the rest.
            return lo + run[lo..hi].partition_point(|t| t.key < key);
        }
        steps += 1;
        // Rule of proportion over the current search space (Figure 7):
        // most probable position of `key` in [lo, hi).
        let span = (hi - lo - 1) as u128;
        let guess = lo + ((key - k_lo) as u128 * span / (k_hi - k_lo) as u128) as usize;
        let guess = guess.clamp(lo, hi - 1);
        if run[guess].key < key {
            lo = guess + 1;
        } else {
            hi = guess + 1;
            // `run[guess] >= key` keeps the answer in [lo, guess];
            // shrink hi towards it but keep the probe inside so the
            // boundary `k_hi` stays a valid interpolation anchor.
        }
    }

    lo + run[lo..hi].partition_point(|t| t.key < key)
}

/// First index in `run` whose key is strictly `> key` — the end of the
/// group of `key` duplicates.
pub fn interpolation_upper_bound(run: &[Tuple], key: u64) -> usize {
    if key == u64::MAX {
        return run.len();
    }
    interpolation_lower_bound(run, key + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_of(keys: &[u64]) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = keys.iter().map(|&k| Tuple::new(k, 0)).collect();
        v.sort_unstable_by_key(|t| t.key);
        v
    }

    fn reference(run: &[Tuple], key: u64) -> usize {
        run.partition_point(|t| t.key < key)
    }

    #[test]
    fn matches_partition_point_on_uniform_data() {
        let run = run_of(&(0..10_000u64).map(|i| i * 7).collect::<Vec<_>>());
        for key in [0u64, 1, 6, 7, 35_000, 69_993, 69_994, 100_000] {
            assert_eq!(interpolation_lower_bound(&run, key), reference(&run, key), "key {key}");
        }
    }

    #[test]
    fn exhaustive_small_runs() {
        for len in 0..40u64 {
            let run = run_of(&(0..len).map(|i| i * 3 + 1).collect::<Vec<_>>());
            for key in 0..(len * 3 + 5) {
                assert_eq!(
                    interpolation_lower_bound(&run, key),
                    reference(&run, key),
                    "len {len}, key {key}"
                );
            }
        }
    }

    #[test]
    fn duplicate_heavy_runs() {
        let run = run_of(&[5; 1000].map(|x: u64| x));
        assert_eq!(interpolation_lower_bound(&run, 4), 0);
        assert_eq!(interpolation_lower_bound(&run, 5), 0);
        assert_eq!(interpolation_lower_bound(&run, 6), 1000);
        assert_eq!(interpolation_upper_bound(&run, 5), 1000);
    }

    #[test]
    fn clustered_adversarial_distribution() {
        // Highly non-linear: interpolation's guesses are terrible; the
        // fallback must still give the right answer.
        let mut keys = vec![0u64; 500];
        keys.extend(std::iter::repeat_n(u64::MAX / 2, 500));
        keys.extend((0..500).map(|i| u64::MAX - 500 + i));
        let run = run_of(&keys);
        for key in
            [0, 1, u64::MAX / 2 - 1, u64::MAX / 2, u64::MAX / 2 + 1, u64::MAX - 250, u64::MAX]
        {
            assert_eq!(interpolation_lower_bound(&run, key), reference(&run, key), "key {key}");
        }
    }

    #[test]
    fn skewed_80_20_distribution() {
        let mut state = 7u64;
        let mut keys = Vec::with_capacity(20_000);
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = state >> 33;
            keys.push(if r % 10 < 8 { r % 2000 } else { 2000 + r % 1_000_000 });
        }
        let run = run_of(&keys);
        for probe in (0..1_002_000).step_by(9973) {
            assert_eq!(interpolation_lower_bound(&run, probe), reference(&run, probe));
        }
    }

    #[test]
    fn empty_and_boundary() {
        assert_eq!(interpolation_lower_bound(&[], 7), 0);
        let run = run_of(&[10, 20, 30]);
        assert_eq!(interpolation_lower_bound(&run, 0), 0);
        assert_eq!(interpolation_lower_bound(&run, 10), 0);
        assert_eq!(interpolation_lower_bound(&run, 11), 1);
        assert_eq!(interpolation_lower_bound(&run, 30), 2);
        assert_eq!(interpolation_lower_bound(&run, 31), 3);
        assert_eq!(interpolation_upper_bound(&run, u64::MAX), 3);
    }

    #[test]
    fn upper_bound_ends_duplicate_group() {
        let run = run_of(&[1, 2, 2, 2, 3]);
        assert_eq!(interpolation_upper_bound(&run, 2), 4);
        assert_eq!(interpolation_lower_bound(&run, 2), 1);
    }

    #[test]
    fn converges_fast_on_uniform_keys() {
        // Not a strict O(log log n) proof, but the probe count must stay
        // far below binary search's log2(n) ≈ 20.
        let run = run_of(&(0..1_000_000u64).collect::<Vec<_>>());
        // Correctness at many probe points implies the loop terminated
        // within its step budget (the budget is 16 < 20 bisections).
        for key in (0..1_000_000).step_by(99_991) {
            assert_eq!(interpolation_lower_bound(&run, key), key as usize);
        }
    }
}
