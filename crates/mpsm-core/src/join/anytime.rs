//! Anytime (interruptible) run-set merging — MPSM's phase 4 as a
//! *degradable* operator.
//!
//! MPSM is naturally anytime: [`build_run_set`](super::runs::build_run_set)
//! produces runs covering **ascending disjoint key ranges**, so merging
//! run 0, then run 1, … advances monotonically through the sorted key
//! domain. A merge interrupted after the first `k` units has joined a
//! *downward-closed prefix* of the key domain — a well-defined partial
//! answer ("joined through key `x`, covering `c%` of the input"), not an
//! arbitrary subset.
//!
//! [`merge_run_sets_anytime`] exploits this: it processes the private
//! runs in ascending order, in key-group-aligned blocks of roughly
//! [`ANYTIME_BLOCK_TUPLES`] tuples, and consults an [`AnytimeToken`]
//! before dispatching each block to the pool. When the token expires the
//! merge stops *between* blocks, so every retained match comes from a
//! fully merged block and the covered key set stays downward-closed.
//! Blocks never split a key group (a boundary is extended past duplicate
//! keys), which gives the **prefix contract**: for every covered key the
//! partial result holds *all* of the full join's matches, and therefore
//! the partial rows — sorted by `(key, r_payload, s_payload)` — are
//! exactly a prefix of the sorted full join.
//!
//! Coverage is reported as merged private tuples over total private
//! tuples. Runs are equi-height (built from the relation's own
//! histogram), so the tuple fraction is the natural estimator of the
//! key-domain fraction covered. Alongside the scalar, the outcome
//! carries a per-key-range histogram ([`KeyRangeCoverage`], one entry
//! per non-empty private run) that shows *where* in the key domain the
//! merge stopped.
//!
//! [`merge_run_sets_anytime_capped`] adds a row cap for materializing
//! sinks: once at least `rows_cap` rows exist the merge stops between
//! blocks, so `LIMIT`-style queries stop paying for rows their caller
//! will discard.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::context::ExecContext;
use crate::interpolation::interpolation_lower_bound;
use crate::merge::merge_join_scanned;
use crate::sink::JoinSink;
use crate::stats::{JoinStats, Phase};
use crate::tuple::Tuple;

/// Target tuples per interruption block. The driver checks the token
/// once per block, so this bounds how far a merge overshoots its
/// deadline: one block of private tuples (times the matching public
/// work). Blocks are extended past duplicate keys, so a block may be
/// larger when a key group straddles the boundary.
pub const ANYTIME_BLOCK_TUPLES: usize = 4096;

/// When an anytime merge must stop. Checked by the *driver* thread
/// between blocks — never inside the hot merge kernel, and never
/// concurrently — so budget-based tokens are fully deterministic.
#[derive(Debug, Clone)]
pub enum AnytimeToken {
    /// Never expires: the merge runs to completion (the non-anytime
    /// behaviour, with identical results).
    Never,
    /// Expires once the wall clock passes the instant (an absolute
    /// deadline; schedulers compute it at submit time so the SLA
    /// includes queue wait).
    Deadline(Instant),
    /// Expires after a fixed number of checks: check `n` and later
    /// report expired. Deterministic — block merge order is fixed and
    /// only the driver consults the token — which is what makes
    /// coverage-monotonicity properties testable without wall-clock
    /// flakiness.
    Budget(Arc<AtomicI64>),
}

impl AnytimeToken {
    /// A token that never expires.
    pub fn never() -> Self {
        AnytimeToken::Never
    }

    /// A token expiring at the absolute instant.
    pub fn at(deadline: Instant) -> Self {
        AnytimeToken::Deadline(deadline)
    }

    /// A token expiring `timeout` from now.
    pub fn deadline_in(timeout: Duration) -> Self {
        AnytimeToken::Deadline(Instant::now() + timeout)
    }

    /// A deterministic token allowing exactly `checks` successful
    /// checks before reporting expiry.
    pub fn budget(checks: u64) -> Self {
        AnytimeToken::Budget(Arc::new(AtomicI64::new(checks.min(i64::MAX as u64) as i64)))
    }

    /// Consult the token. Budget tokens count this call.
    pub fn expired(&self) -> bool {
        match self {
            AnytimeToken::Never => false,
            AnytimeToken::Deadline(at) => Instant::now() >= *at,
            AnytimeToken::Budget(left) => left.fetch_sub(1, Ordering::Relaxed) <= 0,
        }
    }
}

/// Coverage of one private key range (one non-empty private run) in an
/// anytime merge: how much of the run's `[lo, hi]` key span was merged
/// before the merge stopped. Runs cover ascending disjoint ranges, so
/// the vector of these reads as a small histogram over the key domain —
/// fully merged ranges at 1.0, the in-progress range somewhere between,
/// unreached ranges at 0.0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyRangeCoverage {
    /// Smallest key in the range.
    pub lo: u64,
    /// Largest key in the range.
    pub hi: u64,
    /// Fraction of the range's tuples merged, in `[0, 1]`.
    pub fraction: f64,
}

/// What an interruptible merge produced: the (possibly partial) sink
/// result plus exactly how much of the private input it covered.
#[derive(Debug, Clone)]
pub struct AnytimeOutcome<R> {
    /// The combined sink result over every fully merged block.
    pub result: R,
    /// Private runs merged to completion (prefix of the run order).
    pub merged_runs: usize,
    /// Private runs in the set.
    pub total_runs: usize,
    /// Private tuples in fully merged blocks.
    pub merged_tuples: usize,
    /// Private tuples in the set.
    pub total_tuples: usize,
    /// Whether the merge ran to completion (`coverage() == 1.0`).
    pub complete: bool,
    /// Per-key-range coverage, one entry per non-empty private run in
    /// ascending key order (see [`KeyRangeCoverage`]).
    pub ranges: Vec<KeyRangeCoverage>,
    /// Whether the merge stopped early because a `rows_cap` was
    /// satisfied (see [`merge_run_sets_anytime_capped`]) rather than
    /// because the token expired.
    pub capped: bool,
}

impl<R> AnytimeOutcome<R> {
    /// Fraction of the private input merged, in `[0, 1]`. Equi-height
    /// runs make this the estimator of the key-domain fraction covered.
    /// An empty private input counts as fully covered.
    pub fn coverage(&self) -> f64 {
        if self.total_tuples == 0 {
            1.0
        } else {
            self.merged_tuples as f64 / self.total_tuples as f64
        }
    }
}

/// Split `run` into blocks of roughly `target` tuples whose boundaries
/// never divide a key group: a boundary landing inside a group of equal
/// keys is pushed past it, so each key of the run lives in exactly one
/// block. Returns the block end offsets (ascending, last == `run.len()`).
fn key_aligned_block_ends(run: &[Tuple], target: usize) -> Vec<usize> {
    let target = target.max(1);
    let mut ends = Vec::with_capacity(run.len() / target + 1);
    let mut end = 0;
    while end < run.len() {
        end = (end + target).min(run.len());
        while end < run.len() && run[end].key == run[end - 1].key {
            end += 1;
        }
        ends.push(end);
    }
    ends
}

/// Phase 4 over two run sets, interruptible between key-aligned blocks.
///
/// Identical matching semantics to
/// [`merge_run_sets_in`](super::runs::merge_run_sets_in) when the token
/// never expires: every private run merges with every public run from
/// an interpolation-searched entry point. The difference is the work
/// order — private runs are processed strictly ascending (run 0 first),
/// one block at a time, with the pool parallelizing each block across
/// the *public* runs — and the token check between blocks. Time and
/// access counters book under [`Phase::Four`], as on the
/// non-interruptible path.
pub fn merge_run_sets_anytime<S: JoinSink>(
    cx: &ExecContext,
    r_runs: &super::runs::RunSet,
    s_runs: &super::runs::RunSet,
    token: &AnytimeToken,
    stats: &mut JoinStats,
) -> AnytimeOutcome<S::Result> {
    merge_run_sets_anytime_capped::<S>(cx, r_runs, s_runs, token, None, stats)
}

/// [`merge_run_sets_anytime`] with a row cap: the merge additionally
/// stops — between blocks, preserving the prefix contract — once the
/// sink has materialized at least `rows_cap` rows, so a capped query
/// stops paying for rows its caller will discard. The cap is only
/// consulted for sinks whose [`JoinSink::result_len`] reports a count;
/// aggregating sinks ignore it. A cap-stopped outcome has
/// [`AnytimeOutcome::capped`] set and reports the coverage actually
/// merged, exactly like a token expiry.
pub fn merge_run_sets_anytime_capped<S: JoinSink>(
    cx: &ExecContext,
    r_runs: &super::runs::RunSet,
    s_runs: &super::runs::RunSet,
    token: &AnytimeToken,
    rows_cap: Option<usize>,
    stats: &mut JoinStats,
) -> AnytimeOutcome<S::Result> {
    let t = cx.threads();
    let pool = cx.pool();
    let total_runs = r_runs.parts();
    let total_tuples = r_runs.total_tuples();
    let mut d4 = vec![Duration::ZERO; t];
    let mut partials: Vec<S::Result> = Vec::new();
    let mut merged_runs = 0;
    let mut merged_tuples = 0;
    let mut expired = false;
    let mut capped = false;
    let mut produced_rows = 0usize;
    // One histogram slot per non-empty run, ascending; fractions are
    // filled in as blocks merge and stay 0.0 for unreached ranges.
    let mut ranges: Vec<KeyRangeCoverage> = r_runs
        .runs()
        .iter()
        .filter(|run| !run.is_empty())
        .map(|run| KeyRangeCoverage { lo: run[0].key, hi: run[run.len() - 1].key, fraction: 0.0 })
        .collect();
    let mut range_idx = 0;

    'runs: for run in r_runs.runs() {
        if run.is_empty() {
            // Nothing to merge; an empty run completes for free (no
            // token charge — it covers no tuples and no key range that
            // matters for the prefix contract).
            merged_runs += 1;
            continue;
        }
        let ends = key_aligned_block_ends(run, ANYTIME_BLOCK_TUPLES);
        let mut start = 0;
        for &end in &ends {
            if token.expired() {
                expired = true;
                break 'runs;
            }
            let block = &run[start..end];
            let block_home = run.home();
            let first_key = block[0].key;
            let (phase, d_block) = pool.run_timed(|w| {
                let mut scope = cx.scope(w);
                let mut sink = S::default();
                for sp in (w..s_runs.parts()).step_by(t.max(1)) {
                    let s_run = &s_runs.runs()[sp];
                    let entry = interpolation_lower_bound(s_run, first_key);
                    if !s_run.is_empty() {
                        scope.touch(s_run.home(), false, (s_run.len() as u64).ilog2() as u64 + 1);
                    }
                    let scan = merge_join_scanned(block, &s_run[entry..], &mut sink);
                    scope.touch(block_home, true, scan.r_scanned as u64);
                    scope.touch(s_run.home(), true, scan.s_scanned as u64);
                }
                (sink.finish(), scope.finish())
            });
            let (block_partials, c_block): (Vec<_>, Vec<_>) = phase.into_iter().unzip();
            for (acc, d) in d4.iter_mut().zip(&d_block) {
                *acc += *d;
            }
            cx.record(Phase::Four, c_block);
            let combined = S::combine_all(block_partials);
            if let Some(n) = S::result_len(&combined) {
                produced_rows += n;
            }
            partials.push(combined);
            merged_tuples += block.len();
            ranges[range_idx].fraction = (end as f64) / (run.len() as f64);
            start = end;
            if rows_cap.is_some_and(|cap| produced_rows >= cap) {
                capped = true;
                if start == run.len() {
                    merged_runs += 1;
                }
                break 'runs;
            }
        }
        if start == run.len() {
            merged_runs += 1;
        }
        range_idx += 1;
    }

    stats.record_phase(Phase::Four, &d4);
    AnytimeOutcome {
        result: S::combine_all(partials),
        merged_runs,
        total_runs,
        merged_tuples,
        total_tuples,
        complete: !expired && merged_tuples == total_tuples,
        ranges,
        capped,
    }
}

#[cfg(test)]
mod tests {
    use super::super::runs::{build_run_set, merge_run_sets_in, RunSet};
    use super::*;
    use crate::sink::{CollectSink, CountSink, MaxAggSink};

    fn lcg(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed | 1;
        move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 32
        }
    }

    fn random(n: usize, domain: u64, seed: u64) -> Vec<Tuple> {
        let mut next = lcg(seed);
        (0..n).map(|i| Tuple::new(next() % domain, i as u64)).collect()
    }

    fn sets(r: &[Tuple], s: &[Tuple], cx: &ExecContext) -> (RunSet, RunSet) {
        let mut stats = JoinStats::new(cx.threads());
        let r_runs = build_run_set(cx, r, 10, Phase::Two, Phase::Three, &mut stats);
        let s_runs = build_run_set(cx, s, 10, Phase::One, Phase::One, &mut stats);
        (r_runs, s_runs)
    }

    fn sorted_rows(mut rows: Vec<(u64, u64, u64)>) -> Vec<(u64, u64, u64)> {
        rows.sort_unstable();
        rows
    }

    #[test]
    fn never_expiring_token_matches_the_plain_merge() {
        let r = random(5000, 900, 3);
        let s = random(9000, 900, 5);
        let cx = ExecContext::flat(4);
        let (r_runs, s_runs) = sets(&r, &s, &cx);
        let mut stats = JoinStats::new(4);
        let full = merge_run_sets_in::<CountSink>(&cx, &r_runs, &s_runs, &mut stats);
        let mut stats = JoinStats::new(4);
        let out = merge_run_sets_anytime::<CountSink>(
            &cx,
            &r_runs,
            &s_runs,
            &AnytimeToken::never(),
            &mut stats,
        );
        assert_eq!(out.result, full);
        assert!(out.complete);
        assert_eq!(out.merged_runs, out.total_runs);
        assert_eq!(out.merged_tuples, r.len());
        assert!((out.coverage() - 1.0).abs() < 1e-12);
        let [.., p4] = stats.phases_ms();
        assert!(p4 >= 0.0, "merge time books under phase 4");
    }

    #[test]
    fn zero_budget_merges_nothing() {
        let r = random(2000, 300, 7);
        let s = random(2000, 300, 9);
        let cx = ExecContext::flat(2);
        let (r_runs, s_runs) = sets(&r, &s, &cx);
        let mut stats = JoinStats::new(2);
        let out = merge_run_sets_anytime::<CountSink>(
            &cx,
            &r_runs,
            &s_runs,
            &AnytimeToken::budget(0),
            &mut stats,
        );
        assert_eq!(out.result, 0);
        assert!(!out.complete);
        assert_eq!(out.merged_tuples, 0);
        assert_eq!(out.coverage(), 0.0);
    }

    #[test]
    fn coverage_is_monotone_in_the_budget_and_rows_are_a_prefix() {
        // Duplicate-heavy input so key groups straddle block targets.
        let r = random(6000, 150, 11);
        let s = random(3000, 150, 13);
        let cx = ExecContext::flat(3);
        let (r_runs, s_runs) = sets(&r, &s, &cx);
        let mut stats = JoinStats::new(3);
        let full = sorted_rows(
            merge_run_sets_anytime::<CollectSink>(
                &cx,
                &r_runs,
                &s_runs,
                &AnytimeToken::never(),
                &mut stats,
            )
            .result,
        );
        let mut last_coverage = -1.0f64;
        for budget in 0..8u64 {
            let mut stats = JoinStats::new(3);
            let out = merge_run_sets_anytime::<CollectSink>(
                &cx,
                &r_runs,
                &s_runs,
                &AnytimeToken::budget(budget),
                &mut stats,
            );
            let coverage = out.coverage();
            assert!(
                coverage >= last_coverage,
                "coverage must grow with the budget: {coverage} after {last_coverage}"
            );
            last_coverage = coverage;
            let rows = sorted_rows(out.result);
            assert_eq!(
                rows.as_slice(),
                &full[..rows.len()],
                "budget {budget}: partial rows must be a key-order prefix of the full join"
            );
            if out.complete {
                assert_eq!(rows.len(), full.len());
            }
        }
    }

    #[test]
    fn partial_max_never_exceeds_the_full_answer() {
        let r = random(4000, 500, 17);
        let s = random(4000, 500, 19);
        let cx = ExecContext::flat(2);
        let (r_runs, s_runs) = sets(&r, &s, &cx);
        let mut stats = JoinStats::new(2);
        let full = merge_run_sets_anytime::<MaxAggSink>(
            &cx,
            &r_runs,
            &s_runs,
            &AnytimeToken::never(),
            &mut stats,
        );
        for budget in [1u64, 2, 3] {
            let mut stats = JoinStats::new(2);
            let part = merge_run_sets_anytime::<MaxAggSink>(
                &cx,
                &r_runs,
                &s_runs,
                &AnytimeToken::budget(budget),
                &mut stats,
            );
            if let Some(m) = part.result {
                assert!(m <= full.result.expect("full join is non-empty"));
            }
        }
    }

    #[test]
    fn empty_private_input_is_complete_with_full_coverage() {
        let s = random(500, 64, 23);
        let cx = ExecContext::flat(2);
        let (r_runs, s_runs) = sets(&[], &s, &cx);
        let mut stats = JoinStats::new(2);
        let out = merge_run_sets_anytime::<CountSink>(
            &cx,
            &r_runs,
            &s_runs,
            &AnytimeToken::budget(0),
            &mut stats,
        );
        assert_eq!(out.result, 0);
        assert!(out.complete, "no work to interrupt");
        assert_eq!(out.coverage(), 1.0);
    }

    #[test]
    fn block_ends_never_split_a_key_group() {
        let mut run: Vec<Tuple> = Vec::new();
        for key in 0..40u64 {
            for i in 0..(1 + key % 7) {
                run.push(Tuple::new(key, i));
            }
        }
        let ends = key_aligned_block_ends(&run, 16);
        assert_eq!(*ends.last().expect("non-empty"), run.len());
        let mut prev = 0;
        for &end in &ends {
            assert!(end > prev, "blocks advance");
            if end < run.len() {
                assert_ne!(run[end - 1].key, run[end].key, "boundary splits a key group");
            }
            prev = end;
        }
        // A single giant key group becomes one block.
        let dup: Vec<Tuple> = (0..100).map(|i| Tuple::new(7, i)).collect();
        assert_eq!(key_aligned_block_ends(&dup, 8), vec![100]);
    }

    #[test]
    fn range_histogram_tracks_where_the_merge_stopped() {
        let r = random(6000, 400, 29);
        let s = random(3000, 400, 31);
        let cx = ExecContext::flat(3);
        let (r_runs, s_runs) = sets(&r, &s, &cx);
        // Full merge: every range at 1.0, ascending and disjoint.
        let mut stats = JoinStats::new(3);
        let full = merge_run_sets_anytime::<CountSink>(
            &cx,
            &r_runs,
            &s_runs,
            &AnytimeToken::never(),
            &mut stats,
        );
        assert!(!full.ranges.is_empty());
        assert!(full.ranges.iter().all(|kr| (kr.fraction - 1.0).abs() < 1e-12));
        assert!(full.ranges.iter().all(|kr| kr.lo <= kr.hi));
        assert!(
            full.ranges.windows(2).all(|w| w[0].hi <= w[1].lo),
            "ranges cover ascending disjoint key spans: {:?}",
            full.ranges
        );
        assert!(!full.capped);
        // An interrupted merge: fully merged ranges first, then at most
        // one partially merged range, then zeros — a downward-closed
        // key prefix, in histogram form.
        let mut stats = JoinStats::new(3);
        let part = merge_run_sets_anytime::<CountSink>(
            &cx,
            &r_runs,
            &s_runs,
            &AnytimeToken::budget(2),
            &mut stats,
        );
        assert!(!part.complete);
        assert_eq!(part.ranges.len(), full.ranges.len());
        let mut seen_partial = false;
        for kr in &part.ranges {
            if seen_partial {
                assert_eq!(kr.fraction, 0.0, "nothing merges past the stop point: {kr:?}");
            } else if kr.fraction < 1.0 {
                seen_partial = true;
            }
        }
        let scalar = part.coverage();
        let from_hist: f64 = part
            .ranges
            .iter()
            .zip(r_runs.runs().iter().filter(|run| !run.is_empty()))
            .map(|(kr, run)| kr.fraction * run.len() as f64)
            .sum::<f64>()
            / r.len() as f64;
        assert!((scalar - from_hist).abs() < 1e-9, "histogram refines the scalar");
    }

    #[test]
    fn rows_cap_stops_the_merge_between_blocks() {
        // Enough tuples for several blocks per run.
        let r = random(20_000, 5_000, 37);
        let s = random(20_000, 5_000, 41);
        let cx = ExecContext::flat(2);
        let (r_runs, s_runs) = sets(&r, &s, &cx);
        let mut stats = JoinStats::new(2);
        let full = merge_run_sets_anytime::<CollectSink>(
            &cx,
            &r_runs,
            &s_runs,
            &AnytimeToken::never(),
            &mut stats,
        );
        let full_rows = sorted_rows(full.result);
        let cap = 64;
        let mut stats = JoinStats::new(2);
        let out = merge_run_sets_anytime_capped::<CollectSink>(
            &cx,
            &r_runs,
            &s_runs,
            &AnytimeToken::never(),
            Some(cap),
            &mut stats,
        );
        assert!(out.capped, "cap must trigger before the merge finishes");
        assert!(
            out.merged_tuples < out.total_tuples,
            "the cap stops merge work early: {}/{}",
            out.merged_tuples,
            out.total_tuples
        );
        assert!(out.result.len() >= cap, "cap satisfied before stopping");
        // Sorted-and-truncated, the capped rows are a prefix of the
        // full join: every merged block is complete, in key order.
        let rows = sorted_rows(out.result);
        assert_eq!(&rows[..cap], &full_rows[..cap]);
        // Aggregating sinks never cap.
        let mut stats = JoinStats::new(2);
        let agg = merge_run_sets_anytime_capped::<CountSink>(
            &cx,
            &r_runs,
            &s_runs,
            &AnytimeToken::never(),
            Some(cap),
            &mut stats,
        );
        assert!(agg.complete && !agg.capped, "a counting sink reports no rows to cap on");
    }

    #[test]
    fn token_constructors_behave() {
        assert!(!AnytimeToken::never().expired());
        assert!(AnytimeToken::at(Instant::now() - Duration::from_millis(1)).expired());
        assert!(!AnytimeToken::deadline_in(Duration::from_secs(3600)).expired());
        let b = AnytimeToken::budget(2);
        assert!(!b.expired());
        assert!(!b.expired());
        assert!(b.expired(), "third check exceeds a budget of 2");
        assert!(b.expired(), "expiry is sticky");
    }
}
