//! B-MPSM: the basic massively parallel sort-merge join (§2.1, Figure 3).
//!
//! Three phases, `T` workers:
//!
//! 1. chunk the public input `S`; every worker sorts its chunk into a
//!    run `S_i` (local memory only — commandment C1);
//! 2. chunk the private input `R`; every worker sorts its chunk into a
//!    run `R_i`;
//! 3. every worker merge-joins its own `R_i` against **all** public runs
//!    `S_1 … S_T` (sequential scans only — commandment C2).
//!
//! There is a single synchronization point — public runs must exist
//! before the join phase — and no shared mutable state (commandment C3).
//! Because no range partitioning happens, B-MPSM is "absolutely
//! insensitive to any kind of skew": every worker touches exactly
//! `|R|/T + |S|` tuples in phase 3 no matter how the keys are
//! distributed. The price is that the join phase does not shrink as `T`
//! grows — the motivation for P-MPSM (§2.2).

use crate::context::ExecContext;
use crate::join::variant::{band_merge_join, emit_variant_rows, merge_join_mark, JoinVariant};
use crate::join::{JoinAlgorithm, JoinConfig, PooledJoin};
use crate::merge::merge_join_scanned;
use crate::sink::JoinSink;
use crate::stats::{JoinStats, Phase};
use crate::tuple::Tuple;
use crate::worker::{chunk_ranges, SharedWorkerPool};

/// The basic MPSM join.
#[derive(Debug, Clone)]
pub struct BMpsmJoin {
    config: JoinConfig,
}

impl BMpsmJoin {
    /// Create a B-MPSM join with the given configuration.
    pub fn new(config: JoinConfig) -> Self {
        BMpsmJoin { config }
    }

    /// Access the configuration.
    pub fn config(&self) -> &JoinConfig {
        &self.config
    }
}

impl BMpsmJoin {
    /// Run a non-inner variant (left-outer / left-semi / left-anti on
    /// the private side).
    pub fn join_variant_with_sink<S: JoinSink>(
        &self,
        variant: JoinVariant,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats) {
        self.execute::<S>(&ExecContext::flat(self.config.threads), Kernel::Variant(variant), r, s)
    }

    /// Band (non-equi) join: all pairs with `|r.key − s.key| ≤ delta`.
    /// B-MPSM's topology — every worker scans all of S — makes band
    /// predicates correct without partition-boundary replication.
    pub fn band_join_with_sink<S: JoinSink>(
        &self,
        delta: u64,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats) {
        self.execute::<S>(&ExecContext::flat(self.config.threads), Kernel::Band(delta), r, s)
    }

    /// [`BMpsmJoin::join_variant_with_sink`] on a caller-provided
    /// shared pool (the pool's width is the worker count `T`).
    pub fn join_variant_with_sink_on<S: JoinSink>(
        &self,
        pool: &SharedWorkerPool,
        variant: JoinVariant,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats) {
        self.execute::<S>(&ExecContext::over_pool(pool), Kernel::Variant(variant), r, s)
    }

    /// [`BMpsmJoin::join_variant_with_sink`] inside an execution
    /// context (placement-aware storage and access audit; the context's
    /// pool width is the worker count `T`).
    pub fn join_variant_in<S: JoinSink>(
        &self,
        cx: &ExecContext,
        variant: JoinVariant,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats) {
        self.execute::<S>(cx, Kernel::Variant(variant), r, s)
    }

    /// [`BMpsmJoin::band_join_with_sink`] inside an execution context.
    pub fn band_join_in<S: JoinSink>(
        &self,
        cx: &ExecContext,
        delta: u64,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats) {
        self.execute::<S>(cx, Kernel::Band(delta), r, s)
    }
}

/// Which merge kernel phase 3 runs.
#[derive(Debug, Clone, Copy)]
enum Kernel {
    Variant(JoinVariant),
    Band(u64),
}

impl JoinAlgorithm for BMpsmJoin {
    fn name(&self) -> &'static str {
        "B-MPSM"
    }

    fn join_with_sink<S: JoinSink>(&self, r: &[Tuple], s: &[Tuple]) -> (S::Result, JoinStats) {
        self.execute::<S>(
            &ExecContext::flat(self.config.threads),
            Kernel::Variant(JoinVariant::Inner),
            r,
            s,
        )
    }

    fn join_in<S: JoinSink>(
        &self,
        cx: &ExecContext,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats) {
        self.execute::<S>(cx, Kernel::Variant(JoinVariant::Inner), r, s)
    }
}

impl PooledJoin for BMpsmJoin {}

impl BMpsmJoin {
    fn execute<S: JoinSink>(
        &self,
        cx: &ExecContext,
        kernel: Kernel,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats) {
        // The context decides the worker count (see `JoinAlgorithm::join_in`).
        let t = cx.threads();
        let pool = cx.pool();
        let (r, s, _swapped) = self.config.assign_roles(r, s);
        let wall = std::time::Instant::now();
        let mut stats = JoinStats::new(t);

        // Phase 1: sorted public runs (copy the interleaved chunk into
        // node-homed storage, sort there — the copy is the paper's
        // "redistribute, then work locally").
        let s_ranges = chunk_ranges(s.len(), t);
        let (phase1, d1) = pool.run_timed(|w| {
            let mut scope = cx.scope(w);
            let run = cx.sorted_run(w, &s[s_ranges[w].clone()], &mut scope);
            (run, scope.finish())
        });
        let (s_runs, c1): (Vec<_>, Vec<_>) = phase1.into_iter().unzip();
        stats.record_phase(Phase::One, &d1);
        cx.record(Phase::One, c1);

        // Phase 2: sorted private runs.
        let r_ranges = chunk_ranges(r.len(), t);
        let (phase2, d2) = pool.run_timed(|w| {
            let mut scope = cx.scope(w);
            let run = cx.sorted_run(w, &r[r_ranges[w].clone()], &mut scope);
            (run, scope.finish())
        });
        let (r_runs, c2): (Vec<_>, Vec<_>) = phase2.into_iter().unzip();
        stats.record_phase(Phase::Two, &d2);
        cx.record(Phase::Two, c2);

        // Phase 3: every worker joins its private run with all public
        // runs. The own run is re-scanned per public run (T times),
        // which the complexity analysis of §2.2 accounts as T · |R|/T.
        // The audit records each kernel call's actual scan extents:
        // forward-only cursors, so every remote read here is sequential
        // (commandment C2 — pinned by the accounting proptests).
        let (phase3, d3) = pool.run_timed(|w| {
            let mut scope = cx.scope(w);
            let mut sink = S::default();
            let run = &r_runs[w];
            let my_home = run.home();
            match kernel {
                Kernel::Variant(JoinVariant::Inner) => {
                    for s_run in &s_runs {
                        let scan = merge_join_scanned(run, s_run, &mut sink);
                        scope.touch(my_home, true, scan.r_scanned as u64);
                        scope.touch(s_run.home(), true, scan.s_scanned as u64);
                    }
                }
                Kernel::Variant(variant) => {
                    let mut matched = vec![false; run.len()];
                    for s_run in &s_runs {
                        let scan = merge_join_mark(
                            run,
                            s_run,
                            &mut matched,
                            variant.emits_pairs(),
                            &mut sink,
                        );
                        scope.touch(my_home, true, scan.r_scanned as u64);
                        scope.touch(s_run.home(), true, scan.s_scanned as u64);
                    }
                    emit_variant_rows(variant, run, &matched, &mut sink);
                }
                Kernel::Band(delta) => {
                    for s_run in &s_runs {
                        band_merge_join(run, s_run, delta, &mut sink);
                        scope.touch(my_home, true, run.len() as u64);
                        scope.touch(s_run.home(), true, s_run.len() as u64);
                    }
                }
            }
            (sink.finish(), scope.finish())
        });
        let (partials, c3): (Vec<_>, Vec<_>) = phase3.into_iter().unzip();
        stats.record_phase(Phase::Three, &d3);
        cx.record(Phase::Three, c3);

        stats.wall = wall.elapsed();
        (S::combine_all(partials), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectSink, CountSink};

    fn keyed(keys: &[u64]) -> Vec<Tuple> {
        keys.iter().enumerate().map(|(i, &k)| Tuple::new(k, i as u64)).collect()
    }

    fn nested_loop_count(r: &[Tuple], s: &[Tuple]) -> u64 {
        r.iter().map(|rt| s.iter().filter(|st| st.key == rt.key).count() as u64).sum()
    }

    #[test]
    fn joins_small_relations() {
        let r = keyed(&[1, 5, 9, 5]);
        let s = keyed(&[5, 5, 2, 9]);
        let join = BMpsmJoin::new(JoinConfig::with_threads(2));
        assert_eq!(join.count(&r, &s), nested_loop_count(&r, &s));
    }

    #[test]
    fn matches_oracle_on_random_input_all_thread_counts() {
        let mut state = 11u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 54
        };
        let r: Vec<Tuple> = (0..700).map(|i| Tuple::new(next(), i)).collect();
        let s: Vec<Tuple> = (0..1900).map(|i| Tuple::new(next(), i)).collect();
        let expected = nested_loop_count(&r, &s);
        for threads in [1, 2, 3, 7, 16] {
            let join = BMpsmJoin::new(JoinConfig::with_threads(threads));
            assert_eq!(join.count(&r, &s), expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_inputs() {
        let join = BMpsmJoin::new(JoinConfig::with_threads(4));
        assert_eq!(join.count(&[], &[]), 0);
        assert_eq!(join.count(&keyed(&[1]), &[]), 0);
        assert_eq!(join.count(&[], &keyed(&[1])), 0);
    }

    #[test]
    fn more_threads_than_tuples() {
        let r = keyed(&[3, 4]);
        let s = keyed(&[4, 3, 4]);
        let join = BMpsmJoin::new(JoinConfig::with_threads(16));
        assert_eq!(join.count(&r, &s), 3);
    }

    #[test]
    fn collects_correct_pairs() {
        let r = keyed(&[2, 4]);
        let s = keyed(&[4, 2]);
        let join = BMpsmJoin::new(JoinConfig::with_threads(2));
        let (mut rows, _) = join.join_with_sink::<CollectSink>(&r, &s);
        rows.sort_unstable();
        assert_eq!(rows, vec![(2, 0, 1), (4, 1, 0)]);
    }

    #[test]
    fn stats_report_three_phases() {
        let r = keyed(&(0..3000).map(|i| i % 97).collect::<Vec<_>>());
        let s = keyed(&(0..3000).map(|i| i % 89).collect::<Vec<_>>());
        let join = BMpsmJoin::new(JoinConfig::with_threads(4));
        let (_, stats) = join.join_with_sink::<CountSink>(&r, &s);
        assert_eq!(stats.per_worker.len(), 4);
        assert!(stats.wall_ms() > 0.0);
        assert_eq!(stats.phase_ms(Phase::Four), 0.0, "B-MPSM has no phase 4");
    }

    #[test]
    fn context_join_obeys_c1_and_c2_on_the_paper_machine() {
        use mpsm_numa::{AccessKind, Topology};

        let mut state = 77u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 44
        };
        let r: Vec<Tuple> = (0..2000).map(|i| Tuple::new(next(), i)).collect();
        let s: Vec<Tuple> = (0..2000).map(|i| Tuple::new(next(), i)).collect();
        let cx = ExecContext::new(Topology::paper_machine(), 8);
        let join = BMpsmJoin::new(JoinConfig::with_threads(8));
        let count = join.join_in::<CountSink>(&cx, &r, &s).0;
        assert_eq!(count, nested_loop_count(&r, &s));
        // C1: runs are sorted in local RAM — no remote random accesses
        // in either sort phase.
        for phase in [Phase::One, Phase::Two] {
            let c = cx.phase_counters(phase);
            assert_eq!(c.accesses(AccessKind::RemoteRand), 0, "{phase:?}");
            assert!(c.total_accesses() > 0, "{phase:?} must be audited");
        }
        // C2: the merge phase reads remote runs, but only sequentially.
        let merge = cx.phase_counters(Phase::Three);
        assert!(merge.accesses(AccessKind::RemoteSeq) > 0, "B-MPSM scans remote runs");
        assert_eq!(merge.accesses(AccessKind::RemoteRand), 0, "remote reads sequential-only");
        // Every worker's runs landed on its own node's arena.
        assert!(cx.arena().stats().iter().all(|s| s.bytes > 0), "all four nodes hold runs");
    }

    #[test]
    fn skewed_input_still_correct() {
        // All R keys identical: the worst case for partitioned joins is
        // business as usual for B-MPSM.
        let r = keyed(&vec![42u64; 500]);
        let mut s_keys = vec![42u64; 100];
        s_keys.extend(0..400u64);
        let s = keyed(&s_keys);
        let join = BMpsmJoin::new(JoinConfig::with_threads(8));
        // 42 appears 100 times in the band plus once in 0..400.
        assert_eq!(join.count(&r, &s), 500 * 101);
        assert_eq!(join.count(&r, &s), nested_loop_count(&r, &s));
    }
}
