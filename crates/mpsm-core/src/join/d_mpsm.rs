//! D-MPSM: the memory-constrained, disk-enabled MPSM join (§3.1,
//! Figure 4).
//!
//! Derived from B-MPSM: the private input is *not* range-partitioned
//! (D-MPSM is "completely skew immune"); instead the sorted runs are
//! spooled to disk and the workers progress **synchronously through the
//! key domain** so only a sliding window of pages needs RAM:
//!
//! * run generation writes each sorted run page-wise through
//!   `mpsm-storage`, recording the first key of every page;
//! * the read-only page index `⟨v_ij, S_i⟩`, ordered by key, tells the
//!   prefetcher (and the workers) in which order pages become active;
//! * an asynchronous prefetcher loads pages ahead of the slowest worker
//!   (yellow in Figure 4) and releases pages behind it (green);
//! * every worker streams its own `R_i` run in key order and merge-joins
//!   it against **all** `S` runs simultaneously, advancing a cursor per
//!   run — the workers' published progress keys drive the window.
//!
//! The page index is shared without synchronization (read-only); worker
//! progress is published through padded atomics, not locks.

use std::sync::Arc;
use std::time::Duration;

use mpsm_storage::{
    BufferPool, BufferStats, DiskBackend, MemBackend, PageIndex, Prefetcher, Progress, Result,
    RunMeta, RunStore,
};

use crate::context::ExecContext;
use crate::join::variant::JoinVariant;
use crate::join::{JoinAlgorithm, JoinConfig};
use crate::sink::JoinSink;
use crate::stats::{JoinStats, Phase};
use crate::tuple::Tuple;
use crate::worker::{chunk_ranges, SharedWorkerPool};

/// Storage-related knobs of D-MPSM.
#[derive(Debug, Clone)]
pub struct DMpsmConfig {
    /// Join-level configuration (threads, roles).
    pub join: JoinConfig,
    /// Tuples per disk page.
    pub page_records: u32,
    /// Buffer pool budget in pages — the RAM footprint of the join
    /// phase (Figure 4: only active pages are resident).
    pub budget_pages: usize,
    /// Prefetch lookahead as a fraction of the key domain (e.g. 0.05 =
    /// pages whose first key is within the next 5% of the domain are
    /// loaded ahead).
    pub lookahead_fraction: f64,
    /// Poll interval of the prefetcher thread.
    pub prefetch_poll: Duration,
    /// Sample the buffer pool's resident-page count during the join
    /// phase (for the Figure 4 window trace); interval, or `None` to
    /// disable.
    pub sample_residency: Option<Duration>,
}

impl DMpsmConfig {
    /// Defaults: 4096-tuple pages, 256-page budget, 5% lookahead.
    pub fn with_join(join: JoinConfig) -> Self {
        DMpsmConfig {
            join,
            page_records: 4096,
            budget_pages: 256,
            lookahead_fraction: 0.05,
            prefetch_poll: Duration::from_micros(200),
            sample_residency: None,
        }
    }
}

/// Storage behaviour observed during one D-MPSM run (experiment E10).
#[derive(Debug, Clone, Default)]
pub struct DMpsmReport {
    /// Buffer pool counters, including the resident high-water mark.
    pub buffer: BufferStats,
    /// Bytes spooled during run generation.
    pub bytes_written: u64,
    /// Bytes read back during the join phase.
    pub bytes_read: u64,
    /// Simulated I/O time charged by the backend, in ms (0 for real
    /// file backends).
    pub simulated_io_ms: f64,
    /// `(ms since join-phase start, resident pages)` samples, when
    /// [`DMpsmConfig::sample_residency`] is set — the raw material of
    /// the Figure 4 window trace.
    pub residency_trace: Vec<(f64, usize)>,
}

/// The disk-enabled MPSM join.
#[derive(Debug, Clone)]
pub struct DMpsmJoin {
    config: DMpsmConfig,
}

impl DMpsmJoin {
    /// Create a D-MPSM join.
    pub fn new(config: DMpsmConfig) -> Self {
        DMpsmJoin { config }
    }

    /// Convenience constructor from a plain [`JoinConfig`].
    pub fn with_join_config(join: JoinConfig) -> Self {
        Self::new(DMpsmConfig::with_join(join))
    }

    /// Access the configuration.
    pub fn config(&self) -> &DMpsmConfig {
        &self.config
    }

    /// Run the join on an explicit backend, returning the storage
    /// report alongside result and stats.
    pub fn join_on<B, S>(
        &self,
        backend: B,
        r: &[Tuple],
        s: &[Tuple],
    ) -> Result<(S::Result, JoinStats, DMpsmReport)>
    where
        B: DiskBackend + 'static,
        S: JoinSink,
    {
        self.join_variant_on::<B, S>(JoinVariant::Inner, backend, r, s)
    }

    /// Run a (possibly non-inner) join variant on an explicit backend.
    ///
    /// Variants stream naturally through D-MPSM: a private duplicate
    /// group's match status is final the moment its key has been merged
    /// against every public run, so no bitmap is needed — the variant
    /// rows are emitted on the spot, preserving the bounded-RAM window.
    pub fn join_variant_on<B, S>(
        &self,
        variant: JoinVariant,
        backend: B,
        r: &[Tuple],
        s: &[Tuple],
    ) -> Result<(S::Result, JoinStats, DMpsmReport)>
    where
        B: DiskBackend + 'static,
        S: JoinSink,
    {
        // One context for run generation and the join phase; only the
        // prefetcher and the optional residency sampler live on their
        // own (long-running, asynchronous) threads.
        let cx = ExecContext::flat(self.config.join.threads);
        self.join_variant_in::<B, S>(&cx, variant, backend, r, s)
    }

    /// [`DMpsmJoin::join_variant_on`] with run generation and the join
    /// phase submitted to a caller-provided shared pool (whose width is
    /// the worker count `T`). Equivalent to [`DMpsmJoin::join_variant_in`]
    /// with a flat context wrapped around `workers`.
    pub fn join_variant_on_pool<B, S>(
        &self,
        workers: &SharedWorkerPool,
        variant: JoinVariant,
        backend: B,
        r: &[Tuple],
        s: &[Tuple],
    ) -> Result<(S::Result, JoinStats, DMpsmReport)>
    where
        B: DiskBackend + 'static,
        S: JoinSink,
    {
        self.join_variant_in::<B, S>(&ExecContext::over_pool(workers), variant, backend, r, s)
    }

    /// [`DMpsmJoin::join_variant_on`] inside an execution context: run
    /// generation's sort buffers are drawn from the context's arena and
    /// audited, and the windowed join phase records its page traffic as
    /// interleaved sequential reads (spooled runs live behind the
    /// shared buffer pool, not on any NUMA node — the commandments
    /// D-MPSM answers to are about the *sort* staying local and the
    /// window moving sequentially). The prefetcher and the optional
    /// residency sampler still run on their own asynchronous threads —
    /// they are continuous background services, not barrier-separated
    /// phases.
    pub fn join_variant_in<B, S>(
        &self,
        cx: &ExecContext,
        variant: JoinVariant,
        backend: B,
        r: &[Tuple],
        s: &[Tuple],
    ) -> Result<(S::Result, JoinStats, DMpsmReport)>
    where
        B: DiskBackend + 'static,
        S: JoinSink,
    {
        let workers = cx.pool();
        let t = workers.threads();
        let (r, s, _swapped) = self.config.join.assign_roles(r, s);
        let wall = std::time::Instant::now();
        let mut stats = JoinStats::new(t);

        let store = Arc::new(RunStore::new(backend, self.config.page_records));

        // ---- Phase 1: sort and spool public runs (the sort buffer is
        // node-local per commandment C1; spooling to "disk" is I/O, not
        // NUMA memory traffic, and is reported via `DMpsmReport`). ----
        let s_ranges = chunk_ranges(s.len(), t);
        let (phase1, d1) = workers.run_timed(|w| {
            let mut scope = cx.scope(w);
            let run = cx.sorted_run(w, &s[s_ranges[w].clone()], &mut scope);
            (store.store_run(&run), scope.finish())
        });
        let (s_metas, c1): (Vec<_>, Vec<_>) = phase1.into_iter().unzip();
        stats.record_phase(Phase::One, &d1);
        cx.record(Phase::One, c1);
        let s_metas: Vec<RunMeta> = s_metas.into_iter().collect::<Result<_>>()?;

        // ---- Phase 2: sort and spool private runs. ----
        let r_ranges = chunk_ranges(r.len(), t);
        let (phase2, d2) = workers.run_timed(|w| {
            let mut scope = cx.scope(w);
            let run = cx.sorted_run(w, &r[r_ranges[w].clone()], &mut scope);
            (store.store_run(&run), scope.finish())
        });
        let (r_metas, c2): (Vec<_>, Vec<_>) = phase2.into_iter().unzip();
        stats.record_phase(Phase::Two, &d2);
        cx.record(Phase::Two, c2);
        let r_metas: Vec<RunMeta> = r_metas.into_iter().collect::<Result<_>>()?;

        // ---- Join phase: page index over S, prefetcher, windowed
        // multiway merge. ----
        let index = Arc::new(PageIndex::build(&s_metas));
        let pool: Arc<BufferPool<B, Tuple>> =
            Arc::new(BufferPool::new(Arc::clone(&store), self.config.budget_pages));
        let progress = Arc::new(Progress::new(t));
        let lookahead = self.lookahead_keys(s);
        let prefetcher = Prefetcher::spawn(
            Arc::clone(&pool),
            Arc::clone(&index),
            Arc::clone(&progress),
            lookahead,
            self.config.prefetch_poll,
        );

        // Optional residency sampler (Figure 4 window trace).
        let sampler_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let sampler = self.config.sample_residency.map(|interval| {
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&sampler_stop);
            std::thread::spawn(move || {
                let start = std::time::Instant::now();
                let mut trace = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    trace.push((start.elapsed().as_secs_f64() * 1e3, pool.resident_pages()));
                    std::thread::sleep(interval);
                }
                trace
            })
        });

        let (phase4, d4) = workers.run_timed(|w| {
            let mut scope = cx.scope(w);
            let mut sink = S::default();
            let mut r_reader = PooledReader::new(&pool, r_metas[w].clone());
            let mut s_readers: Vec<PooledReader<'_, B>> =
                s_metas.iter().map(|m| PooledReader::new(&pool, m.clone())).collect();
            let mut r_group: Vec<Tuple> = Vec::new();

            // The streaming loop, with `?` confined so the consumed-page
            // accounting below runs on the success *and* error paths.
            let body = || -> Result<S::Result> {
                while let Some(head) = r_reader.peek()? {
                    let key = head.key;
                    progress.update(w, key);
                    // Collect the duplicate group of `key` from R_w.
                    r_group.clear();
                    while let Some(t) = r_reader.peek()? {
                        if t.key != key {
                            break;
                        }
                        r_group.push(t);
                        r_reader.advance()?;
                    }
                    // Join the group against every S run; the group's
                    // match status is final after this loop.
                    let mut group_matched = false;
                    for sr in s_readers.iter_mut() {
                        sr.skip_below(key)?;
                        while let Some(st) = sr.peek()? {
                            if st.key != key {
                                break;
                            }
                            group_matched = true;
                            if variant.emits_pairs() {
                                for rt in &r_group {
                                    sink.on_match(*rt, st);
                                }
                            }
                            sr.advance()?;
                        }
                    }
                    match variant {
                        JoinVariant::Inner => {}
                        JoinVariant::LeftOuter | JoinVariant::LeftAnti if !group_matched => {
                            for rt in &r_group {
                                sink.on_private(*rt);
                            }
                        }
                        JoinVariant::LeftSemi if group_matched => {
                            for rt in &r_group {
                                sink.on_private(*rt);
                            }
                        }
                        _ => {}
                    }
                }
                progress.finish(w);
                Ok(sink.finish())
            };
            let result = body();
            // Audit: spooled pages reach the worker through the shared
            // buffer pool, so the window's tuple traffic is interleaved
            // and — because cursors only move forward — sequential.
            let consumed =
                r_reader.consumed() + s_readers.iter().map(|r| r.consumed()).sum::<u64>();
            scope.touch_interleaved(true, consumed);
            (result, scope.finish())
        });
        let (partials, c4): (Vec<_>, Vec<_>) = phase4.into_iter().unzip();
        stats.record_phase(Phase::Four, &d4);
        cx.record(Phase::Four, c4);
        prefetcher.stop();
        sampler_stop.store(true, std::sync::atomic::Ordering::Release);
        let residency_trace =
            sampler.map(|h| h.join().expect("sampler panicked")).unwrap_or_default();

        let partials: Vec<S::Result> = partials.into_iter().collect::<Result<_>>()?;
        stats.wall = wall.elapsed();
        let backend = store.backend();
        let report = DMpsmReport {
            buffer: pool.stats(),
            bytes_written: backend.bytes_written(),
            bytes_read: backend.bytes_read(),
            simulated_io_ms: backend.simulated_io_ns() as f64 / 1e6,
            residency_trace,
        };
        Ok((S::combine_all(partials), stats, report))
    }

    fn lookahead_keys(&self, s: &[Tuple]) -> u64 {
        let span = crate::tuple::key_range(s).map(|(lo, hi)| hi - lo).unwrap_or(0);
        ((span as f64 * self.config.lookahead_fraction) as u64).max(1)
    }
}

impl JoinAlgorithm for DMpsmJoin {
    fn name(&self) -> &'static str {
        "D-MPSM"
    }

    /// Runs on the default simulated disk array; storage errors cannot
    /// occur on the in-memory backend, so this unwraps internally. Use
    /// [`DMpsmJoin::join_on`] for fallible backends.
    fn join_with_sink<S: JoinSink>(&self, r: &[Tuple], s: &[Tuple]) -> (S::Result, JoinStats) {
        let (result, stats, _report) = self
            .join_on::<MemBackend, S>(MemBackend::disk_array(), r, s)
            .expect("in-memory backend cannot fail");
        (result, stats)
    }

    /// [`DMpsmJoin::join_variant_in`] over the default simulated disk
    /// array (the unified context entry; use the backend-typed methods
    /// for fallible storage or the [`DMpsmReport`]).
    fn join_in<S: JoinSink>(
        &self,
        cx: &ExecContext,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats) {
        let (result, stats, _report) = self
            .join_variant_in::<MemBackend, S>(
                cx,
                JoinVariant::Inner,
                MemBackend::disk_array(),
                r,
                s,
            )
            .expect("in-memory backend cannot fail");
        (result, stats)
    }
}

/// Sequential reader over a stored run, fetching pages through the
/// shared buffer pool (so the Figure 4 window accounting sees every
/// access).
struct PooledReader<'a, B: DiskBackend> {
    pool: &'a BufferPool<B, Tuple>,
    meta: RunMeta,
    page: u32,
    offset: usize,
    current: Option<Arc<Vec<Tuple>>>,
    /// Tuples consumed through this reader (page-level hops in
    /// `skip_below` touch nothing and are not counted) — feeds the
    /// join-phase access audit.
    consumed: u64,
}

impl<'a, B: DiskBackend> PooledReader<'a, B> {
    fn new(pool: &'a BufferPool<B, Tuple>, meta: RunMeta) -> Self {
        PooledReader { pool, meta, page: 0, offset: 0, current: None, consumed: 0 }
    }

    fn consumed(&self) -> u64 {
        self.consumed
    }

    fn peek(&mut self) -> Result<Option<Tuple>> {
        loop {
            if let Some(page) = &self.current {
                if self.offset < page.len() {
                    return Ok(Some(page[self.offset]));
                }
            }
            if self.page >= self.meta.pages() {
                return Ok(None);
            }
            // Release our pin on the previous page before fetching the
            // next: the pool may then evict or release it.
            self.current = Some(self.pool.get(self.meta.id, self.page)?);
            self.page += 1;
            self.offset = 0;
        }
    }

    fn advance(&mut self) -> Result<()> {
        self.offset += 1;
        self.consumed += 1;
        Ok(())
    }

    /// Skip tuples with key `< key`, using the per-page max keys to hop
    /// over whole pages without touching their contents.
    fn skip_below(&mut self, key: u64) -> Result<()> {
        // Page-level skip: while the *current* page ends below `key`,
        // drop it and move on (its data cannot match).
        while self.page < self.meta.pages()
            && self.current.is_none()
            && self.meta.max_keys[self.page as usize] < key
        {
            self.page += 1;
        }
        loop {
            match self.peek()? {
                Some(t) if t.key < key => {
                    // Within-page skip; if the whole rest of the page is
                    // below, peek will fetch the next page, where the
                    // page-level test applies again via max_keys.
                    if self.meta.max_keys[(self.page - 1) as usize] < key {
                        // Entire current page below key: jump past it.
                        self.current = None;
                        while self.page < self.meta.pages()
                            && self.meta.max_keys[self.page as usize] < key
                        {
                            self.page += 1;
                        }
                    } else {
                        self.advance()?;
                    }
                }
                _ => return Ok(()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsm_storage::FileBackend;

    fn keyed(keys: &[u64]) -> Vec<Tuple> {
        keys.iter().enumerate().map(|(i, &k)| Tuple::new(k, i as u64)).collect()
    }

    fn nested_loop_count(r: &[Tuple], s: &[Tuple]) -> u64 {
        r.iter().map(|rt| s.iter().filter(|st| st.key == rt.key).count() as u64).sum()
    }

    fn small_cfg(threads: usize) -> DMpsmConfig {
        let mut cfg = DMpsmConfig::with_join(JoinConfig::with_threads(threads));
        cfg.page_records = 16;
        cfg.budget_pages = 8;
        cfg
    }

    fn lcg(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed | 1;
        move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 32
        }
    }

    #[test]
    fn joins_small_relations() {
        let r = keyed(&[1, 5, 9, 5]);
        let s = keyed(&[5, 5, 2, 9]);
        let join = DMpsmJoin::new(small_cfg(2));
        assert_eq!(join.count(&r, &s), nested_loop_count(&r, &s));
    }

    #[test]
    fn matches_oracle_across_thread_counts() {
        let mut next = lcg(41);
        let r: Vec<Tuple> = (0..600).map(|i| Tuple::new(next() % 300, i)).collect();
        let s: Vec<Tuple> = (0..1800).map(|i| Tuple::new(next() % 300, i)).collect();
        let expected = nested_loop_count(&r, &s);
        for threads in [1, 2, 4, 8] {
            let join = DMpsmJoin::new(small_cfg(threads));
            assert_eq!(join.count(&r, &s), expected, "threads = {threads}");
        }
    }

    #[test]
    fn stays_within_page_budget() {
        let mut next = lcg(43);
        let r: Vec<Tuple> = (0..2000).map(|i| Tuple::new(next() % 5000, i)).collect();
        let s: Vec<Tuple> = (0..6000).map(|i| Tuple::new(next() % 5000, i)).collect();
        let join = DMpsmJoin::new(small_cfg(4));
        let (count, _stats, report) = join
            .join_on::<MemBackend, crate::sink::CountSink>(MemBackend::disk_array(), &r, &s)
            .unwrap();
        assert_eq!(count, nested_loop_count(&r, &s));
        // Total pages spooled far exceeds the budget; the high-water
        // mark must stay near the budget (pinned pages can push it a
        // little past: T workers × (1 R page + T S pins)).
        let total_pages = (2000 + 6000) / 16;
        assert!(
            report.buffer.high_water_pages < total_pages as u64 / 2,
            "window stayed far below full residency: hwm {} of {} pages",
            report.buffer.high_water_pages,
            total_pages
        );
        assert!(report.bytes_written > 0);
        assert!(report.bytes_read > 0);
        assert!(report.buffer.releases + report.buffer.evictions > 0, "window must move");
    }

    #[test]
    fn works_on_a_real_file_backend() {
        let dir = std::env::temp_dir().join(format!("mpsm-dmpsm-{}", std::process::id()));
        let backend = FileBackend::new(&dir).unwrap();
        let mut next = lcg(47);
        let r: Vec<Tuple> = (0..300).map(|i| Tuple::new(next() % 100, i)).collect();
        let s: Vec<Tuple> = (0..900).map(|i| Tuple::new(next() % 100, i)).collect();
        let join = DMpsmJoin::new(small_cfg(3));
        let (count, _, _) =
            join.join_on::<FileBackend, crate::sink::CountSink>(backend, &r, &s).unwrap();
        assert_eq!(count, nested_loop_count(&r, &s));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_inputs() {
        let join = DMpsmJoin::new(small_cfg(2));
        assert_eq!(join.count(&[], &[]), 0);
        assert_eq!(join.count(&keyed(&[1]), &[]), 0);
        assert_eq!(join.count(&[], &keyed(&[1])), 0);
    }

    #[test]
    fn duplicate_heavy_inputs() {
        let r = keyed(&vec![5u64; 200]);
        let s = keyed(&vec![5u64; 64]);
        let join = DMpsmJoin::new(small_cfg(4));
        assert_eq!(join.count(&r, &s), 200 * 64);
    }

    #[test]
    fn residency_trace_is_collected_when_enabled() {
        let mut next = lcg(71);
        let r: Vec<Tuple> = (0..3000).map(|i| Tuple::new(next() % 8000, i)).collect();
        let s: Vec<Tuple> = (0..9000).map(|i| Tuple::new(next() % 8000, i)).collect();
        let mut cfg = small_cfg(4);
        cfg.sample_residency = Some(std::time::Duration::from_micros(200));
        let join = DMpsmJoin::new(cfg);
        let (_, _, report) = join
            .join_on::<MemBackend, crate::sink::CountSink>(MemBackend::disk_array(), &r, &s)
            .unwrap();
        assert!(!report.residency_trace.is_empty(), "sampler must collect");
        let max = report.residency_trace.iter().map(|&(_, p)| p).max().unwrap();
        assert_eq!(max as u64, report.buffer.high_water_pages.max(max as u64).min(max as u64));
        // Timestamps are monotone.
        assert!(report.residency_trace.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn variants_stream_correctly() {
        use crate::join::variant::JoinVariant;
        let mut next = lcg(59);
        let r: Vec<Tuple> = (0..400).map(|i| Tuple::new(next() % 300, i)).collect();
        let s: Vec<Tuple> = (0..400).map(|i| Tuple::new(next() % 300, i)).collect();
        let s_keys: std::collections::HashSet<u64> = s.iter().map(|t| t.key).collect();
        let inner = nested_loop_count(&r, &s);
        let matched = r.iter().filter(|t| s_keys.contains(&t.key)).count() as u64;
        let unmatched = r.len() as u64 - matched;

        let join = DMpsmJoin::new(small_cfg(4));
        for (variant, expected) in [
            (JoinVariant::Inner, inner),
            (JoinVariant::LeftOuter, inner + unmatched),
            (JoinVariant::LeftSemi, matched),
            (JoinVariant::LeftAnti, unmatched),
        ] {
            let (count, _, _) = join
                .join_variant_on::<MemBackend, crate::sink::CountSink>(
                    variant,
                    MemBackend::disk_array(),
                    &r,
                    &s,
                )
                .unwrap();
            assert_eq!(count, expected, "{variant:?}");
        }
    }

    #[test]
    fn faulty_backend_surfaces_errors() {
        use mpsm_storage::FaultyBackend;
        let mut next = lcg(53);
        let r: Vec<Tuple> = (0..200).map(|i| Tuple::new(next() % 50, i)).collect();
        let s: Vec<Tuple> = (0..200).map(|i| Tuple::new(next() % 50, i)).collect();
        // Fail every read: the join phase must report the error, not
        // hang or panic.
        let backend = FaultyBackend::new(MemBackend::disk_array(), (0..10_000).collect());
        let join = DMpsmJoin::new(small_cfg(2));
        let result = join.join_on::<_, crate::sink::CountSink>(backend, &r, &s);
        assert!(result.is_err(), "injected faults must surface");
    }
}
