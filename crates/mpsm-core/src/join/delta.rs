//! Delta stores and snapshot-aware run merging — the core half of the
//! HTAP turn.
//!
//! The paper's §7 treats sorted runs as a durable by-product; this
//! module makes relations *mutable* without giving that up. A relation
//! becomes an immutable sorted **base** (the runs the executor's cache
//! keeps) plus a small unsorted **delta** of [`DeltaOp`]s. Readers fold
//! the delta prefix they captured into a [`DeltaOverlay`] — a set of
//! added tuples and a set of *masked* keys (deleted or overwritten in
//! the base) — and the merge phase joins base runs and the sorted delta
//! run together, skipping masked keys inline. Writers never touch the
//! base, so they never block readers; a compactor folds the delta into
//! a new base version off the hot path (LSM-style, the Polynesia /
//! consistent-snapshot design space named in PAPERS.md).
//!
//! The fold is defined against a trivially-correct oracle,
//! [`materialize`], which replays the ops literally; proptests pin
//! `overlay.apply(base) == materialize(base, ops)` as multisets for
//! arbitrary op interleavings.

use std::collections::BTreeMap;

use mpsm_numa::NumaBuf;

use crate::context::ExecContext;
use crate::interpolation::interpolation_lower_bound;
use crate::join::runs::RunSet;
use crate::merge::{merge_join_scanned, MergeScan};
use crate::sink::JoinSink;
use crate::stats::{JoinStats, Phase};
use crate::tuple::Tuple;

/// One logical write against a mutable relation. Ops are keyed —
/// [`DeltaOp::Update`] and [`DeltaOp::Delete`] affect *every* base or
/// previously-appended tuple with the key (an update is an upsert:
/// delete-all-with-key, then insert exactly one tuple).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOp {
    /// Insert one tuple (duplicates with existing keys are fine — the
    /// relation is a multiset, like every join input here).
    Append(Tuple),
    /// Upsert: remove every tuple with `key`, then insert
    /// `(key, payload)`.
    Update {
        /// Key whose tuples are replaced.
        key: u64,
        /// Payload of the single surviving tuple.
        payload: u64,
    },
    /// Remove every tuple with `key`.
    Delete {
        /// Key whose tuples are removed.
        key: u64,
    },
}

/// Replay `ops` literally over `base` — the trivially-correct oracle
/// the [`DeltaOverlay`] fold is verified against (and what a compactor
/// runs to produce the next base version).
pub fn materialize(base: &[Tuple], ops: &[DeltaOp]) -> Vec<Tuple> {
    let mut tuples = base.to_vec();
    for op in ops {
        match *op {
            DeltaOp::Append(t) => tuples.push(t),
            DeltaOp::Delete { key } => tuples.retain(|t| t.key != key),
            DeltaOp::Update { key, payload } => {
                tuples.retain(|t| t.key != key);
                tuples.push(Tuple::new(key, payload));
            }
        }
    }
    tuples
}

/// The folded effect of a delta prefix: tuples to add on top of the
/// base, plus the base keys that no longer exist (deleted, or replaced
/// by an update). The fold needs no base reads at all — which is what
/// lets a reader capture a snapshot with one lock-free length read and
/// fold it later, off the write path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaOverlay {
    /// Tuples the delta adds (sorted by key; appended and upserted
    /// rows that survived later deletes/updates).
    pub adds: Vec<Tuple>,
    /// Keys whose *base* tuples are dead (sorted, deduplicated). Only
    /// the base is masked — `adds` already reflects every in-delta
    /// overwrite.
    pub masked: Vec<u64>,
}

impl DeltaOverlay {
    /// Fold `ops` in order. Per key the fold tracks whether the base
    /// group is dead and which added payloads survive:
    /// append pushes a payload, delete kills the base group *and* the
    /// pending adds, update kills both and leaves exactly one payload.
    pub fn from_ops(ops: &[DeltaOp]) -> Self {
        #[derive(Default)]
        struct KeyState {
            masked: bool,
            adds: Vec<u64>,
        }
        let mut keys: BTreeMap<u64, KeyState> = BTreeMap::new();
        for op in ops {
            match *op {
                DeltaOp::Append(t) => keys.entry(t.key).or_default().adds.push(t.payload),
                DeltaOp::Delete { key } => {
                    let state = keys.entry(key).or_default();
                    state.masked = true;
                    state.adds.clear();
                }
                DeltaOp::Update { key, payload } => {
                    let state = keys.entry(key).or_default();
                    state.masked = true;
                    state.adds = vec![payload];
                }
            }
        }
        let mut adds = Vec::new();
        let mut masked = Vec::new();
        for (key, state) in keys {
            if state.masked {
                masked.push(key);
            }
            adds.extend(state.adds.into_iter().map(|p| Tuple::new(key, p)));
        }
        DeltaOverlay { adds, masked }
    }

    /// Apply the overlay to `base`: every base tuple whose key is not
    /// masked, plus the adds. Multiset-equal to
    /// [`materialize`]`(base, ops)` for the ops this overlay was folded
    /// from.
    pub fn apply(&self, base: &[Tuple]) -> Vec<Tuple> {
        let mut out: Vec<Tuple> =
            base.iter().copied().filter(|t| self.masked.binary_search(&t.key).is_err()).collect();
        out.extend_from_slice(&self.adds);
        out
    }

    /// Whether the overlay changes nothing (empty delta prefix).
    pub fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.masked.is_empty()
    }
}

/// Merge-join two key-sorted runs, skipping every key present in the
/// corresponding sorted mask. The masked path of the snapshot merge:
/// deltas are small and masks rare, so this linear two-pointer kernel
/// (mask cursors advance monotonically alongside the run cursors)
/// deliberately skips the galloping machinery of
/// [`merge_join_scanned`] — correctness over peak speed on the cold
/// path.
pub fn merge_join_masked<S: JoinSink>(
    r: &[Tuple],
    s: &[Tuple],
    r_masked: &[u64],
    s_masked: &[u64],
    sink: &mut S,
) -> MergeScan {
    debug_assert!(crate::tuple::is_key_sorted(r), "private run must be sorted");
    debug_assert!(crate::tuple::is_key_sorted(s), "public run must be sorted");
    let (mut i, mut j) = (0usize, 0usize);
    let (mut rm, mut sm) = (0usize, 0usize);
    while i < r.len() && j < s.len() {
        let rk = r[i].key;
        while rm < r_masked.len() && r_masked[rm] < rk {
            rm += 1;
        }
        if rm < r_masked.len() && r_masked[rm] == rk {
            i = group_end(r, i);
            continue;
        }
        let sk = s[j].key;
        while sm < s_masked.len() && s_masked[sm] < sk {
            sm += 1;
        }
        if sm < s_masked.len() && s_masked[sm] == sk {
            j = group_end(s, j);
            continue;
        }
        if rk < sk {
            i += 1;
        } else if rk > sk {
            j += 1;
        } else {
            let i_end = group_end(r, i);
            let j_end = group_end(s, j);
            for rt in &r[i..i_end] {
                for st in &s[j..j_end] {
                    sink.on_match(*rt, *st);
                }
            }
            i = i_end;
            j = j_end;
        }
    }
    MergeScan { r_scanned: i.min(r.len()), s_scanned: j.min(s.len()) }
}

/// One-past-the-end of the duplicate group starting at `start`.
#[inline]
fn group_end(run: &[Tuple], start: usize) -> usize {
    let key = run[start].key;
    let mut end = start + 1;
    while end < run.len() && run[end].key == key {
        end += 1;
    }
    end
}

/// One join input of a snapshot merge: the immutable base runs (served
/// from the run cache or built fresh), the sorted delta run of added
/// tuples, and the mask of dead base keys. `delta: None, mask: []` is
/// exactly a plain [`RunSet`] side — the zero-delta case degenerates to
/// [`crate::join::runs::merge_run_sets_in`] behaviour.
#[derive(Debug, Clone, Copy)]
pub struct DeltaSide<'a> {
    /// The relation's sorted, range-partitioned base runs.
    pub base: &'a RunSet,
    /// Sorted run of tuples the delta adds (never masked).
    pub delta: Option<&'a NumaBuf<Tuple>>,
    /// Sorted, deduplicated keys whose base tuples are dead.
    pub mask: &'a [u64],
}

impl<'a> DeltaSide<'a> {
    /// A side with no delta at all (plain run-set semantics).
    pub fn base_only(base: &'a RunSet) -> Self {
        DeltaSide { base, delta: None, mask: &[] }
    }

    /// Base runs plus the optional delta run.
    fn run_count(&self) -> usize {
        self.base.parts() + usize::from(self.delta.is_some())
    }

    /// Run `idx` and the mask that applies to it (the shared base mask
    /// for base runs, nothing for the delta run).
    fn run(&self, idx: usize) -> (&'a NumaBuf<Tuple>, &'a [u64]) {
        if idx < self.base.parts() {
            (&self.base.runs()[idx], self.mask)
        } else {
            (self.delta.expect("index beyond base implies a delta run"), &[])
        }
    }

    /// Logical tuple count of the side: base minus masked base tuples
    /// plus the delta run. Counting masked base tuples costs one binary
    /// search pair per (masked key, run) — masks are small.
    pub fn logical_tuples(&self) -> usize {
        let dead: usize = self
            .mask
            .iter()
            .map(|&key| {
                self.base
                    .runs()
                    .iter()
                    .map(|run| {
                        let lo = run.partition_point(|t| t.key < key);
                        let hi = run.partition_point(|t| t.key <= key);
                        hi - lo
                    })
                    .sum::<usize>()
            })
            .sum();
        self.base.total_tuples() - dead + self.delta.map_or(0, |d| d.len())
    }
}

/// Phase 4 over two snapshot sides: every private run (base runs, then
/// the delta run) merges with every public run. Unmasked pairs take the
/// interpolation-entry galloping path of the read-only merge; any pair
/// with a live mask goes through [`merge_join_masked`]. Workers pick up
/// private runs round-robin, exactly like
/// [`crate::join::runs::merge_run_sets_in`].
pub fn merge_delta_sides_in<S: JoinSink>(
    cx: &ExecContext,
    r: DeltaSide<'_>,
    s: DeltaSide<'_>,
    stats: &mut JoinStats,
) -> S::Result {
    let t = cx.threads();
    let r_total = r.run_count();
    let (phase4, d4) = cx.pool().run_timed(|w| {
        let mut scope = cx.scope(w);
        let mut sink = S::default();
        for rp in (w..r_total).step_by(t.max(1)) {
            let (run, r_mask) = r.run(rp);
            let my_home = run.home();
            let Some(first) = run.first() else { continue };
            for sp in 0..s.run_count() {
                let (s_run, s_mask) = s.run(sp);
                if s_run.is_empty() {
                    continue;
                }
                let scan = if r_mask.is_empty() && s_mask.is_empty() {
                    let start = interpolation_lower_bound(s_run, first.key);
                    scope.touch(s_run.home(), false, (s_run.len() as u64).ilog2() as u64 + 1);
                    merge_join_scanned(run, &s_run[start..], &mut sink)
                } else {
                    merge_join_masked(run, s_run, r_mask, s_mask, &mut sink)
                };
                scope.touch(my_home, true, scan.r_scanned as u64);
                scope.touch(s_run.home(), true, scan.s_scanned as u64);
            }
        }
        (sink.finish(), scope.finish())
    });
    let (partials, c4): (Vec<_>, Vec<_>) = phase4.into_iter().unzip();
    stats.record_phase(Phase::Four, &d4);
    cx.record(Phase::Four, c4);
    S::combine_all(partials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::runs::build_run_set;
    use crate::sink::{CollectSink, CountSink};

    fn lcg(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed | 1;
        move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 32
        }
    }

    fn random(n: usize, domain: u64, seed: u64) -> Vec<Tuple> {
        let mut next = lcg(seed);
        (0..n).map(|i| Tuple::new(next() % domain, i as u64)).collect()
    }

    fn random_ops(n: usize, domain: u64, seed: u64) -> Vec<DeltaOp> {
        let mut next = lcg(seed);
        (0..n)
            .map(|i| match next() % 4 {
                0 => DeltaOp::Delete { key: next() % domain },
                1 => DeltaOp::Update { key: next() % domain, payload: 900_000 + i as u64 },
                _ => DeltaOp::Append(Tuple::new(next() % domain, 500_000 + i as u64)),
            })
            .collect()
    }

    fn multiset(tuples: &[Tuple]) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = tuples.iter().map(|t| (t.key, t.payload)).collect();
        v.sort_unstable();
        v
    }

    fn nested_loop_count(r: &[Tuple], s: &[Tuple]) -> u64 {
        r.iter().map(|rt| s.iter().filter(|st| st.key == rt.key).count() as u64).sum()
    }

    #[test]
    fn fold_matches_materialize_on_directed_cases() {
        let base = vec![Tuple::new(1, 10), Tuple::new(2, 20), Tuple::new(2, 21), Tuple::new(3, 30)];
        let cases: Vec<Vec<DeltaOp>> = vec![
            vec![],
            vec![DeltaOp::Append(Tuple::new(5, 50))],
            vec![DeltaOp::Delete { key: 2 }],
            vec![DeltaOp::Update { key: 2, payload: 99 }],
            // Append then delete the same key: the append dies too.
            vec![DeltaOp::Append(Tuple::new(7, 70)), DeltaOp::Delete { key: 7 }],
            // Delete then append: the append survives.
            vec![DeltaOp::Delete { key: 1 }, DeltaOp::Append(Tuple::new(1, 11))],
            // Append then update: exactly one tuple survives.
            vec![DeltaOp::Append(Tuple::new(3, 31)), DeltaOp::Update { key: 3, payload: 32 }],
            // Update then append: both survive.
            vec![DeltaOp::Update { key: 3, payload: 32 }, DeltaOp::Append(Tuple::new(3, 33))],
            // Delete a key that only exists in the delta.
            vec![DeltaOp::Append(Tuple::new(9, 90)), DeltaOp::Delete { key: 9 }],
        ];
        for (i, ops) in cases.iter().enumerate() {
            let overlay = DeltaOverlay::from_ops(ops);
            assert_eq!(
                multiset(&overlay.apply(&base)),
                multiset(&materialize(&base, ops)),
                "case {i}: {ops:?}"
            );
        }
    }

    #[test]
    fn fold_matches_materialize_on_random_interleavings() {
        for seed in 0..20u64 {
            let base = random(200, 40, seed);
            let ops = random_ops(60, 40, seed ^ 0xA5A5);
            let overlay = DeltaOverlay::from_ops(&ops);
            assert!(crate::tuple::is_key_sorted(&overlay.adds), "adds come out key-sorted");
            assert!(overlay.masked.windows(2).all(|w| w[0] < w[1]), "mask sorted + deduped");
            assert_eq!(
                multiset(&overlay.apply(&base)),
                multiset(&materialize(&base, &ops)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn masked_merge_skips_exactly_the_masked_keys() {
        let r: Vec<Tuple> = (0..20u64).map(|k| Tuple::new(k, k)).collect();
        let s: Vec<Tuple> = (0..20u64).map(|k| Tuple::new(k, 100 + k)).collect();
        let mut sink = CollectSink::default();
        let scan = merge_join_masked(&r, &s, &[3, 7], &[7, 11], &mut sink);
        let rows = sink.finish();
        assert_eq!(rows.len(), 20 - 3, "keys 3, 7, 11 drop out");
        assert!(rows.iter().all(|&(k, _, _)| k != 3 && k != 7 && k != 11));
        assert!(scan.r_scanned >= 19 && scan.s_scanned >= 19);
    }

    #[test]
    fn masked_merge_handles_duplicate_groups_and_empty_masks() {
        let r = vec![Tuple::new(4, 1), Tuple::new(4, 2), Tuple::new(9, 3)];
        let s = vec![Tuple::new(4, 10), Tuple::new(4, 11), Tuple::new(9, 12)];
        // Empty masks: plain duplicate semantics (2 × 2 + 1 × 1).
        let mut sink = CountSink::default();
        merge_join_masked(&r, &s, &[], &[], &mut sink);
        assert_eq!(sink.finish(), 5);
        // Masking the duplicate group on one side kills all its pairs.
        let mut sink = CountSink::default();
        merge_join_masked(&r, &s, &[4], &[], &mut sink);
        assert_eq!(sink.finish(), 1);
    }

    /// The structural invariant of the snapshot merge: joining
    /// (base runs + delta run + mask) per side must equal the plain
    /// join over the materialized relations.
    #[test]
    fn delta_merge_equals_join_over_materialized_union() {
        let cx = ExecContext::flat(4);
        for seed in 0..6u64 {
            let r_base = random(1200, 300, seed * 2 + 1);
            let s_base = random(2400, 300, seed * 2 + 2);
            let r_ops = random_ops(80, 300, seed ^ 0x11);
            let s_ops = random_ops(50, 300, seed ^ 0x22);
            let r_overlay = DeltaOverlay::from_ops(&r_ops);
            let s_overlay = DeltaOverlay::from_ops(&s_ops);
            let expected =
                nested_loop_count(&materialize(&r_base, &r_ops), &materialize(&s_base, &s_ops));

            let mut stats = JoinStats::new(4);
            let r_runs = build_run_set(&cx, &r_base, 10, Phase::Two, Phase::Three, &mut stats);
            let s_runs = build_run_set(&cx, &s_base, 10, Phase::One, Phase::One, &mut stats);
            let mut scope = cx.scope(0);
            let r_delta = cx.sorted_run(0, &r_overlay.adds, &mut scope);
            let s_delta = cx.sorted_run(0, &s_overlay.adds, &mut scope);
            scope.finish();
            let r_side =
                DeltaSide { base: &r_runs, delta: Some(&r_delta), mask: &r_overlay.masked };
            let s_side =
                DeltaSide { base: &s_runs, delta: Some(&s_delta), mask: &s_overlay.masked };
            let got = merge_delta_sides_in::<CountSink>(&cx, r_side, s_side, &mut stats);
            assert_eq!(got, expected, "seed {seed}");
            assert_eq!(
                r_side.logical_tuples(),
                materialize(&r_base, &r_ops).len(),
                "seed {seed}: logical cardinality"
            );
        }
    }

    #[test]
    fn zero_delta_side_degenerates_to_plain_run_merge() {
        let cx = ExecContext::flat(3);
        let r = random(900, 256, 7);
        let s = random(1800, 256, 9);
        let mut stats = JoinStats::new(3);
        let r_runs = build_run_set(&cx, &r, 10, Phase::Two, Phase::Three, &mut stats);
        let s_runs = build_run_set(&cx, &s, 10, Phase::One, Phase::One, &mut stats);
        let got = merge_delta_sides_in::<CountSink>(
            &cx,
            DeltaSide::base_only(&r_runs),
            DeltaSide::base_only(&s_runs),
            &mut stats,
        );
        assert_eq!(got, nested_loop_count(&r, &s));
        assert_eq!(DeltaSide::base_only(&r_runs).logical_tuples(), r.len());
    }

    #[test]
    fn empty_base_with_delta_only_still_joins() {
        let cx = ExecContext::flat(2);
        let base: Vec<Tuple> = Vec::new();
        let ops: Vec<DeltaOp> = (0..50u64).map(|k| DeltaOp::Append(Tuple::new(k, k))).collect();
        let overlay = DeltaOverlay::from_ops(&ops);
        let s = random(400, 50, 13);
        let mut stats = JoinStats::new(2);
        let r_runs = build_run_set(&cx, &base, 10, Phase::Two, Phase::Three, &mut stats);
        let s_runs = build_run_set(&cx, &s, 10, Phase::One, Phase::One, &mut stats);
        let mut scope = cx.scope(0);
        let delta = cx.sorted_run(0, &overlay.adds, &mut scope);
        scope.finish();
        let r_side = DeltaSide { base: &r_runs, delta: Some(&delta), mask: &overlay.masked };
        let got = merge_delta_sides_in::<CountSink>(
            &cx,
            r_side,
            DeltaSide::base_only(&s_runs),
            &mut stats,
        );
        assert_eq!(got, nested_loop_count(&materialize(&base, &ops), &s));
        assert_eq!(r_side.logical_tuples(), 50);
    }
}
