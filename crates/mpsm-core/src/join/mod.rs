//! The MPSM join suite: configuration, the algorithm trait, and the
//! three variants (B-MPSM, P-MPSM, D-MPSM).

pub mod anytime;
pub mod b_mpsm;
pub mod d_mpsm;
pub mod delta;
pub mod p_mpsm;
pub mod runs;
pub mod variant;

use crate::context::ExecContext;
use crate::sink::{CountSink, JoinSink, MaxAggSink};
use crate::stats::JoinStats;
use crate::tuple::Tuple;

pub use variant::JoinVariant;

/// Which input plays the private role `R` (the one that is
/// range-partitioned and scanned repeatedly).
///
/// §3.2: "Assigning the private input role R to the smaller of the input
/// relations [...] yields the best performance"; §5.4 measures the cost
/// of getting this wrong (role reversal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Role {
    /// The first argument is private, as passed (default; lets the
    /// caller and the role-reversal experiment control roles exactly).
    #[default]
    FirstPrivate,
    /// Pick the smaller input as private automatically.
    SmallerPrivate,
}

/// Configuration shared by the MPSM variants.
#[derive(Debug, Clone)]
pub struct JoinConfig {
    /// Number of worker threads `T`.
    pub threads: usize,
    /// Histogram granularity `B` for radix-clustering the private input
    /// (`2^B` buckets). The paper requires `log2(T) ≤ B` and uses up to
    /// 10 (Figure 16); finer histograms cost almost nothing (Figure 9).
    pub radix_bits: u32,
    /// CDF precision factor `f`: every worker contributes `f · T`
    /// equi-height bounds to the global CDF (§4.1 proposes `f · T` for
    /// better precision).
    pub cdf_fan: usize,
    /// Role assignment policy.
    pub role: Role,
}

impl JoinConfig {
    /// Config with `threads` workers and paper-like defaults
    /// (`B = max(10, ⌈log2 T⌉)`, `f = 4`).
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        let min_bits = usize::BITS - threads.next_power_of_two().leading_zeros() - 1;
        JoinConfig {
            threads,
            radix_bits: 10u32.max(min_bits),
            cdf_fan: 4,
            role: Role::FirstPrivate,
        }
    }

    /// Builder-style override of the histogram granularity `B`.
    pub fn radix_bits(mut self, bits: u32) -> Self {
        assert!((1..=20).contains(&bits), "B out of supported range");
        assert!(
            (1usize << bits) >= self.threads,
            "need log2(T) <= B so every worker can get a partition"
        );
        self.radix_bits = bits;
        self
    }

    /// Builder-style override of the role policy.
    pub fn role(mut self, role: Role) -> Self {
        self.role = role;
        self
    }

    /// Apply the role policy: returns `(private, public, swapped)`.
    /// Used by every join implementation (including the baselines) at
    /// the top of `join_with_sink`.
    pub fn assign_roles<'a>(
        &self,
        r: &'a [Tuple],
        s: &'a [Tuple],
    ) -> (&'a [Tuple], &'a [Tuple], bool) {
        match self.role {
            Role::FirstPrivate => (r, s, false),
            Role::SmallerPrivate => {
                if r.len() <= s.len() {
                    (r, s, false)
                } else {
                    (s, r, true)
                }
            }
        }
    }
}

impl Default for JoinConfig {
    fn default() -> Self {
        Self::with_threads(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
    }
}

/// A parallel equi-join algorithm over `Tuple` relations.
pub trait JoinAlgorithm {
    /// Short display name (used by the benchmark harness).
    fn name(&self) -> &'static str;

    /// Join `r ⋈ s` on `key`, feeding matches through per-worker sinks
    /// of type `S`; returns the combined result and per-phase stats.
    ///
    /// The sink sees `(private, public)` pairs; with
    /// [`Role::SmallerPrivate`] the private side may be `s` — symmetric
    /// aggregates (count, the paper's `max(R.payload + S.payload)`) are
    /// unaffected, order-sensitive consumers should pin
    /// [`Role::FirstPrivate`].
    fn join_with_sink<S: JoinSink>(&self, r: &[Tuple], s: &[Tuple]) -> (S::Result, JoinStats);

    /// Join `r ⋈ s` inside an execution context: every parallel phase
    /// runs on `cx`'s shared pool, run and partition storage comes from
    /// its node-local arenas, and the context's per-phase counters
    /// record the local-vs-remote access audit. This is the one entry
    /// shape every execution layer uses; the classic
    /// [`JoinAlgorithm::join_with_sink`] and the pooled
    /// [`PooledJoin::join_with_sink_on`] are thin wrappers providing a
    /// default (flat) context.
    ///
    /// The default implementation ignores the context's placement and
    /// self-provisions workers — algorithms without NUMA integration
    /// (the baseline contenders) stay usable through the unified shape,
    /// they just contribute nothing to the audit. The MPSM variants
    /// override it.
    fn join_in<S: JoinSink>(
        &self,
        cx: &ExecContext,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats) {
        let _ = cx;
        self.join_with_sink::<S>(r, s)
    }

    /// Join and count result tuples.
    fn count(&self, r: &[Tuple], s: &[Tuple]) -> u64 {
        self.join_with_sink::<CountSink>(r, s).0
    }

    /// Run the paper's benchmark query
    /// `SELECT max(R.payload + S.payload) …` (`None` on empty join).
    fn max_payload_sum(&self, r: &[Tuple], s: &[Tuple]) -> Option<u64> {
        self.join_with_sink::<MaxAggSink>(r, s).0
    }
}

/// A join algorithm whose parallel phases can run on a caller-provided
/// [`SharedWorkerPool`](crate::worker::SharedWorkerPool) instead of
/// workers the join spawns for itself — the hook multi-query schedulers
/// use to serve many concurrent joins from one set of worker threads.
///
/// On this path the **pool's width decides the worker count `T`**; the
/// algorithm's configured thread count applies only to the self-pooled
/// [`JoinAlgorithm::join_with_sink`] entry point.
pub trait PooledJoin: JoinAlgorithm {
    /// Join `r ⋈ s`, submitting every parallel phase to `pool` (tagged
    /// with the handle's owner id, interleaving FIFO-fairly with other
    /// owners' phases). Equivalent to [`JoinAlgorithm::join_in`] with a
    /// flat single-node context wrapped around `pool`
    /// ([`ExecContext::over_pool`]) — placement-aware callers should
    /// build a real context and call `join_in` directly.
    fn join_with_sink_on<S: JoinSink>(
        &self,
        pool: &crate::worker::SharedWorkerPool,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats) {
        self.join_in::<S>(&ExecContext::over_pool(pool), r, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = JoinConfig::with_threads(8);
        assert_eq!(c.threads, 8);
        assert!(c.radix_bits >= 3, "log2(8) = 3 <= B");
        assert_eq!(c.cdf_fan, 4);
    }

    #[test]
    fn radix_bits_grows_with_threads() {
        let c = JoinConfig::with_threads(2048);
        assert!((1usize << c.radix_bits) >= 2048);
    }

    #[test]
    fn role_assignment() {
        let r: Vec<Tuple> = (0..3).map(|k| Tuple::new(k, 0)).collect();
        let s: Vec<Tuple> = (0..9).map(|k| Tuple::new(k, 0)).collect();
        let cfg = JoinConfig::with_threads(2);
        let (p, _, swapped) = cfg.assign_roles(&r, &s);
        assert_eq!(p.len(), 3);
        assert!(!swapped);

        let cfg = cfg.role(Role::SmallerPrivate);
        let (p, q, swapped) = cfg.assign_roles(&s, &r);
        assert_eq!(p.len(), 3, "smaller side becomes private");
        assert_eq!(q.len(), 9);
        assert!(swapped);
    }

    #[test]
    #[should_panic(expected = "log2(T) <= B")]
    fn too_few_radix_bits_rejected() {
        let _ = JoinConfig::with_threads(32).radix_bits(3);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = JoinConfig::with_threads(0);
    }
}
