//! P-MPSM: the range-partitioned MPSM join (§3.2, Figures 5/6/10).
//!
//! Extends B-MPSM with a prologue that range-partitions the private
//! input so every worker joins only `1/T`-th of the key domain:
//!
//! 1. **Phase 1** — chunk and locally sort the public input `S` into
//!    runs `S_1 … S_T`;
//! 2. **Phase 2** — range-partition the private input `R`:
//!    * *2.1* every worker derives `f·T` equi-height bounds from its
//!      sorted `S_i` (almost free — the run is sorted) and the bounds
//!      merge into a global CDF of the S key distribution (§4.1);
//!    * *2.2* every worker radix-histograms its `R` chunk with `2^B`
//!      buckets (§4.2);
//!    * *2.3* global splitters balance
//!      `|R_i|·log|R_i| + T·|R_i| + CDF-share of S` per worker (§4.3),
//!      then every worker scatters its chunk through prefix-summed,
//!      disjoint windows — branch-free, comparison-free,
//!      synchronization-free (Figure 6);
//! 3. **Phase 3** — every worker sorts its private partition `R_i`;
//! 4. **Phase 4** — every worker merge-joins `R_i` with all `S_j`,
//!    entering each `S_j` at an interpolation-searched start point
//!    (Figure 7) and leaving when `R_i` is exhausted — so it scans only
//!    `≈ |S|/T²` of each public run.
//!
//! Skew in `R`, `S`, or both (even negatively correlated, Figure 16) is
//! absorbed by the CDF + splitter machinery; location skew needs no
//! handling at all because `R` is redistributed anyway (§5.5).

use crate::cdf::{equi_height_bounds, Cdf};
use crate::context::ExecContext;
use crate::histogram::{combine_histograms, compute_histogram, RadixDomain};
use crate::interpolation::interpolation_lower_bound;
use crate::join::variant::{emit_variant_rows, merge_join_mark, JoinVariant};
use crate::join::{JoinAlgorithm, JoinConfig, PooledJoin};
use crate::merge::merge_join_scanned;
use crate::partition::range_partition_ctx;
use crate::sink::JoinSink;
use crate::splitter::{compute_splitters, equi_height_splitters, Splitters};
use crate::stats::{JoinStats, Phase};
use crate::tuple::{key_range, Tuple};
use crate::worker::{chunk_ranges, SharedWorkerPool};

/// How phase 4 locates the start of the relevant range in each public
/// run (the §3.2.2 design decision; `ablation_entry_points` measures
/// the alternatives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EntrySearch {
    /// Interpolation search (the paper's choice, Figure 7).
    #[default]
    Interpolation,
    /// Plain binary search.
    Binary,
    /// No search: scan each public run from the beginning ("sequentially
    /// searching ... would incur numerous expensive comparisons").
    FullScan,
}

/// Splitter policy for phase 2.3 (the Figure 16 experiment contrasts
/// the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitterPolicy {
    /// Cost-balanced splitters from CDF + R histogram (the paper's
    /// algorithm; default).
    #[default]
    CostBalanced,
    /// Equal `|R_i|` cardinality, ignoring S — the strawman whose
    /// imbalance Figure 16b demonstrates.
    EquiHeight,
}

/// The range-partitioned MPSM join.
#[derive(Debug, Clone)]
pub struct PMpsmJoin {
    config: JoinConfig,
    policy: SplitterPolicy,
    entry: EntrySearch,
}

impl PMpsmJoin {
    /// Create a P-MPSM join with the given configuration and the
    /// paper's cost-balanced splitters.
    pub fn new(config: JoinConfig) -> Self {
        PMpsmJoin {
            config,
            policy: SplitterPolicy::CostBalanced,
            entry: EntrySearch::Interpolation,
        }
    }

    /// Override the splitter policy (for the Figure 16 experiment).
    pub fn with_splitter_policy(mut self, policy: SplitterPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Override the phase-4 entry-point search (for the ablation).
    pub fn with_entry_search(mut self, entry: EntrySearch) -> Self {
        self.entry = entry;
        self
    }

    /// Access the configuration.
    pub fn config(&self) -> &JoinConfig {
        &self.config
    }
}

impl PMpsmJoin {
    /// Run a non-inner variant (left-outer / left-semi / left-anti on
    /// the private side) — the paper's §7 extension. `Inner` delegates
    /// to the plain path.
    pub fn join_variant_with_sink<S: JoinSink>(
        &self,
        variant: JoinVariant,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats) {
        self.execute::<S>(&ExecContext::flat(self.config.threads), variant, r, s)
    }

    /// [`PMpsmJoin::join_variant_with_sink`] on a caller-provided
    /// shared pool (the pool's width is the worker count `T`).
    pub fn join_variant_with_sink_on<S: JoinSink>(
        &self,
        pool: &SharedWorkerPool,
        variant: JoinVariant,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats) {
        self.execute::<S>(&ExecContext::over_pool(pool), variant, r, s)
    }

    /// [`PMpsmJoin::join_variant_with_sink`] inside an execution
    /// context (placement-aware storage and access audit; the context's
    /// pool width is the worker count `T`).
    pub fn join_variant_in<S: JoinSink>(
        &self,
        cx: &ExecContext,
        variant: JoinVariant,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats) {
        self.execute::<S>(cx, variant, r, s)
    }
}

impl JoinAlgorithm for PMpsmJoin {
    fn name(&self) -> &'static str {
        "P-MPSM"
    }

    fn join_with_sink<S: JoinSink>(&self, r: &[Tuple], s: &[Tuple]) -> (S::Result, JoinStats) {
        self.execute::<S>(&ExecContext::flat(self.config.threads), JoinVariant::Inner, r, s)
    }

    fn join_in<S: JoinSink>(
        &self,
        cx: &ExecContext,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats) {
        self.execute::<S>(cx, JoinVariant::Inner, r, s)
    }
}

impl PooledJoin for PMpsmJoin {}

impl PMpsmJoin {
    fn execute<S: JoinSink>(
        &self,
        cx: &ExecContext,
        variant: JoinVariant,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats) {
        // The context decides the worker count: a self-pooled join gets
        // `config.threads` workers, a scheduled join shares whatever
        // width the scheduler provisioned.
        let t = cx.threads();
        let pool = cx.pool();
        let (r, s, _swapped) = self.config.assign_roles(r, s);
        let wall = std::time::Instant::now();
        let mut stats = JoinStats::new(t);

        // ---- Phase 1: sort public chunks into node-homed runs
        // S_1 … S_T. ----
        let s_ranges = chunk_ranges(s.len(), t);
        let (phase1, d1) = pool.run_timed(|w| {
            let mut scope = cx.scope(w);
            let run = cx.sorted_run(w, &s[s_ranges[w].clone()], &mut scope);
            (run, scope.finish())
        });
        let (s_runs, c1): (Vec<_>, Vec<_>) = phase1.into_iter().unzip();
        stats.record_phase(Phase::One, &d1);
        cx.record(Phase::One, c1);

        // ---- Phase 2.1: global S distribution (CDF). Sub-linear
        // (f·T bounds per worker, read from the already-sorted local
        // run) — not counted in the access audit. ----
        let fan = (self.config.cdf_fan * t).max(1);
        let (locals, d21) =
            pool.run_timed(|w| (equi_height_bounds(&s_runs[w], fan), s_runs[w].len()));
        stats.record_phase(Phase::Two, &d21);
        let cdf = Cdf::from_local_bounds(&locals);

        // ---- Phase 2.2: fine-grained R histograms. ----
        let r_ranges = chunk_ranges(r.len(), t);
        let r_chunks: Vec<&[Tuple]> = r_ranges.iter().map(|rng| &r[rng.clone()]).collect();
        // Key domain of R: cheap parallel min/max scan (the "bitwise
        // shift preprocessing" of §3.2.1 needs the bounds).
        let (scan_out, d_scan) = pool.run_timed(|w| {
            let mut scope = cx.scope(w);
            scope.touch_interleaved(true, r_chunks[w].len() as u64);
            (key_range(r_chunks[w]), scope.finish())
        });
        let (ranges, c_scan): (Vec<_>, Vec<_>) = scan_out.into_iter().unzip();
        stats.record_phase(Phase::Two, &d_scan);
        cx.record(Phase::Two, c_scan);
        let (min, max) = ranges
            .into_iter()
            .flatten()
            .fold((u64::MAX, 0u64), |(lo, hi), (a, b)| (lo.min(a), hi.max(b)));
        let domain = if min <= max {
            RadixDomain::from_range(min, max, self.config.radix_bits)
        } else {
            RadixDomain::from_range(0, 0, self.config.radix_bits)
        };
        let (hist_out, d22) = pool.run_timed(|w| {
            let mut scope = cx.scope(w);
            scope.touch_interleaved(true, r_chunks[w].len() as u64);
            (compute_histogram(r_chunks[w], &domain), scope.finish())
        });
        let (histograms, c22): (Vec<_>, Vec<_>) = hist_out.into_iter().unzip();
        stats.record_phase(Phase::Two, &d22);
        cx.record(Phase::Two, c22);
        let global_hist = combine_histograms(&histograms);

        // ---- Phase 2.3: splitters + synchronization-free scatter into
        // partitions homed on their owning workers' nodes (the audited,
        // placement-aware path). ----
        let splitters: Splitters = match self.policy {
            SplitterPolicy::CostBalanced => compute_splitters(&global_hist, &domain, &cdf, t),
            SplitterPolicy::EquiHeight => equi_height_splitters(&global_hist, t),
        };
        let scatter_start = std::time::Instant::now();
        let partitions = range_partition_ctx(cx, &r_chunks, &domain, &splitters);
        let scatter = scatter_start.elapsed();
        // The scatter is a parallel section; attribute its wall time to
        // every worker's phase 2 (all workers participate end-to-end).
        stats.record_phase(Phase::Two, &vec![scatter; t]);

        // ---- Phase 3: sort private partitions R_i. Each worker takes
        // ownership of its partition — homed on its own node by the
        // scatter above — and sorts it in place (commandment C1: the
        // random accesses of the sort all hit local RAM). The take-once
        // slots hand each partition to its pool worker.
        let slots = crate::worker::OwnedSlots::new(partitions);
        let (phase3, d3) = pool.run_timed(|w| {
            let mut scope = cx.scope(w);
            let mut part = slots.take(w);
            let home = part.home();
            cx.sort_run(w, &mut part, home, &mut scope);
            (part, scope.finish())
        });
        let (r_runs, c3): (Vec<_>, Vec<_>) = phase3.into_iter().unzip();
        stats.record_phase(Phase::Three, &d3);
        cx.record(Phase::Three, c3);

        // ---- Phase 4: merge join R_i with every S_j, starting at an
        // interpolated offset. Non-inner variants track a worker-local
        // matched bitmap across the public runs. The audit records the
        // entry probes as random accesses against the public run's home
        // (the O(log log) exception C2 tolerates) and the merge itself
        // at its actual scan extents — with T workers each touching
        // ≈ |S|/T² of every public run, the phase stays overwhelmingly
        // node-local, which `bench_numa` asserts. ----
        let entry = self.entry;
        let find_start = move |s_run: &[Tuple], key: u64| -> usize {
            match entry {
                EntrySearch::Interpolation => interpolation_lower_bound(s_run, key),
                EntrySearch::Binary => s_run.partition_point(|t| t.key < key),
                EntrySearch::FullScan => 0,
            }
        };
        let probe_cost = move |s_run: &[Tuple]| -> u64 {
            match entry {
                EntrySearch::FullScan => 0,
                _ if s_run.is_empty() => 0,
                _ => (s_run.len() as u64).ilog2() as u64 + 1,
            }
        };
        let (phase4, d4) = pool.run_timed(|w| {
            let mut scope = cx.scope(w);
            let mut sink = S::default();
            let run = &r_runs[w];
            let my_home = run.home();
            if let Some(first) = run.first() {
                if variant == JoinVariant::Inner {
                    for s_run in &s_runs {
                        let start = find_start(s_run, first.key);
                        scope.touch(s_run.home(), false, probe_cost(s_run));
                        let scan = merge_join_scanned(run, &s_run[start..], &mut sink);
                        scope.touch(my_home, true, scan.r_scanned as u64);
                        scope.touch(s_run.home(), true, scan.s_scanned as u64);
                    }
                } else {
                    let mut matched = vec![false; run.len()];
                    for s_run in &s_runs {
                        let start = find_start(s_run, first.key);
                        scope.touch(s_run.home(), false, probe_cost(s_run));
                        let scan = merge_join_mark(
                            run,
                            &s_run[start..],
                            &mut matched,
                            variant.emits_pairs(),
                            &mut sink,
                        );
                        scope.touch(my_home, true, scan.r_scanned as u64);
                        scope.touch(s_run.home(), true, scan.s_scanned as u64);
                    }
                    emit_variant_rows(variant, run, &matched, &mut sink);
                }
            }
            (sink.finish(), scope.finish())
        });
        let (partials, c4): (Vec<_>, Vec<_>) = phase4.into_iter().unzip();
        stats.record_phase(Phase::Four, &d4);
        cx.record(Phase::Four, c4);

        stats.wall = wall.elapsed();
        (S::combine_all(partials), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::Role;
    use crate::sink::{CollectSink, CountSink};

    fn keyed(keys: &[u64]) -> Vec<Tuple> {
        keys.iter().enumerate().map(|(i, &k)| Tuple::new(k, i as u64)).collect()
    }

    fn nested_loop_count(r: &[Tuple], s: &[Tuple]) -> u64 {
        r.iter().map(|rt| s.iter().filter(|st| st.key == rt.key).count() as u64).sum()
    }

    fn lcg(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed | 1;
        move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 32
        }
    }

    #[test]
    fn joins_small_relations() {
        let r = keyed(&[1, 5, 9, 5]);
        let s = keyed(&[5, 5, 2, 9]);
        let join = PMpsmJoin::new(JoinConfig::with_threads(2));
        assert_eq!(join.count(&r, &s), nested_loop_count(&r, &s));
    }

    #[test]
    fn matches_oracle_across_thread_counts() {
        let mut next = lcg(5);
        let r: Vec<Tuple> = (0..800).map(|i| Tuple::new(next() % 512, i)).collect();
        let s: Vec<Tuple> = (0..2400).map(|i| Tuple::new(next() % 512, i)).collect();
        let expected = nested_loop_count(&r, &s);
        for threads in [1, 2, 3, 5, 8, 16] {
            let join = PMpsmJoin::new(JoinConfig::with_threads(threads));
            assert_eq!(join.count(&r, &s), expected, "threads = {threads}");
        }
    }

    #[test]
    fn equi_height_policy_is_also_correct() {
        let mut next = lcg(9);
        let r: Vec<Tuple> = (0..500).map(|i| Tuple::new(next() % 256, i)).collect();
        let s: Vec<Tuple> = (0..1500).map(|i| Tuple::new(next() % 256, i)).collect();
        let join = PMpsmJoin::new(JoinConfig::with_threads(4))
            .with_splitter_policy(SplitterPolicy::EquiHeight);
        assert_eq!(join.count(&r, &s), nested_loop_count(&r, &s));
    }

    #[test]
    fn skewed_and_negatively_correlated_inputs() {
        // R mass high, S mass low (Figure 16's adversarial case).
        let mut next = lcg(13);
        let r: Vec<Tuple> = (0..2000)
            .map(|i| {
                let k = if next() % 10 < 8 { 800 + next() % 224 } else { next() % 800 };
                Tuple::new(k, i)
            })
            .collect();
        let s: Vec<Tuple> = (0..4000)
            .map(|i| {
                let k = if next() % 10 < 8 { next() % 205 } else { 205 + next() % 819 };
                Tuple::new(k, i)
            })
            .collect();
        let expected = nested_loop_count(&r, &s);
        for threads in [1, 4, 8] {
            let join = PMpsmJoin::new(JoinConfig::with_threads(threads));
            assert_eq!(join.count(&r, &s), expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let join = PMpsmJoin::new(JoinConfig::with_threads(4));
        assert_eq!(join.count(&[], &[]), 0);
        assert_eq!(join.count(&keyed(&[7]), &[]), 0);
        assert_eq!(join.count(&[], &keyed(&[7])), 0);
        assert_eq!(join.count(&keyed(&[7]), &keyed(&[7, 7])), 2);
        // All keys identical: one partition gets everything.
        let r = keyed(&vec![3u64; 300]);
        let s = keyed(&vec![3u64; 70]);
        assert_eq!(join.count(&r, &s), 300 * 70);
    }

    #[test]
    fn more_threads_than_tuples() {
        let r = keyed(&[2, 9]);
        let s = keyed(&[9, 2, 9]);
        let join = PMpsmJoin::new(JoinConfig::with_threads(16));
        assert_eq!(join.count(&r, &s), 3);
    }

    #[test]
    fn collects_correct_pairs_with_payloads() {
        let r = keyed(&[4, 2]); // payloads 0, 1
        let s = keyed(&[2, 4]); // payloads 0, 1
        let join = PMpsmJoin::new(JoinConfig::with_threads(2));
        let (mut rows, _) = join.join_with_sink::<CollectSink>(&r, &s);
        rows.sort_unstable();
        assert_eq!(rows, vec![(2, 1, 0), (4, 0, 1)]);
    }

    #[test]
    fn role_reversal_preserves_symmetric_results() {
        let mut next = lcg(21);
        let r: Vec<Tuple> = (0..300).map(|i| Tuple::new(next() % 128, i)).collect();
        let s: Vec<Tuple> = (0..900).map(|i| Tuple::new(next() % 128, i)).collect();
        let fixed = PMpsmJoin::new(JoinConfig::with_threads(4));
        let auto = PMpsmJoin::new(JoinConfig::with_threads(4).role(Role::SmallerPrivate));
        assert_eq!(
            fixed.count(&r, &s),
            auto.count(&s, &r),
            "role policy must not change cardinality"
        );
        assert_eq!(fixed.max_payload_sum(&r, &s), auto.max_payload_sum(&s, &r));
    }

    #[test]
    fn stats_report_four_phases() {
        let mut next = lcg(33);
        let r: Vec<Tuple> = (0..5000).map(|i| Tuple::new(next() % 4096, i)).collect();
        let s: Vec<Tuple> = (0..5000).map(|i| Tuple::new(next() % 4096, i)).collect();
        let join = PMpsmJoin::new(JoinConfig::with_threads(4));
        let (_, stats) = join.join_with_sink::<CountSink>(&r, &s);
        assert_eq!(stats.per_worker.len(), 4);
        assert!(stats.wall_ms() > 0.0);
    }

    #[test]
    fn entry_search_strategies_agree() {
        let mut next = lcg(77);
        let r: Vec<Tuple> = (0..600).map(|i| Tuple::new(next() % 400, i)).collect();
        let s: Vec<Tuple> = (0..1800).map(|i| Tuple::new(next() % 400, i)).collect();
        let base = PMpsmJoin::new(JoinConfig::with_threads(4)).count(&r, &s);
        for entry in [EntrySearch::Binary, EntrySearch::FullScan] {
            let join = PMpsmJoin::new(JoinConfig::with_threads(4)).with_entry_search(entry);
            assert_eq!(join.count(&r, &s), base, "{entry:?}");
        }
    }

    #[test]
    fn context_join_keeps_sort_local_and_partitions_placed() {
        use mpsm_numa::{AccessKind, Topology};

        let mut next = lcg(101);
        let n = 4000;
        let r: Vec<Tuple> = (0..n).map(|i| Tuple::new(next() % 65536, i)).collect();
        let s: Vec<Tuple> = (0..n).map(|i| Tuple::new(next() % 65536, i)).collect();
        let cx = ExecContext::new(Topology::paper_machine(), 8);
        let join = PMpsmJoin::new(JoinConfig::with_threads(8));
        let count = join.join_in::<CountSink>(&cx, &r, &s).0;
        assert_eq!(count, nested_loop_count(&r, &s));
        // C1 in the real path: the private sort phase runs on
        // partitions the scatter homed on the sorting worker's own node
        // — 100% local.
        let sort = cx.phase_counters(Phase::Three);
        assert!(sort.total_accesses() > 0);
        assert_eq!(sort.remote_fraction(), 0.0, "partition sort is node-local");
        // The scatter wrote remotely, but only sequentially (C1 permits
        // sequential stores into disjoint remote windows).
        let scatter = cx.phase_counters(Phase::Two);
        assert!(scatter.accesses(AccessKind::RemoteSeq) > 0, "cross-node scatter traffic");
        // No remote random accesses anywhere in phase 2 or 3.
        assert_eq!(scatter.accesses(AccessKind::RemoteRand), 0);
        assert_eq!(sort.accesses(AccessKind::RemoteRand), 0);
    }

    #[test]
    fn paper_query_on_known_data() {
        // R: keys 0..10 payload = key; S: key k payload 100k.
        let r: Vec<Tuple> = (0..10u64).map(|k| Tuple::new(k, k)).collect();
        let s: Vec<Tuple> = (0..10u64).map(|k| Tuple::new(k, 100 * k)).collect();
        let join = PMpsmJoin::new(JoinConfig::with_threads(3));
        assert_eq!(join.max_payload_sum(&r, &s), Some(9 + 900));
    }
}
