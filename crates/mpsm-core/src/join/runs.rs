//! Reusable sorted-run production and consumption — the machinery
//! behind the executor's cross-query run cache (§7's observation that
//! MPSM's sorted runs are a free by-product of the join).
//!
//! [`build_run_set`] turns a relation into `T` *range-partitioned,
//! sorted* runs: equi-height splitters derived from the relation's own
//! radix histogram bound each run to a disjoint slice of the key
//! domain, the write-combining scatter of P-MPSM phase 2.3 places run
//! `i` on worker `i`'s node, and each worker three-phase-sorts its
//! partition locally. The result depends only on the relation's bytes,
//! the worker count and the radix width — not on the other join input —
//! which is what makes a [`RunSet`] shareable across queries.
//!
//! [`join_runs_in`] is the run-oriented join entry point: either side
//! arrives as raw tuples (runs are built, and returned for publishing)
//! or as a pre-built shared [`RunSet`] (phases 1–3 are skipped
//! entirely). The merge phase joins every private run against every
//! public run from an interpolation-searched entry point, exactly like
//! P-MPSM phase 4 — correct for *any* pair of per-side disjoint
//! partitionings, aligned or not, because a matching pair `(r, s)`
//! lives in exactly one `(R_i, S_j)` combination.

use std::sync::Arc;

use mpsm_numa::NumaBuf;

use crate::context::ExecContext;
use crate::histogram::{combine_histograms, compute_histogram, RadixDomain};
use crate::interpolation::interpolation_lower_bound;
use crate::merge::merge_join_scanned;
use crate::partition::range_partition_ctx;
use crate::sink::JoinSink;
use crate::splitter::equi_height_splitters;
use crate::stats::{JoinStats, Phase};
use crate::tuple::{key_range, Tuple};
use crate::worker::{chunk_ranges, OwnedSlots};

/// A relation's sorted, range-partitioned, node-homed runs — the
/// output of phases 1–3 and the unit the executor's run cache stores.
///
/// Runs keep their [`NumaBuf`] homes, so a cached set re-used by a
/// query pinned elsewhere is read remotely (sequentially — still C2);
/// nothing is copied out of the arena on either publish or reuse.
#[derive(Debug, Clone)]
pub struct RunSet {
    runs: Vec<NumaBuf<Tuple>>,
    total: usize,
}

impl RunSet {
    /// Wrap already-sorted runs.
    pub fn new(runs: Vec<NumaBuf<Tuple>>) -> Self {
        let total = runs.iter().map(|r| r.len()).sum();
        RunSet { runs, total }
    }

    /// The runs, in partition order (ascending disjoint key ranges).
    pub fn runs(&self) -> &[NumaBuf<Tuple>] {
        &self.runs
    }

    /// Number of runs (the worker count the set was built with).
    pub fn parts(&self) -> usize {
        self.runs.len()
    }

    /// Total tuples across all runs.
    pub fn total_tuples(&self) -> usize {
        self.total
    }

    /// Payload bytes held by the set (what cache budgets meter).
    pub fn bytes(&self) -> usize {
        self.total * std::mem::size_of::<Tuple>()
    }
}

/// A [`RunSet`] shared between a cache and any number of concurrent
/// readers.
pub type SharedRunSet = Arc<RunSet>;

/// One join input on the run-oriented path: raw tuples (runs get
/// built) or a pre-built shared run set (phases 1–3 are skipped).
#[derive(Debug, Clone)]
pub enum RunsInput<'a> {
    /// Unsorted tuples; [`join_runs_in`] builds (and returns) the runs.
    Tuples(&'a [Tuple]),
    /// Pre-sorted runs from an earlier query, used as-is.
    Runs(SharedRunSet),
}

/// Everything [`join_runs_in`] produces: the sink result, per-phase
/// stats, and both inputs' run sets — freshly built or passed through —
/// ready for the caller to publish into a cache.
#[derive(Debug)]
pub struct RunsJoinOutput<R> {
    /// The combined sink result.
    pub result: R,
    /// Per-phase timings (build phases are zero for pre-built sides).
    pub stats: JoinStats,
    /// The private side's runs.
    pub r_runs: SharedRunSet,
    /// The public side's runs.
    pub s_runs: SharedRunSet,
}

/// Build a relation's [`RunSet`]: histogram → equi-height splitters →
/// NUMA-placed scatter → local sort.
///
/// Phase attribution: scan/histogram/scatter wall time is recorded
/// under `partition_phase`, the sort under `sort_phase` (the public
/// side of a join records both under `Phase::One`, the private side
/// under `Phase::Two`/`Phase::Three`, mirroring P-MPSM's numbering).
/// [`range_partition_ctx`] books its access counters under
/// `Phase::Two` regardless — the scatter is phase-2 work in the
/// paper's audit taxonomy no matter which side triggers it.
pub fn build_run_set(
    cx: &ExecContext,
    tuples: &[Tuple],
    radix_bits: u32,
    partition_phase: Phase,
    sort_phase: Phase,
    stats: &mut JoinStats,
) -> RunSet {
    let t = cx.threads();
    let pool = cx.pool();
    let ranges = chunk_ranges(tuples.len(), t);
    let chunks: Vec<&[Tuple]> = ranges.iter().map(|rng| &tuples[rng.clone()]).collect();

    // Key domain: parallel min/max scan.
    let (scan_out, d_scan) = pool.run_timed(|w| {
        let mut scope = cx.scope(w);
        scope.touch_interleaved(true, chunks[w].len() as u64);
        (key_range(chunks[w]), scope.finish())
    });
    let (key_ranges, c_scan): (Vec<_>, Vec<_>) = scan_out.into_iter().unzip();
    stats.record_phase(partition_phase, &d_scan);
    cx.record(partition_phase, c_scan);
    let (min, max) = key_ranges
        .into_iter()
        .flatten()
        .fold((u64::MAX, 0u64), |(lo, hi), (a, b)| (lo.min(a), hi.max(b)));
    let domain = if min <= max {
        RadixDomain::from_range(min, max, radix_bits)
    } else {
        RadixDomain::from_range(0, 0, radix_bits)
    };

    // Equi-height splitters from the relation's own histogram: the
    // partitioning is a pure function of (relation, T, B) — the
    // property the cache key fingerprints.
    let (hist_out, d_hist) = pool.run_timed(|w| {
        let mut scope = cx.scope(w);
        scope.touch_interleaved(true, chunks[w].len() as u64);
        (compute_histogram(chunks[w], &domain), scope.finish())
    });
    let (histograms, c_hist): (Vec<_>, Vec<_>) = hist_out.into_iter().unzip();
    stats.record_phase(partition_phase, &d_hist);
    cx.record(partition_phase, c_hist);
    let splitters = equi_height_splitters(&combine_histograms(&histograms), t);

    let scatter_start = std::time::Instant::now();
    let partitions = range_partition_ctx(cx, &chunks, &domain, &splitters);
    stats.record_phase(partition_phase, &vec![scatter_start.elapsed(); t]);

    // Local sort of each partition on its home node.
    let slots = OwnedSlots::new(partitions);
    let (sorted, d_sort) = pool.run_timed(|w| {
        let mut scope = cx.scope(w);
        let mut part = slots.take(w);
        let home = part.home();
        cx.sort_run(w, &mut part, home, &mut scope);
        (part, scope.finish())
    });
    let (runs, c_sort): (Vec<_>, Vec<_>) = sorted.into_iter().unzip();
    stats.record_phase(sort_phase, &d_sort);
    cx.record(sort_phase, c_sort);

    RunSet::new(runs)
}

/// Phase 4 over two run sets: every private run merges with every
/// public run from an interpolation-searched entry point. Workers pick
/// up private runs round-robin (`w, w + T, …`), so a cached set built
/// at a different width than the current context still joins
/// correctly.
pub fn merge_run_sets_in<S: JoinSink>(
    cx: &ExecContext,
    r_runs: &RunSet,
    s_runs: &RunSet,
    stats: &mut JoinStats,
) -> S::Result {
    let t = cx.threads();
    let (phase4, d4) = cx.pool().run_timed(|w| {
        let mut scope = cx.scope(w);
        let mut sink = S::default();
        for rp in (w..r_runs.parts()).step_by(t.max(1)) {
            let run = &r_runs.runs()[rp];
            let my_home = run.home();
            let Some(first) = run.first() else { continue };
            for s_run in s_runs.runs() {
                let start = interpolation_lower_bound(s_run, first.key);
                if !s_run.is_empty() {
                    scope.touch(s_run.home(), false, (s_run.len() as u64).ilog2() as u64 + 1);
                }
                let scan = merge_join_scanned(run, &s_run[start..], &mut sink);
                scope.touch(my_home, true, scan.r_scanned as u64);
                scope.touch(s_run.home(), true, scan.s_scanned as u64);
            }
        }
        (sink.finish(), scope.finish())
    });
    let (partials, c4): (Vec<_>, Vec<_>) = phase4.into_iter().unzip();
    stats.record_phase(Phase::Four, &d4);
    cx.record(Phase::Four, c4);
    S::combine_all(partials)
}

/// The run-oriented join: build runs for whichever sides arrive as
/// tuples, skip straight to the merge for sides that arrive pre-built,
/// and hand both sets back for publishing.
pub fn join_runs_in<S: JoinSink>(
    cx: &ExecContext,
    r: RunsInput<'_>,
    s: RunsInput<'_>,
    radix_bits: u32,
) -> RunsJoinOutput<S::Result> {
    let t = cx.threads();
    let wall = std::time::Instant::now();
    let mut stats = JoinStats::new(t);
    let s_runs: SharedRunSet = match s {
        RunsInput::Tuples(tuples) => {
            Arc::new(build_run_set(cx, tuples, radix_bits, Phase::One, Phase::One, &mut stats))
        }
        RunsInput::Runs(set) => set,
    };
    let r_runs: SharedRunSet = match r {
        RunsInput::Tuples(tuples) => {
            Arc::new(build_run_set(cx, tuples, radix_bits, Phase::Two, Phase::Three, &mut stats))
        }
        RunsInput::Runs(set) => set,
    };
    let result = merge_run_sets_in::<S>(cx, &r_runs, &s_runs, &mut stats);
    stats.wall = wall.elapsed();
    RunsJoinOutput { result, stats, r_runs, s_runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectSink, CountSink};
    use crate::tuple::is_key_sorted;

    fn lcg(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed | 1;
        move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 32
        }
    }

    fn nested_loop_count(r: &[Tuple], s: &[Tuple]) -> u64 {
        r.iter().map(|rt| s.iter().filter(|st| st.key == rt.key).count() as u64).sum()
    }

    fn random(n: usize, domain: u64, seed: u64) -> Vec<Tuple> {
        let mut next = lcg(seed);
        (0..n).map(|i| Tuple::new(next() % domain, i as u64)).collect()
    }

    #[test]
    fn built_runs_are_sorted_disjoint_and_complete() {
        let tuples = random(3000, 700, 11);
        let cx = ExecContext::flat(4);
        let mut stats = JoinStats::new(4);
        let set = build_run_set(&cx, &tuples, 10, Phase::One, Phase::One, &mut stats);
        assert_eq!(set.parts(), 4);
        assert_eq!(set.total_tuples(), tuples.len());
        assert_eq!(set.bytes(), tuples.len() * std::mem::size_of::<Tuple>());
        let mut last_max: Option<u64> = None;
        for run in set.runs() {
            assert!(is_key_sorted(run), "each run key-sorted");
            if let (Some(prev), Some(first)) = (last_max, run.first()) {
                assert!(first.key > prev, "runs cover ascending disjoint key ranges");
            }
            if let Some(t) = run.last() {
                last_max = Some(t.key);
            }
        }
    }

    #[test]
    fn matches_oracle_across_thread_counts() {
        let r = random(800, 512, 5);
        let s = random(2400, 512, 7);
        let expected = nested_loop_count(&r, &s);
        for threads in [1, 2, 3, 5, 8] {
            let cx = ExecContext::flat(threads);
            let out =
                join_runs_in::<CountSink>(&cx, RunsInput::Tuples(&r), RunsInput::Tuples(&s), 10);
            assert_eq!(out.result, expected, "threads = {threads}");
            assert_eq!(out.r_runs.total_tuples(), r.len());
            assert_eq!(out.s_runs.total_tuples(), s.len());
        }
    }

    #[test]
    fn cached_runs_reproduce_the_fresh_join() {
        let r = random(1000, 300, 21);
        let s = random(3000, 300, 23);
        let cx = ExecContext::flat(4);
        let fresh =
            join_runs_in::<CountSink>(&cx, RunsInput::Tuples(&r), RunsInput::Tuples(&s), 10);
        // Every hit/miss combination must agree with the fresh join.
        for (r_in, s_in) in [
            (
                RunsInput::Runs(Arc::clone(&fresh.r_runs)),
                RunsInput::Runs(Arc::clone(&fresh.s_runs)),
            ),
            (RunsInput::Runs(Arc::clone(&fresh.r_runs)), RunsInput::Tuples(&s)),
            (RunsInput::Tuples(&r), RunsInput::Runs(Arc::clone(&fresh.s_runs))),
        ] {
            let again = join_runs_in::<CountSink>(&cx, r_in, s_in, 10);
            assert_eq!(again.result, fresh.result);
        }
    }

    #[test]
    fn cached_runs_join_under_a_different_width() {
        // Runs built at T=6 must merge correctly in a T=2 context and
        // vice versa (round-robin run pickup).
        let r = random(900, 256, 31);
        let s = random(1800, 256, 37);
        let expected = nested_loop_count(&r, &s);
        let wide = ExecContext::flat(6);
        let built =
            join_runs_in::<CountSink>(&wide, RunsInput::Tuples(&r), RunsInput::Tuples(&s), 10);
        assert_eq!(built.result, expected);
        let narrow = ExecContext::flat(2);
        let reused = join_runs_in::<CountSink>(
            &narrow,
            RunsInput::Runs(built.r_runs),
            RunsInput::Runs(built.s_runs),
            10,
        );
        assert_eq!(reused.result, expected);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let cx = ExecContext::flat(4);
        let empty: Vec<Tuple> = Vec::new();
        let some = random(50, 8, 3);
        let out =
            join_runs_in::<CountSink>(&cx, RunsInput::Tuples(&empty), RunsInput::Tuples(&some), 10);
        assert_eq!(out.result, 0);
        let out =
            join_runs_in::<CountSink>(&cx, RunsInput::Tuples(&some), RunsInput::Tuples(&empty), 10);
        assert_eq!(out.result, 0);
        // All keys identical: one partition gets everything.
        let dup: Vec<Tuple> = (0..200).map(|i| Tuple::new(9, i)).collect();
        let out =
            join_runs_in::<CountSink>(&cx, RunsInput::Tuples(&dup), RunsInput::Tuples(&dup), 10);
        assert_eq!(out.result, 200 * 200);
    }

    #[test]
    fn collects_correct_pairs_with_payloads() {
        let r: Vec<Tuple> = vec![Tuple::new(4, 0), Tuple::new(2, 1)];
        let s: Vec<Tuple> = vec![Tuple::new(2, 0), Tuple::new(4, 1)];
        let cx = ExecContext::flat(2);
        let out =
            join_runs_in::<CollectSink>(&cx, RunsInput::Tuples(&r), RunsInput::Tuples(&s), 10);
        let mut rows = out.result;
        rows.sort_unstable();
        assert_eq!(rows, vec![(2, 1, 0), (4, 0, 1)]);
    }

    #[test]
    fn stats_attribute_build_phases_to_the_right_side() {
        let r = random(4000, 4096, 41);
        let s = random(4000, 4096, 43);
        let cx = ExecContext::flat(4);
        let fresh =
            join_runs_in::<CountSink>(&cx, RunsInput::Tuples(&r), RunsInput::Tuples(&s), 10);
        // A both-sides-cached join spends nothing in phases 1-3.
        let hit = join_runs_in::<CountSink>(
            &cx,
            RunsInput::Runs(fresh.r_runs),
            RunsInput::Runs(fresh.s_runs),
            10,
        );
        let [p1, p2, p3, p4] = hit.stats.phases_ms();
        assert_eq!(p1 + p2 + p3, 0.0, "hit path skips build phases");
        assert!(p4 >= 0.0);
        assert_eq!(hit.result, fresh.result);
    }
}
