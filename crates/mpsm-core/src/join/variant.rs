//! Non-inner join variants (paper §7 future work: "outer, semi, and
//! non-equi joins").
//!
//! The MPSM structure makes one-sided variants natural on the *private*
//! side: every worker owns a complete private run `R_i` and scans all
//! public runs, so after the merge phase it knows, per private tuple,
//! whether a partner existed *anywhere* in `S`. A per-run `matched`
//! bitmap (worker-local, commandment C3 intact) carries that knowledge
//! across the `T` public runs:
//!
//! * **left outer** — inner pairs plus [`crate::sink::JoinSink::on_private`]
//!   for every unmatched private tuple;
//! * **left semi** — each matched private tuple once (no pairs);
//! * **left anti** — each unmatched private tuple once.
//!
//! Non-equi **band joins** (`|r.key − s.key| ≤ delta`) are provided for
//! the B-MPSM topology, where every worker sees all of `S` so no
//! partition-boundary replication is needed ([`band_merge_join`]).

use crate::merge::MergeScan;
use crate::sink::JoinSink;
use crate::tuple::Tuple;

/// The supported join variants (the private side is the "left").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinVariant {
    /// Plain equi-join: all matching pairs.
    #[default]
    Inner,
    /// All pairs plus one single-sided row per unmatched private tuple.
    LeftOuter,
    /// One single-sided row per private tuple with ≥ 1 partner.
    LeftSemi,
    /// One single-sided row per private tuple with no partner.
    LeftAnti,
}

impl JoinVariant {
    /// Whether the variant emits matching pairs.
    pub fn emits_pairs(self) -> bool {
        matches!(self, JoinVariant::Inner | JoinVariant::LeftOuter)
    }
}

/// Merge-join `r` against one public run `s`, marking matched private
/// tuples in `matched` (same length as `r`) and emitting pairs into
/// `sink` if `emit_pairs`. Called once per public run; the bitmap
/// accumulates across calls. Returns the scan extents for the access
/// audit (see [`crate::merge::MergeScan`]).
pub fn merge_join_mark<S: JoinSink>(
    r: &[Tuple],
    s: &[Tuple],
    matched: &mut [bool],
    emit_pairs: bool,
    sink: &mut S,
) -> MergeScan {
    debug_assert_eq!(r.len(), matched.len());
    debug_assert!(crate::tuple::is_key_sorted(r));
    debug_assert!(crate::tuple::is_key_sorted(s));
    let mut i = 0;
    let mut j = 0;
    while i < r.len() && j < s.len() {
        let rk = r[i].key;
        let sk = s[j].key;
        if rk < sk {
            i += 1;
        } else if rk > sk {
            j += 1;
        } else {
            let i_end = group_end(r, i);
            let j_end = group_end(s, j);
            for (rt, m) in r[i..i_end].iter().zip(matched[i..i_end].iter_mut()) {
                *m = true;
                if emit_pairs {
                    for st in &s[j..j_end] {
                        sink.on_match(*rt, *st);
                    }
                }
            }
            i = i_end;
            j = j_end;
        }
    }
    MergeScan { r_scanned: i, s_scanned: j }
}

/// Finish a variant after all public runs were merged: emit the
/// single-sided rows the variant calls for.
pub fn emit_variant_rows<S: JoinSink>(
    variant: JoinVariant,
    r: &[Tuple],
    matched: &[bool],
    sink: &mut S,
) {
    match variant {
        JoinVariant::Inner => {}
        JoinVariant::LeftOuter | JoinVariant::LeftAnti => {
            for (t, &m) in r.iter().zip(matched) {
                if !m {
                    sink.on_private(*t);
                }
            }
        }
        JoinVariant::LeftSemi => {
            for (t, &m) in r.iter().zip(matched) {
                if m {
                    sink.on_private(*t);
                }
            }
        }
    }
}

/// Band merge join: emit all pairs with `|r.key − s.key| ≤ delta` from
/// two key-sorted runs. Forward-only on both runs (a sliding window on
/// `s`), so remote scans stay sequential (commandment C2).
pub fn band_merge_join<S: JoinSink>(r: &[Tuple], s: &[Tuple], delta: u64, sink: &mut S) {
    debug_assert!(crate::tuple::is_key_sorted(r));
    debug_assert!(crate::tuple::is_key_sorted(s));
    let mut window_start = 0usize;
    for rt in r {
        let lo = rt.key.saturating_sub(delta);
        let hi = rt.key.saturating_add(delta);
        while window_start < s.len() && s[window_start].key < lo {
            window_start += 1;
        }
        let mut j = window_start;
        while j < s.len() && s[j].key <= hi {
            sink.on_match(*rt, s[j]);
            j += 1;
        }
    }
}

#[inline]
fn group_end(run: &[Tuple], start: usize) -> usize {
    let key = run[start].key;
    let mut end = start + 1;
    while end < run.len() && run[end].key == key {
        end += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectSink, CountSink, NULL_PAYLOAD};

    fn sorted(keys: &[(u64, u64)]) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = keys.iter().map(|&(k, p)| Tuple::new(k, p)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn marking_accumulates_across_runs() {
        let r = sorted(&[(1, 0), (2, 0), (3, 0)]);
        let s1 = sorted(&[(1, 10)]);
        let s2 = sorted(&[(3, 30)]);
        let mut matched = vec![false; r.len()];
        let mut sink = CountSink::default();
        merge_join_mark(&r, &s1, &mut matched, true, &mut sink);
        merge_join_mark(&r, &s2, &mut matched, true, &mut sink);
        assert_eq!(matched, vec![true, false, true]);
        assert_eq!(sink.finish(), 2);
    }

    #[test]
    fn outer_rows_pad_unmatched() {
        let r = sorted(&[(1, 11), (2, 22)]);
        let s = sorted(&[(1, 100)]);
        let mut matched = vec![false; r.len()];
        let mut sink = CollectSink::default();
        merge_join_mark(&r, &s, &mut matched, true, &mut sink);
        emit_variant_rows(JoinVariant::LeftOuter, &r, &matched, &mut sink);
        let mut rows = sink.finish();
        rows.sort_unstable();
        assert_eq!(rows, vec![(1, 11, 100), (2, 22, NULL_PAYLOAD)]);
    }

    #[test]
    fn semi_and_anti_partition_the_private_input() {
        let r = sorted(&[(1, 0), (2, 0), (3, 0), (3, 1)]);
        let s = sorted(&[(3, 0), (3, 9), (5, 0)]);
        let mut matched = vec![false; r.len()];
        let mut probe = CountSink::default();
        merge_join_mark(&r, &s, &mut matched, false, &mut probe);
        assert_eq!(probe.finish(), 0, "semi/anti must not emit pairs");

        let mut semi = CountSink::default();
        emit_variant_rows(JoinVariant::LeftSemi, &r, &matched, &mut semi);
        let mut anti = CountSink::default();
        emit_variant_rows(JoinVariant::LeftAnti, &r, &matched, &mut anti);
        assert_eq!(semi.finish(), 2, "both key-3 tuples matched");
        assert_eq!(anti.finish(), 2, "keys 1 and 2 unmatched");
    }

    #[test]
    fn duplicate_groups_mark_every_member_and_emit_cross_products() {
        let r = sorted(&[(7, 0), (7, 1)]);
        let s = sorted(&[(7, 10), (7, 11), (7, 12)]);
        let mut matched = vec![false; 2];
        let mut sink = CountSink::default();
        merge_join_mark(&r, &s, &mut matched, true, &mut sink);
        assert_eq!(sink.finish(), 6);
        assert_eq!(matched, vec![true, true]);
    }

    #[test]
    fn band_join_window() {
        let r = sorted(&[(10, 0), (20, 1)]);
        let s = sorted(&[(7, 0), (9, 1), (12, 2), (18, 3), (25, 4)]);
        let mut sink = CollectSink::default();
        band_merge_join(&r, &s, 2, &mut sink);
        let mut rows = sink.finish();
        rows.sort_unstable();
        // 10 matches 9 and 12 (|Δ|≤2); 20 matches 18.
        assert_eq!(rows, vec![(10, 0, 1), (10, 0, 2), (20, 1, 3)]);
    }

    #[test]
    fn band_join_delta_zero_is_equi() {
        let r = sorted(&[(5, 0), (6, 0)]);
        let s = sorted(&[(5, 1), (7, 1)]);
        let mut sink = CountSink::default();
        band_merge_join(&r, &s, 0, &mut sink);
        assert_eq!(sink.finish(), 1);
    }

    #[test]
    fn band_join_saturates_at_domain_edges() {
        let r = sorted(&[(0, 0), (u64::MAX, 1)]);
        let s = sorted(&[(1, 0), (u64::MAX - 1, 1)]);
        let mut sink = CountSink::default();
        band_merge_join(&r, &s, 5, &mut sink);
        assert_eq!(sink.finish(), 2, "no overflow at either end");
    }

    #[test]
    fn variant_pair_emission_flags() {
        assert!(JoinVariant::Inner.emits_pairs());
        assert!(JoinVariant::LeftOuter.emits_pairs());
        assert!(!JoinVariant::LeftSemi.emits_pairs());
        assert!(!JoinVariant::LeftAnti.emits_pairs());
    }
}
