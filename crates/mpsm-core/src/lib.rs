//! # mpsm-core — Massively Parallel Sort-Merge joins
//!
//! From-scratch implementation of the MPSM join suite from *"Massively
//! Parallel Sort-Merge Joins in Main Memory Multi-Core Database
//! Systems"* (Albutiu, Kemper, Neumann; PVLDB 5(10), 2012):
//!
//! * [`join::b_mpsm`] — **B-MPSM**, the basic, absolutely skew-immune
//!   variant (§2.1): every worker sorts a private and a public chunk,
//!   then merge-joins its private run against *all* public runs.
//! * [`join::p_mpsm`] — **P-MPSM**, the range-partitioned main-memory
//!   variant (§3.2): a prologue range-partitions the private input with
//!   synchronization-free scatter so each worker only touches `1/T` of
//!   the key domain of the public input. Skew resilience via CDF +
//!   cost-balanced splitters (§4).
//! * [`join::d_mpsm`] — **D-MPSM**, the memory-constrained disk variant
//!   (§3.1): runs are spooled through `mpsm-storage`, and workers move
//!   synchronously through the key domain behind a page index, ahead of
//!   which an asynchronous prefetcher loads pages and behind which pages
//!   are released.
//!
//! Supporting machinery, each in its own module and usable on its own:
//! the paper's three-phase [`sort`] (§2.3), radix [`histogram`]s and
//! prefix sums (§3.2.1), the public-input [`cdf`] (§4.1), cost-balanced
//! [`splitter`]s (§4.2–4.3), [`interpolation`] search (§3.2.2), the
//! duplicate-correct [`merge`] join kernel, pluggable result [`sink`]s,
//! and per-phase [`stats`].
//!
//! ## Design rules (the paper's NUMA "commandments")
//!
//! * **C1** — no random writes to remote memory: all sorting happens on
//!   worker-local chunks; the only cross-worker writes (the scatter of
//!   phase 2) go *sequentially* into precomputed disjoint windows.
//! * **C2** — remote reads only sequentially: the join phase scans runs;
//!   the only non-sequential probes are the `O(log log)` interpolation
//!   search steps per (worker, run) pair.
//! * **C3** — no fine-grained synchronization: there are no atomics or
//!   latches in any hot loop; workers synchronize only at phase
//!   boundaries.
//!
//! ## Cache-conscious hot paths
//!
//! Four inner loops carry every join and are engineered beyond the
//! paper's literal recipe (each keeps its seed variant reachable for
//! the ablation benches): the [`partition`] scatter stages tuples in
//! per-partition 128-byte write-combining buffers; the three-phase
//! [`sort`] recurses its radix pass until buckets are cache-resident
//! and finishes each bucket while hot; the [`merge`] kernel gallops
//! (exponential search) over non-matching stretches; and
//! [`worker::WorkerPool`] parks persistent worker threads between
//! phases instead of respawning them. `BENCH_2.json` at the repository
//! root records the measured baseline.
//!
//! ## One execution context for every layer
//!
//! [`context::ExecContext`] bundles what an execution needs — a
//! simulated NUMA [`mpsm_numa::Topology`], a
//! [`worker::WorkerPlacement`] (worker → core → node), node-homed
//! arenas for run/partition storage, per-phase access counters, and a
//! [`worker::SharedWorkerPool`] — and every join runs through the one
//! entry shape [`join::JoinAlgorithm::join_in`]. The commandments
//! above are thereby *measured on the real code path*: sorts record
//! their traffic against the run's home node, the scatter against each
//! target partition's home, merges their actual scan extents
//! ([`merge::MergeScan`]). The classic entry points remain as thin
//! wrappers over a default flat context.
//!
//! ## Sharing the workers between joins
//!
//! [`worker::SharedWorkerPool`] lets many concurrent owners submit
//! phases to one pool through a fair FIFO turnstile; wrapping a pool
//! in [`context::ExecContext::over_pool`] (what [`join::PooledJoin`]
//! and [`join::d_mpsm::DMpsmJoin::join_variant_on_pool`] do) runs any
//! join on such a caller-provided pool — the substrate `mpsm-exec`'s
//! multi-query scheduler builds on, deriving one pinned context per
//! admitted query for NUMA-affine placement.

#![warn(missing_docs)]

pub mod adapter;
pub mod cdf;
pub mod context;
pub mod histogram;
pub mod interpolation;
pub mod join;
pub mod merge;
pub mod partition;
pub mod sink;
pub mod sort;
pub mod splitter;
pub mod stats;
pub mod tuple;
pub mod worker;

pub use context::{AllocPolicy, ExecContext};
pub use histogram::RadixDomain;
pub use join::{JoinAlgorithm, JoinConfig, PooledJoin, Role};
pub use stats::{JoinStats, Phase};
pub use tuple::Tuple;
