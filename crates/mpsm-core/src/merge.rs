//! The merge-join kernel.
//!
//! Joins two key-sorted runs with full duplicate semantics: for every
//! group of equal keys the cross product of the two groups is emitted
//! (an equi-join must produce `|G_r| × |G_s|` pairs). The kernel is the
//! inner loop of all three MPSM variants — phase 3 of B-MPSM and phase 4
//! of P-MPSM call it once per `(private run, public run)` pair, D-MPSM
//! streams it over paged runs.
//!
//! Both runs are only ever scanned forward, which is what makes the
//! remote reads of the join phase sequential (commandment C2).

use crate::sink::JoinSink;
use crate::tuple::Tuple;

/// Merge-join two key-sorted runs into `sink`.
/// `r` is the private input (first argument of `on_match`).
pub fn merge_join<S: JoinSink>(r: &[Tuple], s: &[Tuple], sink: &mut S) {
    debug_assert!(crate::tuple::is_key_sorted(r), "private run must be sorted");
    debug_assert!(crate::tuple::is_key_sorted(s), "public run must be sorted");
    let mut i = 0;
    let mut j = 0;
    while i < r.len() && j < s.len() {
        let rk = r[i].key;
        let sk = s[j].key;
        if rk < sk {
            // Skip ahead over the non-matching r group.
            i += 1;
            while i < r.len() && r[i].key < sk {
                i += 1;
            }
        } else if rk > sk {
            j += 1;
            while j < s.len() && s[j].key < rk {
                j += 1;
            }
        } else {
            // Equal keys: emit the cross product of both groups.
            let i_end = group_end(r, i);
            let j_end = group_end(s, j);
            for rt in &r[i..i_end] {
                for st in &s[j..j_end] {
                    sink.on_match(*rt, *st);
                }
            }
            i = i_end;
            j = j_end;
        }
    }
}

/// One-past-the-end of the duplicate group starting at `start`.
#[inline]
fn group_end(run: &[Tuple], start: usize) -> usize {
    let key = run[start].key;
    let mut end = start + 1;
    while end < run.len() && run[end].key == key {
        end += 1;
    }
    end
}

/// Merge-join counting matches only (convenience used by tests and the
/// complexity experiments).
pub fn merge_join_count(r: &[Tuple], s: &[Tuple]) -> u64 {
    let mut sink = crate::sink::CountSink::default();
    merge_join(r, s, &mut sink);
    sink.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectSink, CountSink};

    fn sorted(keys: &[(u64, u64)]) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = keys.iter().map(|&(k, p)| Tuple::new(k, p)).collect();
        v.sort_unstable();
        v
    }

    fn nested_loop_count(r: &[Tuple], s: &[Tuple]) -> u64 {
        r.iter().map(|rt| s.iter().filter(|st| st.key == rt.key).count() as u64).sum()
    }

    #[test]
    fn joins_simple_runs() {
        let r = sorted(&[(1, 10), (3, 30), (5, 50)]);
        let s = sorted(&[(2, 2), (3, 3), (5, 5), (7, 7)]);
        let mut sink = CollectSink::default();
        merge_join(&r, &s, &mut sink);
        assert_eq!(sink.finish(), vec![(3, 30, 3), (5, 50, 5)]);
    }

    #[test]
    fn duplicate_groups_emit_cross_products() {
        let r = sorted(&[(4, 1), (4, 2), (4, 3)]);
        let s = sorted(&[(4, 10), (4, 20)]);
        assert_eq!(merge_join_count(&r, &s), 6, "3 × 2 pairs");
        let mut sink = CollectSink::default();
        merge_join(&r, &s, &mut sink);
        let rows = sink.finish();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|&(k, _, _)| k == 4));
    }

    #[test]
    fn disjoint_runs_join_empty() {
        let r = sorted(&[(1, 0), (2, 0)]);
        let s = sorted(&[(10, 0), (20, 0)]);
        assert_eq!(merge_join_count(&r, &s), 0);
    }

    #[test]
    fn empty_inputs() {
        let r = sorted(&[(1, 0)]);
        assert_eq!(merge_join_count(&r, &[]), 0);
        assert_eq!(merge_join_count(&[], &r), 0);
        assert_eq!(merge_join_count(&[], &[]), 0);
    }

    #[test]
    fn matches_nested_loop_on_random_input() {
        let mut state = 3u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 56 // narrow domain → many duplicates
        };
        let r = sorted(&(0..300).map(|i| (next(), i)).collect::<Vec<_>>());
        let s = sorted(&(0..500).map(|i| (next(), i)).collect::<Vec<_>>());
        assert_eq!(merge_join_count(&r, &s), nested_loop_count(&r, &s));
    }

    #[test]
    fn interleaved_gaps_are_skipped() {
        let r = sorted(&[(1, 0), (100, 0), (200, 0), (300, 0)]);
        let s = sorted(&[(50, 0), (100, 0), (150, 0), (250, 0), (300, 0)]);
        let mut sink = CountSink::default();
        merge_join(&r, &s, &mut sink);
        assert_eq!(sink.finish(), 2); // 100 and 300
    }

    #[test]
    fn all_equal_keys_is_full_cross_product() {
        let r = sorted(&(0..50u64).map(|i| (9, i)).collect::<Vec<_>>());
        let s = sorted(&(0..40u64).map(|i| (9, i)).collect::<Vec<_>>());
        assert_eq!(merge_join_count(&r, &s), 50 * 40);
    }
}
