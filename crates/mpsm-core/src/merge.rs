//! The merge-join kernel.
//!
//! Joins two key-sorted runs with full duplicate semantics: for every
//! group of equal keys the cross product of the two groups is emitted
//! (an equi-join must produce `|G_r| × |G_s|` pairs). The kernel is the
//! inner loop of all three MPSM variants — phase 3 of B-MPSM and phase 4
//! of P-MPSM call it once per `(private run, public run)` pair, D-MPSM
//! streams it over paged runs.
//!
//! Both runs are only ever scanned forward, which is what makes the
//! remote reads of the join phase sequential (commandment C2).
//!
//! ## Galloping
//!
//! [`merge_join`] skips non-matching stretches with *galloping*
//! (exponential search): after a run of plain comparisons fails to
//! reach the other run's key, the cursor probes at exponentially
//! growing offsets and finishes with a binary search in the final
//! bracket — `O(log d)` comparisons for a skip of length `d` instead
//! of `d`. On runs whose key ranges barely overlap (exactly what
//! P-MPSM's phase 4 sees: a worker's `R_i` covers `1/T`-th of the
//! domain of every public run it scans past its entry point) this
//! collapses long dead stretches to a handful of probes.
//!
//! The linear budget is **adaptive**, per cursor, TimSort-style: it
//! starts at [`GALLOP_LINEAR`] and every advance the linear scan
//! resolves by itself *raises* it (up to [`GALLOP_MAX`]), while every
//! probe that skips past the budget *halves* it. Densely interleaved
//! runs — where every skip is one element long and the BENCH_2 "0pct"
//! ablation measured the fixed-threshold kernel at 0.83× of
//! [`merge_join_linear`] — therefore converge to the pure linear loop
//! with one budget check per advance (not per element), while
//! sparse-vs-dense runs drop the budget to 1 and gallop almost
//! immediately. The cold probe path is kept out of line so the hot
//! loop stays as small as the linear kernel's.
//! Equal singleton keys (the dominant case on FK joins) take a
//! branch-reduced fast path that emits the pair without the general
//! group-scan machinery.
//!
//! The plain linear kernel is retained as [`merge_join_linear`] — the
//! reference oracle for tests and the ablation benches
//! (`cargo bench --bench merge_kernel`).

use crate::sink::JoinSink;
use crate::tuple::Tuple;

/// Initial linear budget: failed plain comparisons before the cursor
/// switches to exponential probing. Keeps densely interleaved runs on
/// the branch-predictable linear path; 8 × 16 B is also exactly one
/// cache line of lookahead. The per-cursor budget adapts from here —
/// up to [`GALLOP_MAX`] while linear scans keep winning, down to 1
/// while probes keep skipping.
pub const GALLOP_LINEAR: usize = 8;

/// Ceiling of the adaptive linear budget. Once a cursor's budget grows
/// this far the kernel is effectively [`merge_join_linear`] with one
/// bounds computation per advance; capping it keeps a late regime
/// change (dense → sparse) from paying more than `GALLOP_MAX` wasted
/// comparisons before the first probe.
pub const GALLOP_MAX: usize = 64;

/// Advance `idx` to the first position `>= idx` whose key is `>= key`,
/// scanning linearly for up to `*budget` elements and falling back to
/// galloping. Adapts the budget: a linear hit raises it (dense runs
/// converge to the pure linear kernel), a probe that skips a full
/// budget halves it (sparse runs gallop almost immediately).
///
/// Out of line and cold: the merge loop resolves single-position
/// advances (the dominant case on densely interleaved runs) with one
/// inline step and only calls here when that step was not enough, so
/// the hot-loop codegen matches the linear kernel's.
#[cold]
#[inline(never)]
fn advance(run: &[Tuple], mut idx: usize, key: u64, budget: &mut usize) -> usize {
    let cap = idx.saturating_add(*budget).min(run.len());
    while idx < cap && run[idx].key < key {
        idx += 1;
    }
    if idx < cap || idx >= run.len() || run[idx].key >= key {
        // The linear scan reached `key` (or the end of the run) within
        // budget: a probe would not have paid. Drift toward linear.
        if *budget < GALLOP_MAX {
            *budget += 1;
        }
        return idx;
    }
    gallop_beyond(run, idx, key, budget)
}

/// The gallop half of [`advance`]: the linear budget is exhausted and
/// `run[idx].key < key` still holds — probe exponentially, then binary
/// search the final bracket.
fn gallop_beyond(run: &[Tuple], idx: usize, key: u64, budget: &mut usize) -> usize {
    let mut lo = idx;
    let mut step = 1usize;
    let hi = loop {
        let probe = match lo.checked_add(step) {
            Some(p) if p < run.len() => p,
            _ => break run.len(),
        };
        if run[probe].key >= key {
            break probe;
        }
        lo = probe;
        step <<= 1;
    };
    // Invariant: run[lo].key < key, run[hi].key >= key (or hi == len).
    let found = lo + 1 + run[lo + 1..hi].partition_point(|t| t.key < key);
    if found - idx >= *budget {
        // The probe skipped at least a full linear budget: galloping
        // pays here, engage it sooner next time.
        *budget = (*budget / 2).max(1);
    } else if *budget < GALLOP_MAX {
        *budget += 1;
    }
    found
}

/// Extent of one merge-join call: the cursor positions at exit, i.e.
/// how many tuples of each run the kernel actually consumed. The join
/// phases feed these into the [`crate::context::ExecContext`] access
/// audit — the quantities are byproducts of the merge itself, so the
/// accounting costs nothing inside the kernel (commandment C3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeScan {
    /// Tuples consumed from the private run `r`.
    pub r_scanned: usize,
    /// Tuples consumed from the public run `s`.
    pub s_scanned: usize,
}

/// Merge-join two key-sorted runs into `sink`, galloping over
/// non-matching stretches. `r` is the private input (first argument of
/// `on_match`).
///
/// ```
/// use mpsm_core::merge::merge_join;
/// use mpsm_core::sink::{CollectSink, JoinSink};
/// use mpsm_core::Tuple;
///
/// // Key 7 appears twice in `s`: duplicate semantics emit both pairs.
/// let r = vec![Tuple::new(3, 0), Tuple::new(7, 1)];
/// let s = vec![Tuple::new(7, 10), Tuple::new(7, 11), Tuple::new(9, 12)];
/// let mut sink = CollectSink::default();
/// merge_join(&r, &s, &mut sink);
/// let mut pairs = sink.finish();
/// pairs.sort_unstable();
/// assert_eq!(pairs, vec![(7, 1, 10), (7, 1, 11)]);
/// ```
pub fn merge_join<S: JoinSink>(r: &[Tuple], s: &[Tuple], sink: &mut S) {
    let _ = merge_join_scanned(r, s, sink);
}

/// [`merge_join`], additionally returning how far each cursor advanced
/// — the audited entry point of the join phases.
pub fn merge_join_scanned<S: JoinSink>(r: &[Tuple], s: &[Tuple], sink: &mut S) -> MergeScan {
    debug_assert!(crate::tuple::is_key_sorted(r), "private run must be sorted");
    debug_assert!(crate::tuple::is_key_sorted(s), "public run must be sorted");
    let mut i = 0;
    let mut j = 0;
    // One adaptive linear budget per cursor: the two runs can sit in
    // different regimes (sparse r against dense s and vice versa).
    let mut i_budget = GALLOP_LINEAR;
    let mut j_budget = GALLOP_LINEAR;
    while i < r.len() && j < s.len() {
        let rk = r[i].key;
        let sk = s[j].key;
        if rk < sk {
            // One inline step first: densely interleaved runs advance
            // by a single position almost always, and the main loop's
            // own comparison then re-dispatches without a call.
            i += 1;
            if i < r.len() && r[i].key < sk {
                i = advance(r, i + 1, sk, &mut i_budget);
            }
        } else if rk > sk {
            j += 1;
            if j < s.len() && s[j].key < rk {
                j = advance(s, j + 1, rk, &mut j_budget);
            }
        } else {
            // Equal keys. Fast path: both groups are singletons (the
            // dominant case on FK joins) — emit without group scans.
            let i1 = i + 1;
            let j1 = j + 1;
            let r_single = i1 == r.len() || r[i1].key != rk;
            let s_single = j1 == s.len() || s[j1].key != rk;
            if r_single & s_single {
                sink.on_match(r[i], s[j]);
                i = i1;
                j = j1;
            } else {
                let i_end = group_end(r, i);
                let j_end = group_end(s, j);
                for rt in &r[i..i_end] {
                    for st in &s[j..j_end] {
                        sink.on_match(*rt, *st);
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    MergeScan { r_scanned: i.min(r.len()), s_scanned: j.min(s.len()) }
}

/// The seed's purely linear kernel — the reference oracle the galloping
/// kernel is verified against, and the ablation baseline of the
/// `merge_kernel` bench.
pub fn merge_join_linear<S: JoinSink>(r: &[Tuple], s: &[Tuple], sink: &mut S) {
    debug_assert!(crate::tuple::is_key_sorted(r), "private run must be sorted");
    debug_assert!(crate::tuple::is_key_sorted(s), "public run must be sorted");
    let mut i = 0;
    let mut j = 0;
    while i < r.len() && j < s.len() {
        let rk = r[i].key;
        let sk = s[j].key;
        if rk < sk {
            // Skip ahead over the non-matching r group.
            i += 1;
            while i < r.len() && r[i].key < sk {
                i += 1;
            }
        } else if rk > sk {
            j += 1;
            while j < s.len() && s[j].key < rk {
                j += 1;
            }
        } else {
            // Equal keys: emit the cross product of both groups.
            let i_end = group_end(r, i);
            let j_end = group_end(s, j);
            for rt in &r[i..i_end] {
                for st in &s[j..j_end] {
                    sink.on_match(*rt, *st);
                }
            }
            i = i_end;
            j = j_end;
        }
    }
}

/// One-past-the-end of the duplicate group starting at `start`.
#[inline]
fn group_end(run: &[Tuple], start: usize) -> usize {
    let key = run[start].key;
    let mut end = start + 1;
    while end < run.len() && run[end].key == key {
        end += 1;
    }
    end
}

/// Merge-join counting matches only (convenience used by tests and the
/// complexity experiments).
pub fn merge_join_count(r: &[Tuple], s: &[Tuple]) -> u64 {
    let mut sink = crate::sink::CountSink::default();
    merge_join(r, s, &mut sink);
    sink.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectSink, CountSink};

    fn sorted(keys: &[(u64, u64)]) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = keys.iter().map(|&(k, p)| Tuple::new(k, p)).collect();
        v.sort_unstable();
        v
    }

    fn nested_loop_count(r: &[Tuple], s: &[Tuple]) -> u64 {
        r.iter().map(|rt| s.iter().filter(|st| st.key == rt.key).count() as u64).sum()
    }

    /// Both kernels must emit the same rows in the same order.
    fn assert_kernels_agree(r: &[Tuple], s: &[Tuple], label: &str) {
        let mut gallop = CollectSink::default();
        merge_join(r, s, &mut gallop);
        let mut linear = CollectSink::default();
        merge_join_linear(r, s, &mut linear);
        assert_eq!(gallop.finish(), linear.finish(), "{label}");
        assert_eq!(merge_join_count(r, s), nested_loop_count(r, s), "{label} vs oracle");
    }

    #[test]
    fn joins_simple_runs() {
        let r = sorted(&[(1, 10), (3, 30), (5, 50)]);
        let s = sorted(&[(2, 2), (3, 3), (5, 5), (7, 7)]);
        let mut sink = CollectSink::default();
        merge_join(&r, &s, &mut sink);
        assert_eq!(sink.finish(), vec![(3, 30, 3), (5, 50, 5)]);
    }

    #[test]
    fn duplicate_groups_emit_cross_products() {
        let r = sorted(&[(4, 1), (4, 2), (4, 3)]);
        let s = sorted(&[(4, 10), (4, 20)]);
        assert_eq!(merge_join_count(&r, &s), 6, "3 × 2 pairs");
        let mut sink = CollectSink::default();
        merge_join(&r, &s, &mut sink);
        let rows = sink.finish();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|&(k, _, _)| k == 4));
    }

    #[test]
    fn disjoint_runs_join_empty() {
        let r = sorted(&[(1, 0), (2, 0)]);
        let s = sorted(&[(10, 0), (20, 0)]);
        assert_eq!(merge_join_count(&r, &s), 0);
    }

    #[test]
    fn empty_inputs() {
        let r = sorted(&[(1, 0)]);
        assert_eq!(merge_join_count(&r, &[]), 0);
        assert_eq!(merge_join_count(&[], &r), 0);
        assert_eq!(merge_join_count(&[], &[]), 0);
    }

    #[test]
    fn matches_nested_loop_on_random_input() {
        let mut state = 3u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 56 // narrow domain → many duplicates
        };
        let r = sorted(&(0..300).map(|i| (next(), i)).collect::<Vec<_>>());
        let s = sorted(&(0..500).map(|i| (next(), i)).collect::<Vec<_>>());
        assert_kernels_agree(&r, &s, "random narrow-domain input");
    }

    #[test]
    fn interleaved_gaps_are_skipped() {
        let r = sorted(&[(1, 0), (100, 0), (200, 0), (300, 0)]);
        let s = sorted(&[(50, 0), (100, 0), (150, 0), (250, 0), (300, 0)]);
        let mut sink = CountSink::default();
        merge_join(&r, &s, &mut sink);
        assert_eq!(sink.finish(), 2); // 100 and 300
    }

    #[test]
    fn all_equal_keys_is_full_cross_product() {
        let r = sorted(&(0..50u64).map(|i| (9, i)).collect::<Vec<_>>());
        let s = sorted(&(0..40u64).map(|i| (9, i)).collect::<Vec<_>>());
        assert_eq!(merge_join_count(&r, &s), 50 * 40);
    }

    #[test]
    fn scanned_extents_reflect_cursor_positions() {
        // r exhausts first: the kernel must not claim it consumed the
        // dead tail of s.
        let r = sorted(&[(1, 0), (2, 0)]);
        let s = sorted(&[(1, 0), (2, 0), (50, 0), (60, 0), (70, 0)]);
        let mut sink = CountSink::default();
        let scan = merge_join_scanned(&r, &s, &mut sink);
        assert_eq!(sink.finish(), 2);
        assert_eq!(scan.r_scanned, 2);
        assert!(scan.s_scanned <= 3, "tail beyond the last match is never touched");
        // Fully overlapping runs consume both sides (up to the shorter
        // exhausting).
        let a = sorted(&(0..100u64).map(|k| (k, 0)).collect::<Vec<_>>());
        let mut sink = CountSink::default();
        let scan = merge_join_scanned(&a, &a, &mut sink);
        assert_eq!(scan.r_scanned, 100);
        assert_eq!(scan.s_scanned, 100);
        // Empty inputs scan nothing.
        let mut sink = CountSink::default();
        assert_eq!(merge_join_scanned(&a, &[], &mut sink), MergeScan::default());
    }

    #[test]
    fn advance_finds_lower_bound_at_any_budget() {
        let run = sorted(&(0..1000u64).map(|k| (k * 2, 0)).collect::<Vec<_>>());
        for &key in &[0u64, 1, 2, 3, 500, 999, 1000, 1001, 1997, 1998, 1999, 2000, 5000] {
            let expect = run.partition_point(|t| t.key < key);
            for from in [0usize, 1, 5, 250, expect.min(run.len())] {
                for start_budget in [1usize, GALLOP_LINEAR, GALLOP_MAX] {
                    if from <= expect {
                        let mut budget = start_budget;
                        assert_eq!(
                            advance(&run, from, key, &mut budget),
                            expect,
                            "key {key} from {from} budget {start_budget}"
                        );
                        assert!((1..=GALLOP_MAX).contains(&budget), "budget stays in range");
                    }
                }
            }
        }
    }

    #[test]
    fn one_sided_skew_agrees_with_linear() {
        // r holds a handful of far-apart keys; s is dense — the gallop
        // path does all the work on s.
        let r = sorted(&(0..16u64).map(|i| (i * 10_000, i)).collect::<Vec<_>>());
        let s = sorted(&(0..50_000u64).map(|i| (i * 3, i)).collect::<Vec<_>>());
        assert_kernels_agree(&r, &s, "one-sided skew");
        // And mirrored.
        assert_kernels_agree(&s, &r, "one-sided skew mirrored");
    }

    #[test]
    fn duplicate_heavy_runs_agree_with_linear() {
        // 64-tuple groups on both sides with gaps between group keys.
        let r = sorted(&(0..2048u64).map(|i| ((i / 64) * 37, i)).collect::<Vec<_>>());
        let s = sorted(&(0..2048u64).map(|i| ((i / 64) * 51, i)).collect::<Vec<_>>());
        assert_kernels_agree(&r, &s, "duplicate-heavy");
    }

    #[test]
    fn disjoint_ranges_agree_with_linear() {
        let r = sorted(&(0..5000u64).map(|i| (i, i)).collect::<Vec<_>>());
        let s = sorted(&(0..5000u64).map(|i| (1_000_000 + i, i)).collect::<Vec<_>>());
        assert_kernels_agree(&r, &s, "disjoint ranges");
        assert_kernels_agree(&s, &r, "disjoint ranges mirrored");
    }

    #[test]
    fn alternating_blocks_force_repeated_gallops() {
        // Blocks of 100 matching keys alternating with dead stretches of
        // 3000 keys present on only one side.
        let mut r_keys = Vec::new();
        let mut s_keys = Vec::new();
        for block in 0..8u64 {
            let base = block * 10_000;
            for k in 0..100 {
                r_keys.push((base + k, k));
                s_keys.push((base + k, k));
            }
            for k in 0..3000 {
                if block % 2 == 0 {
                    r_keys.push((base + 200 + k, k));
                } else {
                    s_keys.push((base + 200 + k, k));
                }
            }
        }
        let r = sorted(&r_keys);
        let s = sorted(&s_keys);
        assert_kernels_agree(&r, &s, "alternating blocks");
    }

    #[test]
    fn regime_shift_dense_then_sparse_agrees_with_linear() {
        // First half: perfectly interleaved disjoint keys (the BENCH_2
        // "0pct" shape, which drives the adaptive budget up towards
        // GALLOP_MAX); second half: sparse r against dense s, where the
        // budget must come back down and gallop again.
        let mut r_keys = Vec::new();
        let mut s_keys = Vec::new();
        for i in 0..4_000u64 {
            r_keys.push((2 * i, i));
            s_keys.push((2 * i + 1, i));
        }
        let base = 10_000u64;
        for i in 0..16u64 {
            r_keys.push((base + i * 5_000, i));
        }
        for i in 0..40_000u64 {
            s_keys.push((base + i * 2, i));
        }
        let r = sorted(&r_keys);
        let s = sorted(&s_keys);
        assert_kernels_agree(&r, &s, "regime shift");
        assert_kernels_agree(&s, &r, "regime shift mirrored");
    }
}
