//! Synchronization-free range partitioning of the private input
//! (P-MPSM phase 2.3, Figure 6 / Figure 10).
//!
//! Every worker scatters its chunk into the target runs through the
//! indirection of the splitter vector:
//!
//! ```text
//! memcpy(ps_i[sp[t.key >> (64 − B)]]++, t, t.size)
//! ```
//!
//! The prefix sums give every worker a *dedicated index range in each
//! target run* into which it writes sequentially — "orders of magnitude
//! more efficient than synchronized writing" (Figure 1 (2)) and immune
//! to cache-coherency overhead. In Rust the disjoint windows are
//! materialized as `&mut [Tuple]` slices carved with `split_at_mut`, so
//! the compiler proves what the paper argues: no two workers can touch
//! the same element.

use crate::histogram::{
    compute_histogram, fold_histogram, partition_sizes, prefix_sums, RadixDomain,
};
use crate::splitter::Splitters;
use crate::tuple::Tuple;
use crate::worker::run_parallel;

/// Range-partition `chunks` (one per worker) into
/// `splitters.parts()` target runs. Returns the unsorted target runs;
/// within each run, worker sub-partitions appear in worker order, each
/// in original chunk order (exactly the paper's Figure 6 layout).
pub fn range_partition(
    chunks: &[&[Tuple]],
    domain: &RadixDomain,
    splitters: &Splitters,
) -> Vec<Vec<Tuple>> {
    let workers = chunks.len();
    let parts = splitters.parts();
    if workers == 0 {
        return vec![Vec::new(); parts];
    }

    // Local histograms over *partitions* (bucket histogram folded
    // through the splitter assignment), in parallel.
    let histograms: Vec<Vec<usize>> = run_parallel(workers, |w| {
        let bucket_hist = compute_histogram(chunks[w], domain);
        fold_histogram(&bucket_hist, splitters.assignment(), parts)
    });

    let sizes = partition_sizes(&histograms);
    let ps = prefix_sums(&histograms);

    // Allocate target runs and carve per-worker windows. `windows[w][p]`
    // is worker w's disjoint slice of partition p, starting at ps[w][p].
    let mut partitions: Vec<Vec<Tuple>> =
        sizes.iter().map(|&sz| vec![Tuple::default(); sz]).collect();
    let mut windows: Vec<Vec<&mut [Tuple]>> =
        (0..workers).map(|_| Vec::with_capacity(parts)).collect();
    {
        let mut remaining: Vec<&mut [Tuple]> =
            partitions.iter_mut().map(|p| p.as_mut_slice()).collect();
        for (w, row) in windows.iter_mut().enumerate() {
            for (p, rem) in remaining.iter_mut().enumerate() {
                debug_assert_eq!(
                    sizes[p] - rem.len(),
                    ps[w][p],
                    "window carving must follow the prefix sums"
                );
                let take = histograms[w][p];
                let slot = std::mem::take(rem);
                let (head, tail) = slot.split_at_mut(take);
                row.push(head);
                *rem = tail;
            }
        }
        debug_assert!(remaining.iter().all(|r| r.is_empty()), "windows must cover the runs");
    }

    // Parallel scatter: sequential writes into precomputed windows, no
    // synchronization (commandments C1 + C3).
    std::thread::scope(|scope| {
        for (w, mut row) in windows.into_iter().enumerate() {
            let chunk = chunks[w];
            scope.spawn(move || {
                let mut cursors = vec![0usize; row.len()];
                for t in chunk {
                    let p = splitters.partition_of_bucket(domain.bucket_of(t.key));
                    row[p][cursors[p]] = *t;
                    cursors[p] += 1;
                }
            });
        }
    });

    partitions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitter::equi_height_splitters;

    fn tuples(keys: &[u64]) -> Vec<Tuple> {
        keys.iter().map(|&k| Tuple::new(k, k * 100)).collect()
    }

    #[test]
    fn paper_figure_6_scatter() {
        // B = 1, keys in [0, 32), two workers.
        let domain = RadixDomain::from_range(0, 31, 1);
        let sp = Splitters::from_assignment(vec![0, 1], 2);
        let c1 = tuples(&[19, 7, 3, 21, 1, 17, 4]);
        let c2 = tuples(&[2, 23, 4, 31, 8, 20, 26]);
        let runs = range_partition(&[&c1, &c2], &domain, &sp);
        let keys = |r: &[Tuple]| r.iter().map(|t| t.key).collect::<Vec<_>>();
        // Figure 6: R1 = W1's small keys in order, then W2's.
        assert_eq!(keys(&runs[0]), vec![7, 3, 1, 4, 2, 4, 8]);
        assert_eq!(keys(&runs[1]), vec![19, 21, 17, 23, 31, 20, 26]);
    }

    #[test]
    fn partitions_respect_key_ranges() {
        let domain = RadixDomain::from_range(0, 4095, 6);
        let chunks_data: Vec<Vec<Tuple>> = (0..4)
            .map(|w| (0..1000u64).map(|i| Tuple::new((i * 37 + w * 13) % 4096, i)).collect())
            .collect();
        let chunks: Vec<&[Tuple]> = chunks_data.iter().map(|c| c.as_slice()).collect();
        let hist = crate::histogram::combine_histograms(
            &chunks.iter().map(|c| compute_histogram(c, &domain)).collect::<Vec<_>>(),
        );
        let sp = equi_height_splitters(&hist, 4);
        let runs = range_partition(&chunks, &domain, &sp);
        assert_eq!(runs.len(), 4);
        for (p, run) in runs.iter().enumerate() {
            for t in run {
                assert_eq!(
                    sp.partition_of_bucket(domain.bucket_of(t.key)),
                    p,
                    "tuple {t:?} in wrong partition"
                );
            }
        }
    }

    #[test]
    fn scatter_is_a_permutation() {
        let domain = RadixDomain::from_range(0, 999, 4);
        let chunks_data: Vec<Vec<Tuple>> = (0..3)
            .map(|w| (0..500u64).map(|i| Tuple::new((i * 7 + w) % 1000, i + w * 1000)).collect())
            .collect();
        let chunks: Vec<&[Tuple]> = chunks_data.iter().map(|c| c.as_slice()).collect();
        let hist = crate::histogram::combine_histograms(
            &chunks.iter().map(|c| compute_histogram(c, &domain)).collect::<Vec<_>>(),
        );
        let sp = equi_height_splitters(&hist, 3);
        let runs = range_partition(&chunks, &domain, &sp);

        let mut before: Vec<(u64, u64)> =
            chunks_data.iter().flat_map(|c| c.iter().map(|t| (t.key, t.payload))).collect();
        let mut after: Vec<(u64, u64)> =
            runs.iter().flat_map(|r| r.iter().map(|t| (t.key, t.payload))).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after, "partitioning must not lose or duplicate tuples");
    }

    #[test]
    fn empty_chunks_produce_empty_partitions() {
        let domain = RadixDomain::from_range(0, 100, 2);
        let sp = Splitters::from_assignment(vec![0, 1, 2, 3], 4);
        let empty: [&[Tuple]; 2] = [&[], &[]];
        let runs = range_partition(&empty, &domain, &sp);
        assert_eq!(runs.len(), 4);
        assert!(runs.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn single_worker_single_partition() {
        let domain = RadixDomain::from_range(0, 100, 1);
        let sp = Splitters::from_assignment(vec![0, 0], 1);
        let c = tuples(&[5, 99, 1]);
        let runs = range_partition(&[&c], &domain, &sp);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len(), 3);
        assert_eq!(runs[0], c, "single window preserves chunk order");
    }

    #[test]
    fn duplicates_stay_in_one_partition() {
        let domain = RadixDomain::from_range(0, 1023, 5);
        let chunks_data: Vec<Vec<Tuple>> = (0..4)
            .map(|w| (0..256).map(|i| Tuple::new(512, (w * 256 + i) as u64)).collect())
            .collect();
        let chunks: Vec<&[Tuple]> = chunks_data.iter().map(|c| c.as_slice()).collect();
        let hist = crate::histogram::combine_histograms(
            &chunks.iter().map(|c| compute_histogram(c, &domain)).collect::<Vec<_>>(),
        );
        let sp = equi_height_splitters(&hist, 4);
        let runs = range_partition(&chunks, &domain, &sp);
        let non_empty = runs.iter().filter(|r| !r.is_empty()).count();
        assert_eq!(non_empty, 1, "equal keys cannot be split across partitions");
        assert_eq!(runs.iter().map(|r| r.len()).sum::<usize>(), 1024);
    }
}
