//! Synchronization-free range partitioning of the private input
//! (P-MPSM phase 2.3, Figure 6 / Figure 10).
//!
//! Every worker scatters its chunk into the target runs through the
//! indirection of the splitter vector:
//!
//! ```text
//! memcpy(ps_i[sp[t.key >> (64 − B)]]++, t, t.size)
//! ```
//!
//! The prefix sums give every worker a *dedicated index range in each
//! target run* into which it writes sequentially — "orders of magnitude
//! more efficient than synchronized writing" (Figure 1 (2)) and immune
//! to cache-coherency overhead. In Rust the disjoint windows are
//! materialized as `&mut [Tuple]` slices carved with `split_at_mut`, so
//! the compiler proves what the paper argues: no two workers can touch
//! the same element.
//!
//! ## Software write-combining
//!
//! The scatter's store pattern is adversarial: each tuple goes to one
//! of `P` target windows, so a naive loop issues one random 16-byte
//! store per tuple and touches up to `P` distant cache lines (plus
//! their TLB entries) round-robin. [`range_partition`] therefore stages
//! tuples in per-worker, per-partition buffers of
//! [`WC_BUFFER_TUPLES`] × 16 B = 128 B (a cache-line pair) and flushes
//! each buffer with a single contiguous `copy_from_slice` when it
//! fills. The working set of the inner loop shrinks from `P` scattered
//! target lines to `P` *local* staging lines that live in L1/L2, and
//! every target line is written exactly once, back to back. Staging is
//! FIFO per partition, so the emitted layout is bit-identical to the
//! naive scatter (the Figure 6 guarantee; the
//! `scatter_write_combining_matches_naive` proptest pins this).
//!
//! The per-tuple-store loop is retained as [`range_partition_naive`]
//! for the ablation benches (`cargo bench --bench partition_scatter`).

use mpsm_numa::NumaBuf;

use crate::context::ExecContext;
use crate::histogram::{
    compute_histogram, fold_histogram, partition_sizes, prefix_sums, RadixDomain,
};
use crate::splitter::Splitters;
use crate::stats::Phase;
use crate::tuple::Tuple;
use crate::worker::{run_parallel, OwnedSlots, SharedWorkerPool, WorkerPool};

/// Tuples staged per partition before a contiguous flush: 8 × 16 B =
/// 128 B, one cache-line pair (and exactly two 64-B lines of stores
/// per flush).
pub const WC_BUFFER_TUPLES: usize = 8;

/// Carve each target run into per-worker disjoint windows following the
/// prefix sums: `windows[w][p]` is worker `w`'s slice of partition `p`,
/// starting at `ps[w][p]`.
fn carve_windows<'a>(
    mut remaining: Vec<&'a mut [Tuple]>,
    histograms: &[Vec<usize>],
    sizes: &[usize],
    ps: &[Vec<usize>],
) -> Vec<Vec<&'a mut [Tuple]>> {
    let workers = histograms.len();
    let parts = remaining.len();
    let mut windows: Vec<Vec<&mut [Tuple]>> =
        (0..workers).map(|_| Vec::with_capacity(parts)).collect();
    for (w, row) in windows.iter_mut().enumerate() {
        for (p, rem) in remaining.iter_mut().enumerate() {
            debug_assert_eq!(
                sizes[p] - rem.len(),
                ps[w][p],
                "window carving must follow the prefix sums"
            );
            let take = histograms[w][p];
            let slot = std::mem::take(rem);
            let (head, tail) = slot.split_at_mut(take);
            row.push(head);
            *rem = tail;
        }
    }
    debug_assert!(remaining.iter().all(|r| r.is_empty()), "windows must cover the runs");
    windows
}

/// One worker's scatter with software write-combining: tuples are
/// staged per partition and flushed contiguously, 128 B at a time.
///
/// The staging slot doubles as the low bits of the per-partition
/// tuple count (`seen`), so the hot loop maintains a single counter
/// per partition — no separate fill array.
///
/// # Safety of the unchecked indexing
///
/// * `p < parts`: [`Splitters::from_assignment`] asserts every
///   assignment value is `< parts`, and `partition_of_bucket` returns
///   assignment values verbatim (the bucket lookup itself is checked).
/// * `seen[p]` never exceeds `row[p].len()`: the window was carved to
///   exactly `fold_histogram(...)[p]` slots, computed by the same pure
///   `bucket_of` + `partition_of_bucket` functions over the same chunk
///   that the scatter iterates — every tuple lands in the partition the
///   histogram counted it for (checked by a debug assertion).
fn scatter_write_combined(
    chunk: &[Tuple],
    row: &mut [&mut [Tuple]],
    domain: &RadixDomain,
    splitters: &Splitters,
) {
    const WC: usize = WC_BUFFER_TUPLES;
    let parts = row.len();
    // The u32 counters cap a single worker's chunk at 2^32 − 1 tuples
    // (64 GiB); enforce it so the unchecked stores cannot wrap.
    assert!(u32::try_from(chunk.len()).is_ok(), "worker chunk exceeds u32 tuple count");
    let mut staging: Vec<Tuple> = vec![Tuple::default(); parts * WC];
    let mut seen = vec![0u32; parts];
    for t in chunk {
        let p = splitters.partition_of_bucket(domain.bucket_of(t.key));
        debug_assert!(p < parts && (seen[p] as usize) < row[p].len());
        // SAFETY: `p < parts` and `seen[p] < row[p].len()` — see above.
        unsafe {
            let c = *seen.get_unchecked(p) as usize;
            let slot = c & (WC - 1);
            *staging.get_unchecked_mut(p * WC + slot) = *t;
            *seen.get_unchecked_mut(p) = (c + 1) as u32;
            if slot == WC - 1 {
                // 128 contiguous bytes into the target window.
                let dst = row.get_unchecked_mut(p).as_mut_ptr().add(c + 1 - WC);
                std::ptr::copy_nonoverlapping(staging.as_ptr().add(p * WC), dst, WC);
            }
        }
    }
    // Drain partially filled staging buffers (still contiguous writes).
    for p in 0..parts {
        let c = seen[p] as usize;
        let pending = c & (WC - 1);
        row[p][c - pending..c].copy_from_slice(&staging[p * WC..p * WC + pending]);
    }
}

/// One worker's scatter with one random store per tuple — the seed
/// implementation, retained as the ablation baseline.
fn scatter_per_tuple(
    chunk: &[Tuple],
    row: &mut [&mut [Tuple]],
    domain: &RadixDomain,
    splitters: &Splitters,
) {
    let mut cursors = vec![0usize; row.len()];
    for t in chunk {
        let p = splitters.partition_of_bucket(domain.bucket_of(t.key));
        row[p][cursors[p]] = *t;
        cursors[p] += 1;
    }
}

/// How the skeleton's two parallel sections (histogram, scatter) are
/// executed: fresh threads, an exclusive pool, or a shared pool handle.
enum Runner<'a> {
    Spawn,
    Exclusive(&'a mut WorkerPool),
    Shared(&'a SharedWorkerPool),
}

impl Runner<'_> {
    fn run<R: Send>(&mut self, workers: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
        match self {
            Runner::Spawn => run_parallel(workers, f),
            Runner::Exclusive(pool) => pool.run(f),
            Runner::Shared(pool) => pool.run(f),
        }
    }
}

/// Shared skeleton: histograms → prefix sums → windows → scatter.
fn partition_skeleton(
    chunks: &[&[Tuple]],
    domain: &RadixDomain,
    splitters: &Splitters,
    mut runner: Runner<'_>,
    write_combining: bool,
) -> Vec<Vec<Tuple>> {
    let workers = chunks.len();
    let parts = splitters.parts();
    if workers == 0 {
        return vec![Vec::new(); parts];
    }

    // Local histograms over *partitions* (bucket histogram folded
    // through the splitter assignment), in parallel.
    let histogram_of = |w: usize| {
        let bucket_hist = compute_histogram(chunks[w], domain);
        fold_histogram(&bucket_hist, splitters.assignment(), parts)
    };
    let histograms: Vec<Vec<usize>> = runner.run(workers, histogram_of);

    let sizes = partition_sizes(&histograms);
    let ps = prefix_sums(&histograms);

    let mut partitions: Vec<Vec<Tuple>> =
        sizes.iter().map(|&sz| vec![Tuple::default(); sz]).collect();
    let windows = carve_windows(
        partitions.iter_mut().map(|p| p.as_mut_slice()).collect(),
        &histograms,
        &sizes,
        &ps,
    );

    // Parallel scatter: sequential writes into precomputed windows, no
    // synchronization (commandments C1 + C3). Window rows are handed to
    // their worker through take-once slots so the pool's `Fn` closure
    // can move them.
    let slots = OwnedSlots::new(windows);
    let scatter_of = |w: usize| {
        let mut row = slots.take(w);
        if write_combining {
            scatter_write_combined(chunks[w], &mut row, domain, splitters);
        } else {
            scatter_per_tuple(chunks[w], &mut row, domain, splitters);
        }
    };
    runner.run(workers, scatter_of);

    partitions
}

/// Range-partition `chunks` (one per worker) into
/// `splitters.parts()` target runs with the write-combining scatter.
/// Returns the unsorted target runs; within each run, worker
/// sub-partitions appear in worker order, each in original chunk order
/// (exactly the paper's Figure 6 layout).
/// ```
/// use mpsm_core::histogram::RadixDomain;
/// use mpsm_core::partition::range_partition;
/// use mpsm_core::splitter::Splitters;
/// use mpsm_core::Tuple;
///
/// // Two workers scatter their chunks into two key ranges (B = 1:
/// // keys below 32 go to partition 0, the rest to partition 1).
/// let domain = RadixDomain::from_range(0, 63, 1);
/// let splitters = Splitters::from_assignment(vec![0, 1], 2);
/// let c1: Vec<Tuple> = vec![Tuple::new(40, 0), Tuple::new(3, 1)];
/// let c2: Vec<Tuple> = vec![Tuple::new(9, 2), Tuple::new(60, 3)];
/// let runs = range_partition(&[&c1, &c2], &domain, &splitters);
/// let keys: Vec<u64> = runs[0].iter().map(|t| t.key).collect();
/// assert_eq!(keys, vec![3, 9], "worker 1's small keys, then worker 2's");
/// ```
pub fn range_partition(
    chunks: &[&[Tuple]],
    domain: &RadixDomain,
    splitters: &Splitters,
) -> Vec<Vec<Tuple>> {
    partition_skeleton(chunks, domain, splitters, Runner::Spawn, true)
}

/// [`range_partition`] on a persistent [`WorkerPool`] (one worker per
/// chunk) so phase-structured callers do not re-spawn threads for the
/// histogram and scatter sections.
pub fn range_partition_in(
    pool: &mut WorkerPool,
    chunks: &[&[Tuple]],
    domain: &RadixDomain,
    splitters: &Splitters,
) -> Vec<Vec<Tuple>> {
    assert_eq!(pool.threads(), chunks.len().max(1), "one pool worker per chunk");
    partition_skeleton(chunks, domain, splitters, Runner::Exclusive(pool), true)
}

/// [`range_partition`] on a [`SharedWorkerPool`] handle: the histogram
/// and scatter sections are submitted as two tagged phases, so
/// concurrent owners of the pool interleave with the scatter at phase
/// granularity.
pub fn range_partition_shared(
    pool: &SharedWorkerPool,
    chunks: &[&[Tuple]],
    domain: &RadixDomain,
    splitters: &Splitters,
) -> Vec<Vec<Tuple>> {
    assert_eq!(pool.threads(), chunks.len().max(1), "one pool worker per chunk");
    partition_skeleton(chunks, domain, splitters, Runner::Shared(pool), true)
}

/// [`range_partition`] on an [`ExecContext`]: the NUMA-placed scatter
/// of P-MPSM phase 2.3.
///
/// Storage for partition `p` is drawn from the context's arena homed
/// per its allocation policy for worker `p` (with the default
/// [`crate::context::AllocPolicy::WorkerLocal`], partition `p` lives on
/// the node of the worker that will sort and join it — the paper's
/// layout). The histogram and scatter sections run as two phases on the
/// context's pool, and the context's `Phase::Two` counters record, per
/// worker, the interleaved chunk reads plus one sequential write per
/// tuple against the *target* partition's home — sequential writes into
/// disjoint windows are exactly the cross-node traffic commandment C1
/// permits, and the per-(worker, partition) write volumes are the
/// already-computed histogram counts, so the audit adds nothing to the
/// scatter's inner loop.
pub fn range_partition_ctx(
    cx: &ExecContext,
    chunks: &[&[Tuple]],
    domain: &RadixDomain,
    splitters: &Splitters,
) -> Vec<NumaBuf<Tuple>> {
    let workers = chunks.len();
    assert_eq!(cx.threads(), workers.max(1), "one context worker per chunk");
    let parts = splitters.parts();
    if workers == 0 {
        return (0..parts).map(|_| cx.alloc(0, 0)).collect();
    }

    // Phase: local histograms over partitions (one interleaved read of
    // every chunk).
    let outcomes = cx.pool().run(|w| {
        let mut scope = cx.scope(w);
        scope.touch_interleaved(true, chunks[w].len() as u64);
        let bucket_hist = compute_histogram(chunks[w], domain);
        (fold_histogram(&bucket_hist, splitters.assignment(), parts), scope.finish())
    });
    let (histograms, counters): (Vec<_>, Vec<_>) = outcomes.into_iter().unzip();
    cx.record(Phase::Two, counters);

    let sizes = partition_sizes(&histograms);
    let ps = prefix_sums(&histograms);

    // Partition p is homed where worker p will consume it. (When the
    // splitter fan exceeds the worker count, surplus partitions wrap
    // round-robin, matching how callers assign them to workers.)
    let mut partitions: Vec<NumaBuf<Tuple>> =
        sizes.iter().enumerate().map(|(p, &sz)| cx.alloc(p % workers.max(1), sz)).collect();
    let homes: Vec<_> = partitions.iter().map(|b| b.home()).collect();
    let windows = carve_windows(
        partitions.iter_mut().map(|b| &mut b[..]).collect(),
        &histograms,
        &sizes,
        &ps,
    );

    // Phase: synchronization-free scatter (one interleaved re-read of
    // every chunk, sequential writes into the precomputed windows).
    let slots = OwnedSlots::new(windows);
    let counters = cx.pool().run(|w| {
        let mut scope = cx.scope(w);
        scope.touch_interleaved(true, chunks[w].len() as u64);
        for (p, &home) in homes.iter().enumerate() {
            scope.touch(home, true, histograms[w][p] as u64);
        }
        let mut row = slots.take(w);
        scatter_write_combined(chunks[w], &mut row, domain, splitters);
        scope.finish()
    });
    cx.record(Phase::Two, counters);

    partitions
}

/// The seed scatter — one random 16-byte store per tuple into the huge
/// target windows. Bit-identical output to [`range_partition`];
/// reachable only from the ablation benches and equivalence tests.
pub fn range_partition_naive(
    chunks: &[&[Tuple]],
    domain: &RadixDomain,
    splitters: &Splitters,
) -> Vec<Vec<Tuple>> {
    partition_skeleton(chunks, domain, splitters, Runner::Spawn, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitter::equi_height_splitters;

    fn tuples(keys: &[u64]) -> Vec<Tuple> {
        keys.iter().map(|&k| Tuple::new(k, k * 100)).collect()
    }

    #[test]
    fn paper_figure_6_scatter() {
        // B = 1, keys in [0, 32), two workers.
        let domain = RadixDomain::from_range(0, 31, 1);
        let sp = Splitters::from_assignment(vec![0, 1], 2);
        let c1 = tuples(&[19, 7, 3, 21, 1, 17, 4]);
        let c2 = tuples(&[2, 23, 4, 31, 8, 20, 26]);
        let runs = range_partition(&[&c1, &c2], &domain, &sp);
        let keys = |r: &[Tuple]| r.iter().map(|t| t.key).collect::<Vec<_>>();
        // Figure 6: R1 = W1's small keys in order, then W2's.
        assert_eq!(keys(&runs[0]), vec![7, 3, 1, 4, 2, 4, 8]);
        assert_eq!(keys(&runs[1]), vec![19, 21, 17, 23, 31, 20, 26]);
    }

    #[test]
    fn partitions_respect_key_ranges() {
        let domain = RadixDomain::from_range(0, 4095, 6);
        let chunks_data: Vec<Vec<Tuple>> = (0..4)
            .map(|w| (0..1000u64).map(|i| Tuple::new((i * 37 + w * 13) % 4096, i)).collect())
            .collect();
        let chunks: Vec<&[Tuple]> = chunks_data.iter().map(|c| c.as_slice()).collect();
        let hist = crate::histogram::combine_histograms(
            &chunks.iter().map(|c| compute_histogram(c, &domain)).collect::<Vec<_>>(),
        );
        let sp = equi_height_splitters(&hist, 4);
        let runs = range_partition(&chunks, &domain, &sp);
        assert_eq!(runs.len(), 4);
        for (p, run) in runs.iter().enumerate() {
            for t in run {
                assert_eq!(
                    sp.partition_of_bucket(domain.bucket_of(t.key)),
                    p,
                    "tuple {t:?} in wrong partition"
                );
            }
        }
    }

    #[test]
    fn scatter_is_a_permutation() {
        let domain = RadixDomain::from_range(0, 999, 4);
        let chunks_data: Vec<Vec<Tuple>> = (0..3)
            .map(|w| (0..500u64).map(|i| Tuple::new((i * 7 + w) % 1000, i + w * 1000)).collect())
            .collect();
        let chunks: Vec<&[Tuple]> = chunks_data.iter().map(|c| c.as_slice()).collect();
        let hist = crate::histogram::combine_histograms(
            &chunks.iter().map(|c| compute_histogram(c, &domain)).collect::<Vec<_>>(),
        );
        let sp = equi_height_splitters(&hist, 3);
        let runs = range_partition(&chunks, &domain, &sp);

        let mut before: Vec<(u64, u64)> =
            chunks_data.iter().flat_map(|c| c.iter().map(|t| (t.key, t.payload))).collect();
        let mut after: Vec<(u64, u64)> =
            runs.iter().flat_map(|r| r.iter().map(|t| (t.key, t.payload))).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after, "partitioning must not lose or duplicate tuples");
    }

    #[test]
    fn empty_chunks_produce_empty_partitions() {
        let domain = RadixDomain::from_range(0, 100, 2);
        let sp = Splitters::from_assignment(vec![0, 1, 2, 3], 4);
        let empty: [&[Tuple]; 2] = [&[], &[]];
        let runs = range_partition(&empty, &domain, &sp);
        assert_eq!(runs.len(), 4);
        assert!(runs.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn single_worker_single_partition() {
        let domain = RadixDomain::from_range(0, 100, 1);
        let sp = Splitters::from_assignment(vec![0, 0], 1);
        let c = tuples(&[5, 99, 1]);
        let runs = range_partition(&[&c], &domain, &sp);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len(), 3);
        assert_eq!(runs[0], c, "single window preserves chunk order");
    }

    #[test]
    fn duplicates_stay_in_one_partition() {
        let domain = RadixDomain::from_range(0, 1023, 5);
        let chunks_data: Vec<Vec<Tuple>> = (0..4)
            .map(|w| (0..256).map(|i| Tuple::new(512, (w * 256 + i) as u64)).collect())
            .collect();
        let chunks: Vec<&[Tuple]> = chunks_data.iter().map(|c| c.as_slice()).collect();
        let hist = crate::histogram::combine_histograms(
            &chunks.iter().map(|c| compute_histogram(c, &domain)).collect::<Vec<_>>(),
        );
        let sp = equi_height_splitters(&hist, 4);
        let runs = range_partition(&chunks, &domain, &sp);
        let non_empty = runs.iter().filter(|r| !r.is_empty()).count();
        assert_eq!(non_empty, 1, "equal keys cannot be split across partitions");
        assert_eq!(runs.iter().map(|r| r.len()).sum::<usize>(), 1024);
    }

    #[test]
    fn write_combining_matches_naive_across_fill_patterns() {
        // Chunk sizes straddling multiples of the staging buffer so both
        // full flushes and the final drain are exercised.
        for &n in &[0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let chunks_data: Vec<Vec<Tuple>> = (0..3u64)
                .map(|w| (0..n as u64).map(|i| Tuple::new((i * 131 + w * 17) % 512, i)).collect())
                .collect();
            let chunks: Vec<&[Tuple]> = chunks_data.iter().map(|c| c.as_slice()).collect();
            let domain = RadixDomain::from_range(0, 511, 5);
            let hist = crate::histogram::combine_histograms(
                &chunks.iter().map(|c| compute_histogram(c, &domain)).collect::<Vec<_>>(),
            );
            let sp = equi_height_splitters(&hist, 3);
            assert_eq!(
                range_partition(&chunks, &domain, &sp),
                range_partition_naive(&chunks, &domain, &sp),
                "layouts must be tuple-for-tuple identical at n = {n}"
            );
        }
    }

    #[test]
    fn context_scatter_matches_standalone_and_audits_traffic() {
        use crate::context::ExecContext;
        use mpsm_numa::Topology;

        let domain = RadixDomain::from_range(0, 4095, 6);
        let chunks_data: Vec<Vec<Tuple>> = (0..4)
            .map(|w| (0..600u64).map(|i| Tuple::new((i * 41 + w * 11) % 4096, i)).collect())
            .collect();
        let chunks: Vec<&[Tuple]> = chunks_data.iter().map(|c| c.as_slice()).collect();
        let hist = crate::histogram::combine_histograms(
            &chunks.iter().map(|c| compute_histogram(c, &domain)).collect::<Vec<_>>(),
        );
        let sp = equi_height_splitters(&hist, 4);

        let cx = ExecContext::new(Topology::paper_machine(), 4);
        let placed = range_partition_ctx(&cx, &chunks, &domain, &sp);
        let reference = range_partition(&chunks, &domain, &sp);
        for (p, (got, want)) in placed.iter().zip(&reference).enumerate() {
            assert_eq!(&got[..], &want[..], "partition {p}");
            assert_eq!(got.home(), cx.worker_node(p), "partition {p} homed on its owner's node");
        }
        // Model: histogram read |R| + scatter read |R| + scatter write
        // |R| = 3|R| accesses under Phase::Two.
        let total: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        assert_eq!(cx.phase_counters(Phase::Two).total_accesses(), 3 * total);
        // The arena saw every partition.
        assert_eq!(cx.arena().total_bytes(), total * std::mem::size_of::<Tuple>() as u64);
    }

    #[test]
    fn pooled_scatter_matches_standalone() {
        let domain = RadixDomain::from_range(0, 4095, 6);
        let chunks_data: Vec<Vec<Tuple>> = (0..4)
            .map(|w| (0..700u64).map(|i| Tuple::new((i * 37 + w * 13) % 4096, i)).collect())
            .collect();
        let chunks: Vec<&[Tuple]> = chunks_data.iter().map(|c| c.as_slice()).collect();
        let hist = crate::histogram::combine_histograms(
            &chunks.iter().map(|c| compute_histogram(c, &domain)).collect::<Vec<_>>(),
        );
        let sp = equi_height_splitters(&hist, 4);
        let mut pool = WorkerPool::new(4);
        let pooled = range_partition_in(&mut pool, &chunks, &domain, &sp);
        assert_eq!(pooled, range_partition(&chunks, &domain, &sp));

        let shared = pool.into_shared();
        let shared_runs = range_partition_shared(&shared, &chunks, &domain, &sp);
        assert_eq!(shared_runs, range_partition(&chunks, &domain, &sp));
        assert_eq!(shared.phases_served(), 2, "histogram + scatter phases");
    }
}
