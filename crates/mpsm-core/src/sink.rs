//! Join result sinks.
//!
//! MPSM workers produce matches independently; a [`JoinSink`] consumes
//! them without cross-worker synchronization (each worker owns one sink
//! instance; results are combined after the barrier). The paper's
//! benchmark query
//!
//! ```sql
//! SELECT max(R.payload + S.payload) FROM R, S WHERE R.joinkey = S.joinkey
//! ```
//!
//! "is designed to ensure that the payload data is fed through the join
//! while only one output tuple is generated" — that is [`MaxAggSink`].

use crate::tuple::Tuple;

/// Per-worker consumer of join matches.
///
/// `on_match(private, public)` is called once per joined pair; the
/// private tuple is the one from the (possibly role-reversed) private
/// input `R`. After its worker finishes, `finish` extracts a partial
/// result; partial results are folded with `combine`.
pub trait JoinSink: Default + Send {
    /// Combined result type.
    type Result: Send;

    /// Consume one match.
    fn on_match(&mut self, private: Tuple, public: Tuple);

    /// Consume a *single-sided* private tuple, produced by the non-inner
    /// join variants (§7 "other join variants"): the padded row of a
    /// left-outer join, or the output row of a semi/anti join. The
    /// default treats it like a match against a NULL public side with
    /// payload 0 semantics defined per sink; sinks that care (e.g.
    /// [`CollectSink`]) override it.
    fn on_private(&mut self, private: Tuple) {
        let _ = private;
    }

    /// Extract this worker's partial result.
    fn finish(self) -> Self::Result;

    /// Fold two partial results.
    fn combine(a: Self::Result, b: Self::Result) -> Self::Result;

    /// Fold many partial results (empty input gives the identity
    /// obtained from an empty sink).
    fn combine_all(parts: impl IntoIterator<Item = Self::Result>) -> Self::Result {
        let mut iter = parts.into_iter();
        let first = match iter.next() {
            Some(f) => f,
            None => Self::default().finish(),
        };
        iter.fold(first, Self::combine)
    }

    /// Rows materialized in a partial result, when the sink produces
    /// countable rows at all. `None` (the default) means the sink
    /// aggregates instead of materializing; cap-aware drivers (the
    /// anytime merge's `rows_cap` early stop) can only stop early on
    /// sinks that report a count.
    fn result_len(result: &Self::Result) -> Option<usize> {
        let _ = result;
        None
    }
}

/// Counts join matches — the cheapest way to validate cardinality.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountSink {
    count: u64,
}

impl JoinSink for CountSink {
    type Result = u64;

    #[inline]
    fn on_match(&mut self, _private: Tuple, _public: Tuple) {
        self.count += 1;
    }

    #[inline]
    fn on_private(&mut self, _private: Tuple) {
        self.count += 1;
    }

    fn finish(self) -> u64 {
        self.count
    }

    fn combine(a: u64, b: u64) -> u64 {
        a + b
    }
}

/// The paper's benchmark aggregate: `max(R.payload + S.payload)`.
/// `None` when the join is empty.
#[derive(Debug, Default, Clone, Copy)]
pub struct MaxAggSink {
    max: Option<u64>,
}

impl JoinSink for MaxAggSink {
    type Result = Option<u64>;

    #[inline]
    fn on_match(&mut self, private: Tuple, public: Tuple) {
        let v = private.payload.wrapping_add(public.payload);
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    fn finish(self) -> Option<u64> {
        self.max
    }

    fn combine(a: Option<u64>, b: Option<u64>) -> Option<u64> {
        match (a, b) {
            (Some(x), Some(y)) => Some(x.max(y)),
            (x, None) => x,
            (None, y) => y,
        }
    }
}

/// Materializes all matches as `(key, private payload, public payload)`.
/// For tests and small queries; large joins should aggregate instead.
#[derive(Debug, Default, Clone)]
pub struct CollectSink {
    rows: Vec<(u64, u64, u64)>,
}

/// Sentinel standing for a NULL public payload in [`CollectSink`] rows
/// produced by outer/semi/anti variants.
pub const NULL_PAYLOAD: u64 = u64::MAX;

impl JoinSink for CollectSink {
    type Result = Vec<(u64, u64, u64)>;

    #[inline]
    fn on_match(&mut self, private: Tuple, public: Tuple) {
        // No equal-key assertion: band (non-equi) joins legitimately
        // pair different keys. The recorded key is the private one.
        self.rows.push((private.key, private.payload, public.payload));
    }

    #[inline]
    fn on_private(&mut self, private: Tuple) {
        self.rows.push((private.key, private.payload, NULL_PAYLOAD));
    }

    fn finish(self) -> Self::Result {
        self.rows
    }

    fn combine(mut a: Self::Result, mut b: Self::Result) -> Self::Result {
        a.append(&mut b);
        a
    }

    fn result_len(result: &Self::Result) -> Option<usize> {
        Some(result.len())
    }
}

/// Captures the "interesting physical property" of MPSM output (§6/§7):
/// each worker emits matches as a small number of key-ascending runs
/// (one per public run it merges against). This sink materializes those
/// runs *as runs*, splitting whenever the key decreases, so downstream
/// sort-based operators (early aggregation, merge-based group-by) can
/// consume them without re-sorting — see `mpsm_exec::groupby`.
#[derive(Debug, Default, Clone)]
pub struct SortedRunsSink {
    runs: Vec<Vec<(u64, u64)>>,
}

impl JoinSink for SortedRunsSink {
    /// Key-ascending runs of `(key, private.payload + public.payload)`.
    type Result = Vec<Vec<(u64, u64)>>;

    #[inline]
    fn on_match(&mut self, private: Tuple, public: Tuple) {
        let row = (private.key, private.payload.wrapping_add(public.payload));
        match self.runs.last_mut() {
            Some(run) if run.last().is_none_or(|last| last.0 <= row.0) => run.push(row),
            _ => self.runs.push(vec![row]),
        }
    }

    fn finish(self) -> Self::Result {
        self.runs
    }

    fn combine(mut a: Self::Result, mut b: Self::Result) -> Self::Result {
        a.append(&mut b);
        a
    }
}

/// Order-independent checksum over matches; used by benchmarks to force
/// the join to materialize every pair without allocating.
#[derive(Debug, Default, Clone, Copy)]
pub struct ChecksumSink {
    sum: u64,
    count: u64,
}

impl JoinSink for ChecksumSink {
    type Result = (u64, u64);

    #[inline]
    fn on_private(&mut self, private: Tuple) {
        self.sum = self.sum.wrapping_add(private.key.rotate_left(31) ^ private.payload);
        self.count += 1;
    }

    #[inline]
    fn on_match(&mut self, private: Tuple, public: Tuple) {
        self.sum = self.sum.wrapping_add(
            private
                .key
                .rotate_left(17)
                .wrapping_add(private.payload)
                .wrapping_mul(public.payload | 1),
        );
        self.count += 1;
    }

    fn finish(self) -> (u64, u64) {
        (self.sum, self.count)
    }

    fn combine(a: (u64, u64), b: (u64, u64)) -> (u64, u64) {
        (a.0.wrapping_add(b.0), a.1 + b.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(key: u64, payload: u64) -> Tuple {
        Tuple::new(key, payload)
    }

    #[test]
    fn count_sink_counts() {
        let mut s = CountSink::default();
        s.on_match(t(1, 1), t(1, 2));
        s.on_match(t(1, 1), t(1, 3));
        assert_eq!(s.finish(), 2);
        assert_eq!(CountSink::combine(2, 3), 5);
        assert_eq!(CountSink::combine_all([1, 2, 3]), 6);
        assert_eq!(CountSink::combine_all(std::iter::empty()), 0);
    }

    #[test]
    fn max_agg_matches_paper_query() {
        let mut s = MaxAggSink::default();
        s.on_match(t(1, 10), t(1, 5));
        s.on_match(t(2, 3), t(2, 100));
        assert_eq!(s.finish(), Some(103));
        assert_eq!(MaxAggSink::combine(Some(5), Some(9)), Some(9));
        assert_eq!(MaxAggSink::combine(None, Some(9)), Some(9));
        assert_eq!(MaxAggSink::combine(None, None), None);
        assert_eq!(MaxAggSink::default().finish(), None, "empty join → NULL");
    }

    #[test]
    fn collect_sink_keeps_all_rows() {
        let mut s = CollectSink::default();
        s.on_match(t(7, 1), t(7, 2));
        let rows = s.finish();
        assert_eq!(rows, vec![(7, 1, 2)]);
        let combined = CollectSink::combine(rows, vec![(8, 0, 0)]);
        assert_eq!(combined.len(), 2);
    }

    #[test]
    fn checksum_is_order_independent_across_workers() {
        let mut a = ChecksumSink::default();
        a.on_match(t(1, 2), t(1, 3));
        a.on_match(t(4, 5), t(4, 6));
        let mut b1 = ChecksumSink::default();
        b1.on_match(t(4, 5), t(4, 6));
        let mut b2 = ChecksumSink::default();
        b2.on_match(t(1, 2), t(1, 3));
        assert_eq!(
            a.finish(),
            ChecksumSink::combine(b1.finish(), b2.finish()),
            "worker split must not change the checksum"
        );
    }

    #[test]
    fn single_sided_rows_flow_through_sinks() {
        let mut c = CountSink::default();
        c.on_private(t(9, 9));
        assert_eq!(c.finish(), 1);

        let mut col = CollectSink::default();
        col.on_private(t(9, 5));
        assert_eq!(col.finish(), vec![(9, 5, NULL_PAYLOAD)]);

        let mut m = MaxAggSink::default();
        m.on_private(t(9, 5));
        assert_eq!(m.finish(), None, "NULL public side contributes nothing to max");
    }

    #[test]
    fn sorted_runs_sink_splits_on_descending_keys() {
        let mut s = SortedRunsSink::default();
        s.on_match(t(1, 0), t(1, 1));
        s.on_match(t(3, 0), t(3, 1));
        s.on_match(t(2, 0), t(2, 1)); // key went down: new run
        s.on_match(t(2, 5), t(2, 1)); // equal key continues the run
        let runs = s.finish();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0], vec![(1, 1), (3, 1)]);
        assert_eq!(runs[1], vec![(2, 1), (2, 6)]);
        for run in &runs {
            assert!(run.windows(2).all(|w| w[0].0 <= w[1].0), "runs must be sorted");
        }
    }

    #[test]
    fn max_agg_wraps_rather_than_panics() {
        let mut s = MaxAggSink::default();
        s.on_match(t(0, u64::MAX), t(0, 2));
        assert_eq!(s.finish(), Some(1), "wrapping add, as documented");
    }
}
