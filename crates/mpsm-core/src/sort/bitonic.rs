//! Bitonic sorting networks — the paper's §6 outlook.
//!
//! > "For sorting in MPSM we developed our own Radix/IntroSort. In the
//! > future however, wider SIMD registers will allow to explore bitonic
//! > SIMD sorting \[6\]."
//!
//! This module provides that exploration in portable Rust: Batcher's
//! bitonic network as a branch-free sequence of compare-exchanges whose
//! fixed, data-independent schedule is what makes it SIMD-friendly
//! (the compiler can vectorize the stride-`j` exchange loops; with
//! explicit SIMD each exchange becomes a min/max lane pair). The paper
//! could not use it in 2012 because SIMD registers were limited to
//! 32-bit lanes — too narrow for its 64-bit keys.
//!
//! Two entry points:
//!
//! * [`bitonic_sort`] — sort any slice (non-powers-of-two go through a
//!   `u64::MAX`-padded scratch network);
//! * [`introsort_bitonic`] — quicksort that finishes partitions `≤
//!   BITONIC_BLOCK` with the network instead of deferring to a final
//!   insertion pass (an ablation against the paper's phase 3, compared
//!   in the `sort` bench).

use crate::tuple::Tuple;

/// Partition size at which [`introsort_bitonic`] switches to the
/// network (a 32-element network has 15 rounds of compare-exchanges).
pub const BITONIC_BLOCK: usize = 32;

/// One compare-exchange: order `tuples[i]` and `tuples[l]` by key,
/// ascending if `up`. Branch-reduced: the swap condition is the only
/// branch and is highly predictable within a monotone round.
#[inline]
fn compare_exchange(tuples: &mut [Tuple], i: usize, l: usize, up: bool) {
    if (tuples[i].key > tuples[l].key) == up {
        tuples.swap(i, l);
    }
}

/// In-place bitonic network over a power-of-two-sized slice.
///
/// # Panics
/// Panics if `tuples.len()` is not a power of two.
pub fn bitonic_sort_pow2(tuples: &mut [Tuple]) {
    let n = tuples.len();
    assert!(n.is_power_of_two() || n == 0, "bitonic network needs a power-of-two size");
    if n < 2 {
        return;
    }
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    // Direction flips every `k` elements, producing the
                    // bitonic sequences the next stage merges.
                    compare_exchange(tuples, i, l, (i & k) == 0);
                }
            }
            j /= 2;
        }
        k *= 2;
    }
}

/// Sort any slice with the bitonic network; non-power-of-two lengths
/// are padded with `u64::MAX` keys in a scratch buffer (the padding
/// sinks to the tail and is dropped).
pub fn bitonic_sort(tuples: &mut [Tuple]) {
    let n = tuples.len();
    if n < 2 {
        return;
    }
    if n.is_power_of_two() {
        bitonic_sort_pow2(tuples);
        return;
    }
    let padded = n.next_power_of_two();
    let mut scratch = Vec::with_capacity(padded);
    scratch.extend_from_slice(tuples);
    scratch.resize(padded, Tuple::new(u64::MAX, u64::MAX));
    bitonic_sort_pow2(&mut scratch);
    tuples.copy_from_slice(&scratch[..n]);
}

/// Quicksort (same depth-limited scheme as [`super::intro`]) that
/// finishes small partitions with the bitonic network immediately —
/// no deferred insertion pass needed.
pub fn introsort_bitonic(tuples: &mut [Tuple]) {
    if tuples.len() < 2 {
        return;
    }
    let depth_limit = 2 * tuples.len().ilog2();
    sort_rec(tuples, depth_limit);
}

fn sort_rec(tuples: &mut [Tuple], depth_left: u32) {
    let mut slice = tuples;
    let mut depth = depth_left;
    loop {
        if slice.len() <= BITONIC_BLOCK {
            bitonic_sort(slice);
            return;
        }
        if depth == 0 {
            super::intro::heapsort(slice);
            return;
        }
        let split = hoare_partition(slice);
        depth -= 1;
        let (left, right) = slice.split_at_mut(split + 1);
        if left.len() < right.len() {
            sort_rec(left, depth);
            slice = right;
        } else {
            sort_rec(right, depth);
            slice = left;
        }
    }
}

/// Same Hoare partition as `super::intro` (duplicated locally because
/// the two modules are alternative phase-2 strategies with different
/// leaf handling; keeping them independent keeps the ablation honest).
fn hoare_partition(tuples: &mut [Tuple]) -> usize {
    let len = tuples.len();
    let mid = len / 2;
    if tuples[mid].key < tuples[0].key {
        tuples.swap(mid, 0);
    }
    if tuples[len - 1].key < tuples[0].key {
        tuples.swap(len - 1, 0);
    }
    if tuples[len - 1].key < tuples[mid].key {
        tuples.swap(len - 1, mid);
    }
    let pivot = tuples[mid].key;
    let mut i = 0usize;
    let mut j = len - 1;
    loop {
        while tuples[i].key < pivot {
            i += 1;
        }
        while tuples[j].key > pivot {
            j -= 1;
        }
        if i >= j {
            return j.min(len - 2);
        }
        tuples.swap(i, j);
        i += 1;
        j -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::is_key_sorted;

    fn pseudo_random(n: usize, seed: u64) -> Vec<Tuple> {
        let mut state = seed | 1;
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                Tuple::new(state >> 32, i as u64)
            })
            .collect()
    }

    #[test]
    fn network_sorts_all_power_of_two_sizes() {
        for exp in 0..10u32 {
            let mut data = pseudo_random(1 << exp, exp as u64 + 1);
            bitonic_sort_pow2(&mut data);
            assert!(is_key_sorted(&data), "size {}", 1 << exp);
        }
    }

    #[test]
    fn padded_network_sorts_arbitrary_sizes() {
        for n in [0usize, 1, 3, 5, 17, 31, 33, 100, 1000, 1025] {
            let mut data = pseudo_random(n, n as u64 + 7);
            let mut expected: Vec<u64> = data.iter().map(|t| t.key).collect();
            expected.sort_unstable();
            bitonic_sort(&mut data);
            assert!(is_key_sorted(&data), "size {n}");
            let got: Vec<u64> = data.iter().map(|t| t.key).collect();
            assert_eq!(got, expected, "size {n}: padding must not leak");
        }
    }

    #[test]
    fn network_preserves_payload_pairs() {
        let mut data = pseudo_random(64, 3);
        let mut before: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
        bitonic_sort_pow2(&mut data);
        let mut after: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn network_handles_duplicates() {
        let mut data: Vec<Tuple> = (0..128).map(|i| Tuple::new(i % 5, i)).collect();
        bitonic_sort_pow2(&mut data);
        assert!(is_key_sorted(&data));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn pow2_entry_rejects_other_sizes() {
        let mut data = pseudo_random(24, 1);
        bitonic_sort_pow2(&mut data);
    }

    #[test]
    fn introsort_bitonic_sorts_large_input() {
        let mut data = pseudo_random(50_000, 9);
        introsort_bitonic(&mut data);
        assert!(is_key_sorted(&data));
    }

    #[test]
    fn introsort_bitonic_matches_three_phase() {
        let mut a = pseudo_random(10_000, 21);
        let mut b = a.clone();
        introsort_bitonic(&mut a);
        crate::sort::three_phase_sort(&mut b);
        assert_eq!(
            a.iter().map(|t| t.key).collect::<Vec<_>>(),
            b.iter().map(|t| t.key).collect::<Vec<_>>()
        );
    }

    #[test]
    fn introsort_bitonic_adversarial_duplicates() {
        let mut data: Vec<Tuple> = (0..60_000).map(|i| Tuple::new(i % 2, i)).collect();
        introsort_bitonic(&mut data);
        assert!(is_key_sorted(&data));
    }
}
