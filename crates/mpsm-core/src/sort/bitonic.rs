//! Bitonic sorting networks — the paper's §6 outlook.
//!
//! > "For sorting in MPSM we developed our own Radix/IntroSort. In the
//! > future however, wider SIMD registers will allow to explore bitonic
//! > SIMD sorting \[6\]."
//!
//! This module provides that exploration in portable Rust: Batcher's
//! bitonic network as a **branch-free** sequence of compare-exchanges.
//! Each exchange computes an all-ones/all-zeros mask from the key
//! comparison and blends keys *and payloads* with bitwise selects —
//! no data-dependent branch, so the schedule is fixed and the branch
//! predictor has nothing to mispredict (the property that makes the
//! network the right leaf kernel for small buckets of *random* keys,
//! where insertion sort eats a mispredict per element). The same fixed
//! schedule is what the feature-gated AVX2 path in [`super::simd`]
//! vectorizes four lanes at a time.
//!
//! Non-power-of-two inputs go through a padded scratch network. Two
//! subtleties the seed version got wrong, both fixed here:
//!
//! * **Padding is accounted, not assumed.** Sentinels are
//!   `(u64::MAX, u64::MAX)` tuples, which are value-identical to a real
//!   tuple with that key and payload. The copy-back therefore drops
//!   *exactly* `pad` sentinel-valued tuples from the tail instead of
//!   truncating at `n` — a real `u64::MAX`-keyed tuple can never lose
//!   its payload to a sentinel (see `unpad_into`).
//! * **The scratch is reusable.** Hot paths thread a [`SortScratch`]
//!   (per worker, via `ExecContext`) so non-power-of-two leaves — i.e.
//!   almost every radix bucket — allocate nothing after warmup.
//!
//! Entry points: [`bitonic_sort_with`] (any slice, caller scratch),
//! [`bitonic_sort`] (convenience wrapper with a local scratch),
//! [`bitonic_sort_pow2`] (in-place network), and
//! [`introsort_bitonic`] (legacy ablation: quicksort with network
//! leaves at the fixed [`BITONIC_BLOCK`]).

use crate::tuple::Tuple;

/// Partition size at which [`introsort_bitonic`] switches to the
/// network (a 32-element network has 15 rounds of compare-exchanges).
/// The tuned kernels use `SortTuning::block` instead; this constant is
/// the legacy ablation's fixed threshold.
pub const BITONIC_BLOCK: usize = 32;

/// The padding sentinel for non-power-of-two networks. Value-identical
/// to a real `(u64::MAX, u64::MAX)` tuple, which is why the copy-back
/// counts sentinels instead of trusting values (see `unpad_into`).
pub(crate) const PAD: Tuple = Tuple::new(u64::MAX, u64::MAX);

/// Reusable scratch for the padded network and the SIMD SoA staging.
/// One per worker, threaded through `ExecContext`, so recursion leaves
/// never allocate. All buffers grow to the largest block seen and stay.
#[derive(Debug, Default)]
pub struct SortScratch {
    /// Padded AoS staging for the scalar network.
    pub(crate) pad: Vec<Tuple>,
    /// SoA key lanes for the SIMD network.
    #[cfg_attr(not(all(feature = "simd-sort", target_arch = "x86_64")), allow(dead_code))]
    pub(crate) keys: Vec<u64>,
    /// SoA payload lanes, permuted alongside the keys.
    #[cfg_attr(not(all(feature = "simd-sort", target_arch = "x86_64")), allow(dead_code))]
    pub(crate) payloads: Vec<u64>,
    /// Ping-pong buffer for the out-of-place radix scatter; grows to
    /// the largest run the worker sorts and stays (the point of
    /// per-worker scratch: the 16 bytes/tuple are paid once, not per
    /// sort call).
    pub(crate) aux: Vec<Tuple>,
}

impl SortScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        SortScratch::default()
    }
}

/// One branch-free compare-exchange: order the pair `(a, b)` by key,
/// ascending if `up`. The comparison becomes an all-ones/all-zeros
/// mask; keys and payloads are blended with bitwise selects, so the
/// compiled form is `cmp` + `setcc`/`neg` + and/or — no branch.
#[inline(always)]
fn compare_exchange(tuples: &mut [Tuple], i: usize, l: usize, up: bool) {
    let a = tuples[i];
    let b = tuples[l];
    // All-ones when the pair is out of order for this direction.
    let m = (((a.key > b.key) == up) as u64).wrapping_neg();
    tuples[i] = Tuple::new((a.key & !m) | (b.key & m), (a.payload & !m) | (b.payload & m));
    tuples[l] = Tuple::new((b.key & !m) | (a.key & m), (b.payload & !m) | (a.payload & m));
}

/// In-place bitonic network over a power-of-two-sized slice.
///
/// # Panics
/// Panics if `tuples.len()` is not a power of two.
pub fn bitonic_sort_pow2(tuples: &mut [Tuple]) {
    let n = tuples.len();
    assert!(n.is_power_of_two() || n == 0, "bitonic network needs a power-of-two size");
    if n < 2 {
        return;
    }
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    // Direction flips every `k` elements, producing the
                    // bitonic sequences the next stage merges.
                    compare_exchange(tuples, i, l, (i & k) == 0);
                }
            }
            j /= 2;
        }
        k *= 2;
    }
}

/// Copy the sorted, padded `sorted` buffer back into `out`, dropping
/// exactly `pad` sentinel-valued tuples. Sentinels carry the maximum
/// key, so they live in the tail region together with any *real*
/// `u64::MAX`-keyed tuples; a real `(MAX, p≠MAX)` tuple never matches
/// the sentinel value, and a real `(MAX, MAX)` tuple is value-identical
/// to a sentinel, so dropping either is observationally the same. The
/// backward scan keeps `sorted.len() - pad == out.len()` tuples in
/// order.
pub(crate) fn unpad_into(sorted: &[Tuple], out: &mut [Tuple], pad: usize) {
    debug_assert_eq!(sorted.len(), out.len() + pad);
    let mut removed = 0usize;
    let mut write = out.len();
    for &t in sorted.iter().rev() {
        if removed < pad && t.key == PAD.key && t.payload == PAD.payload {
            removed += 1;
            continue;
        }
        write -= 1;
        out[write] = t;
    }
    debug_assert_eq!(removed, pad, "network lost a padding sentinel");
    debug_assert_eq!(write, 0);
}

/// Largest slice handled by the exact-size odd-even schedules — covers
/// every block threshold the tuner sweeps, so hot leaves never pad.
pub(crate) const MAX_EXACT_NETWORK: usize = 128;

/// Precomputed Batcher odd-even comparator schedules for every size up
/// to [`MAX_EXACT_NETWORK`], flattened into one pair array.
struct Schedules {
    offsets: [usize; MAX_EXACT_NETWORK + 2],
    pairs: Vec<(u8, u8)>,
}

/// Batcher's odd-even mergesort uses *ascending comparators only*, so
/// the power-of-two network pruned to the pairs whose both lanes are
/// `< n` is a valid sorting network for exactly `n` lanes: imagining
/// `+∞` sentinels in lanes `≥ n`, every pruned comparator would have
/// been a no-op (its upper lane already holds the maximum), hence
/// removing it cannot change the result on the live lanes. (Bitonic
/// networks flip comparator directions, so this pruning is *not* valid
/// there — which is exactly why arbitrary sizes needed padding.) The
/// `zero_one_principle_validates_every_exact_schedule` test verifies
/// the pruned schedules exhaustively.
fn batcher_pairs_into(n: usize, pairs: &mut Vec<(u8, u8)>) {
    if n < 2 {
        return;
    }
    let pn = n.next_power_of_two();
    let mut p = 1usize;
    while p < pn {
        let mut k = p;
        while k >= 1 {
            let mut j = k % p;
            while j + k < pn {
                for i in 0..k {
                    let a = i + j;
                    let b = i + j + k;
                    if b >= pn {
                        break;
                    }
                    if a / (2 * p) == b / (2 * p) && b < n {
                        pairs.push((a as u8, b as u8));
                    }
                }
                j += 2 * k;
            }
            k /= 2;
        }
        p *= 2;
    }
}

fn schedules() -> &'static Schedules {
    static S: std::sync::OnceLock<Schedules> = std::sync::OnceLock::new();
    S.get_or_init(|| {
        let mut offsets = [0usize; MAX_EXACT_NETWORK + 2];
        let mut pairs = Vec::new();
        for (n, off) in offsets.iter_mut().enumerate().take(MAX_EXACT_NETWORK + 1) {
            *off = pairs.len();
            batcher_pairs_into(n, &mut pairs);
        }
        offsets[MAX_EXACT_NETWORK + 1] = pairs.len();
        Schedules { offsets, pairs }
    })
}

/// Sort a slice of at most `MAX_EXACT_NETWORK` (128) tuples in place with
/// its exact-size odd-even schedule: branch-free compare-exchanges, no
/// padding, no staging copy. This is the leaf the radix recursion
/// actually hits (~`INSERTION_CUTOFF`-sized buckets whose sizes spread
/// across power-of-two boundaries, where a padded network would pay for
/// up to 2× its real input).
pub fn network_sort_exact(tuples: &mut [Tuple]) {
    let n = tuples.len();
    debug_assert!(n <= MAX_EXACT_NETWORK);
    if n < 2 {
        return;
    }
    let s = schedules();
    for &(a, b) in &s.pairs[s.offsets[n]..s.offsets[n + 1]] {
        let (lo, hi) = (a as usize, b as usize);
        let x = tuples[lo];
        let y = tuples[hi];
        // Ascending comparator, branch-free: all-ones mask when out of
        // order, bitwise blend of keys and payloads.
        let m = ((x.key > y.key) as u64).wrapping_neg();
        tuples[lo] = Tuple::new((x.key & !m) | (y.key & m), (x.payload & !m) | (y.payload & m));
        tuples[hi] = Tuple::new((y.key & !m) | (x.key & m), (y.payload & !m) | (x.payload & m));
    }
}

/// Sort any slice with the branch-free networks. Slices up to
/// `MAX_EXACT_NETWORK` (128) tuples — every block size the tuner sweeps —
/// run in place through their exact-size odd-even schedule (no
/// allocation, no padding); larger non-power-of-two inputs stage
/// through `scratch` (no allocation after the scratch has grown once).
/// This is the hot-path entry used by the tuned `finish_bucket`.
pub fn bitonic_sort_with(tuples: &mut [Tuple], scratch: &mut SortScratch) {
    let n = tuples.len();
    if n < 2 {
        return;
    }
    if n <= MAX_EXACT_NETWORK {
        network_sort_exact(tuples);
        return;
    }
    if n.is_power_of_two() {
        bitonic_sort_pow2(tuples);
        return;
    }
    let padded = n.next_power_of_two();
    scratch.pad.clear();
    scratch.pad.reserve(padded);
    scratch.pad.extend_from_slice(tuples);
    scratch.pad.resize(padded, PAD);
    bitonic_sort_pow2(&mut scratch.pad);
    unpad_into(&scratch.pad, tuples, padded - n);
}

/// Convenience wrapper over [`bitonic_sort_with`] with a one-off local
/// scratch. Hot paths should thread a per-worker [`SortScratch`]
/// instead.
pub fn bitonic_sort(tuples: &mut [Tuple]) {
    let mut scratch = SortScratch::new();
    bitonic_sort_with(tuples, &mut scratch);
}

/// Depth-limited quicksort that hands partitions `≤ block` to `leaf`
/// (a network kernel working through `scratch`). This is the phase-2
/// shape shared by every network-finishing kernel; the tuned
/// `finish_bucket` calls it with the scalar or SIMD leaf and the
/// tuning's block threshold.
pub(crate) fn quicksort_to_network<F>(
    tuples: &mut [Tuple],
    block: usize,
    scratch: &mut SortScratch,
    leaf: &mut F,
) where
    F: FnMut(&mut [Tuple], &mut SortScratch),
{
    if tuples.len() < 2 {
        return;
    }
    if tuples.len() <= block {
        leaf(tuples, scratch);
        return;
    }
    let depth_limit = 2 * tuples.len().ilog2();
    sort_rec(tuples, depth_limit, block, scratch, leaf);
}

/// Quicksort (same depth-limited scheme as [`super::intro`]) that
/// finishes small partitions with the bitonic network immediately —
/// no deferred insertion pass needed. Legacy ablation entry with the
/// fixed [`BITONIC_BLOCK`]; allocates one scratch per call (not per
/// leaf, as the seed version did).
pub fn introsort_bitonic(tuples: &mut [Tuple]) {
    let mut scratch = SortScratch::new();
    quicksort_to_network(tuples, BITONIC_BLOCK, &mut scratch, &mut bitonic_sort_with);
}

fn sort_rec<F>(
    tuples: &mut [Tuple],
    depth_left: u32,
    block: usize,
    scratch: &mut SortScratch,
    leaf: &mut F,
) where
    F: FnMut(&mut [Tuple], &mut SortScratch),
{
    let mut slice = tuples;
    let mut depth = depth_left;
    loop {
        if slice.len() <= block {
            leaf(slice, scratch);
            return;
        }
        if depth == 0 {
            super::intro::heapsort(slice);
            return;
        }
        let split = hoare_partition(slice);
        depth -= 1;
        let (left, right) = slice.split_at_mut(split + 1);
        if left.len() < right.len() {
            sort_rec(left, depth, block, scratch, leaf);
            slice = right;
        } else {
            sort_rec(right, depth, block, scratch, leaf);
            slice = left;
        }
    }
}

/// Same Hoare partition as `super::intro` (duplicated locally because
/// the two modules are alternative phase-2 strategies with different
/// leaf handling; keeping them independent keeps the ablation honest).
fn hoare_partition(tuples: &mut [Tuple]) -> usize {
    let len = tuples.len();
    let mid = len / 2;
    if tuples[mid].key < tuples[0].key {
        tuples.swap(mid, 0);
    }
    if tuples[len - 1].key < tuples[0].key {
        tuples.swap(len - 1, 0);
    }
    if tuples[len - 1].key < tuples[mid].key {
        tuples.swap(len - 1, mid);
    }
    let pivot = tuples[mid].key;
    let mut i = 0usize;
    let mut j = len - 1;
    loop {
        while tuples[i].key < pivot {
            i += 1;
        }
        while tuples[j].key > pivot {
            j -= 1;
        }
        if i >= j {
            return j.min(len - 2);
        }
        tuples.swap(i, j);
        i += 1;
        j -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::is_key_sorted;

    fn pseudo_random(n: usize, seed: u64) -> Vec<Tuple> {
        let mut state = seed | 1;
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                Tuple::new(state >> 32, i as u64)
            })
            .collect()
    }

    #[test]
    fn network_sorts_all_power_of_two_sizes() {
        for exp in 0..10u32 {
            let mut data = pseudo_random(1 << exp, exp as u64 + 1);
            bitonic_sort_pow2(&mut data);
            assert!(is_key_sorted(&data), "size {}", 1 << exp);
        }
    }

    #[test]
    fn padded_network_sorts_arbitrary_sizes() {
        for n in [0usize, 1, 3, 5, 17, 31, 33, 100, 1000, 1025] {
            let mut data = pseudo_random(n, n as u64 + 7);
            let mut expected: Vec<u64> = data.iter().map(|t| t.key).collect();
            expected.sort_unstable();
            bitonic_sort(&mut data);
            assert!(is_key_sorted(&data), "size {n}");
            let got: Vec<u64> = data.iter().map(|t| t.key).collect();
            assert_eq!(got, expected, "size {n}: padding must not leak");
        }
    }

    #[test]
    fn network_preserves_payload_pairs() {
        let mut data = pseudo_random(64, 3);
        let mut before: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
        bitonic_sort_pow2(&mut data);
        let mut after: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn network_handles_duplicates() {
        let mut data: Vec<Tuple> = (0..128).map(|i| Tuple::new(i % 5, i)).collect();
        bitonic_sort_pow2(&mut data);
        assert!(is_key_sorted(&data));
    }

    #[test]
    fn real_max_keyed_tuples_keep_their_payloads() {
        // Regression for the seed's padding bug: with a non-power-of-two
        // size, sentinels (MAX, MAX) and real MAX-keyed tuples share the
        // tail of the padded network; the truncating copy-back used to
        // hand a real tuple the sentinel's payload. Every payload must
        // survive exactly.
        for n in [3usize, 5, 7, 11, 21, 33, 100] {
            let mut data: Vec<Tuple> = (0..n as u64).map(|i| Tuple::new(u64::MAX, i)).collect();
            let mut scratch = SortScratch::new();
            bitonic_sort_with(&mut data, &mut scratch);
            let mut payloads: Vec<u64> = data.iter().map(|t| t.payload).collect();
            payloads.sort_unstable();
            assert_eq!(
                payloads,
                (0..n as u64).collect::<Vec<_>>(),
                "size {n}: payload lost to a sentinel"
            );
            assert!(data.iter().all(|t| t.key == u64::MAX));
        }
        // Mixed case: MAX-keyed tuples among ordinary ones, including a
        // real (MAX, MAX) tuple which is value-identical to a sentinel.
        let mut data = vec![
            Tuple::new(5, 50),
            Tuple::new(u64::MAX, 1),
            Tuple::new(7, 70),
            Tuple::new(u64::MAX, u64::MAX),
            Tuple::new(u64::MAX, 2),
        ];
        let mut expected: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
        expected.sort_unstable();
        bitonic_sort(&mut data);
        assert!(is_key_sorted(&data));
        // Equal-key payload order is unspecified; the multiset must
        // survive exactly (the buggy copy-back dropped (MAX, 1) or
        // (MAX, 2) in favor of a sentinel).
        let mut got: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn scratch_is_reused_across_leaves() {
        let mut scratch = SortScratch::new();
        let mut data = pseudo_random(1000, 5);
        bitonic_sort_with(&mut data, &mut scratch);
        let grown = scratch.pad.capacity();
        assert!(grown >= 1024, "large non-pow2 sort must stage through the scratch");
        // A second, smaller sort must not shrink or reallocate.
        let mut data2 = pseudo_random(300, 6);
        bitonic_sort_with(&mut data2, &mut scratch);
        assert_eq!(scratch.pad.capacity(), grown);
        assert!(is_key_sorted(&data) && is_key_sorted(&data2));
        // Leaf-sized inputs never touch the heap at all.
        let mut data3 = pseudo_random(100, 7);
        let mut empty = SortScratch::new();
        bitonic_sort_with(&mut data3, &mut empty);
        assert_eq!(empty.pad.capacity(), 0);
        assert!(is_key_sorted(&data3));
    }

    #[test]
    fn zero_one_principle_validates_every_exact_schedule() {
        // A comparator network sorts all inputs iff it sorts all 0-1
        // sequences (Knuth 5.3.4). Exhaustive up to 2^n sequences gets
        // expensive fast, so go exhaustive where feasible and spot-check
        // the larger schedules with every rotation of a few patterns.
        for n in 0..=16usize {
            for bits in 0u32..(1u32 << n) {
                let mut data: Vec<Tuple> =
                    (0..n).map(|i| Tuple::new(((bits >> i) & 1) as u64, i as u64)).collect();
                network_sort_exact(&mut data);
                assert!(is_key_sorted(&data), "n={n} bits={bits:b}");
                assert_eq!(
                    data.iter().filter(|t| t.key == 1).count(),
                    bits.count_ones() as usize,
                    "n={n}: multiset changed"
                );
            }
        }
        for n in [17usize, 23, 31, 33, 48, 63, 65, 100, 127, 128] {
            let mut state = n as u64;
            for _ in 0..2000 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let mut data: Vec<Tuple> =
                    (0..n).map(|i| Tuple::new((state >> (i % 60)) & 1, i as u64)).collect();
                let ones = data.iter().filter(|t| t.key == 1).count();
                network_sort_exact(&mut data);
                assert!(is_key_sorted(&data), "n={n}");
                assert_eq!(data.iter().filter(|t| t.key == 1).count(), ones);
            }
        }
    }

    #[test]
    fn exact_network_matches_std_sort_at_every_size() {
        for n in 0..=MAX_EXACT_NETWORK {
            let mut data = pseudo_random(n, n as u64 + 3);
            let mut expected: Vec<u64> = data.iter().map(|t| t.key).collect();
            expected.sort_unstable();
            network_sort_exact(&mut data);
            let got: Vec<u64> = data.iter().map(|t| t.key).collect();
            assert_eq!(got, expected, "size {n}");
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn pow2_entry_rejects_other_sizes() {
        let mut data = pseudo_random(24, 1);
        bitonic_sort_pow2(&mut data);
    }

    #[test]
    fn introsort_bitonic_sorts_large_input() {
        let mut data = pseudo_random(50_000, 9);
        introsort_bitonic(&mut data);
        assert!(is_key_sorted(&data));
    }

    #[test]
    fn introsort_bitonic_matches_three_phase() {
        let mut a = pseudo_random(10_000, 21);
        let mut b = a.clone();
        introsort_bitonic(&mut a);
        crate::sort::three_phase_sort(&mut b);
        assert_eq!(
            a.iter().map(|t| t.key).collect::<Vec<_>>(),
            b.iter().map(|t| t.key).collect::<Vec<_>>()
        );
    }

    #[test]
    fn introsort_bitonic_adversarial_duplicates() {
        let mut data: Vec<Tuple> = (0..60_000).map(|i| Tuple::new(i % 2, i)).collect();
        introsort_bitonic(&mut data);
        assert!(is_key_sorted(&data));
    }
}
