//! Insertion sort — phase 3 of the paper's sorting routine.
//!
//! After the quicksort phase stopped refining partitions of fewer than
//! 16 elements, every element is at most a small constant distance from
//! its final position; a single left-to-right insertion pass finishes
//! the total order in effectively linear time.

use crate::tuple::Tuple;

/// In-place insertion sort by key. `O(n + d)` where `d` is the total
/// displacement — linear on the nearly-sorted output of the introsort
/// phase.
pub fn insertion_sort(tuples: &mut [Tuple]) {
    for i in 1..tuples.len() {
        let current = tuples[i];
        let mut j = i;
        while j > 0 && tuples[j - 1].key > current.key {
            tuples[j] = tuples[j - 1];
            j -= 1;
        }
        tuples[j] = current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::is_key_sorted;

    #[test]
    fn sorts_small_slices() {
        let mut data = vec![Tuple::new(3, 0), Tuple::new(1, 1), Tuple::new(2, 2), Tuple::new(1, 3)];
        insertion_sort(&mut data);
        assert!(is_key_sorted(&data));
        assert_eq!(data.iter().map(|t| t.key).collect::<Vec<_>>(), vec![1, 1, 2, 3]);
    }

    #[test]
    fn empty_and_single() {
        insertion_sort(&mut []);
        let mut one = [Tuple::new(9, 9)];
        insertion_sort(&mut one);
        assert_eq!(one[0], Tuple::new(9, 9));
    }

    #[test]
    fn is_stable_for_equal_keys() {
        // Stability is not required by the join, but the classic
        // insertion sort provides it; pin it so accidental changes are
        // visible.
        let mut data = vec![Tuple::new(1, 10), Tuple::new(1, 20), Tuple::new(0, 30)];
        insertion_sort(&mut data);
        assert_eq!(data, vec![Tuple::new(0, 30), Tuple::new(1, 10), Tuple::new(1, 20)]);
    }

    #[test]
    fn already_sorted_is_a_fast_path() {
        let mut data: Vec<Tuple> = (0..100).map(|k| Tuple::new(k, 0)).collect();
        insertion_sort(&mut data);
        assert!(is_key_sorted(&data));
    }
}
