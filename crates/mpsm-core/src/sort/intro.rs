//! IntroSort — phase 2 of the paper's sorting routine.
//!
//! Musser's introspective sort \[20\]: quicksort with a recursion-depth
//! budget of `2 · log2(n)`; a partition that exhausts the budget is
//! finished with heapsort, guaranteeing `O(n log n)` worst case. As in
//! the paper, partitions smaller than the insertion cutoff are *not*
//! sorted here — they are left for the final insertion pass.

use crate::tuple::Tuple;

/// Introsort by key, leaving runs shorter than `cutoff` unsorted (to be
/// finished by a later insertion pass). Pass `cutoff = 0` for a fully
/// sorting introsort.
pub fn introsort_coarse(tuples: &mut [Tuple], cutoff: usize) {
    if tuples.len() < 2 {
        return;
    }
    let depth_limit = 2 * tuples.len().ilog2();
    quicksort_limited(tuples, cutoff, depth_limit);
}

fn quicksort_limited(tuples: &mut [Tuple], cutoff: usize, depth_left: u32) {
    let mut slice = tuples;
    let mut depth = depth_left;
    // Tail-call the larger side iteratively to bound stack depth.
    loop {
        if slice.len() <= cutoff.max(2) {
            // Slices at/below the cutoff are left for the final
            // insertion pass; with cutoff 0 a 2-element slice is sorted
            // here directly.
            if cutoff == 0 && slice.len() == 2 && slice[1].key < slice[0].key {
                slice.swap(0, 1);
            }
            return;
        }
        if depth == 0 {
            heapsort(slice);
            return;
        }
        let split = partition(slice);
        depth -= 1;
        // Hoare split: both halves may contain pivot-valued keys; no
        // element is excluded, progress is guaranteed by `partition`
        // returning `split < len - 1`.
        let (left, right) = slice.split_at_mut(split + 1);
        if left.len() < right.len() {
            quicksort_limited(left, cutoff, depth);
            slice = right;
        } else {
            quicksort_limited(right, cutoff, depth);
            slice = left;
        }
    }
}

/// Hoare partition around a median-of-three pivot. Returns `j` such
/// that every key in `[0, j]` is `≤ pivot`, every key in `(j, len)` is
/// `≥ pivot`, and `j < len − 1` (both sides non-empty).
fn partition(tuples: &mut [Tuple]) -> usize {
    let len = tuples.len();
    debug_assert!(len >= 3, "partition needs at least 3 elements");
    let mid = len / 2;
    // Median-of-three: order (first, mid, last) by key.
    if tuples[mid].key < tuples[0].key {
        tuples.swap(mid, 0);
    }
    if tuples[len - 1].key < tuples[0].key {
        tuples.swap(len - 1, 0);
    }
    if tuples[len - 1].key < tuples[mid].key {
        tuples.swap(len - 1, mid);
    }
    let pivot = tuples[mid].key;

    // Hoare scan. `tuples[0] ≤ pivot ≤ tuples[len-1]` act as sentinels.
    let mut i = 0usize;
    let mut j = len - 1;
    loop {
        while tuples[i].key < pivot {
            i += 1;
        }
        while tuples[j].key > pivot {
            j -= 1;
        }
        if i >= j {
            // The pivot value sits at `mid`, so the scans cannot run
            // past it: `i ≤ mid ≤ len-2` whenever we return without a
            // swap, and after a swap `j` has moved left of `len-1`.
            return j.min(len - 2);
        }
        tuples.swap(i, j);
        i += 1;
        j -= 1;
    }
}

/// Bottom-up heapsort by key — the depth-limit fallback.
pub fn heapsort(tuples: &mut [Tuple]) {
    let n = tuples.len();
    if n < 2 {
        return;
    }
    for i in (0..n / 2).rev() {
        sift_down(tuples, i, n);
    }
    for end in (1..n).rev() {
        tuples.swap(0, end);
        sift_down(tuples, 0, end);
    }
}

fn sift_down(tuples: &mut [Tuple], mut root: usize, end: usize) {
    loop {
        let left = 2 * root + 1;
        if left >= end {
            return;
        }
        let mut child = left;
        let right = left + 1;
        if right < end && tuples[right].key > tuples[left].key {
            child = right;
        }
        if tuples[child].key <= tuples[root].key {
            return;
        }
        tuples.swap(root, child);
        root = child;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::insertion::insertion_sort;
    use crate::tuple::is_key_sorted;

    fn pseudo_random(n: usize, seed: u64) -> Vec<Tuple> {
        let mut state = seed | 1;
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                Tuple::new(state >> 40, i as u64)
            })
            .collect()
    }

    #[test]
    fn heapsort_sorts() {
        let mut data = pseudo_random(2048, 5);
        heapsort(&mut data);
        assert!(is_key_sorted(&data));
    }

    #[test]
    fn heapsort_handles_duplicates() {
        let mut data: Vec<Tuple> = (0..500).map(|i| Tuple::new(i % 7, i)).collect();
        heapsort(&mut data);
        assert!(is_key_sorted(&data));
    }

    #[test]
    fn full_introsort_with_zero_cutoff() {
        let mut data = pseudo_random(4096, 11);
        introsort_coarse(&mut data, 0);
        assert!(is_key_sorted(&data));
    }

    #[test]
    fn coarse_introsort_plus_insertion_is_total() {
        let mut data = pseudo_random(4096, 13);
        introsort_coarse(&mut data, 16);
        insertion_sort(&mut data);
        assert!(is_key_sorted(&data));
    }

    #[test]
    fn coarse_introsort_leaves_keys_near_final_position() {
        let mut data = pseudo_random(4096, 17);
        let mut reference = data.clone();
        reference.sort_unstable_by_key(|t| t.key);
        introsort_coarse(&mut data, 16);
        // Every element must be within 16 positions of where the fully
        // sorted order puts an equal key (coarse partitions are < 16).
        for (i, t) in data.iter().enumerate() {
            let lo = i.saturating_sub(16);
            let hi = (i + 16).min(data.len());
            assert!(
                reference[lo..hi].iter().any(|r| r.key == t.key),
                "key {} displaced more than one cutoff from position {i}",
                t.key
            );
        }
    }

    #[test]
    fn adversarial_equal_heavy_input_does_not_blow_depth() {
        // Many duplicates provoke unbalanced quicksort splits; the depth
        // limit must hand over to heapsort rather than recurse forever.
        let mut data: Vec<Tuple> = (0..100_000).map(|i| Tuple::new(i % 3, i)).collect();
        introsort_coarse(&mut data, 16);
        insertion_sort(&mut data);
        assert!(is_key_sorted(&data));
    }

    #[test]
    fn tiny_inputs_are_untouched_by_coarse_sort() {
        let mut data = vec![Tuple::new(2, 0), Tuple::new(1, 1)];
        introsort_coarse(&mut data, 16);
        // Length below cutoff: left as-is.
        assert_eq!(data[0].key, 2);
    }
}
