//! The paper's three-phase sorting routine (§2.3).
//!
//! > "we developed our own three-phase sorting algorithm that operates
//! > as follows: 1. in-place Radix sort that generates 2^8 = 256
//! > partitions according to the 8 most significant bits. [...]
//! > 2. IntroSort: use Quicksort to at most 2·log(N) recursion levels;
//! > if this does not suffice, resort to heapsort. As soon as a
//! > quicksort partition contains less than 16 elements stop and leave
//! > it to a final insertion sort pass to obtain the total ordering."
//!
//! The entry point is [`three_phase_sort`]. The phases are exposed
//! individually ([`radix::msd_radix_partition`], [`intro::introsort_coarse`],
//! [`insertion::insertion_sort`]) because the benchmark harness ablates
//! them and because the radix pass doubles as the histogram pass of the
//! partitioning phase.
//!
//! Cache-conscious refinements over the paper's literal recipe:
//!
//! * **Recursive radix pass.** A bucket larger than
//!   [`CACHE_RESIDENT_TUPLES`] (an L1d worth of tuples) recurses the
//!   radix pass (with the child shift derived arithmetically by
//!   [`radix::RadixShift::child`] — no re-scan) instead of going
//!   straight to introsort: one O(n) counting pass + scatter replaces
//!   `RADIX_BITS` quicksort levels of branchy comparisons, and the
//!   pieces handed to the finisher are cache-resident. The tuned path
//!   scatters out of place into a per-worker ping-pong buffer
//!   (sequential reads, independent write streams) rather than the
//!   American-flag in-place permutation, whose displacement chain
//!   serializes on one cache miss at a time; even-depth recursions land
//!   back in place with zero extra copies.
//! * **Per-bucket finishing.** The finishing kernel runs per radix
//!   bucket, immediately after that bucket lands, while the bucket
//!   (≤ L1-sized) is still cache-hot — instead of one global pass that
//!   re-streams the whole (multi-MiB) array from memory. The seed's
//!   global-pass variant is retained as [`three_phase_sort_naive`] for
//!   the ablation bench (`cargo bench --bench sort`).
//! * **Pluggable finishing kernel.** What happens *inside* a
//!   cache-resident bucket is a [`tuning::SortKernel`] chosen by a
//!   [`tuning::SortTuning`] (threshold + kernel + provenance): the
//!   paper's introsort+insertion, a branch-free scalar bitonic network
//!   ([`bitonic`]), or a feature-gated AVX2 network ([`simd`]). The
//!   network kernels thread a per-worker [`bitonic::SortScratch`]
//!   through the recursion so leaves never allocate. See
//!   [`three_phase_sort_tuned`] and the `SortTuning::auto_tune` sweep.
//!
//! Keys may occupy any sub-range of the 64-bit domain (the paper's
//! evaluation draws them from `[0, 2^32)`), so the radix pass first
//! derives a shift from the observed key range — the "preprocessing of
//! the join keys using bitwise shift operations" of §3.2.1.

pub mod bitonic;
pub mod insertion;
pub mod intro;
pub mod radix;
pub mod simd;
pub mod tuning;

use std::cell::RefCell;

use mpsm_numa::{CounterScope, NodeId};

pub use bitonic::SortScratch;
pub use tuning::{SortKernel, SortTuning, TuningSource};

use crate::tuple::Tuple;

/// Number of leading bits (and thus `2^RADIX_BITS` buckets) used by the
/// first phase, as in the paper.
pub const RADIX_BITS: u32 = 8;

/// Quicksort partitions smaller than this are left to the final
/// insertion pass, as in the paper.
pub const INSERTION_CUTOFF: usize = 16;

/// Buckets larger than this recurse the radix pass before the finishing
/// kernel: 32 KiB (an L1d) of 16-byte tuples. Each radix level replaces
/// eight quicksort levels with one O(n) counting pass + in-place
/// permutation, so recursing until buckets are L1-resident is where the
/// measured optimum lies (the `sort` bench sweep: 2048 ≈ 1.7× over the
/// introsort-from-L2 variant at 1M tuples; 8192+ erases the win).
pub const CACHE_RESIDENT_TUPLES: usize = (32 * 1024) / std::mem::size_of::<Tuple>();

thread_local! {
    /// Scratch for the classic (non-`ExecContext`) entry points, so
    /// callers of the plain [`three_phase_sort`] get allocation-free
    /// network leaves too. Executor paths thread per-worker scratch
    /// explicitly instead.
    static TLS_SCRATCH: RefCell<SortScratch> = RefCell::new(SortScratch::new());
}

/// Sort `tuples` by key with the paper's three-phase algorithm, using
/// the process-wide [`SortTuning::current`] kernel and a thread-local
/// scratch. Recurses the radix pass on non-cache-resident buckets and
/// finishes each bucket while it is cache-hot.
///
/// ```
/// use mpsm_core::sort::three_phase_sort;
/// use mpsm_core::Tuple;
///
/// let mut run: Vec<Tuple> = [9u64, 2, 7, 2, 0]
///     .iter()
///     .enumerate()
///     .map(|(i, &k)| Tuple::new(k, i as u64))
///     .collect();
/// three_phase_sort(&mut run);
/// let keys: Vec<u64> = run.iter().map(|t| t.key).collect();
/// assert_eq!(keys, vec![0, 2, 2, 7, 9]);
/// ```
pub fn three_phase_sort(tuples: &mut [Tuple]) {
    let tuning = SortTuning::current();
    TLS_SCRATCH.with(|s| three_phase_sort_tuned(tuples, &tuning, &mut s.borrow_mut()));
}

/// [`three_phase_sort`] with an explicit kernel choice and caller
/// scratch — the executor entry point (`ExecContext` threads its own
/// [`SortTuning`] and per-worker [`SortScratch`] through here).
pub fn three_phase_sort_tuned(
    tuples: &mut [Tuple],
    tuning: &SortTuning,
    scratch: &mut SortScratch,
) {
    if tuples.len() < 2 {
        return;
    }
    if tuples.len() <= INSERTION_CUTOFF {
        insertion::insertion_sort(tuples);
        return;
    }
    // Phase 1: MSD radix scatter into 256 key-ordered buckets. One
    // key-range scan here is the only range scan of the whole sort:
    // the recursion below derives every child shift arithmetically
    // ([`radix::RadixShift::child`]) instead of re-scanning buckets the
    // way the frozen PR 2 baseline does (twice per recursion level).
    let (min, max) = crate::tuple::key_range(tuples).expect("len > cutoff");
    if min == max {
        return; // one key: any order is sorted
    }
    let shift = radix::RadixShift::for_range(min, max, RADIX_BITS);
    // The ping-pong buffer comes out of the scratch for the duration of
    // the descent (the leaf kernels borrow the same scratch for their
    // network staging). It grows to the largest run this worker sorts
    // and stays — the allocation is paid once per worker, not per call.
    let mut aux = std::mem::take(&mut scratch.aux);
    if aux.len() < tuples.len() {
        aux.resize(tuples.len(), Tuple::new(0, 0));
    }
    let n = tuples.len();
    let bounds = radix::msd_radix_scatter(tuples, &mut aux[..n], shift, tuning.prefetch);
    if shift.shift == 0 {
        // Sub-256 span: the scatter ordered by exact key value.
        tuples.copy_from_slice(&aux[..n]);
    } else {
        // The top-level shift is tight by construction (`for_range` on
        // the real range), so this partition cannot collapse into one
        // bucket; descend directly.
        spill_children(&mut aux[..n], tuples, &bounds, shift, tuning, scratch);
    }
    scratch.aux = aux;
}

/// Recurse into every non-trivial bucket of a scatter whose output
/// landed in `src`, delivering each bucket sorted into `dst`.
/// Singleton buckets are copied; empty buckets are skipped *before*
/// deriving the child shift — `child`'s base arithmetic is only
/// overflow-safe for buckets that contain a key (the sum is bounded by
/// that key), and near-`u64::MAX` domains do overflow it for empty high
/// buckets.
fn spill_children(
    src: &mut [Tuple],
    dst: &mut [Tuple],
    bounds: &[usize],
    shift: radix::RadixShift,
    tuning: &SortTuning,
    scratch: &mut SortScratch,
) {
    for (b, w) in bounds.windows(2).enumerate() {
        match w[1] - w[0] {
            0 => {}
            1 => dst[w[0]] = src[w[0]],
            _ => sort_spill(
                &mut src[w[0]..w[1]],
                &mut dst[w[0]..w[1]],
                shift.child(b, RADIX_BITS),
                tuning,
                scratch,
            ),
        }
    }
}

/// Sort a bucket whose tuples currently sit in `src`, delivering the
/// sorted result into `dst` (`src` is scatter space afterwards). With
/// [`sort_resident`] this forms the ping-pong descent: each radix level
/// is one out-of-place [`radix::msd_radix_scatter`] — sequential reads,
/// 256 independent write streams — instead of the in-place cycle-leader
/// permutation whose displacement chain serializes on one cache miss at
/// a time. Even-depth recursions land back in place with zero extra
/// copies; odd-depth subtrees pay one sequential bucket copy at the
/// leaf.
fn sort_spill(
    src: &mut [Tuple],
    dst: &mut [Tuple],
    shift: radix::RadixShift,
    tuning: &SortTuning,
    scratch: &mut SortScratch,
) {
    debug_assert_eq!(src.len(), dst.len());
    if src.len() <= CACHE_RESIDENT_TUPLES {
        dst.copy_from_slice(src);
        leaf_finish(dst, tuning, scratch);
        return;
    }
    let bounds = radix::msd_radix_scatter(src, dst, shift, tuning.prefetch);
    if shift.shift == 0 {
        return; // digits exhausted: dst is ordered by exact key value
    }
    // A skewed bucket can collapse into a single child (all keys share
    // the next digit). The descent still terminates — each level
    // consumes RADIX_BITS real key bits until the shift hits 0 — but
    // one range scan re-tightens the shift to the occupied sub-domain
    // and skips the dead levels. The scatter is stable, so a collapsed
    // pass left `dst` an exact copy of `src` and both stay usable.
    if bounds.windows(2).any(|w| w[1] - w[0] == dst.len()) {
        let (min, max) = crate::tuple::key_range(dst).expect("bucket is non-empty");
        if min == max {
            return; // single-key bucket is already totally ordered
        }
        let tight = radix::RadixShift::for_range(min, max, RADIX_BITS);
        let bounds = radix::msd_radix_scatter(dst, src, tight, tuning.prefetch);
        spill_children(src, dst, &bounds, tight, tuning, scratch);
        return;
    }
    for (b, w) in bounds.windows(2).enumerate() {
        if w[1] - w[0] < 2 {
            continue; // already in dst; see the overflow note on spill_children
        }
        sort_resident(
            &mut dst[w[0]..w[1]],
            &mut src[w[0]..w[1]],
            shift.child(b, RADIX_BITS),
            tuning,
            scratch,
        );
    }
}

/// Sort a bucket in place in `data`, using same-sized `aux` as scatter
/// space. The ping-pong counterpart of [`sort_spill`].
fn sort_resident(
    data: &mut [Tuple],
    aux: &mut [Tuple],
    shift: radix::RadixShift,
    tuning: &SortTuning,
    scratch: &mut SortScratch,
) {
    debug_assert_eq!(data.len(), aux.len());
    if data.len() <= CACHE_RESIDENT_TUPLES {
        leaf_finish(data, tuning, scratch);
        return;
    }
    let bounds = radix::msd_radix_scatter(data, aux, shift, tuning.prefetch);
    if shift.shift == 0 {
        data.copy_from_slice(aux);
        return;
    }
    if bounds.windows(2).any(|w| w[1] - w[0] == data.len()) {
        // Collapsed (see sort_spill): `aux == data`, re-tighten from
        // `data` and scatter again.
        let (min, max) = crate::tuple::key_range(data).expect("bucket is non-empty");
        if min == max {
            return;
        }
        let tight = radix::RadixShift::for_range(min, max, RADIX_BITS);
        let bounds = radix::msd_radix_scatter(data, aux, tight, tuning.prefetch);
        spill_children(aux, data, &bounds, tight, tuning, scratch);
        return;
    }
    spill_children(aux, data, &bounds, shift, tuning, scratch);
}

/// Apply the tuning's finishing kernel to one cache-resident bucket.
fn leaf_finish(bucket: &mut [Tuple], tuning: &SortTuning, scratch: &mut SortScratch) {
    if bucket.len() < 2 {
        return;
    }
    match tuning.kernel {
        SortKernel::IntrosortInsertion => {
            if bucket.len() <= INSERTION_CUTOFF {
                insertion::insertion_sort(bucket);
            } else {
                intro::introsort_coarse(bucket, INSERTION_CUTOFF);
                insertion::insertion_sort(bucket);
            }
        }
        SortKernel::Bitonic => {
            bitonic::quicksort_to_network(
                bucket,
                tuning.block,
                scratch,
                &mut bitonic::bitonic_sort_with,
            );
        }
        SortKernel::Simd => {
            bitonic::quicksort_to_network(
                bucket,
                tuning.block,
                scratch,
                &mut simd::bitonic_sort_simd,
            );
        }
    }
}

/// [`three_phase_sort`] with its traffic recorded against the run's
/// `home` node: `len` sequential reads plus `len` random writes (the
/// in-place permutation). The random writes are why commandment C1
/// demands runs be sorted in *local* RAM — on a worker whose node is
/// not `home` they show up as remote random accesses, the most
/// expensive kind in the Figure 1 model.
pub fn three_phase_sort_audited(run: &mut [Tuple], home: NodeId, scope: &mut CounterScope) {
    scope.touch(home, true, run.len() as u64);
    scope.touch(home, false, run.len() as u64);
    three_phase_sort(run);
}

/// [`three_phase_sort_audited`] with an explicit tuning and caller
/// scratch — what `ExecContext::sort_run` uses so every MPSM variant
/// sorts with the context's kernel and per-worker scratch.
pub fn three_phase_sort_tuned_audited(
    run: &mut [Tuple],
    home: NodeId,
    scope: &mut CounterScope,
    tuning: &SortTuning,
    scratch: &mut SortScratch,
) {
    scope.touch(home, true, run.len() as u64);
    scope.touch(home, false, run.len() as u64);
    three_phase_sort_tuned(run, tuning, scratch);
}

/// The seed's literal three-phase sort: one radix pass, coarse
/// introsort per bucket, then a single **global** insertion pass that
/// re-streams the whole array. Retained as the ablation baseline of
/// `cargo bench --bench sort`; all join paths use [`three_phase_sort`].
pub fn three_phase_sort_naive(tuples: &mut [Tuple]) {
    if tuples.len() < 2 {
        return;
    }
    if tuples.len() <= INSERTION_CUTOFF {
        insertion::insertion_sort(tuples);
        return;
    }
    let boundaries = radix::msd_radix_partition(tuples);
    for w in boundaries.windows(2) {
        let bucket = &mut tuples[w[0]..w[1]];
        if bucket.len() > INSERTION_CUTOFF {
            intro::introsort_coarse(bucket, INSERTION_CUTOFF);
        }
    }
    insertion::insertion_sort(tuples);
}

/// The PR 2 sort path, frozen for honest before/after benches: radix
/// recursion that re-scans each oversized bucket's key range (twice per
/// level) plus the introsort+insertion finisher. `BENCH_7.json`'s
/// headline compares the tuned kernel against this, so the recorded
/// speedup covers everything this PR changed (branch-free network
/// leaves + scan-free shift descent + the prefetch knob), not just the
/// finisher swap.
pub fn three_phase_sort_pr2_baseline(tuples: &mut [Tuple]) {
    if tuples.len() < 2 {
        return;
    }
    if tuples.len() <= INSERTION_CUTOFF {
        insertion::insertion_sort(tuples);
        return;
    }
    let boundaries = radix::msd_radix_partition_nopf(tuples);
    for w in boundaries.windows(2) {
        finish_bucket_pr2(&mut tuples[w[0]..w[1]]);
    }
}

/// The PR 2 `finish_bucket`, frozen alongside
/// [`three_phase_sort_pr2_baseline`].
fn finish_bucket_pr2(bucket: &mut [Tuple]) {
    if bucket.len() < 2 {
        return;
    }
    if bucket.len() <= INSERTION_CUTOFF {
        insertion::insertion_sort(bucket);
        return;
    }
    if bucket.len() > CACHE_RESIDENT_TUPLES {
        let (min, max) = crate::tuple::key_range(bucket).expect("bucket is non-empty");
        if min == max {
            return;
        }
        let bounds = radix::msd_radix_partition_nopf(bucket);
        for w in bounds.windows(2) {
            finish_bucket_pr2(&mut bucket[w[0]..w[1]]);
        }
        return;
    }
    intro::introsort_coarse(bucket, INSERTION_CUTOFF);
    insertion::insertion_sort(bucket);
}

/// Sort by key using introsort alone (no radix pass); used by the
/// ablation benchmarks to quantify the radix phase's contribution.
pub fn introsort_only(tuples: &mut [Tuple]) {
    intro::introsort_coarse(tuples, INSERTION_CUTOFF);
    insertion::insertion_sort(tuples);
}

/// Three-phase sort finishing small partitions with bitonic networks
/// instead of the deferred insertion pass — the §6 SIMD-outlook
/// ablation (see [`bitonic`]). Superseded by the tuned kernel registry
/// but retained so the historical ablation stays runnable.
pub fn three_phase_sort_bitonic(tuples: &mut [Tuple]) {
    if tuples.len() < 2 {
        return;
    }
    if tuples.len() <= bitonic::BITONIC_BLOCK {
        bitonic::bitonic_sort(tuples);
        return;
    }
    let boundaries = radix::msd_radix_partition(tuples);
    for w in boundaries.windows(2) {
        bitonic::introsort_bitonic(&mut tuples[w[0]..w[1]]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::is_key_sorted;

    fn pseudo_random(n: usize, seed: u64) -> Vec<Tuple> {
        let mut state = seed | 1;
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                Tuple::new(state >> 32, i as u64)
            })
            .collect()
    }

    fn sort_with(kernel: SortKernel, block: usize, data: &mut [Tuple]) {
        let tuning = SortTuning::new(kernel, block);
        let mut scratch = SortScratch::new();
        three_phase_sort_tuned(data, &tuning, &mut scratch);
    }

    #[test]
    fn sorts_random_input() {
        let mut data = pseudo_random(10_000, 7);
        let mut expected = data.clone();
        expected.sort_unstable_by_key(|t| t.key);
        three_phase_sort(&mut data);
        assert!(is_key_sorted(&data));
        // Same multiset of keys.
        let mut got_keys: Vec<u64> = data.iter().map(|t| t.key).collect();
        let exp_keys: Vec<u64> = expected.iter().map(|t| t.key).collect();
        got_keys.sort_unstable();
        let mut exp_sorted = exp_keys.clone();
        exp_sorted.sort_unstable();
        assert_eq!(got_keys, exp_sorted);
    }

    #[test]
    fn preserves_payloads() {
        let mut data = pseudo_random(5_000, 99);
        let mut expected: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
        three_phase_sort(&mut data);
        let mut got: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn handles_small_and_degenerate_inputs() {
        let mut empty: Vec<Tuple> = vec![];
        three_phase_sort(&mut empty);

        let mut one = vec![Tuple::new(5, 0)];
        three_phase_sort(&mut one);
        assert_eq!(one[0].key, 5);

        let mut two = vec![Tuple::new(9, 0), Tuple::new(1, 0)];
        three_phase_sort(&mut two);
        assert!(is_key_sorted(&two));
    }

    #[test]
    fn handles_all_equal_keys() {
        let mut data: Vec<Tuple> = (0..1000).map(|i| Tuple::new(42, i)).collect();
        three_phase_sort(&mut data);
        assert!(data.iter().all(|t| t.key == 42));
        assert_eq!(data.len(), 1000);
    }

    #[test]
    fn handles_presorted_and_reversed() {
        let mut asc: Vec<Tuple> = (0..5000u64).map(|k| Tuple::new(k, 0)).collect();
        three_phase_sort(&mut asc);
        assert!(is_key_sorted(&asc));

        let mut desc: Vec<Tuple> = (0..5000u64).rev().map(|k| Tuple::new(k, 0)).collect();
        three_phase_sort(&mut desc);
        assert!(is_key_sorted(&desc));
    }

    #[test]
    fn handles_narrow_key_range() {
        // All keys in [100, 103]: the radix shift must not collapse to
        // nonsense and the sort must still be total.
        let mut data: Vec<Tuple> = (0..4000u64).map(|i| Tuple::new(100 + (i % 4), i)).collect();
        three_phase_sort(&mut data);
        assert!(is_key_sorted(&data));
    }

    #[test]
    fn handles_full_64bit_keys() {
        let mut data = vec![
            Tuple::new(u64::MAX, 0),
            Tuple::new(0, 1),
            Tuple::new(u64::MAX / 2, 2),
            Tuple::new(1, 3),
            Tuple::new(u64::MAX - 1, 4),
        ];
        // Pad to clear the small-input path.
        for i in 0..100 {
            data.push(Tuple::new(i * 0x0101_0101_0101, i));
        }
        three_phase_sort(&mut data);
        assert!(is_key_sorted(&data));
    }

    #[test]
    fn per_bucket_finish_matches_naive_global_pass() {
        // The keys at these seeds are collision-free, so any correct
        // sort produces the identical tuple sequence regardless of
        // partition strategy (scatter vs. in-place) or finisher.
        for seed in [3u64, 17, 91] {
            let mut a = pseudo_random(30_000, seed);
            let mut b = a.clone();
            sort_with(SortKernel::IntrosortInsertion, INSERTION_CUTOFF, &mut a);
            three_phase_sort_naive(&mut b);
            assert_eq!(a, b, "seed {seed}: both finishes must produce the same total order");
        }
    }

    #[test]
    fn every_kernel_produces_the_same_sorted_multiset() {
        for seed in [5u64, 23] {
            let reference = {
                let mut r = pseudo_random(30_000, seed);
                three_phase_sort_naive(&mut r);
                r.iter().map(|t| (t.key, t.payload)).collect::<std::collections::BTreeSet<_>>()
            };
            for kernel in SortKernel::ALL {
                let mut data = pseudo_random(30_000, seed);
                sort_with(kernel, 64, &mut data);
                assert!(is_key_sorted(&data), "{kernel:?}");
                let got: std::collections::BTreeSet<_> =
                    data.iter().map(|t| (t.key, t.payload)).collect();
                assert_eq!(got, reference, "{kernel:?} must preserve the multiset");
            }
        }
    }

    #[test]
    fn pr2_baseline_matches_the_tuned_introsort_kernel() {
        // Collision-free keys at this seed: the frozen baseline
        // (in-place permutation) and the tuned path (ping-pong scatter)
        // must still agree tuple for tuple.
        let mut a = pseudo_random(40_000, 13);
        let mut b = a.clone();
        three_phase_sort_pr2_baseline(&mut a);
        sort_with(SortKernel::IntrosortInsertion, INSERTION_CUTOFF, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn recursion_handles_one_giant_bucket() {
        // One outlier stretches the domain so the first pass dumps
        // everything else into bucket 0, which exceeds the
        // cache-resident threshold and must recurse with a re-derived
        // shift.
        let mut state = 5u64;
        let mut data: Vec<Tuple> = (0..(CACHE_RESIDENT_TUPLES as u64 + 5_000))
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                Tuple::new(state >> 40, i) // keys < 2^24
            })
            .collect();
        data.push(Tuple::new(u64::MAX, 0)); // the outlier
        let mut expected: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
        expected.sort_unstable();
        three_phase_sort(&mut data);
        assert!(is_key_sorted(&data));
        let got: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        assert_eq!(got_sorted, expected, "recursion must preserve the multiset");
    }

    #[test]
    fn recursion_early_outs_on_single_key_buckets() {
        // One giant equal-key bucket plus an outlier: the recursion must
        // detect min == max and stop instead of re-partitioning forever.
        let mut data: Vec<Tuple> =
            (0..(CACHE_RESIDENT_TUPLES as u64 + 2_000)).map(|i| Tuple::new(7, i)).collect();
        data.push(Tuple::new(u64::MAX, 0));
        three_phase_sort(&mut data);
        assert!(is_key_sorted(&data));
        assert_eq!(data.last().unwrap().key, u64::MAX);
    }

    #[test]
    fn introsort_only_matches() {
        let mut a = pseudo_random(3000, 3);
        let mut b = a.clone();
        three_phase_sort(&mut a);
        introsort_only(&mut b);
        assert_eq!(
            a.iter().map(|t| t.key).collect::<Vec<_>>(),
            b.iter().map(|t| t.key).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bitonic_variant_agrees_with_the_paper_sort() {
        let mut a = pseudo_random(20_000, 31);
        let mut b = a.clone();
        three_phase_sort(&mut a);
        three_phase_sort_bitonic(&mut b);
        assert_eq!(
            a.iter().map(|t| t.key).collect::<Vec<_>>(),
            b.iter().map(|t| t.key).collect::<Vec<_>>()
        );
        assert!(is_key_sorted(&b));
    }

    #[test]
    fn skewed_distribution_sorts() {
        // 80:20 style skew: most keys in a narrow high band.
        let mut state = 12345u64;
        let mut data: Vec<Tuple> = (0..20_000)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let r = state >> 33;
                let key = if r % 10 < 8 { (1 << 31) + (r % (1 << 29)) } else { r % (1 << 31) };
                Tuple::new(key, i)
            })
            .collect();
        three_phase_sort(&mut data);
        assert!(is_key_sorted(&data));
    }
}
