//! The paper's three-phase sorting routine (§2.3).
//!
//! > "we developed our own three-phase sorting algorithm that operates
//! > as follows: 1. in-place Radix sort that generates 2^8 = 256
//! > partitions according to the 8 most significant bits. [...]
//! > 2. IntroSort: use Quicksort to at most 2·log(N) recursion levels;
//! > if this does not suffice, resort to heapsort. As soon as a
//! > quicksort partition contains less than 16 elements stop and leave
//! > it to a final insertion sort pass to obtain the total ordering."
//!
//! The entry point is [`three_phase_sort`]. The phases are exposed
//! individually ([`radix::msd_radix_partition`], [`intro::introsort_coarse`],
//! [`insertion::insertion_sort`]) because the benchmark harness ablates
//! them and because the radix pass doubles as the histogram pass of the
//! partitioning phase.
//!
//! Two cache-conscious refinements over the paper's literal recipe:
//!
//! * **Recursive radix pass.** A bucket larger than
//!   [`CACHE_RESIDENT_TUPLES`] (an L1d worth of tuples) recurses the
//!   American-flag pass (with a shift re-derived from the bucket's own
//!   key range) instead of going straight to introsort: one O(n)
//!   counting pass + in-place permutation replaces `RADIX_BITS`
//!   quicksort levels of branchy comparisons, and the pieces handed to
//!   introsort are cache-resident. The access pattern stays the
//!   sequential-scan shape the paper's commandments favor.
//! * **Per-bucket finishing.** The final insertion pass runs per radix
//!   bucket, immediately after that bucket's introsort, while the
//!   bucket (≤ L2-sized) is still cache-hot — instead of one global
//!   pass that re-streams the whole (multi-MiB) array from memory even
//!   though every bucket is already internally ordered up to the
//!   insertion cutoff. The seed's global-pass variant is retained as
//!   [`three_phase_sort_naive`] for the ablation bench
//!   (`cargo bench --bench sort`).
//!
//! Keys may occupy any sub-range of the 64-bit domain (the paper's
//! evaluation draws them from `[0, 2^32)`), so the radix pass first
//! derives a shift from the observed key range — the "preprocessing of
//! the join keys using bitwise shift operations" of §3.2.1.

pub mod bitonic;
pub mod insertion;
pub mod intro;
pub mod radix;

use mpsm_numa::{CounterScope, NodeId};

use crate::tuple::Tuple;

/// Number of leading bits (and thus `2^RADIX_BITS` buckets) used by the
/// first phase, as in the paper.
pub const RADIX_BITS: u32 = 8;

/// Quicksort partitions smaller than this are left to the final
/// insertion pass, as in the paper.
pub const INSERTION_CUTOFF: usize = 16;

/// Buckets larger than this recurse the radix pass before introsort:
/// 32 KiB (an L1d) of 16-byte tuples. Each radix level replaces eight
/// quicksort levels with one O(n) counting pass + in-place permutation,
/// so recursing until buckets are L1-resident is where the measured
/// optimum lies (the `sort` bench sweep: 2048 ≈ 1.7× over the
/// introsort-from-L2 variant at 1M tuples; 8192+ erases the win).
pub const CACHE_RESIDENT_TUPLES: usize = (32 * 1024) / std::mem::size_of::<Tuple>();

/// Sort `tuples` by key with the paper's three-phase algorithm,
/// recursing the radix pass on non-cache-resident buckets and finishing
/// each bucket (introsort + insertion) while it is cache-hot.
///
/// ```
/// use mpsm_core::sort::three_phase_sort;
/// use mpsm_core::Tuple;
///
/// let mut run: Vec<Tuple> = [9u64, 2, 7, 2, 0]
///     .iter()
///     .enumerate()
///     .map(|(i, &k)| Tuple::new(k, i as u64))
///     .collect();
/// three_phase_sort(&mut run);
/// let keys: Vec<u64> = run.iter().map(|t| t.key).collect();
/// assert_eq!(keys, vec![0, 2, 2, 7, 9]);
/// ```
pub fn three_phase_sort(tuples: &mut [Tuple]) {
    if tuples.len() < 2 {
        return;
    }
    if tuples.len() <= INSERTION_CUTOFF {
        insertion::insertion_sort(tuples);
        return;
    }
    // Phase 1: MSD radix pass into 256 key-ordered buckets.
    let boundaries = radix::msd_radix_partition(tuples);
    // Phases 2 + 3, fused per bucket.
    for w in boundaries.windows(2) {
        finish_bucket(&mut tuples[w[0]..w[1]]);
    }
}

/// Sort one radix bucket to a total order: recurse the radix pass while
/// the bucket exceeds the cache-resident threshold, then introsort and
/// insertion-finish it in place.
fn finish_bucket(bucket: &mut [Tuple]) {
    if bucket.len() < 2 {
        return;
    }
    if bucket.len() <= INSERTION_CUTOFF {
        insertion::insertion_sort(bucket);
        return;
    }
    if bucket.len() > CACHE_RESIDENT_TUPLES {
        let (min, max) = crate::tuple::key_range(bucket).expect("bucket is non-empty");
        if min == max {
            return; // single-key bucket is already totally ordered
        }
        // `min < max` guarantees ≥ 2 non-empty sub-buckets (min maps to
        // bucket 0, max to a higher one), so the recursion always
        // shrinks and terminates even on pathological distributions.
        let bounds = radix::msd_radix_partition(bucket);
        for w in bounds.windows(2) {
            finish_bucket(&mut bucket[w[0]..w[1]]);
        }
        return;
    }
    intro::introsort_coarse(bucket, INSERTION_CUTOFF);
    insertion::insertion_sort(bucket);
}

/// [`three_phase_sort`] with its traffic recorded against the run's
/// `home` node: `len` sequential reads plus `len` random writes (the
/// in-place permutation). The random writes are why commandment C1
/// demands runs be sorted in *local* RAM — on a worker whose node is
/// not `home` they show up as remote random accesses, the most
/// expensive kind in the Figure 1 model.
pub fn three_phase_sort_audited(run: &mut [Tuple], home: NodeId, scope: &mut CounterScope) {
    scope.touch(home, true, run.len() as u64);
    scope.touch(home, false, run.len() as u64);
    three_phase_sort(run);
}

/// The seed's literal three-phase sort: one radix pass, coarse
/// introsort per bucket, then a single **global** insertion pass that
/// re-streams the whole array. Retained as the ablation baseline of
/// `cargo bench --bench sort`; all join paths use [`three_phase_sort`].
pub fn three_phase_sort_naive(tuples: &mut [Tuple]) {
    if tuples.len() < 2 {
        return;
    }
    if tuples.len() <= INSERTION_CUTOFF {
        insertion::insertion_sort(tuples);
        return;
    }
    let boundaries = radix::msd_radix_partition(tuples);
    for w in boundaries.windows(2) {
        let bucket = &mut tuples[w[0]..w[1]];
        if bucket.len() > INSERTION_CUTOFF {
            intro::introsort_coarse(bucket, INSERTION_CUTOFF);
        }
    }
    insertion::insertion_sort(tuples);
}

/// Sort by key using introsort alone (no radix pass); used by the
/// ablation benchmarks to quantify the radix phase's contribution.
pub fn introsort_only(tuples: &mut [Tuple]) {
    intro::introsort_coarse(tuples, INSERTION_CUTOFF);
    insertion::insertion_sort(tuples);
}

/// Three-phase sort finishing small partitions with bitonic networks
/// instead of the deferred insertion pass — the §6 SIMD-outlook
/// ablation (see [`bitonic`]).
pub fn three_phase_sort_bitonic(tuples: &mut [Tuple]) {
    if tuples.len() < 2 {
        return;
    }
    if tuples.len() <= bitonic::BITONIC_BLOCK {
        bitonic::bitonic_sort(tuples);
        return;
    }
    let boundaries = radix::msd_radix_partition(tuples);
    for w in boundaries.windows(2) {
        bitonic::introsort_bitonic(&mut tuples[w[0]..w[1]]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::is_key_sorted;

    fn pseudo_random(n: usize, seed: u64) -> Vec<Tuple> {
        let mut state = seed | 1;
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                Tuple::new(state >> 32, i as u64)
            })
            .collect()
    }

    #[test]
    fn sorts_random_input() {
        let mut data = pseudo_random(10_000, 7);
        let mut expected = data.clone();
        expected.sort_unstable_by_key(|t| t.key);
        three_phase_sort(&mut data);
        assert!(is_key_sorted(&data));
        // Same multiset of keys.
        let mut got_keys: Vec<u64> = data.iter().map(|t| t.key).collect();
        let exp_keys: Vec<u64> = expected.iter().map(|t| t.key).collect();
        got_keys.sort_unstable();
        let mut exp_sorted = exp_keys.clone();
        exp_sorted.sort_unstable();
        assert_eq!(got_keys, exp_sorted);
    }

    #[test]
    fn preserves_payloads() {
        let mut data = pseudo_random(5_000, 99);
        let mut expected: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
        three_phase_sort(&mut data);
        let mut got: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn handles_small_and_degenerate_inputs() {
        let mut empty: Vec<Tuple> = vec![];
        three_phase_sort(&mut empty);

        let mut one = vec![Tuple::new(5, 0)];
        three_phase_sort(&mut one);
        assert_eq!(one[0].key, 5);

        let mut two = vec![Tuple::new(9, 0), Tuple::new(1, 0)];
        three_phase_sort(&mut two);
        assert!(is_key_sorted(&two));
    }

    #[test]
    fn handles_all_equal_keys() {
        let mut data: Vec<Tuple> = (0..1000).map(|i| Tuple::new(42, i)).collect();
        three_phase_sort(&mut data);
        assert!(data.iter().all(|t| t.key == 42));
        assert_eq!(data.len(), 1000);
    }

    #[test]
    fn handles_presorted_and_reversed() {
        let mut asc: Vec<Tuple> = (0..5000u64).map(|k| Tuple::new(k, 0)).collect();
        three_phase_sort(&mut asc);
        assert!(is_key_sorted(&asc));

        let mut desc: Vec<Tuple> = (0..5000u64).rev().map(|k| Tuple::new(k, 0)).collect();
        three_phase_sort(&mut desc);
        assert!(is_key_sorted(&desc));
    }

    #[test]
    fn handles_narrow_key_range() {
        // All keys in [100, 103]: the radix shift must not collapse to
        // nonsense and the sort must still be total.
        let mut data: Vec<Tuple> = (0..4000u64).map(|i| Tuple::new(100 + (i % 4), i)).collect();
        three_phase_sort(&mut data);
        assert!(is_key_sorted(&data));
    }

    #[test]
    fn handles_full_64bit_keys() {
        let mut data = vec![
            Tuple::new(u64::MAX, 0),
            Tuple::new(0, 1),
            Tuple::new(u64::MAX / 2, 2),
            Tuple::new(1, 3),
            Tuple::new(u64::MAX - 1, 4),
        ];
        // Pad to clear the small-input path.
        for i in 0..100 {
            data.push(Tuple::new(i * 0x0101_0101_0101, i));
        }
        three_phase_sort(&mut data);
        assert!(is_key_sorted(&data));
    }

    #[test]
    fn per_bucket_finish_matches_naive_global_pass() {
        for seed in [3u64, 17, 91] {
            let mut a = pseudo_random(30_000, seed);
            let mut b = a.clone();
            three_phase_sort(&mut a);
            three_phase_sort_naive(&mut b);
            assert_eq!(a, b, "seed {seed}: both finishes must produce the same total order");
        }
    }

    #[test]
    fn recursion_handles_one_giant_bucket() {
        // One outlier stretches the domain so the first pass dumps
        // everything else into bucket 0, which exceeds the
        // cache-resident threshold and must recurse with a re-derived
        // shift.
        let mut state = 5u64;
        let mut data: Vec<Tuple> = (0..(CACHE_RESIDENT_TUPLES as u64 + 5_000))
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                Tuple::new(state >> 40, i) // keys < 2^24
            })
            .collect();
        data.push(Tuple::new(u64::MAX, 0)); // the outlier
        let mut expected: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
        expected.sort_unstable();
        three_phase_sort(&mut data);
        assert!(is_key_sorted(&data));
        let got: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        assert_eq!(got_sorted, expected, "recursion must preserve the multiset");
    }

    #[test]
    fn recursion_early_outs_on_single_key_buckets() {
        // One giant equal-key bucket plus an outlier: the recursion must
        // detect min == max and stop instead of re-partitioning forever.
        let mut data: Vec<Tuple> =
            (0..(CACHE_RESIDENT_TUPLES as u64 + 2_000)).map(|i| Tuple::new(7, i)).collect();
        data.push(Tuple::new(u64::MAX, 0));
        three_phase_sort(&mut data);
        assert!(is_key_sorted(&data));
        assert_eq!(data.last().unwrap().key, u64::MAX);
    }

    #[test]
    fn introsort_only_matches() {
        let mut a = pseudo_random(3000, 3);
        let mut b = a.clone();
        three_phase_sort(&mut a);
        introsort_only(&mut b);
        assert_eq!(
            a.iter().map(|t| t.key).collect::<Vec<_>>(),
            b.iter().map(|t| t.key).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bitonic_variant_agrees_with_the_paper_sort() {
        let mut a = pseudo_random(20_000, 31);
        let mut b = a.clone();
        three_phase_sort(&mut a);
        three_phase_sort_bitonic(&mut b);
        assert_eq!(
            a.iter().map(|t| t.key).collect::<Vec<_>>(),
            b.iter().map(|t| t.key).collect::<Vec<_>>()
        );
        assert!(is_key_sorted(&b));
    }

    #[test]
    fn skewed_distribution_sorts() {
        // 80:20 style skew: most keys in a narrow high band.
        let mut state = 12345u64;
        let mut data: Vec<Tuple> = (0..20_000)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let r = state >> 33;
                let key = if r % 10 < 8 { (1 << 31) + (r % (1 << 29)) } else { r % (1 << 31) };
                Tuple::new(key, i)
            })
            .collect();
        three_phase_sort(&mut data);
        assert!(is_key_sorted(&data));
    }
}
