//! In-place MSD radix pass — phase 1 of the paper's sorting routine.
//!
//! Computes a 256-bucket histogram over the 8 most significant
//! *discriminating* bits of the keys, derives the bucket boundaries, and
//! swaps every element into its bucket in place (American-flag /
//! cycle-leader permutation, after Knuth \[18\]). The buckets are in key
//! order, so a subsequent per-bucket sort yields a totally ordered run.
//!
//! Keys rarely use all 64 bits (the paper draws them from `[0, 2^32)`),
//! so the pass first derives a shift from the observed key range — the
//! bitwise-shift preprocessing mentioned in §3.2.1.

use crate::sort::RADIX_BITS;
use crate::tuple::{key_range, Tuple};

/// Number of radix buckets (256, as in the paper).
pub const BUCKETS: usize = 1 << RADIX_BITS;

/// How to map a key to its radix bucket: `(key - base) >> shift`.
///
/// Derived from an observed key range so the top `RADIX_BITS` of the
/// *used* domain discriminate. Shared with the partitioning phase,
/// which radix-clusters on the same principle with `B` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RadixShift {
    /// Subtracted from every key before shifting (the domain minimum).
    pub base: u64,
    /// Right-shift applied after rebasing.
    pub shift: u32,
}

impl RadixShift {
    /// Derive the shift for `bits` leading bits over `[min, max]`.
    pub fn for_range(min: u64, max: u64, bits: u32) -> Self {
        debug_assert!(min <= max);
        if min == max {
            // Degenerate single-key domain. Without the early-out,
            // `needed` collapses to 0 and shift 0 sends any key above
            // `base` through the top-bucket `.min()` clamp — the
            // opposite end of the domain. Shift 63 routes everything
            // within 2^63 of the base into bucket 0, which is the only
            // meaningful bucket of a one-key domain.
            return RadixShift { base: min, shift: 63 };
        }
        let span = max - min;
        let needed = 64 - span.leading_zeros(); // bits needed for the span
        let shift = needed.saturating_sub(bits);
        RadixShift { base: min, shift }
    }

    /// Bucket of `key` among `2^bits` buckets.
    #[inline]
    pub fn bucket(&self, key: u64, bits: u32) -> usize {
        debug_assert!(key >= self.base);
        (((key - self.base) >> self.shift) as usize).min((1usize << bits) - 1)
    }

    /// The shift for recursing into non-empty `bucket` of a partition
    /// made with `self`: the next `bits` lower key bits.
    ///
    /// Needs **no scan of the bucket**: a partition on `self` confines
    /// bucket `b`'s keys to the span of width `2^shift` starting at
    /// `base + (b << shift)` — for the clamped top bucket too, because
    /// [`RadixShift::for_range`] guarantees the whole span is below
    /// `2^(shift + bits)`. So the child rebases to the bucket's floor
    /// and consumes the next digit. Once `self.shift` is 0 every bucket
    /// holds a single key value and recursion must stop — callers check
    /// that before deriving a child.
    ///
    /// Only call this for buckets that **contain a key**: the rebased
    /// floor is then bounded by that key, so the addition cannot
    /// overflow. For empty high buckets of a near-`u64::MAX` domain the
    /// floor itself can exceed `u64::MAX` (callers skip trivial buckets
    /// before deriving children).
    #[inline]
    pub fn child(&self, bucket: usize, bits: u32) -> RadixShift {
        RadixShift {
            base: self.base + ((bucket as u64) << self.shift),
            shift: self.shift.saturating_sub(bits),
        }
    }
}

/// Prefetch the cache line holding `*p` into all levels (T0 hint).
/// A pure hint: any address is architecturally safe, and the function
/// is a no-op off x86_64.
#[inline(always)]
fn prefetch_read(p: *const Tuple) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch never faults; SSE is in the x86_64 baseline.
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(p.cast::<i8>());
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Partition `tuples` in place into up to 256 key-ordered buckets.
/// Returns the `BUCKETS + 1` boundary offsets (bucket `b` occupies
/// `tuples[bounds[b]..bounds[b+1]]`).
pub fn msd_radix_partition(tuples: &mut [Tuple]) -> Vec<usize> {
    let Some((min, max)) = key_range(tuples) else {
        return vec![0; BUCKETS + 1];
    };
    let shift = RadixShift::for_range(min, max, RADIX_BITS);
    msd_radix_partition_with(tuples, shift)
}

/// [`msd_radix_partition_with`] with the software-prefetch hints under a
/// runtime switch — the entry point for the tuned sort path, whose
/// `SortTuning::prefetch` knob is a per-machine property swept by
/// `SortTuning::auto_tune`. The permutation's displacement chain is
/// serially dependent, so the hint leads its use by only one hop: on
/// some cores that still beats the extra issue slots, on others it is a
/// measured loss.
pub fn msd_radix_partition_tuned(
    tuples: &mut [Tuple],
    shift: RadixShift,
    prefetch: bool,
) -> Vec<usize> {
    if prefetch {
        partition_impl::<true>(tuples, shift)
    } else {
        partition_impl::<false>(tuples, shift)
    }
}

/// [`msd_radix_partition`] without the software-prefetch hints — the
/// PR 2 pass frozen verbatim so the benchmark baseline
/// (`three_phase_sort_pr2_baseline`) measures exactly the code it
/// claims to, including the per-level range re-scan the tuned path
/// replaces with [`RadixShift::child`].
pub fn msd_radix_partition_nopf(tuples: &mut [Tuple]) -> Vec<usize> {
    let Some((min, max)) = key_range(tuples) else {
        return vec![0; BUCKETS + 1];
    };
    let shift = RadixShift::for_range(min, max, RADIX_BITS);
    partition_impl::<false>(tuples, shift)
}

/// Like [`msd_radix_partition`], with a caller-provided shift (used when
/// the global domain is known from a previous scan).
pub fn msd_radix_partition_with(tuples: &mut [Tuple], shift: RadixShift) -> Vec<usize> {
    partition_impl::<true>(tuples, shift)
}

/// The pass itself; `PREFETCH` is a compile-time switch so the hint
/// instructions vanish entirely from the variants that don't want them
/// instead of hiding behind a runtime branch in the hot loops.
fn partition_impl<const PREFETCH: bool>(tuples: &mut [Tuple], shift: RadixShift) -> Vec<usize> {
    // 1. Histogram. A pure sequential scan: the hardware prefetcher
    // tracks it perfectly, so no software hints here (measured: an
    // explicit per-element hint *costs* ~2 ns/tuple at 1M).
    let mut counts = [0usize; BUCKETS];
    for t in tuples.iter() {
        counts[shift.bucket(t.key, RADIX_BITS)] += 1;
    }
    // 2. Boundaries (exclusive prefix sums).
    let mut bounds = vec![0usize; BUCKETS + 1];
    for b in 0..BUCKETS {
        bounds[b + 1] = bounds[b] + counts[b];
    }
    // 3. In-place cycle-leader permutation (American-flag style):
    // `heads[b]` is the next write position of bucket `b`. A displaced
    // element is carried in a register and follows its cycle — one read
    // and one write per element instead of a full `swap` (two of each),
    // which matters because every hop is a cache miss at scale. Each
    // hop's destination line is prefetched as soon as the carried key
    // names it, overlapping the fill with the loop's bookkeeping.
    let mut heads: Vec<usize> = bounds[..BUCKETS].to_vec();
    for b in 0..BUCKETS {
        let end = bounds[b + 1];
        while heads[b] < end {
            let cursor = heads[b];
            let mut carried = tuples[cursor];
            let mut target = shift.bucket(carried.key, RADIX_BITS);
            if target == b {
                heads[b] += 1;
                continue;
            }
            if PREFETCH {
                prefetch_read(&raw const tuples[heads[target]]);
            }
            // Follow the displacement cycle until an element belonging
            // to bucket `b` lands in the cursor slot.
            loop {
                let dest = heads[target];
                heads[target] += 1;
                std::mem::swap(&mut carried, &mut tuples[dest]);
                target = shift.bucket(carried.key, RADIX_BITS);
                if target == b {
                    tuples[cursor] = carried;
                    heads[b] += 1;
                    break;
                }
                if PREFETCH {
                    prefetch_read(&raw const tuples[heads[target]]);
                }
            }
        }
    }
    bounds
}

/// Out-of-place MSD radix scatter: histogram `src`, then stream it into
/// `dst` bucket-ordered. Returns the same boundary offsets as the
/// in-place pass.
///
/// This is the tuned sort's pass-2: the in-place cycle-leader
/// permutation above reads *and* writes at random addresses and each
/// hop serially depends on the carried tuple, so at scale the core
/// stalls on one cache miss at a time. The scatter reads sequentially
/// (hardware-prefetched) and writes to 256 independent streams the
/// store buffer can overlap — at the price of an equal-sized aux
/// buffer, which the callers ping-pong so even-depth recursions land
/// back in place with zero extra copies.
///
/// The scatter is **stable** (bucket-internal order preserved), which
/// the collapse-retighten path in the caller relies on: a partition
/// that lands in a single bucket leaves `dst` an exact copy of `src`.
///
/// `prefetch` hints each tuple's destination slot one iteration ahead
/// (approximate — the bucket head may advance a few slots in between,
/// but within the prefetched line for all but pathological skew). Like
/// the in-place hint this is a per-machine property: the auto-tune
/// sweep decides whether it pays.
pub fn msd_radix_scatter(
    src: &[Tuple],
    dst: &mut [Tuple],
    shift: RadixShift,
    prefetch: bool,
) -> Vec<usize> {
    if prefetch {
        scatter_impl::<true>(src, dst, shift)
    } else {
        scatter_impl::<false>(src, dst, shift)
    }
}

fn scatter_impl<const PREFETCH: bool>(
    src: &[Tuple],
    dst: &mut [Tuple],
    shift: RadixShift,
) -> Vec<usize> {
    assert_eq!(src.len(), dst.len(), "scatter needs an equal-sized destination");
    let mut counts = [0usize; BUCKETS];
    for t in src.iter() {
        counts[shift.bucket(t.key, RADIX_BITS)] += 1;
    }
    let mut bounds = vec![0usize; BUCKETS + 1];
    for b in 0..BUCKETS {
        bounds[b + 1] = bounds[b] + counts[b];
    }
    let mut heads: Vec<usize> = bounds[..BUCKETS].to_vec();
    const LOOKAHEAD: usize = 8;
    for (i, t) in src.iter().enumerate() {
        if PREFETCH {
            if let Some(ahead) = src.get(i + LOOKAHEAD) {
                let b = shift.bucket(ahead.key, RADIX_BITS);
                prefetch_read(&raw const dst[heads[b]]);
            }
        }
        let b = shift.bucket(t.key, RADIX_BITS);
        dst[heads[b]] = *t;
        heads[b] += 1;
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64) -> Vec<Tuple> {
        let mut state = seed | 1;
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                Tuple::new(state >> 32, i as u64)
            })
            .collect()
    }

    fn assert_is_radix_partitioned(tuples: &[Tuple], bounds: &[usize], shift: RadixShift) {
        assert_eq!(bounds.len(), BUCKETS + 1);
        assert_eq!(bounds[BUCKETS], tuples.len());
        for b in 0..BUCKETS {
            for t in &tuples[bounds[b]..bounds[b + 1]] {
                assert_eq!(shift.bucket(t.key, RADIX_BITS), b, "tuple in wrong bucket");
            }
        }
    }

    #[test]
    fn partitions_respect_buckets() {
        let mut data = pseudo_random(10_000, 21);
        let (min, max) = key_range(&data).unwrap();
        let shift = RadixShift::for_range(min, max, RADIX_BITS);
        let bounds = msd_radix_partition(&mut data);
        assert_is_radix_partitioned(&data, &bounds, shift);
    }

    #[test]
    fn buckets_are_key_ordered() {
        let mut data = pseudo_random(10_000, 23);
        let bounds = msd_radix_partition(&mut data);
        // Max key of bucket b must not exceed min key of any later bucket.
        let mut prev_max = None;
        for b in 0..BUCKETS {
            let bucket = &data[bounds[b]..bounds[b + 1]];
            if bucket.is_empty() {
                continue;
            }
            let min = bucket.iter().map(|t| t.key).min().unwrap();
            let max = bucket.iter().map(|t| t.key).max().unwrap();
            if let Some(pm) = prev_max {
                assert!(min >= pm, "bucket order violated");
            }
            prev_max = Some(max);
        }
    }

    #[test]
    fn permutation_preserves_multiset() {
        let mut data = pseudo_random(5_000, 27);
        let mut before: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
        msd_radix_partition(&mut data);
        let mut after: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn empty_input() {
        let bounds = msd_radix_partition(&mut []);
        assert_eq!(bounds, vec![0; BUCKETS + 1]);
    }

    #[test]
    fn all_equal_keys_land_in_one_bucket() {
        let mut data: Vec<Tuple> = (0..100).map(|i| Tuple::new(7, i)).collect();
        let bounds = msd_radix_partition(&mut data);
        let non_empty: Vec<usize> = (0..BUCKETS).filter(|&b| bounds[b + 1] > bounds[b]).collect();
        assert_eq!(non_empty.len(), 1);
    }

    #[test]
    fn narrow_range_spreads_over_buckets() {
        // Keys 0..=255 with bits=8 should occupy 256 distinct buckets.
        let mut data: Vec<Tuple> = (0..256u64).rev().map(|k| Tuple::new(k, 0)).collect();
        let bounds = msd_radix_partition(&mut data);
        let non_empty = (0..BUCKETS).filter(|&b| bounds[b + 1] > bounds[b]).count();
        assert_eq!(non_empty, 256);
        // And the pass alone fully sorts this input.
        assert!(crate::tuple::is_key_sorted(&data));
    }

    #[test]
    fn shift_for_range_clamps_top_bucket() {
        // A span that is not a power of two must still map max into the
        // last bucket, not beyond.
        let shift = RadixShift::for_range(10, 300, RADIX_BITS);
        assert!(shift.bucket(300, RADIX_BITS) < BUCKETS);
        assert_eq!(shift.bucket(10, RADIX_BITS), 0);
    }

    #[test]
    fn shift_for_single_key_range() {
        let shift = RadixShift::for_range(42, 42, RADIX_BITS);
        assert_eq!(shift.bucket(42, RADIX_BITS), 0);
    }

    #[test]
    fn single_key_domain_routes_everything_to_bucket_zero() {
        // The degenerate min == max early-out: stray keys above the base
        // must land in bucket 0, not be funneled into the top bucket by
        // the clamp.
        let shift = RadixShift::for_range(42, 42, RADIX_BITS);
        assert_eq!(shift.shift, 63);
        for key in [42u64, 43, 1000, 1 << 40, (1 << 62) + 41] {
            assert_eq!(shift.bucket(key, RADIX_BITS), 0, "key {key}");
        }
        // A partition pass over an all-equal slice stays a no-op.
        let mut data: Vec<Tuple> = (0..200).map(|i| Tuple::new(42, i)).collect();
        let before = data.clone();
        let bounds = msd_radix_partition(&mut data);
        assert_eq!(data, before);
        assert_eq!(bounds[1] - bounds[0], 200, "all tuples in bucket 0");
    }

    #[test]
    fn prefetched_and_frozen_passes_agree_exactly() {
        // The prefetch hints must not perturb the permutation: both
        // variants are the same algorithm instruction-for-instruction
        // apart from the hints.
        let mut a = pseudo_random(10_000, 31);
        let mut b = a.clone();
        let bounds_a = msd_radix_partition(&mut a);
        let bounds_b = msd_radix_partition_nopf(&mut b);
        assert_eq!(bounds_a, bounds_b);
        assert_eq!(a, b);
    }

    #[test]
    fn tuned_pass_matches_both_prefetch_settings() {
        let mut a = pseudo_random(10_000, 37);
        let mut b = a.clone();
        let mut c = a.clone();
        let (min, max) = key_range(&a).unwrap();
        let shift = RadixShift::for_range(min, max, RADIX_BITS);
        let bounds = msd_radix_partition_with(&mut a, shift);
        assert_eq!(bounds, msd_radix_partition_tuned(&mut b, shift, false));
        assert_eq!(bounds, msd_radix_partition_tuned(&mut c, shift, true));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn child_shift_covers_every_bucket_without_rescanning() {
        // Partition, then check each non-empty bucket against the shift
        // derived arithmetically: every key must land at or above the
        // child base and inside the child's 2^(shift + RADIX_BITS) span,
        // which is exactly what lets the recursion skip the re-scan.
        let mut data = pseudo_random(20_000, 41);
        let (min, max) = key_range(&data).unwrap();
        let shift = RadixShift::for_range(min, max, RADIX_BITS);
        let bounds = msd_radix_partition_with(&mut data, shift);
        for b in 0..BUCKETS {
            let bucket = &data[bounds[b]..bounds[b + 1]];
            if bucket.is_empty() {
                continue;
            }
            let child = shift.child(b, RADIX_BITS);
            assert_eq!(child.shift, shift.shift.saturating_sub(RADIX_BITS));
            for t in bucket {
                assert!(t.key >= child.base, "bucket {b}: key below child base");
                let span = t.key - child.base;
                assert!(
                    (span >> child.shift) >> RADIX_BITS == 0,
                    "bucket {b}: key {:#x} outside the derived child domain",
                    t.key
                );
            }
        }
    }

    #[test]
    fn scatter_agrees_with_inplace_pass_and_is_stable() {
        let mut inplace = pseudo_random(10_000, 43);
        let src = inplace.clone();
        let (min, max) = key_range(&src).unwrap();
        let shift = RadixShift::for_range(min, max, RADIX_BITS);
        let bounds_inplace = msd_radix_partition_with(&mut inplace, shift);
        for prefetch in [false, true] {
            let mut dst = vec![Tuple::new(0, 0); src.len()];
            let bounds = msd_radix_scatter(&src, &mut dst, shift, prefetch);
            assert_eq!(bounds, bounds_inplace, "prefetch={prefetch}");
            assert_is_radix_partitioned(&dst, &bounds, shift);
            // Stability: within each bucket the source order (encoded
            // in the payloads) must be preserved — the collapse-
            // retighten path in the sort relies on it.
            for b in 0..BUCKETS {
                let bucket = &dst[bounds[b]..bounds[b + 1]];
                assert!(
                    bucket.windows(2).all(|w| w[0].payload < w[1].payload),
                    "prefetch={prefetch}: bucket {b} not stable"
                );
            }
        }
    }

    #[test]
    fn collapsed_scatter_is_an_exact_copy() {
        // All keys in one bucket: stability means dst == src verbatim,
        // which is what lets the sort re-tighten without a copy-back.
        let src: Vec<Tuple> = (0..500).map(|i| Tuple::new(7_000_000 + (i % 3), i)).collect();
        let shift = RadixShift::for_range(0, u64::MAX, RADIX_BITS);
        let mut dst = vec![Tuple::new(0, 0); src.len()];
        let bounds = msd_radix_scatter(&src, &mut dst, shift, false);
        assert_eq!(dst, src);
        let non_empty = (0..BUCKETS).filter(|&b| bounds[b + 1] > bounds[b]).count();
        assert_eq!(non_empty, 1);
    }

    #[test]
    fn full_domain_shift() {
        let shift = RadixShift::for_range(0, u64::MAX, RADIX_BITS);
        assert_eq!(shift.shift, 56);
        assert_eq!(shift.bucket(u64::MAX, RADIX_BITS), BUCKETS - 1);
        assert_eq!(shift.bucket(0, RADIX_BITS), 0);
    }
}
