//! In-place MSD radix pass — phase 1 of the paper's sorting routine.
//!
//! Computes a 256-bucket histogram over the 8 most significant
//! *discriminating* bits of the keys, derives the bucket boundaries, and
//! swaps every element into its bucket in place (American-flag /
//! cycle-leader permutation, after Knuth \[18\]). The buckets are in key
//! order, so a subsequent per-bucket sort yields a totally ordered run.
//!
//! Keys rarely use all 64 bits (the paper draws them from `[0, 2^32)`),
//! so the pass first derives a shift from the observed key range — the
//! bitwise-shift preprocessing mentioned in §3.2.1.

use crate::sort::RADIX_BITS;
use crate::tuple::{key_range, Tuple};

/// Number of radix buckets (256, as in the paper).
pub const BUCKETS: usize = 1 << RADIX_BITS;

/// How to map a key to its radix bucket: `(key - base) >> shift`.
///
/// Derived from an observed key range so the top `RADIX_BITS` of the
/// *used* domain discriminate. Shared with the partitioning phase,
/// which radix-clusters on the same principle with `B` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RadixShift {
    /// Subtracted from every key before shifting (the domain minimum).
    pub base: u64,
    /// Right-shift applied after rebasing.
    pub shift: u32,
}

impl RadixShift {
    /// Derive the shift for `bits` leading bits over `[min, max]`.
    pub fn for_range(min: u64, max: u64, bits: u32) -> Self {
        debug_assert!(min <= max);
        if min == max {
            // Degenerate single-key domain. Without the early-out,
            // `needed` collapses to 0 and shift 0 sends any key above
            // `base` through the top-bucket `.min()` clamp — the
            // opposite end of the domain. Shift 63 routes everything
            // within 2^63 of the base into bucket 0, which is the only
            // meaningful bucket of a one-key domain.
            return RadixShift { base: min, shift: 63 };
        }
        let span = max - min;
        let needed = 64 - span.leading_zeros(); // bits needed for the span
        let shift = needed.saturating_sub(bits);
        RadixShift { base: min, shift }
    }

    /// Bucket of `key` among `2^bits` buckets.
    #[inline]
    pub fn bucket(&self, key: u64, bits: u32) -> usize {
        debug_assert!(key >= self.base);
        (((key - self.base) >> self.shift) as usize).min((1usize << bits) - 1)
    }
}

/// Partition `tuples` in place into up to 256 key-ordered buckets.
/// Returns the `BUCKETS + 1` boundary offsets (bucket `b` occupies
/// `tuples[bounds[b]..bounds[b+1]]`).
pub fn msd_radix_partition(tuples: &mut [Tuple]) -> Vec<usize> {
    let Some((min, max)) = key_range(tuples) else {
        return vec![0; BUCKETS + 1];
    };
    let shift = RadixShift::for_range(min, max, RADIX_BITS);
    msd_radix_partition_with(tuples, shift)
}

/// Like [`msd_radix_partition`], with a caller-provided shift (used when
/// the global domain is known from a previous scan).
pub fn msd_radix_partition_with(tuples: &mut [Tuple], shift: RadixShift) -> Vec<usize> {
    // 1. Histogram.
    let mut counts = [0usize; BUCKETS];
    for t in tuples.iter() {
        counts[shift.bucket(t.key, RADIX_BITS)] += 1;
    }
    // 2. Boundaries (exclusive prefix sums).
    let mut bounds = vec![0usize; BUCKETS + 1];
    for b in 0..BUCKETS {
        bounds[b + 1] = bounds[b] + counts[b];
    }
    // 3. In-place cycle-leader permutation (American-flag style):
    // `heads[b]` is the next write position of bucket `b`. A displaced
    // element is carried in a register and follows its cycle — one read
    // and one write per element instead of a full `swap` (two of each),
    // which matters because every hop is a cache miss at scale.
    let mut heads: Vec<usize> = bounds[..BUCKETS].to_vec();
    for b in 0..BUCKETS {
        let end = bounds[b + 1];
        while heads[b] < end {
            let cursor = heads[b];
            let mut carried = tuples[cursor];
            let mut target = shift.bucket(carried.key, RADIX_BITS);
            if target == b {
                heads[b] += 1;
                continue;
            }
            // Follow the displacement cycle until an element belonging
            // to bucket `b` lands in the cursor slot.
            loop {
                let dest = heads[target];
                heads[target] += 1;
                std::mem::swap(&mut carried, &mut tuples[dest]);
                target = shift.bucket(carried.key, RADIX_BITS);
                if target == b {
                    tuples[cursor] = carried;
                    heads[b] += 1;
                    break;
                }
            }
        }
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64) -> Vec<Tuple> {
        let mut state = seed | 1;
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                Tuple::new(state >> 32, i as u64)
            })
            .collect()
    }

    fn assert_is_radix_partitioned(tuples: &[Tuple], bounds: &[usize], shift: RadixShift) {
        assert_eq!(bounds.len(), BUCKETS + 1);
        assert_eq!(bounds[BUCKETS], tuples.len());
        for b in 0..BUCKETS {
            for t in &tuples[bounds[b]..bounds[b + 1]] {
                assert_eq!(shift.bucket(t.key, RADIX_BITS), b, "tuple in wrong bucket");
            }
        }
    }

    #[test]
    fn partitions_respect_buckets() {
        let mut data = pseudo_random(10_000, 21);
        let (min, max) = key_range(&data).unwrap();
        let shift = RadixShift::for_range(min, max, RADIX_BITS);
        let bounds = msd_radix_partition(&mut data);
        assert_is_radix_partitioned(&data, &bounds, shift);
    }

    #[test]
    fn buckets_are_key_ordered() {
        let mut data = pseudo_random(10_000, 23);
        let bounds = msd_radix_partition(&mut data);
        // Max key of bucket b must not exceed min key of any later bucket.
        let mut prev_max = None;
        for b in 0..BUCKETS {
            let bucket = &data[bounds[b]..bounds[b + 1]];
            if bucket.is_empty() {
                continue;
            }
            let min = bucket.iter().map(|t| t.key).min().unwrap();
            let max = bucket.iter().map(|t| t.key).max().unwrap();
            if let Some(pm) = prev_max {
                assert!(min >= pm, "bucket order violated");
            }
            prev_max = Some(max);
        }
    }

    #[test]
    fn permutation_preserves_multiset() {
        let mut data = pseudo_random(5_000, 27);
        let mut before: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
        msd_radix_partition(&mut data);
        let mut after: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn empty_input() {
        let bounds = msd_radix_partition(&mut []);
        assert_eq!(bounds, vec![0; BUCKETS + 1]);
    }

    #[test]
    fn all_equal_keys_land_in_one_bucket() {
        let mut data: Vec<Tuple> = (0..100).map(|i| Tuple::new(7, i)).collect();
        let bounds = msd_radix_partition(&mut data);
        let non_empty: Vec<usize> = (0..BUCKETS).filter(|&b| bounds[b + 1] > bounds[b]).collect();
        assert_eq!(non_empty.len(), 1);
    }

    #[test]
    fn narrow_range_spreads_over_buckets() {
        // Keys 0..=255 with bits=8 should occupy 256 distinct buckets.
        let mut data: Vec<Tuple> = (0..256u64).rev().map(|k| Tuple::new(k, 0)).collect();
        let bounds = msd_radix_partition(&mut data);
        let non_empty = (0..BUCKETS).filter(|&b| bounds[b + 1] > bounds[b]).count();
        assert_eq!(non_empty, 256);
        // And the pass alone fully sorts this input.
        assert!(crate::tuple::is_key_sorted(&data));
    }

    #[test]
    fn shift_for_range_clamps_top_bucket() {
        // A span that is not a power of two must still map max into the
        // last bucket, not beyond.
        let shift = RadixShift::for_range(10, 300, RADIX_BITS);
        assert!(shift.bucket(300, RADIX_BITS) < BUCKETS);
        assert_eq!(shift.bucket(10, RADIX_BITS), 0);
    }

    #[test]
    fn shift_for_single_key_range() {
        let shift = RadixShift::for_range(42, 42, RADIX_BITS);
        assert_eq!(shift.bucket(42, RADIX_BITS), 0);
    }

    #[test]
    fn single_key_domain_routes_everything_to_bucket_zero() {
        // The degenerate min == max early-out: stray keys above the base
        // must land in bucket 0, not be funneled into the top bucket by
        // the clamp.
        let shift = RadixShift::for_range(42, 42, RADIX_BITS);
        assert_eq!(shift.shift, 63);
        for key in [42u64, 43, 1000, 1 << 40, (1 << 62) + 41] {
            assert_eq!(shift.bucket(key, RADIX_BITS), 0, "key {key}");
        }
        // A partition pass over an all-equal slice stays a no-op.
        let mut data: Vec<Tuple> = (0..200).map(|i| Tuple::new(42, i)).collect();
        let before = data.clone();
        let bounds = msd_radix_partition(&mut data);
        assert_eq!(data, before);
        assert_eq!(bounds[1] - bounds[0], 200, "all tuples in bucket 0");
    }

    #[test]
    fn full_domain_shift() {
        let shift = RadixShift::for_range(0, u64::MAX, RADIX_BITS);
        assert_eq!(shift.shift, 56);
        assert_eq!(shift.bucket(u64::MAX, RADIX_BITS), BUCKETS - 1);
        assert_eq!(shift.bucket(0, RADIX_BITS), 0);
    }
}
