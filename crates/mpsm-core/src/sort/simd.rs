//! Feature-gated AVX2 bitonic network — the paper's §6 outlook made
//! concrete.
//!
//! Enabled with `--features simd-sort` on x86_64; everywhere else (and
//! on CPUs without AVX2, detected at runtime) [`bitonic_sort_simd`]
//! transparently falls back to the branch-free scalar network in
//! [`super::bitonic`], so `SortKernel::Simd` is always *correct*, just
//! not always *vector*.
//!
//! Shape of the vector path:
//!
//! 1. **SoA staging.** Keys and payloads are split into two `u64`
//!    arrays in the per-worker [`SortScratch`] (padded to a power of
//!    two with `u64::MAX` sentinels). AoS tuples would waste half of
//!    every 256-bit lane load on payloads that the comparison never
//!    looks at.
//! 2. **Vector compare-exchange.** Network stages with stride `j ≥ 4`
//!    compare four key lanes at a time. AVX2 has no unsigned 64-bit
//!    compare, so keys are sign-flipped (`x ^ 1<<63`) and compared with
//!    `_mm256_cmpgt_epi64`; the resulting lane mask drives
//!    `_mm256_blendv_epi8` selects on the key vectors *and* the payload
//!    vectors, so payloads permute alongside their keys. Strides `j < 4`
//!    (the last two substages of every merge) exchange within a 4-lane
//!    group; those run branch-free scalar on the SoA arrays.
//! 3. **Accounted un-padding.** Copy-back drops exactly `pad`
//!    sentinel-valued lanes from the tail — same bookkeeping as the
//!    scalar path, so real `u64::MAX`-keyed tuples keep their payloads.
//!
//! The dispatcher caches `is_x86_feature_detected!("avx2")` in a
//! `OnceLock`, so the hot path costs one relaxed load.

use crate::sort::bitonic::{self, SortScratch};
use crate::tuple::Tuple;

/// Whether the vector path is compiled in *and* this CPU has AVX2.
/// When false, [`bitonic_sort_simd`] is the scalar network (still
/// correct); the auto-tune sweep skips the `Simd` column entirely.
pub fn simd_active() -> bool {
    #[cfg(all(feature = "simd-sort", target_arch = "x86_64"))]
    {
        avx2::available()
    }
    #[cfg(not(all(feature = "simd-sort", target_arch = "x86_64")))]
    {
        false
    }
}

/// Sort any slice with the AVX2 network when active, else the scalar
/// branch-free network. Uses `scratch` for SoA staging / padding; no
/// allocation after the scratch has grown once.
pub fn bitonic_sort_simd(tuples: &mut [Tuple], scratch: &mut SortScratch) {
    #[cfg(all(feature = "simd-sort", target_arch = "x86_64"))]
    {
        if avx2::available() {
            avx2::sort(tuples, scratch);
            return;
        }
    }
    bitonic::bitonic_sort_with(tuples, scratch);
}

#[cfg(all(feature = "simd-sort", target_arch = "x86_64"))]
mod avx2 {
    use std::arch::x86_64::{
        __m256i, _mm256_blendv_epi8, _mm256_cmpgt_epi64, _mm256_loadu_si256, _mm256_set1_epi64x,
        _mm256_storeu_si256, _mm256_xor_si256,
    };
    use std::sync::OnceLock;

    use super::{SortScratch, Tuple};

    pub(super) fn available() -> bool {
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }

    pub(super) fn sort(tuples: &mut [Tuple], scratch: &mut SortScratch) {
        let n = tuples.len();
        if n < 2 {
            return;
        }
        // Leaf sizes — every block the tuner sweeps — stage through
        // fixed-size stack SoA arrays: no heap traffic, and the
        // compiler sees the lane count. Larger inputs use the growable
        // scratch.
        match n {
            2..=16 => soa_leaf::<16>(tuples),
            17..=32 => soa_leaf::<32>(tuples),
            33..=64 => soa_leaf::<64>(tuples),
            65..=128 => soa_leaf::<128>(tuples),
            _ => {
                let padded = n.next_power_of_two();
                scratch.keys.clear();
                scratch.keys.reserve(padded);
                scratch.payloads.clear();
                scratch.payloads.reserve(padded);
                for t in tuples.iter() {
                    scratch.keys.push(t.key);
                    scratch.payloads.push(t.payload);
                }
                scratch.keys.resize(padded, u64::MAX);
                scratch.payloads.resize(padded, u64::MAX);
                // SAFETY: `available()` was checked by the dispatcher.
                unsafe { network(&mut scratch.keys, &mut scratch.payloads) };
                unpad_soa(&scratch.keys, &scratch.payloads, tuples, padded - n);
            }
        }
    }

    #[inline]
    fn soa_leaf<const N: usize>(tuples: &mut [Tuple]) {
        let n = tuples.len();
        debug_assert!(n <= N && N.is_power_of_two());
        let mut keys = [u64::MAX; N];
        let mut payloads = [u64::MAX; N];
        for (i, t) in tuples.iter().enumerate() {
            keys[i] = t.key;
            payloads[i] = t.payload;
        }
        // SAFETY: `available()` was checked by the dispatcher.
        unsafe { network(&mut keys, &mut payloads) };
        if n == N || keys[n - 1] != u64::MAX {
            // No sentinel can sit in the kept prefix (see the scalar
            // `network_leaf` for the argument); truncating copy.
            for i in 0..n {
                tuples[i] = Tuple::new(keys[i], payloads[i]);
            }
        } else {
            unpad_soa(&keys, &payloads, tuples, N - n);
        }
    }

    /// Accounted un-padding over SoA lanes, same bookkeeping as the
    /// scalar path: drop exactly `pad` sentinel-valued lanes from the
    /// tail so real `u64::MAX`-keyed tuples keep their payloads.
    fn unpad_soa(keys: &[u64], payloads: &[u64], out: &mut [Tuple], pad: usize) {
        let mut removed = 0usize;
        let mut write = out.len();
        for idx in (0..keys.len()).rev() {
            let (k, p) = (keys[idx], payloads[idx]);
            if removed < pad && k == u64::MAX && p == u64::MAX {
                removed += 1;
                continue;
            }
            write -= 1;
            out[write] = Tuple::new(k, p);
        }
        debug_assert_eq!(removed, pad, "network lost a padding sentinel");
        debug_assert_eq!(write, 0);
    }

    /// The full bitonic schedule over SoA lanes. Strides `j ≥ 4` run
    /// vectorized (the partner lane group `i ^ j` is then a disjoint
    /// aligned group, and the direction bit `i & k` is constant across
    /// the four lanes because `k > j ≥ 4`); strides `j < 4` exchange
    /// within a 4-lane group and run branch-free scalar.
    #[target_feature(enable = "avx2")]
    unsafe fn network(keys: &mut [u64], payloads: &mut [u64]) {
        let n = keys.len();
        debug_assert!(n.is_power_of_two());
        debug_assert_eq!(payloads.len(), n);
        let sign = _mm256_set1_epi64x(i64::MIN);
        let kp = keys.as_mut_ptr();
        let pp = payloads.as_mut_ptr();
        let mut k = 2usize;
        while k <= n {
            let mut j = k / 2;
            while j > 0 {
                if j >= 4 {
                    let mut i = 0usize;
                    while i < n {
                        if i & j != 0 {
                            // Upper half of a `j`-block: partners were
                            // already handled from the lower half.
                            i += j;
                            continue;
                        }
                        let up = (i & k) == 0;
                        let a = _mm256_loadu_si256(kp.add(i) as *const __m256i);
                        let b = _mm256_loadu_si256(kp.add(i + j) as *const __m256i);
                        let pa = _mm256_loadu_si256(pp.add(i) as *const __m256i);
                        let pb = _mm256_loadu_si256(pp.add(i + j) as *const __m256i);
                        // Unsigned compare via sign-flip; `m` selects the
                        // lanes where the pair is out of order for this
                        // direction.
                        let ax = _mm256_xor_si256(a, sign);
                        let bx = _mm256_xor_si256(b, sign);
                        let m = if up {
                            _mm256_cmpgt_epi64(ax, bx)
                        } else {
                            _mm256_cmpgt_epi64(bx, ax)
                        };
                        _mm256_storeu_si256(kp.add(i) as *mut __m256i, _mm256_blendv_epi8(a, b, m));
                        _mm256_storeu_si256(
                            kp.add(i + j) as *mut __m256i,
                            _mm256_blendv_epi8(b, a, m),
                        );
                        _mm256_storeu_si256(
                            pp.add(i) as *mut __m256i,
                            _mm256_blendv_epi8(pa, pb, m),
                        );
                        _mm256_storeu_si256(
                            pp.add(i + j) as *mut __m256i,
                            _mm256_blendv_epi8(pb, pa, m),
                        );
                        i += 4;
                    }
                } else {
                    for i in 0..n {
                        let l = i ^ j;
                        if l > i {
                            let up = (i & k) == 0;
                            let (ka, kb) = (keys[i], keys[l]);
                            let m = (((ka > kb) == up) as u64).wrapping_neg();
                            keys[i] = (ka & !m) | (kb & m);
                            keys[l] = (kb & !m) | (ka & m);
                            let (pa, pb) = (payloads[i], payloads[l]);
                            payloads[i] = (pa & !m) | (pb & m);
                            payloads[l] = (pb & !m) | (pa & m);
                        }
                    }
                }
                j /= 2;
            }
            k *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::is_key_sorted;

    fn pseudo_random(n: usize, seed: u64) -> Vec<Tuple> {
        let mut state = seed | 1;
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                Tuple::new(state >> 32, i as u64)
            })
            .collect()
    }

    #[test]
    fn simd_path_sorts_and_preserves_payloads() {
        let mut scratch = SortScratch::new();
        for n in [0usize, 1, 2, 3, 4, 7, 8, 15, 16, 17, 31, 32, 33, 100, 127, 128, 1000] {
            let mut data = pseudo_random(n, n as u64 + 11);
            let mut expected: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
            expected.sort_unstable();
            bitonic_sort_simd(&mut data, &mut scratch);
            assert!(is_key_sorted(&data), "size {n}");
            let mut got: Vec<(u64, u64)> = data.iter().map(|t| (t.key, t.payload)).collect();
            got.sort_unstable();
            assert_eq!(got, expected, "size {n}: multiset must survive");
        }
    }

    #[test]
    fn simd_path_max_keyed_padding_regression() {
        // Same regression as the scalar network: real u64::MAX-keyed
        // tuples must keep their payloads through the padded copy-back.
        let mut scratch = SortScratch::new();
        for n in [3usize, 5, 7, 11, 21, 33] {
            let mut data: Vec<Tuple> = (0..n as u64).map(|i| Tuple::new(u64::MAX, i)).collect();
            bitonic_sort_simd(&mut data, &mut scratch);
            let mut payloads: Vec<u64> = data.iter().map(|t| t.payload).collect();
            payloads.sort_unstable();
            assert_eq!(payloads, (0..n as u64).collect::<Vec<_>>(), "size {n}");
        }
    }

    #[test]
    fn simd_agrees_with_scalar_network() {
        let mut scratch = SortScratch::new();
        for seed in [1u64, 9, 77] {
            let mut a = pseudo_random(257, seed);
            let mut b = a.clone();
            bitonic_sort_simd(&mut a, &mut scratch);
            bitonic::bitonic_sort(&mut b);
            assert_eq!(
                a.iter().map(|t| t.key).collect::<Vec<_>>(),
                b.iter().map(|t| t.key).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn simd_active_is_consistent_with_the_feature_gate() {
        #[cfg(not(all(feature = "simd-sort", target_arch = "x86_64")))]
        assert!(!simd_active(), "vector path must report inactive when gated off");
        // With the feature on, activity depends on runtime CPU support;
        // either answer is legal, the sort above proves correctness.
        let _ = simd_active();
    }
}
