//! Sort-kernel registry and per-machine tuning.
//!
//! The paper's sort is the dominant phase of every MPSM variant, and the
//! best finishing kernel for cache-resident radix buckets is a property
//! of the *machine* (branch-predictor quality, SIMD width, cache
//! latencies), not of the algorithm. This module makes the choice a
//! first-class, observable decision instead of a hard-coded constant:
//!
//! * [`SortKernel`] enumerates the finishing kernels wired into
//!   `finish_bucket` ([`super::three_phase_sort_tuned`]);
//! * [`SortTuning`] bundles a kernel with its network block threshold
//!   and records where the choice came from ([`TuningSource`]), which
//!   EXPLAIN surfaces per query;
//! * [`SortTuning::auto_tune`] runs a deterministic microbench sweep
//!   over kernel × block candidates and picks the winner for this
//!   machine — the fixed [`SortTuning::DEFAULT`] keeps tests
//!   deterministic unless a caller explicitly opts in.
//!
//! The process-wide default used by the classic entry points
//! ([`super::three_phase_sort`]) is [`SortTuning::current`]; executor
//! paths carry a `SortTuning` on their `ExecContext` instead so that
//! concurrent sessions with different tunings cannot interfere.

use std::sync::OnceLock;
use std::time::Instant;

use crate::sort::bitonic::SortScratch;
use crate::sort::{simd, INSERTION_CUTOFF};
use crate::tuple::Tuple;

/// The finishing kernel applied to cache-resident radix buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortKernel {
    /// The paper's literal phase 2+3: depth-limited quicksort to the
    /// insertion cutoff, then an insertion pass (PR 2 behaviour).
    IntrosortInsertion,
    /// Branch-free scalar sorting network on blocks ≤ the tuning's
    /// `block` threshold, reached via the same depth-limited quicksort.
    Bitonic,
    /// Feature-gated AVX2 network that compare-exchanges key lanes in
    /// SoA staging and moves payloads alongside. Falls back to
    /// [`SortKernel::Bitonic`] when the `simd-sort` feature is off or
    /// the CPU lacks AVX2 — always correct, never required.
    Simd,
}

impl SortKernel {
    /// Every kernel, in registry order (stable for benches and docs).
    pub const ALL: [SortKernel; 3] =
        [SortKernel::IntrosortInsertion, SortKernel::Bitonic, SortKernel::Simd];

    /// Stable snake_case identifier (bench JSON, EXPLAIN).
    pub fn name(self) -> &'static str {
        match self {
            SortKernel::IntrosortInsertion => "introsort_insertion",
            SortKernel::Bitonic => "bitonic",
            SortKernel::Simd => "simd",
        }
    }
}

/// Where a [`SortTuning`] came from — surfaced in EXPLAIN so a plan
/// reader can tell a tuned machine from the deterministic default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuningSource {
    /// The fixed, deterministic default ([`SortTuning::DEFAULT`]).
    Default,
    /// Chosen by the [`SortTuning::auto_tune`] microbench sweep.
    AutoTuned,
    /// Supplied explicitly by the caller.
    Explicit,
}

impl TuningSource {
    /// Stable label (EXPLAIN, bench JSON).
    pub fn label(self) -> &'static str {
        match self {
            TuningSource::Default => "default",
            TuningSource::AutoTuned => "auto-tuned",
            TuningSource::Explicit => "explicit",
        }
    }
}

/// Kernel choice plus the block threshold at which the quicksort
/// recursion hands a partition to the sorting network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortTuning {
    /// The finishing kernel for cache-resident buckets.
    pub kernel: SortKernel,
    /// Partitions at or below this size go to the network (ignored by
    /// [`SortKernel::IntrosortInsertion`], which uses the paper's
    /// insertion cutoff).
    pub block: usize,
    /// Issue software-prefetch hints in the radix permutation loop.
    /// A per-machine property: the displacement chain is serially
    /// dependent, so the hint leads its use by only one hop — on cores
    /// where that lead time beats the extra issue slots it wins, on
    /// others it is a measured loss. Swept by [`SortTuning::auto_tune`];
    /// off in the deterministic default.
    pub prefetch: bool,
    /// Provenance of this tuning, for EXPLAIN.
    pub source: TuningSource,
}

/// Block-threshold candidates swept by [`SortTuning::auto_tune`].
pub const BLOCK_CANDIDATES: [usize; 4] = [16, 32, 64, 128];

/// Tuples sorted per candidate by the auto-tune sweep (large enough to
/// exercise the radix pass and realistic bucket shapes, small enough to
/// keep the sweep under ~1 s even on a 1-vCPU box).
pub const AUTO_TUNE_TUPLES: usize = 1 << 18;

static INSTALLED: OnceLock<SortTuning> = OnceLock::new();

impl SortTuning {
    /// The fixed deterministic default: the branch-free scalar network
    /// with a 64-tuple block. Chosen over the PR 2 introsort+insertion
    /// finisher by the BENCH_7 ablation matrix; kept fixed (rather than
    /// auto-tuned at startup) so test runs are reproducible.
    pub const DEFAULT: SortTuning = SortTuning {
        kernel: SortKernel::Bitonic,
        block: 64,
        prefetch: false,
        source: TuningSource::Default,
    };

    /// An explicit tuning (marked [`TuningSource::Explicit`], prefetch
    /// off — opt in with [`SortTuning::with_prefetch`]).
    pub fn new(kernel: SortKernel, block: usize) -> Self {
        SortTuning {
            kernel,
            block: block.clamp(2, 4096),
            prefetch: false,
            source: TuningSource::Explicit,
        }
    }

    /// This tuning with the radix-permutation prefetch knob set.
    pub fn with_prefetch(self, prefetch: bool) -> Self {
        SortTuning { prefetch, ..self }
    }

    /// The process-wide tuning: whatever was [`SortTuning::install`]ed,
    /// else [`SortTuning::DEFAULT`]. Classic (non-`ExecContext`) entry
    /// points such as [`super::three_phase_sort`] read this.
    pub fn current() -> SortTuning {
        *INSTALLED.get().unwrap_or(&SortTuning::DEFAULT)
    }

    /// Install a process-wide tuning (first install wins; later calls
    /// are no-ops). Returns the tuning actually in effect. Intended for
    /// binaries and the scheduler's opt-in auto-tune knob — tests rely
    /// on nobody installing implicitly.
    pub fn install(self) -> SortTuning {
        *INSTALLED.get_or_init(|| self)
    }

    /// One-line EXPLAIN/bench label, e.g. `bitonic, block=64, default`.
    pub fn describe(&self) -> String {
        let pf = if self.prefetch { ", prefetch" } else { "" };
        match self.kernel {
            SortKernel::IntrosortInsertion => format!(
                "{}, cutoff={}{pf}, {}",
                self.kernel.name(),
                INSERTION_CUTOFF,
                self.source.label()
            ),
            _ => {
                format!("{}, block={}{pf}, {}", self.kernel.name(), self.block, self.source.label())
            }
        }
    }

    /// Microbench sweep over kernel × block candidates on deterministic
    /// pseudo-random data; returns the fastest candidate (marked
    /// [`TuningSource::AutoTuned`]). The [`SortKernel::Simd`] column is
    /// swept only when the gated path is actually active
    /// ([`simd::simd_active`]) — otherwise it would just re-measure the
    /// scalar fallback.
    pub fn auto_tune() -> SortTuning {
        let sweep = Self::sweep(AUTO_TUNE_TUPLES);
        let mut best = sweep[0];
        for &(t, ns) in &sweep[1..] {
            if ns < best.1 {
                best = (t, ns);
            }
        }
        SortTuning { source: TuningSource::AutoTuned, ..best.0 }
    }

    /// The raw sweep behind [`SortTuning::auto_tune`]: every candidate
    /// with its measured ns/tuple over `n` deterministic pseudo-random
    /// tuples. Candidates are timed **interleaved** (round-robin across
    /// repetitions, median per candidate) so machine-wide drift — the
    /// dominant error source on shared/virtualized boxes — hits every
    /// candidate equally instead of biasing whichever ran during a
    /// quiet window. Exposed so the bench harness can record the full
    /// matrix.
    pub fn sweep(n: usize) -> Vec<(SortTuning, f64)> {
        const REPS: usize = 5;
        let master = sweep_data(n);
        let mut candidates =
            vec![SortTuning::new(SortKernel::IntrosortInsertion, INSERTION_CUTOFF)];
        for &block in &BLOCK_CANDIDATES {
            candidates.push(SortTuning::new(SortKernel::Bitonic, block));
        }
        if simd::simd_active() {
            for &block in &BLOCK_CANDIDATES {
                candidates.push(SortTuning::new(SortKernel::Simd, block));
            }
        }
        // The prefetch knob is a second sweep axis: every candidate gets
        // a prefetch twin, so machines where the hint helps pick it up
        // and machines where it costs (serial displacement chain) don't.
        let twins: Vec<SortTuning> = candidates.iter().map(|t| t.with_prefetch(true)).collect();
        candidates.extend(twins);
        let mut scratch = SortScratch::new();
        let mut samples = vec![Vec::with_capacity(REPS); candidates.len()];
        for rep in 0..=REPS {
            for (c, t) in candidates.iter().enumerate() {
                let mut data = master.clone();
                let start = Instant::now();
                super::three_phase_sort_tuned(&mut data, t, &mut scratch);
                let ns = start.elapsed().as_nanos() as f64 / n.max(1) as f64;
                if rep > 0 {
                    samples[c].push(ns); // round 0 is warmup
                }
            }
        }
        candidates
            .into_iter()
            .zip(samples)
            .map(|(t, s)| {
                // Minimum, not median: scheduling noise on a shared box
                // only ever *adds* time, so the fastest repetition is
                // the least-contaminated estimate of the kernel itself.
                (t, s.into_iter().fold(f64::INFINITY, f64::min))
            })
            .collect()
    }
}

/// Deterministic pseudo-random sweep input (same LCG as the test
/// suites, so the sweep is reproducible on a given machine).
fn sweep_data(n: usize) -> Vec<Tuple> {
    let mut state = 0x5EED_0007u64;
    (0..n)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            Tuple::new(state >> 32, i as u64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::is_key_sorted;

    #[test]
    fn default_is_fixed_and_scalar() {
        let t = SortTuning::DEFAULT;
        assert_eq!(t.kernel, SortKernel::Bitonic);
        assert_eq!(t.source, TuningSource::Default);
        assert_eq!(t.describe(), "bitonic, block=64, default");
    }

    #[test]
    fn explicit_tuning_clamps_block() {
        assert_eq!(SortTuning::new(SortKernel::Bitonic, 0).block, 2);
        assert_eq!(SortTuning::new(SortKernel::Bitonic, 1 << 20).block, 4096);
        assert_eq!(SortTuning::new(SortKernel::Bitonic, 48).source, TuningSource::Explicit);
    }

    #[test]
    fn kernel_names_are_stable() {
        let names: Vec<&str> = SortKernel::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["introsort_insertion", "bitonic", "simd"]);
    }

    #[test]
    fn sweep_measures_every_candidate_and_sorts_correctly() {
        // Small n keeps this test cheap; the sweep itself must produce
        // finite timings for every candidate.
        let sweep = SortTuning::sweep(4096);
        assert!(sweep.len() >= 5, "introsort + 4 bitonic blocks at minimum");
        for (t, ns) in &sweep {
            assert!(ns.is_finite() && *ns >= 0.0, "{}: non-finite timing", t.describe());
        }
        // And the winning tuning actually sorts.
        let tuned = SortTuning::auto_tune();
        assert_eq!(tuned.source, TuningSource::AutoTuned);
        let mut data = sweep_data(10_000);
        let mut scratch = SortScratch::new();
        crate::sort::three_phase_sort_tuned(&mut data, &tuned, &mut scratch);
        assert!(is_key_sorted(&data));
    }

    #[test]
    fn current_without_install_is_the_default() {
        // Nothing in the test binary installs a global tuning, so the
        // classic entry points must see the deterministic default.
        assert_eq!(SortTuning::current(), SortTuning::DEFAULT);
    }
}
