//! Cost-balanced splitter computation (§4.2–§4.3, Figure 10).
//!
//! Given the global radix histogram of the private input `R` (phase 2.2)
//! and the CDF of the public input `S` (phase 2.1), choose partition
//! bounds — *splitters* — that balance the per-worker
//!
//! ```text
//! split-relevant-cost_i =  |R_i| · log2(|R_i|)          (sort chunk R_i)
//!                        + T · |R_i|                    (process run R_i)
//!                        + CDF(R_i.high) − CDF(R_i.low) (relevant S data)
//! ```
//!
//! We minimize the *maximum* cost over all workers, the objective the
//! paper states ("we determine the partition bounds such that they
//! minimize the biggest cost split-relevant-cost_i"), with the classic
//! bottleneck trick the paper attributes to Ross & Cieslewicz \[23\]:
//! binary-search the bottleneck value and greedily check feasibility.
//! Splitters live on radix-bucket boundaries ("the boundaries are
//! determined at the radix granularity of R's histograms").

use crate::cdf::Cdf;
use crate::histogram::RadixDomain;

/// A bucket→partition assignment: monotone, `assignment[b]` is the
/// partition of radix bucket `b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Splitters {
    assignment: Vec<u32>,
    parts: usize,
}

impl Splitters {
    /// Build from an explicit assignment vector (must be monotone,
    /// starting at 0, with no gaps).
    pub fn from_assignment(assignment: Vec<u32>, parts: usize) -> Self {
        debug_assert!(assignment.windows(2).all(|w| w[0] <= w[1]), "assignment must be monotone");
        // Hard invariant (not just a debug check): the write-combining
        // scatter elides bounds checks on the strength of every
        // assignment value being a valid partition index.
        assert!(
            assignment.iter().all(|&p| (p as usize) < parts),
            "assignment values must be < parts"
        );
        Splitters { assignment, parts }
    }

    /// Partition of radix bucket `b`.
    #[inline]
    pub fn partition_of_bucket(&self, b: usize) -> usize {
        self.assignment[b] as usize
    }

    /// Number of target partitions.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The raw assignment vector (bucket → partition).
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The bucket range `[lo, hi)` assigned to partition `p`.
    pub fn bucket_range(&self, p: usize) -> std::ops::Range<usize> {
        let lo = self.assignment.partition_point(|&a| (a as usize) < p);
        let hi = self.assignment.partition_point(|&a| (a as usize) <= p);
        lo..hi
    }

    /// The key range `[low, high)` of partition `p` under `domain`.
    pub fn key_range(&self, p: usize, domain: &RadixDomain) -> (u64, u64) {
        let r = self.bucket_range(p);
        if r.is_empty() {
            return (0, 0);
        }
        (domain.bucket_lower_bound(r.start), domain.bucket_upper_bound(r.end - 1))
    }
}

/// The paper's per-partition cost: sort + own-run processing + relevant
/// S data (all in tuple units; `log2` of an empty/1-tuple chunk is 0).
pub fn split_relevant_cost(r_count: f64, s_count: f64, threads: usize) -> f64 {
    let sort = if r_count > 1.0 { r_count * r_count.log2() } else { 0.0 };
    sort + threads as f64 * r_count + s_count
}

/// Compute cost-balanced splitters from the global R histogram and the
/// S CDF (P-MPSM phase 2.3).
pub fn compute_splitters(
    r_hist: &[usize],
    domain: &RadixDomain,
    cdf: &Cdf,
    parts: usize,
) -> Splitters {
    assert_eq!(r_hist.len(), domain.buckets(), "histogram width must match domain");
    assert!(parts > 0);
    let buckets = r_hist.len();

    // Per-bucket (r_count, s_estimate) — s via CDF probes at the bucket's
    // radix bounds, as in Figure 10.
    let bucket_cost: Vec<(f64, f64)> = (0..buckets)
        .map(|b| {
            let r = r_hist[b] as f64;
            let s = cdf
                .estimate_range(domain.bucket_lower_bound(b), domain.bucket_upper_bound(b))
                .max(0.0);
            (r, s)
        })
        .collect();

    // Feasibility: can the buckets be cut into ≤ `parts` contiguous
    // groups, each with cost ≤ limit?
    let groups_needed = |limit: f64| -> usize {
        let mut groups = 1usize;
        let mut r_acc = 0.0;
        let mut s_acc = 0.0;
        for &(r, s) in &bucket_cost {
            let cost = split_relevant_cost(r_acc + r, s_acc + s, parts);
            if cost > limit && (r_acc > 0.0 || s_acc > 0.0) {
                groups += 1;
                r_acc = r;
                s_acc = s;
            } else {
                r_acc += r;
                s_acc += s;
            }
        }
        groups
    };

    // Bottleneck binary search between "largest single bucket" and
    // "everything in one partition".
    let total_r: f64 = bucket_cost.iter().map(|c| c.0).sum();
    let total_s: f64 = bucket_cost.iter().map(|c| c.1).sum();
    let mut hi = split_relevant_cost(total_r, total_s, parts);
    let mut lo =
        bucket_cost.iter().map(|&(r, s)| split_relevant_cost(r, s, parts)).fold(0.0f64, f64::max);
    for _ in 0..64 {
        if hi - lo <= 1.0 || (hi - lo) / hi.max(1.0) < 1e-6 {
            break;
        }
        let mid = 0.5 * (lo + hi);
        if groups_needed(mid) <= parts {
            hi = mid;
        } else {
            lo = mid;
        }
    }

    // Materialize the assignment at the feasible limit `hi`.
    let mut assignment = vec![0u32; buckets];
    let mut part = 0u32;
    let mut r_acc = 0.0;
    let mut s_acc = 0.0;
    for (b, &(r, s)) in bucket_cost.iter().enumerate() {
        let cost = split_relevant_cost(r_acc + r, s_acc + s, parts);
        if cost > hi && (r_acc > 0.0 || s_acc > 0.0) && (part as usize) < parts - 1 {
            part += 1;
            r_acc = r;
            s_acc = s;
        } else {
            r_acc += r;
            s_acc += s;
        }
        assignment[b] = part;
    }
    Splitters { assignment, parts }
}

/// Equi-height splitters balancing only `|R_i|` (ignoring S) — the
/// strawman of Figure 16a/b, used by the skew experiments to demonstrate
/// why cost-based splitters are necessary.
pub fn equi_height_splitters(r_hist: &[usize], parts: usize) -> Splitters {
    assert!(parts > 0);
    let total: usize = r_hist.iter().sum();
    let target = (total as f64 / parts as f64).max(1.0);
    let mut assignment = vec![0u32; r_hist.len()];
    let mut part = 0u32;
    let mut acc = 0usize;
    for (b, &c) in r_hist.iter().enumerate() {
        if acc as f64 + c as f64 > target * (part as f64 + 1.0)
            && acc > 0
            && (part as usize) < parts - 1
        {
            part += 1;
        }
        acc += c;
        assignment[b] = part;
    }
    Splitters { assignment, parts }
}

/// Evaluate the realized per-partition costs of an assignment (used by
/// tests and by the Figure 16 experiment to show balance).
pub fn partition_costs(
    splitters: &Splitters,
    r_hist: &[usize],
    domain: &RadixDomain,
    cdf: &Cdf,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(splitters.parts());
    for p in 0..splitters.parts() {
        let range = splitters.bucket_range(p);
        let r: usize = r_hist[range.clone()].iter().sum();
        let s = if range.is_empty() {
            0.0
        } else {
            cdf.estimate_range(
                domain.bucket_lower_bound(range.start),
                domain.bucket_upper_bound(range.end - 1),
            )
        };
        out.push(split_relevant_cost(r as f64, s, splitters.parts()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdf::equi_height_bounds;
    use crate::tuple::Tuple;

    fn uniform_cdf(n: usize, max_key: u64) -> Cdf {
        let run: Vec<Tuple> =
            (0..n).map(|i| Tuple::new(i as u64 * max_key / n as u64, 0)).collect();
        Cdf::from_local_bounds(&[(equi_height_bounds(&run, 64), n)])
    }

    #[test]
    fn uniform_inputs_give_balanced_partitions() {
        let domain = RadixDomain::from_range(0, 1023, 6); // 64 buckets
        let r_hist = vec![100usize; 64];
        let cdf = uniform_cdf(6400, 1024);
        let sp = compute_splitters(&r_hist, &domain, &cdf, 4);
        let costs = partition_costs(&sp, &r_hist, &domain, &cdf);
        let max = costs.iter().cloned().fold(0.0, f64::max);
        let min = costs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 1.5, "uniform split should be balanced: {costs:?}");
        // All four partitions used.
        assert_eq!(sp.partition_of_bucket(63), 3);
    }

    #[test]
    fn assignment_is_monotone_and_complete() {
        let domain = RadixDomain::from_range(0, 999, 5);
        let r_hist: Vec<usize> = (0..32).map(|b| (b * 7) % 50).collect();
        let cdf = uniform_cdf(1000, 1000);
        let sp = compute_splitters(&r_hist, &domain, &cdf, 8);
        assert!(sp.assignment().windows(2).all(|w| w[0] <= w[1]));
        assert!(sp.assignment().iter().all(|&p| p < 8));
    }

    #[test]
    fn skewed_r_shrinks_heavy_partitions() {
        // 80% of R mass in the top 20% of buckets.
        let buckets = 64usize;
        let mut r_hist = vec![10usize; buckets];
        for c in r_hist.iter_mut().skip(buckets * 4 / 5) {
            *c = 300;
        }
        let domain = RadixDomain::from_range(0, (buckets as u64) * 16 - 1, 6);
        let cdf = uniform_cdf(6400, (buckets as u64) * 16);
        let sp = compute_splitters(&r_hist, &domain, &cdf, 4);
        // The heavy tail must be cut into more partitions than the light
        // head: partition of the last bucket is 3, and the first
        // partition must cover many more buckets than the last.
        let first = sp.bucket_range(0).len();
        let last = sp.bucket_range(3).len();
        assert!(first > last, "light head {first} buckets vs heavy tail {last} buckets");
        let costs = partition_costs(&sp, &r_hist, &domain, &cdf);
        let max = costs.iter().cloned().fold(0.0, f64::max);
        let min = costs.iter().cloned().fold(f64::MAX, f64::min).max(1.0);
        assert!(max / min < 3.0, "cost balance under skew: {costs:?}");
    }

    #[test]
    fn negatively_correlated_skew_balances_combined_cost() {
        // Figure 16: R skewed high, S skewed low.
        let buckets = 64usize;
        let mut r_hist = vec![5usize; buckets];
        for c in r_hist.iter_mut().skip(buckets * 4 / 5) {
            *c = 400; // R mass high
        }
        // S mass low: CDF with steep start.
        let mut s_keys: Vec<Tuple> = Vec::new();
        for i in 0..8000u64 {
            s_keys.push(Tuple::new(i % 200, 0)); // low band
        }
        for i in 0..2000u64 {
            s_keys.push(Tuple::new(200 + (i % 824), 0));
        }
        s_keys.sort_unstable_by_key(|t| t.key);
        let cdf = Cdf::from_local_bounds(&[(equi_height_bounds(&s_keys, 128), s_keys.len())]);
        let domain = RadixDomain::from_range(0, 1023, 6);

        let balanced = compute_splitters(&r_hist, &domain, &cdf, 4);
        let naive = equi_height_splitters(&r_hist, 4);
        let b_costs = partition_costs(&balanced, &r_hist, &domain, &cdf);
        let n_costs = partition_costs(&naive, &r_hist, &domain, &cdf);
        let bottleneck = |c: &[f64]| c.iter().cloned().fold(0.0, f64::max);
        assert!(
            bottleneck(&b_costs) <= bottleneck(&n_costs),
            "cost-based splitters must not be worse than equi-height: {b_costs:?} vs {n_costs:?}"
        );
    }

    #[test]
    fn single_partition_takes_everything() {
        let domain = RadixDomain::from_range(0, 255, 4);
        let r_hist = vec![10usize; 16];
        let cdf = uniform_cdf(160, 256);
        let sp = compute_splitters(&r_hist, &domain, &cdf, 1);
        assert!(sp.assignment().iter().all(|&p| p == 0));
    }

    #[test]
    fn more_partitions_than_occupied_buckets() {
        let domain = RadixDomain::from_range(0, 255, 2); // 4 buckets
        let r_hist = vec![5, 0, 0, 5];
        let cdf = uniform_cdf(10, 256);
        let sp = compute_splitters(&r_hist, &domain, &cdf, 8);
        // Monotone, within range; empty partitions are fine.
        assert!(sp.assignment().windows(2).all(|w| w[0] <= w[1]));
        assert!(sp.assignment().iter().all(|&p| p < 8));
    }

    #[test]
    fn bucket_and_key_ranges_agree() {
        let domain = RadixDomain::from_range(0, 1023, 4); // 16 buckets à 64 keys
        let sp =
            Splitters::from_assignment(vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3], 4);
        assert_eq!(sp.bucket_range(1), 4..8);
        let (lo, hi) = sp.key_range(1, &domain);
        assert_eq!(lo, 4 * 64);
        assert_eq!(hi, 8 * 64);
        let (_, last_hi) = sp.key_range(3, &domain);
        assert_eq!(last_hi, u64::MAX, "top partition is open-ended");
    }

    #[test]
    fn cost_formula_matches_paper_terms() {
        // |R_i| = 8, T = 4, S range = 20:
        // 8·log2(8) + 4·8 + 20 = 24 + 32 + 20 = 76.
        assert_eq!(split_relevant_cost(8.0, 20.0, 4), 76.0);
        assert_eq!(split_relevant_cost(0.0, 0.0, 4), 0.0);
        assert_eq!(split_relevant_cost(1.0, 0.0, 4), 4.0, "log term vanishes at 1");
    }

    #[test]
    fn equi_height_balances_r_cardinality() {
        let r_hist = vec![10usize; 40];
        let sp = equi_height_splitters(&r_hist, 4);
        for p in 0..4 {
            let r: usize = r_hist[sp.bucket_range(p)].iter().sum();
            assert_eq!(r, 100, "equal R share per partition");
        }
    }
}
