//! Per-phase execution statistics.
//!
//! The paper's evaluation reports stacked per-phase bars (Figures 12–16);
//! [`JoinStats`] carries the same breakdown: per-worker wall time of each
//! of the (up to) four phases, plus total wall-clock time. Phase meaning
//! per algorithm:
//!
//! | phase | B-MPSM            | P-MPSM               | D-MPSM                |
//! |-------|-------------------|----------------------|-----------------------|
//! | 1     | sort public `S`   | sort public `S`      | sort + spool `S`      |
//! | 2     | sort private `R`  | range-partition `R`  | sort + spool `R`      |
//! | 3     | join              | sort private `R_i`   | (unused)              |
//! | 4     | (unused)          | join                 | windowed join         |

use std::time::Duration;

/// The four MPSM phases (indices into the stats arrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Phase 1 (see module table).
    One = 0,
    /// Phase 2.
    Two = 1,
    /// Phase 3.
    Three = 2,
    /// Phase 4.
    Four = 3,
}

impl Phase {
    /// All phases in order.
    pub const ALL: [Phase; 4] = [Phase::One, Phase::Two, Phase::Three, Phase::Four];
}

/// Execution statistics of one join run.
#[derive(Debug, Clone, Default)]
pub struct JoinStats {
    /// `per_worker[w][p]` = wall time worker `w` spent in phase `p`.
    pub per_worker: Vec<[Duration; 4]>,
    /// Total wall-clock time of the join (includes coordination).
    pub wall: Duration,
}

impl JoinStats {
    /// Create stats for `workers` workers.
    pub fn new(workers: usize) -> Self {
        JoinStats { per_worker: vec![[Duration::ZERO; 4]; workers], wall: Duration::ZERO }
    }

    /// Record phase durations measured for one parallel section.
    pub fn record_phase(&mut self, phase: Phase, durations: &[Duration]) {
        assert_eq!(durations.len(), self.per_worker.len(), "one duration per worker");
        for (w, d) in durations.iter().enumerate() {
            self.per_worker[w][phase as usize] += *d;
        }
    }

    /// Critical-path duration of a phase: the slowest worker (phases are
    /// barrier-separated, so this is the phase's wall contribution).
    pub fn phase_critical(&self, phase: Phase) -> Duration {
        self.per_worker.iter().map(|p| p[phase as usize]).max().unwrap_or(Duration::ZERO)
    }

    /// Phase duration in milliseconds (critical path).
    pub fn phase_ms(&self, phase: Phase) -> f64 {
        self.phase_critical(phase).as_secs_f64() * 1e3
    }

    /// All four phase durations in ms, in order.
    pub fn phases_ms(&self) -> [f64; 4] {
        [
            self.phase_ms(Phase::One),
            self.phase_ms(Phase::Two),
            self.phase_ms(Phase::Three),
            self.phase_ms(Phase::Four),
        ]
    }

    /// Total wall time in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall.as_secs_f64() * 1e3
    }

    /// Per-worker total time across phases, in ms (the bars of
    /// Figure 16b/c).
    pub fn worker_totals_ms(&self) -> Vec<f64> {
        self.per_worker.iter().map(|p| p.iter().map(|d| d.as_secs_f64() * 1e3).sum()).collect()
    }

    /// Load imbalance: slowest worker total / average worker total
    /// (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let totals = self.worker_totals_ms();
        if totals.is_empty() {
            return 1.0;
        }
        let max = totals.iter().cloned().fold(0.0, f64::max);
        let avg = totals.iter().sum::<f64>() / totals.len() as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_worker_phase_times() {
        let mut st = JoinStats::new(2);
        st.record_phase(Phase::One, &[Duration::from_millis(10), Duration::from_millis(20)]);
        st.record_phase(Phase::Four, &[Duration::from_millis(5), Duration::from_millis(1)]);
        assert_eq!(st.phase_critical(Phase::One), Duration::from_millis(20));
        assert_eq!(st.phase_critical(Phase::Four), Duration::from_millis(5));
        assert_eq!(st.phase_critical(Phase::Two), Duration::ZERO);
    }

    #[test]
    fn repeated_recording_accumulates() {
        let mut st = JoinStats::new(1);
        st.record_phase(Phase::Two, &[Duration::from_millis(3)]);
        st.record_phase(Phase::Two, &[Duration::from_millis(4)]);
        assert_eq!(st.phase_critical(Phase::Two), Duration::from_millis(7));
    }

    #[test]
    fn worker_totals_and_imbalance() {
        let mut st = JoinStats::new(2);
        st.record_phase(Phase::One, &[Duration::from_millis(10), Duration::from_millis(30)]);
        let totals = st.worker_totals_ms();
        assert_eq!(totals.len(), 2);
        assert!((totals[1] - 30.0).abs() < 1e-9);
        assert!((st.imbalance() - 1.5).abs() < 1e-9, "30 / 20 = 1.5");
    }

    #[test]
    fn empty_stats_are_balanced() {
        let st = JoinStats::new(0);
        assert_eq!(st.imbalance(), 1.0);
        assert_eq!(st.phase_ms(Phase::One), 0.0);
    }

    #[test]
    #[should_panic(expected = "one duration per worker")]
    fn mismatched_worker_count_panics() {
        let mut st = JoinStats::new(2);
        st.record_phase(Phase::One, &[Duration::ZERO]);
    }
}
