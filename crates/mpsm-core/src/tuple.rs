//! The 16-byte tuple of the paper's evaluation.
//!
//! Every benchmark in the paper joins relations of
//! `[joinkey: 64-bit, payload: 64-bit]` tuples, keys drawn from
//! `[0, 2^32)`; the payload "may represent a record ID or a data
//! pointer" (§5.1). The join algorithms in this crate are written
//! directly against this layout — the same choice the paper's C++
//! implementation makes — so the sort and merge inner loops move fixed
//! 16-byte values with no indirection.

use mpsm_storage::Record;

/// A join input tuple: 64-bit key, 64-bit payload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(C)]
pub struct Tuple {
    /// The join key.
    pub key: u64,
    /// Carried payload (record id / data pointer in the paper's setup).
    pub payload: u64,
}

impl Tuple {
    /// Construct a tuple.
    #[inline]
    pub const fn new(key: u64, payload: u64) -> Self {
        Tuple { key, payload }
    }
}

impl PartialOrd for Tuple {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    /// Tuples order by key; payload breaks ties only to make the order
    /// total (the join semantics never depend on payload order).
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.payload).cmp(&(other.key, other.payload))
    }
}

impl Record for Tuple {
    const SIZE: usize = 16;

    fn write_to(&self, buf: &mut [u8]) {
        assert_eq!(buf.len(), Self::SIZE);
        buf[..8].copy_from_slice(&self.key.to_le_bytes());
        buf[8..].copy_from_slice(&self.payload.to_le_bytes());
    }

    fn read_from(buf: &[u8]) -> Self {
        assert_eq!(buf.len(), Self::SIZE);
        Tuple {
            key: u64::from_le_bytes(buf[..8].try_into().expect("8-byte key")),
            payload: u64::from_le_bytes(buf[8..].try_into().expect("8-byte payload")),
        }
    }

    #[inline]
    fn key(&self) -> u64 {
        self.key
    }
}

/// Check that a slice is sorted by key (used in debug assertions and
/// tests throughout the crate).
pub fn is_key_sorted(tuples: &[Tuple]) -> bool {
    tuples.windows(2).all(|w| w[0].key <= w[1].key)
}

/// Minimum and maximum key of a slice, or `None` if it is empty.
pub fn key_range(tuples: &[Tuple]) -> Option<(u64, u64)> {
    let first = tuples.first()?;
    let mut min = first.key;
    let mut max = first.key;
    for t in &tuples[1..] {
        min = min.min(t.key);
        max = max.max(t.key);
    }
    Some((min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_is_16_bytes() {
        assert_eq!(std::mem::size_of::<Tuple>(), 16);
        assert_eq!(std::mem::align_of::<Tuple>(), 8);
    }

    #[test]
    fn orders_by_key_first() {
        let a = Tuple::new(1, 100);
        let b = Tuple::new(2, 0);
        assert!(a < b);
        let c = Tuple::new(1, 0);
        assert!(c < a, "payload breaks ties");
    }

    #[test]
    fn record_roundtrip() {
        let t = Tuple::new(0xfeed_face, 77);
        let mut buf = [0u8; 16];
        t.write_to(&mut buf);
        assert_eq!(Tuple::read_from(&buf), t);
        assert_eq!(Record::key(&t), 0xfeed_face);
    }

    #[test]
    fn sortedness_check() {
        assert!(is_key_sorted(&[]));
        assert!(is_key_sorted(&[Tuple::new(1, 0)]));
        assert!(is_key_sorted(&[Tuple::new(1, 9), Tuple::new(1, 0), Tuple::new(2, 0)]));
        assert!(!is_key_sorted(&[Tuple::new(2, 0), Tuple::new(1, 0)]));
    }

    #[test]
    fn key_range_of_slices() {
        assert_eq!(key_range(&[]), None);
        let ts = [Tuple::new(5, 0), Tuple::new(1, 0), Tuple::new(9, 0)];
        assert_eq!(key_range(&ts), Some((1, 9)));
    }
}
