//! Worker orchestration: chunking, phase-parallel execution, and the
//! persistent worker pool.
//!
//! MPSM assigns every worker an equal share of each input and runs the
//! four phases as parallel sections separated by barriers (the paper
//! needs only *one* real synchronization point — public runs must exist
//! before the join phase; we realize phase boundaries structurally).
//!
//! Two execution primitives are provided:
//!
//! * [`run_parallel`] / [`run_parallel_timed`] — spawn fresh scoped
//!   threads per call. Simple, but a join that runs four phases pays
//!   four rounds of thread creation and teardown. Retained as the
//!   naive path for the ablation benches and for one-shot callers.
//! * [`WorkerPool`] — spawns each worker thread **once** and parks it
//!   between phases on a condvar. All three join variants route their
//!   parallel sections through a pool, so one join run creates each
//!   worker exactly once no matter how many phases it executes
//!   (commandment C3 still holds: workers synchronize only at phase
//!   boundaries, never inside one).
//! * [`SharedWorkerPool`] — a cloneable handle that lets **many
//!   concurrent owners** (e.g. the queries of
//!   `mpsm_exec`'s scheduler) submit phases to *one* underlying
//!   [`WorkerPool`]. Submissions are serialized through a fair FIFO
//!   turnstile, so different owners' phases interleave at phase
//!   granularity instead of one owner monopolizing the workers; every
//!   served phase carries a [`PhaseTag`] naming its owner.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mpsm_numa::{CoreId, NodeId, Topology};

// ---------------------------------------------------------------------
// Worker → core → node placement
// ---------------------------------------------------------------------

/// The worker → core → node map of one execution: which (logical)
/// hardware context each pool worker is pinned to, and therefore which
/// NUMA node its local memory lives on.
///
/// On the real paper machine this would be `pthread_setaffinity_np`;
/// in the simulated substrate the placement is the ground truth the
/// access audit classifies against — a buffer is *local* to worker `w`
/// iff its home node equals `node_of(w)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPlacement {
    topology: Topology,
    cores: Vec<CoreId>,
}

impl WorkerPlacement {
    /// Pin `threads` workers round-robin across the machine's hardware
    /// contexts — worker `w` on context `w % total`. Because contexts
    /// are numbered round-robin over sockets (Figure 11), the first
    /// `nodes` workers land on distinct sockets and `threads = total
    /// contexts` covers the machine evenly; this is the scheduling the
    /// paper's scalability experiments use.
    pub fn round_robin(topology: Topology, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        let total = topology.total_contexts().max(1);
        let cores = (0..threads as u32).map(|w| CoreId(w % total)).collect();
        WorkerPlacement { topology, cores }
    }

    /// Pin every worker to contexts of a single `node` — the NUMA-affine
    /// placement a scheduler uses to keep one query's phases (and all
    /// its run storage) on one socket.
    ///
    /// # Panics
    /// Panics if `node` is outside the topology.
    pub fn on_node(topology: Topology, node: NodeId, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        assert!(node.0 < topology.nodes, "node {node} outside topology");
        // Contexts of node `n` are `n, n + nodes, n + 2·nodes, …`
        // (round-robin numbering); wrap within the node when the pool
        // is wider than one socket's contexts.
        let per_node = (topology.total_contexts() / topology.nodes).max(1);
        let cores =
            (0..threads as u32).map(|w| CoreId(node.0 + (w % per_node) * topology.nodes)).collect();
        WorkerPlacement { topology, cores }
    }

    /// Build from an explicit worker → core map.
    ///
    /// # Panics
    /// Panics if `cores` is empty or names a context outside the
    /// topology.
    pub fn from_cores(topology: Topology, cores: Vec<CoreId>) -> Self {
        assert!(!cores.is_empty(), "need at least one worker");
        for &c in &cores {
            assert!(c.0 < topology.total_contexts(), "core {c} outside topology");
        }
        WorkerPlacement { topology, cores }
    }

    /// The machine this placement maps onto.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of placed workers.
    pub fn threads(&self) -> usize {
        self.cores.len()
    }

    /// The hardware context worker `w` is pinned to.
    pub fn core_of(&self, worker: usize) -> CoreId {
        self.cores[worker]
    }

    /// The NUMA node worker `w`'s local memory lives on.
    pub fn node_of(&self, worker: usize) -> NodeId {
        self.topology.node_of(self.cores[worker])
    }

    /// The worker → core map, in worker order.
    pub fn cores(&self) -> &[CoreId] {
        &self.cores
    }

    /// If every worker sits on the same node, that node.
    pub fn single_node(&self) -> Option<NodeId> {
        let first = self.node_of(0);
        (1..self.threads()).all(|w| self.node_of(w) == first).then_some(first)
    }
}

/// Split `len` items into `parts` contiguous ranges whose sizes differ
/// by at most one (the paper's "equally sized chunks").
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "cannot chunk into zero parts");
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Run `f(worker_id)` on `threads` parallel workers, returning their
/// results in worker order. A `threads == 1` call runs inline (useful
/// for debugging and for the single-core baseline of Figure 13).
///
/// Spawns fresh OS threads on every call; phase-structured algorithms
/// should prefer a [`WorkerPool`].
pub fn run_parallel<R, F>(threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker");
    if threads == 1 {
        return vec![f(0)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let f = &f;
                scope.spawn(move || f(w))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
    })
}

/// Run `f(worker_id)`, additionally timing each worker. Returns
/// `(results, per-worker durations)`.
pub fn run_parallel_timed<R, F>(threads: usize, f: F) -> (Vec<R>, Vec<Duration>)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let pairs = run_parallel(threads, |w| {
        let start = Instant::now();
        let r = f(w);
        (r, start.elapsed())
    });
    pairs.into_iter().unzip()
}

// ---------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------

/// Type-erased pointer to the current phase closure. Only dereferenced
/// by workers between the epoch bump and the final `remaining`
/// decrement of that epoch; [`WorkerPool::run`] keeps the closure alive
/// (and does not return) until every worker has finished, so the
/// erased lifetime never outlives the borrow.
struct Job(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` and the pool's barrier protocol
// guarantees it outlives every use (see `Job` docs).
unsafe impl Send for Job {}

/// Identifies one phase served by a [`SharedWorkerPool`]: which owner
/// submitted it and its position in the pool's global service order —
/// the tag that generalizes the pool's single-owner epoch barrier to
/// multi-owner submission. Owners are handed distinct ids by their
/// scheduler (see [`SharedWorkerPool::with_owner`]); the default
/// handle submits as owner `0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTag {
    /// Caller-chosen owner id (`0` = untagged / exclusive use).
    pub owner: u64,
    /// Serial number of the phase on the serving pool (1-based).
    pub seq: u64,
}

struct PoolState {
    /// Incremented once per submitted phase; workers wake on a change.
    epoch: u64,
    /// The phase closure of the current epoch.
    job: Option<Job>,
    /// Workers that have not yet finished the current epoch.
    remaining: usize,
    /// Set when any worker's closure panicked during this epoch.
    panicked: bool,
    /// Tells parked workers to exit.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between phases.
    work_cv: Condvar,
    /// `run` parks here until `remaining` drops to zero.
    done_cv: Condvar,
}

/// Per-worker result slots. Worker `w` writes only slot `w`, and the
/// caller reads only after the phase barrier, so no per-slot locking
/// is needed.
struct Slots<R>(Vec<std::cell::UnsafeCell<Option<R>>>);
// SAFETY: disjoint index access per worker; reads happen only after
// all writers finished (enforced by the pool's done barrier).
unsafe impl<R: Send> Sync for Slots<R> {}

/// A pool of `threads` worker threads that parks between phases
/// instead of being re-spawned per parallel section.
///
/// [`WorkerPool::run`] has the same contract as [`run_parallel`] —
/// `f(worker_id)` on every worker, results in worker order, panics
/// propagated — but amortizes thread creation over the whole join. A
/// 1-thread pool spawns no OS thread at all and runs phases inline
/// (the single-core baseline of Figure 13 stays allocation-free).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Spawn a pool of `threads` parked workers.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = if threads == 1 {
            Vec::new()
        } else {
            (0..threads)
                .map(|w| {
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || worker_loop(w, &shared))
                })
                .collect()
        };
        WorkerPool { shared, handles, threads }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run one phase: `f(worker_id)` on every worker, returning results
    /// in worker order. Blocks until the whole phase finished (the
    /// phase boundary barrier). `&mut self` serializes phases at
    /// compile time — the pool runs one phase at a time by design.
    ///
    /// ```
    /// use mpsm_core::worker::WorkerPool;
    ///
    /// let mut pool = WorkerPool::new(4);
    /// // Phase 1: every worker computes its share.
    /// let squares = pool.run(|w| (w as u64) * (w as u64));
    /// assert_eq!(squares, vec![0, 1, 4, 9]);
    /// // Phase 2 reuses the same parked threads — no respawn.
    /// let sum: u64 = pool.run(|w| w as u64).iter().sum();
    /// assert_eq!(sum, 6);
    /// ```
    pub fn run<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads == 1 {
            // Inline mode: no workers, no locks — the single-core
            // baseline of Figure 13 stays synchronization-free.
            return vec![f(0)];
        }
        let slots = Slots((0..self.threads).map(|_| std::cell::UnsafeCell::new(None)).collect());
        {
            let slots = &slots;
            let f = &f;
            let call = move |w: usize| {
                let r = f(w);
                // SAFETY: worker `w` owns slot `w` for this phase.
                unsafe { *slots.0[w].get() = Some(r) };
            };
            let job: &(dyn Fn(usize) + Sync) = &call;
            // SAFETY: lifetime erasure only — `run` blocks until every
            // worker finished with the pointer (see `Job` docs).
            let job: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.job = Some(Job(job));
            st.remaining = self.threads;
            st.panicked = false;
            st.epoch += 1;
            drop(st);
            self.shared.work_cv.notify_all();

            let mut st = self.shared.state.lock().expect("pool state poisoned");
            while st.remaining > 0 {
                st = self.shared.done_cv.wait(st).expect("pool state poisoned");
            }
            st.job = None;
            if st.panicked {
                // Mirror run_parallel's message so callers see one
                // failure mode regardless of the execution primitive.
                drop(st);
                panic!("worker thread panicked");
            }
        }
        slots
            .0
            .into_iter()
            .map(|c| c.into_inner().expect("every worker must produce a result"))
            .collect()
    }

    /// Like [`WorkerPool::run`], additionally timing each worker.
    pub fn run_timed<R, F>(&mut self, f: F) -> (Vec<R>, Vec<Duration>)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let pairs = self.run(|w| {
            let start = Instant::now();
            let r = f(w);
            (r, start.elapsed())
        });
        pairs.into_iter().unzip()
    }

    /// Convert this exclusive pool into a [`SharedWorkerPool`] handle
    /// that many concurrent owners can submit phases to.
    pub fn into_shared(self) -> SharedWorkerPool {
        SharedWorkerPool::from_pool(self)
    }
}

// ---------------------------------------------------------------------
// Shared pool: many owners, one set of workers
// ---------------------------------------------------------------------

/// FIFO turnstile serializing phase submissions from many owners.
struct Turnstile {
    /// `(tickets handed out, tickets fully served)`.
    turn: Mutex<(u64, u64)>,
    cv: Condvar,
}

impl Turnstile {
    /// Draw a ticket and block until it is up. Returns the ticket
    /// number (the global phase sequence number on this pool).
    fn acquire(&self) -> u64 {
        let mut turn = self.turn.lock().expect("turnstile poisoned");
        let my = turn.0;
        turn.0 += 1;
        while turn.1 != my {
            turn = self.cv.wait(turn).expect("turnstile poisoned");
        }
        my
    }

    fn release(&self) {
        let mut turn = self.turn.lock().expect("turnstile poisoned");
        turn.1 += 1;
        drop(turn);
        self.cv.notify_all();
    }
}

/// Releases the turnstile even if the phase closure panicked, so one
/// owner's failing query cannot wedge every other owner of the pool.
struct TurnstileGuard<'a>(&'a Turnstile);

impl Drop for TurnstileGuard<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

struct SharedPoolInner {
    /// The workers. Uncontended by construction: the turnstile admits
    /// one phase at a time, so this lock never blocks. Poisoning is
    /// deliberately ignored — a panicking phase already reported its
    /// failure to its own submitter, and the pool itself survives
    /// worker panics (see `pool_propagates_worker_panics`).
    pool: Mutex<WorkerPool>,
    turnstile: Turnstile,
    /// Tag trace of served phases, when enabled (test / EXPLAIN aid).
    trace: Mutex<Option<Vec<PhaseTag>>>,
    threads: usize,
}

/// A cloneable handle submitting phases from **many concurrent owners**
/// to one [`WorkerPool`].
///
/// This is the substrate of multi-query scheduling: every clone of the
/// handle may call [`SharedWorkerPool::run`] from its own thread, and
/// the pool serves the submissions one phase at a time in FIFO arrival
/// order. Because MPSM joins are sequences of short phases, waiting
/// owners are admitted between a competitor's phases — queries
/// *interleave* on the shared workers instead of monopolizing them
/// (and the machine is never oversubscribed, however many queries are
/// in flight).
///
/// ```
/// use mpsm_core::worker::SharedWorkerPool;
///
/// let pool = SharedWorkerPool::new(4);
/// let query_a = pool.with_owner(1);
/// let query_b = pool.with_owner(2);
/// // Both handles drive the same 4 workers; phases are serialized
/// // through a fair FIFO turnstile.
/// let a: Vec<usize> = query_a.run(|w| w + 1);
/// let b: Vec<usize> = query_b.run(|w| w * 2);
/// assert_eq!(a, vec![1, 2, 3, 4]);
/// assert_eq!(b, vec![0, 2, 4, 6]);
/// assert_eq!(pool.phases_served(), 2);
/// ```
pub struct SharedWorkerPool {
    inner: Arc<SharedPoolInner>,
    owner: u64,
}

impl std::fmt::Debug for SharedWorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedWorkerPool")
            .field("threads", &self.inner.threads)
            .field("owner", &self.owner)
            .finish_non_exhaustive()
    }
}

impl Clone for SharedWorkerPool {
    fn clone(&self) -> Self {
        SharedWorkerPool { inner: Arc::clone(&self.inner), owner: self.owner }
    }
}

impl SharedWorkerPool {
    /// Spawn `threads` workers behind a fresh shared handle (owner 0).
    pub fn new(threads: usize) -> Self {
        Self::from_pool(WorkerPool::new(threads))
    }

    /// Wrap an existing pool.
    pub fn from_pool(pool: WorkerPool) -> Self {
        let threads = pool.threads();
        SharedWorkerPool {
            inner: Arc::new(SharedPoolInner {
                pool: Mutex::new(pool),
                turnstile: Turnstile { turn: Mutex::new((0, 0)), cv: Condvar::new() },
                trace: Mutex::new(None),
                threads,
            }),
            owner: 0,
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// A handle submitting phases under `owner`'s id — same workers,
    /// same turnstile; only the [`PhaseTag`]s differ. Schedulers hand
    /// one owner id per query so served phases are attributable.
    pub fn with_owner(&self, owner: u64) -> SharedWorkerPool {
        SharedWorkerPool { inner: Arc::clone(&self.inner), owner }
    }

    /// This handle's owner id.
    pub fn owner(&self) -> u64 {
        self.owner
    }

    /// Run one phase on the shared workers: `f(worker_id)` on every
    /// worker, results in worker order, panics propagated to *this*
    /// submitter only. Blocks while competitors' already-queued phases
    /// are served (FIFO).
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let seq = self.inner.turnstile.acquire();
        let _guard = TurnstileGuard(&self.inner.turnstile);
        if let Some(trace) = self.inner.trace.lock().expect("trace poisoned").as_mut() {
            trace.push(PhaseTag { owner: self.owner, seq: seq + 1 });
        }
        // Uncontended (the turnstile admitted us); ignore poisoning —
        // the pool survives worker panics by design.
        let mut pool = match self.inner.pool.lock() {
            Ok(p) => p,
            Err(poisoned) => poisoned.into_inner(),
        };
        pool.run(f)
    }

    /// Like [`SharedWorkerPool::run`], additionally timing each worker
    /// (one turnstile admission for the whole phase).
    pub fn run_timed<R, F>(&self, f: F) -> (Vec<R>, Vec<Duration>)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let pairs = self.run(|w| {
            let start = Instant::now();
            let r = f(w);
            (r, start.elapsed())
        });
        pairs.into_iter().unzip()
    }

    /// Phases fully served so far.
    pub fn phases_served(&self) -> u64 {
        self.inner.turnstile.turn.lock().expect("turnstile poisoned").1
    }

    /// Phases currently admitted or waiting at the turnstile.
    pub fn pending_phases(&self) -> u64 {
        let turn = self.inner.turnstile.turn.lock().expect("turnstile poisoned");
        turn.0 - turn.1
    }

    /// Start recording a [`PhaseTag`] per served phase (drops any
    /// previous trace).
    pub fn enable_phase_trace(&self) {
        *self.inner.trace.lock().expect("trace poisoned") = Some(Vec::new());
    }

    /// Stop tracing and return the recorded tags in service order.
    pub fn take_phase_trace(&self) -> Vec<PhaseTag> {
        self.inner.trace.lock().expect("trace poisoned").take().unwrap_or_default()
    }
}

/// Take-once cells handing *owned* per-worker values through a pool
/// phase: [`WorkerPool::run`] takes a `Fn` closure (every worker shares
/// it), so moving a distinct owned input into each worker goes through
/// one of these — worker `w` calls [`OwnedSlots::take`]`(w)` exactly
/// once.
pub struct OwnedSlots<T>(Vec<Mutex<Option<T>>>);

impl<T> OwnedSlots<T> {
    /// Wrap one slot per item, in order.
    pub fn new(items: impl IntoIterator<Item = T>) -> Self {
        OwnedSlots(items.into_iter().map(|v| Mutex::new(Some(v))).collect())
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Take slot `w`'s value. Panics if it was already taken — each
    /// slot belongs to exactly one worker for exactly one phase.
    pub fn take(&self, w: usize) -> T {
        self.0[w].lock().expect("slot poisoned").take().expect("slot taken twice")
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = match self.shared.state.lock() {
                Ok(st) => st,
                Err(poisoned) => poisoned.into_inner(),
            };
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(w: usize, shared: &PoolShared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state poisoned");
            while !st.shutdown && st.epoch == seen_epoch {
                st = shared.work_cv.wait(st).expect("pool state poisoned");
            }
            if st.shutdown {
                return;
            }
            seen_epoch = st.epoch;
            st.job.as_ref().expect("epoch bumped without a job").0
        };
        // SAFETY: `run` keeps the closure alive until `remaining`
        // reaches zero, which happens strictly after this call.
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (*job)(w) }));
        let mut st = shared.state.lock().expect("pool state poisoned");
        if outcome.is_err() {
            // The default panic hook already printed the payload on this
            // worker's stderr; the caller re-panics with the same uniform
            // message `run_parallel` uses.
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_without_overlap() {
        for len in [0usize, 1, 7, 100, 101, 103] {
            for parts in [1usize, 2, 3, 7, 32] {
                let ranges = chunk_ranges(len, parts);
                assert_eq!(ranges.len(), parts);
                let mut pos = 0;
                for r in &ranges {
                    assert_eq!(r.start, pos);
                    pos = r.end;
                }
                assert_eq!(pos, len);
            }
        }
    }

    #[test]
    fn chunk_sizes_are_balanced() {
        let ranges = chunk_ranges(10, 4);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn more_parts_than_items_yields_empty_chunks() {
        let ranges = chunk_ranges(2, 5);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![1, 1, 0, 0, 0]);
    }

    #[test]
    fn parallel_results_arrive_in_worker_order() {
        let out = run_parallel(8, |w| w * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = run_parallel(1, |w| w + 1);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn timed_variant_reports_durations() {
        let (out, times) = run_parallel_timed(4, |w| w);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(times.len(), 4);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_parts_panics() {
        let _ = chunk_ranges(10, 0);
    }

    // ---- pool ----

    #[test]
    fn pool_results_arrive_in_worker_order() {
        let mut pool = WorkerPool::new(8);
        let out = pool.run(|w| w * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn pool_reuses_the_same_threads_across_phases() {
        let mut pool = WorkerPool::new(4);
        let ids_a = pool.run(|_| std::thread::current().id());
        let ids_b = pool.run(|_| std::thread::current().id());
        let ids_c = pool.run(|_| std::thread::current().id());
        assert_eq!(ids_a, ids_b, "phase 2 must run on the same parked workers");
        assert_eq!(ids_b, ids_c, "phase 3 must run on the same parked workers");
        let distinct: std::collections::HashSet<_> = ids_a.iter().collect();
        assert_eq!(distinct.len(), 4, "each worker is its own thread");
    }

    #[test]
    fn pool_phases_can_borrow_local_state() {
        let data: Vec<u64> = (0..1000).collect();
        let mut pool = WorkerPool::new(3);
        let ranges = chunk_ranges(data.len(), 3);
        let sums = pool.run(|w| data[ranges[w].clone()].iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), 1000 * 999 / 2);
    }

    #[test]
    fn pool_of_one_runs_inline() {
        let mut pool = WorkerPool::new(1);
        let here = std::thread::current().id();
        let ids = pool.run(|_| std::thread::current().id());
        assert_eq!(ids, vec![here]);
    }

    #[test]
    fn pool_timed_reports_durations() {
        let mut pool = WorkerPool::new(4);
        let (out, times) = pool.run_timed(|w| w);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(times.len(), 4);
    }

    #[test]
    fn pool_runs_many_phases_without_respawning() {
        let mut pool = WorkerPool::new(4);
        let mut total = 0usize;
        for phase in 0..32 {
            total += pool.run(|w| w + phase).iter().sum::<usize>();
        }
        assert_eq!(total, (0..32).map(|p| 4 * p + 6).sum::<usize>());
    }

    #[test]
    fn pool_propagates_worker_panics() {
        let mut pool = WorkerPool::new(4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|w| {
                if w == 2 {
                    panic!("boom");
                }
                w
            })
        }));
        assert!(caught.is_err(), "panic must propagate to the caller");
        // The pool stays usable after a propagated panic.
        let out = pool.run(|w| w);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_thread_pool_panics() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn shared_pool_counts_phases_across_widths() {
        for threads in [1, 4] {
            let pool = SharedWorkerPool::new(threads);
            for _ in 0..3 {
                pool.run(|w| w);
            }
            assert_eq!(pool.phases_served(), 3, "threads = {threads}");
        }
    }

    // ---- shared pool ----

    #[test]
    fn shared_pool_serves_one_owner_like_an_exclusive_pool() {
        let pool = SharedWorkerPool::new(4);
        let out = pool.run(|w| w * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
        let (out, times) = pool.run_timed(|w| w);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(times.len(), 4);
        assert_eq!(pool.phases_served(), 2);
    }

    #[test]
    fn shared_pool_runs_submissions_from_many_threads() {
        let pool = SharedWorkerPool::new(3);
        let totals: Vec<u64> = std::thread::scope(|scope| {
            (0..8u64)
                .map(|owner| {
                    let handle = pool.with_owner(owner + 1);
                    scope.spawn(move || {
                        (0..4)
                            .map(|phase| {
                                handle
                                    .run(|w| owner * 100 + phase * 10 + w as u64)
                                    .iter()
                                    .sum::<u64>()
                            })
                            .sum::<u64>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("submitter panicked"))
                .collect()
        });
        for (owner, total) in totals.iter().enumerate() {
            let o = owner as u64;
            // 4 phases × 3 workers: Σ (o·100 + p·10 + w).
            let expected: u64 = (0..4).map(|p| 3 * (o * 100 + p * 10) + 3).sum();
            assert_eq!(*total, expected, "owner {owner}");
        }
        assert_eq!(pool.phases_served(), 8 * 4);
    }

    #[test]
    fn shared_pool_underlies_all_clones() {
        let pool = SharedWorkerPool::new(4);
        let ids_a = pool.run(|_| std::thread::current().id());
        let ids_b = pool.with_owner(7).run(|_| std::thread::current().id());
        assert_eq!(ids_a, ids_b, "clones must drive the same workers");
    }

    #[test]
    fn shared_pool_turnstile_is_fifo() {
        // Owner 1 runs a phase during which owner 2 queues up; owner 1
        // immediately requests another phase. FIFO admission guarantees
        // the trace [1, 2, 1].
        let pool = SharedWorkerPool::new(2);
        pool.enable_phase_trace();
        let a = pool.with_owner(1);
        let b = pool.with_owner(2);
        std::thread::scope(|scope| {
            let b_thread = {
                let pool = pool.clone();
                let b = b.clone();
                scope.spawn(move || {
                    // Wait until owner 1's first phase is admitted.
                    while pool.pending_phases() == 0 {
                        std::thread::yield_now();
                    }
                    b.run(|_| ());
                })
            };
            a.run(|w| {
                if w == 0 {
                    // Hold the phase until owner 2 is queued behind us.
                    while pool.pending_phases() < 2 {
                        std::thread::yield_now();
                    }
                }
            });
            a.run(|_| ());
            b_thread.join().expect("owner 2 panicked");
        });
        let owners: Vec<u64> = pool.take_phase_trace().iter().map(|t| t.owner).collect();
        assert_eq!(owners, vec![1, 2, 1], "waiting owner must be admitted between phases");
    }

    #[test]
    fn shared_pool_isolates_a_panicking_owner() {
        let pool = SharedWorkerPool::new(4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|w| {
                if w == 1 {
                    panic!("query gone wrong");
                }
            })
        }));
        assert!(caught.is_err(), "panic must reach the submitting owner");
        // Other owners continue on the same pool.
        let out = pool.with_owner(9).run(|w| w);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(pool.phases_served(), 2, "panicked phase still releases the turnstile");
    }

    #[test]
    fn shared_pool_trace_records_owner_and_sequence() {
        let pool = SharedWorkerPool::new(1);
        pool.enable_phase_trace();
        pool.with_owner(3).run(|_| ());
        pool.with_owner(5).run(|_| ());
        let trace = pool.take_phase_trace();
        assert_eq!(trace, vec![PhaseTag { owner: 3, seq: 1 }, PhaseTag { owner: 5, seq: 2 }]);
        assert!(pool.take_phase_trace().is_empty(), "trace is take-once");
    }

    #[test]
    fn exclusive_pool_converts_into_shared() {
        let pool = WorkerPool::new(2).into_shared();
        assert_eq!(pool.threads(), 2);
        assert_eq!(pool.run(|w| w), vec![0, 1]);
    }

    // ---- placement ----

    #[test]
    fn paper_machine_placement_round_robins_across_sockets() {
        // Figure 11: contexts are numbered round-robin over the four
        // sockets, so workers 0..4 land on nodes 0, 1, 2, 3 and the
        // pattern repeats every `nodes` workers.
        let p = WorkerPlacement::round_robin(Topology::paper_machine(), 32);
        for w in 0..32 {
            assert_eq!(p.node_of(w), NodeId(w as u32 % 4), "worker {w}");
            assert_eq!(p.core_of(w), CoreId(w as u32));
        }
        assert_eq!(p.single_node(), None, "32 workers span all four sockets");
        // Exactly 8 workers per node.
        for n in 0..4u32 {
            let count = (0..32).filter(|&w| p.node_of(w) == NodeId(n)).count();
            assert_eq!(count, 8, "node {n}");
        }
    }

    #[test]
    fn round_robin_wraps_beyond_the_machine() {
        let p = WorkerPlacement::round_robin(Topology::flat(2), 5);
        assert_eq!(p.threads(), 5);
        assert_eq!(p.core_of(4), CoreId(0), "worker 4 wraps to context 0");
        assert_eq!(p.single_node(), Some(NodeId(0)));
    }

    #[test]
    fn on_node_placement_stays_on_one_socket() {
        let topo = Topology::paper_machine();
        for n in 0..4u32 {
            let p = WorkerPlacement::on_node(topo.clone(), NodeId(n), 12);
            assert_eq!(p.single_node(), Some(NodeId(n)));
            for w in 0..12 {
                assert_eq!(p.node_of(w), NodeId(n), "node {n} worker {w}");
                assert!(p.core_of(w).0 < topo.total_contexts());
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn on_node_rejects_unknown_node() {
        let _ = WorkerPlacement::on_node(Topology::flat(4), NodeId(1), 2);
    }

    #[test]
    fn explicit_core_map_is_respected() {
        let topo = Topology::paper_machine();
        let p = WorkerPlacement::from_cores(topo, vec![CoreId(5), CoreId(1)]);
        assert_eq!(p.node_of(0), NodeId(1), "context 5 sits on socket 1");
        assert_eq!(p.node_of(1), NodeId(1));
        assert_eq!(p.single_node(), Some(NodeId(1)));
    }
}
