//! Worker orchestration: chunking, phase-parallel execution, and the
//! persistent worker pool.
//!
//! MPSM assigns every worker an equal share of each input and runs the
//! four phases as parallel sections separated by barriers (the paper
//! needs only *one* real synchronization point — public runs must exist
//! before the join phase; we realize phase boundaries structurally).
//!
//! Two execution primitives are provided:
//!
//! * [`run_parallel`] / [`run_parallel_timed`] — spawn fresh scoped
//!   threads per call. Simple, but a join that runs four phases pays
//!   four rounds of thread creation and teardown. Retained as the
//!   naive path for the ablation benches and for one-shot callers.
//! * [`WorkerPool`] — spawns each worker thread **once** and parks it
//!   between phases on a condvar. All three join variants route their
//!   parallel sections through a pool, so one join run creates each
//!   worker exactly once no matter how many phases it executes
//!   (commandment C3 still holds: workers synchronize only at phase
//!   boundaries, never inside one).

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Split `len` items into `parts` contiguous ranges whose sizes differ
/// by at most one (the paper's "equally sized chunks").
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "cannot chunk into zero parts");
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Run `f(worker_id)` on `threads` parallel workers, returning their
/// results in worker order. A `threads == 1` call runs inline (useful
/// for debugging and for the single-core baseline of Figure 13).
///
/// Spawns fresh OS threads on every call; phase-structured algorithms
/// should prefer a [`WorkerPool`].
pub fn run_parallel<R, F>(threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker");
    if threads == 1 {
        return vec![f(0)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let f = &f;
                scope.spawn(move || f(w))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
    })
}

/// Run `f(worker_id)`, additionally timing each worker. Returns
/// `(results, per-worker durations)`.
pub fn run_parallel_timed<R, F>(threads: usize, f: F) -> (Vec<R>, Vec<Duration>)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let pairs = run_parallel(threads, |w| {
        let start = Instant::now();
        let r = f(w);
        (r, start.elapsed())
    });
    pairs.into_iter().unzip()
}

// ---------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------

/// Type-erased pointer to the current phase closure. Only dereferenced
/// by workers between the epoch bump and the final `remaining`
/// decrement of that epoch; [`WorkerPool::run`] keeps the closure alive
/// (and does not return) until every worker has finished, so the
/// erased lifetime never outlives the borrow.
struct Job(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` and the pool's barrier protocol
// guarantees it outlives every use (see `Job` docs).
unsafe impl Send for Job {}

struct PoolState {
    /// Incremented once per submitted phase; workers wake on a change.
    epoch: u64,
    /// The phase closure of the current epoch.
    job: Option<Job>,
    /// Workers that have not yet finished the current epoch.
    remaining: usize,
    /// Set when any worker's closure panicked during this epoch.
    panicked: bool,
    /// Tells parked workers to exit.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between phases.
    work_cv: Condvar,
    /// `run` parks here until `remaining` drops to zero.
    done_cv: Condvar,
}

/// Per-worker result slots. Worker `w` writes only slot `w`, and the
/// caller reads only after the phase barrier, so no per-slot locking
/// is needed.
struct Slots<R>(Vec<std::cell::UnsafeCell<Option<R>>>);
// SAFETY: disjoint index access per worker; reads happen only after
// all writers finished (enforced by the pool's done barrier).
unsafe impl<R: Send> Sync for Slots<R> {}

/// A pool of `threads` worker threads that parks between phases
/// instead of being re-spawned per parallel section.
///
/// [`WorkerPool::run`] has the same contract as [`run_parallel`] —
/// `f(worker_id)` on every worker, results in worker order, panics
/// propagated — but amortizes thread creation over the whole join. A
/// 1-thread pool spawns no OS thread at all and runs phases inline
/// (the single-core baseline of Figure 13 stays allocation-free).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Spawn a pool of `threads` parked workers.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = if threads == 1 {
            Vec::new()
        } else {
            (0..threads)
                .map(|w| {
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || worker_loop(w, &shared))
                })
                .collect()
        };
        WorkerPool { shared, handles, threads }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run one phase: `f(worker_id)` on every worker, returning results
    /// in worker order. Blocks until the whole phase finished (the
    /// phase boundary barrier). `&mut self` serializes phases at
    /// compile time — the pool runs one phase at a time by design.
    pub fn run<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads == 1 {
            return vec![f(0)];
        }
        let slots = Slots((0..self.threads).map(|_| std::cell::UnsafeCell::new(None)).collect());
        {
            let slots = &slots;
            let f = &f;
            let call = move |w: usize| {
                let r = f(w);
                // SAFETY: worker `w` owns slot `w` for this phase.
                unsafe { *slots.0[w].get() = Some(r) };
            };
            let job: &(dyn Fn(usize) + Sync) = &call;
            // SAFETY: lifetime erasure only — `run` blocks until every
            // worker finished with the pointer (see `Job` docs).
            let job: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.job = Some(Job(job));
            st.remaining = self.threads;
            st.panicked = false;
            st.epoch += 1;
            drop(st);
            self.shared.work_cv.notify_all();

            let mut st = self.shared.state.lock().expect("pool state poisoned");
            while st.remaining > 0 {
                st = self.shared.done_cv.wait(st).expect("pool state poisoned");
            }
            st.job = None;
            if st.panicked {
                // Mirror run_parallel's message so callers see one
                // failure mode regardless of the execution primitive.
                drop(st);
                panic!("worker thread panicked");
            }
        }
        slots
            .0
            .into_iter()
            .map(|c| c.into_inner().expect("every worker must produce a result"))
            .collect()
    }

    /// Like [`WorkerPool::run`], additionally timing each worker.
    pub fn run_timed<R, F>(&mut self, f: F) -> (Vec<R>, Vec<Duration>)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let pairs = self.run(|w| {
            let start = Instant::now();
            let r = f(w);
            (r, start.elapsed())
        });
        pairs.into_iter().unzip()
    }
}

/// Take-once cells handing *owned* per-worker values through a pool
/// phase: [`WorkerPool::run`] takes a `Fn` closure (every worker shares
/// it), so moving a distinct owned input into each worker goes through
/// one of these — worker `w` calls [`OwnedSlots::take`]`(w)` exactly
/// once.
pub struct OwnedSlots<T>(Vec<Mutex<Option<T>>>);

impl<T> OwnedSlots<T> {
    /// Wrap one slot per item, in order.
    pub fn new(items: impl IntoIterator<Item = T>) -> Self {
        OwnedSlots(items.into_iter().map(|v| Mutex::new(Some(v))).collect())
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Take slot `w`'s value. Panics if it was already taken — each
    /// slot belongs to exactly one worker for exactly one phase.
    pub fn take(&self, w: usize) -> T {
        self.0[w].lock().expect("slot poisoned").take().expect("slot taken twice")
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = match self.shared.state.lock() {
                Ok(st) => st,
                Err(poisoned) => poisoned.into_inner(),
            };
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(w: usize, shared: &PoolShared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state poisoned");
            while !st.shutdown && st.epoch == seen_epoch {
                st = shared.work_cv.wait(st).expect("pool state poisoned");
            }
            if st.shutdown {
                return;
            }
            seen_epoch = st.epoch;
            st.job.as_ref().expect("epoch bumped without a job").0
        };
        // SAFETY: `run` keeps the closure alive until `remaining`
        // reaches zero, which happens strictly after this call.
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (*job)(w) }));
        let mut st = shared.state.lock().expect("pool state poisoned");
        if outcome.is_err() {
            // The default panic hook already printed the payload on this
            // worker's stderr; the caller re-panics with the same uniform
            // message `run_parallel` uses.
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_without_overlap() {
        for len in [0usize, 1, 7, 100, 101, 103] {
            for parts in [1usize, 2, 3, 7, 32] {
                let ranges = chunk_ranges(len, parts);
                assert_eq!(ranges.len(), parts);
                let mut pos = 0;
                for r in &ranges {
                    assert_eq!(r.start, pos);
                    pos = r.end;
                }
                assert_eq!(pos, len);
            }
        }
    }

    #[test]
    fn chunk_sizes_are_balanced() {
        let ranges = chunk_ranges(10, 4);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn more_parts_than_items_yields_empty_chunks() {
        let ranges = chunk_ranges(2, 5);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![1, 1, 0, 0, 0]);
    }

    #[test]
    fn parallel_results_arrive_in_worker_order() {
        let out = run_parallel(8, |w| w * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = run_parallel(1, |w| w + 1);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn timed_variant_reports_durations() {
        let (out, times) = run_parallel_timed(4, |w| w);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(times.len(), 4);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_parts_panics() {
        let _ = chunk_ranges(10, 0);
    }

    // ---- pool ----

    #[test]
    fn pool_results_arrive_in_worker_order() {
        let mut pool = WorkerPool::new(8);
        let out = pool.run(|w| w * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn pool_reuses_the_same_threads_across_phases() {
        let mut pool = WorkerPool::new(4);
        let ids_a = pool.run(|_| std::thread::current().id());
        let ids_b = pool.run(|_| std::thread::current().id());
        let ids_c = pool.run(|_| std::thread::current().id());
        assert_eq!(ids_a, ids_b, "phase 2 must run on the same parked workers");
        assert_eq!(ids_b, ids_c, "phase 3 must run on the same parked workers");
        let distinct: std::collections::HashSet<_> = ids_a.iter().collect();
        assert_eq!(distinct.len(), 4, "each worker is its own thread");
    }

    #[test]
    fn pool_phases_can_borrow_local_state() {
        let data: Vec<u64> = (0..1000).collect();
        let mut pool = WorkerPool::new(3);
        let ranges = chunk_ranges(data.len(), 3);
        let sums = pool.run(|w| data[ranges[w].clone()].iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), 1000 * 999 / 2);
    }

    #[test]
    fn pool_of_one_runs_inline() {
        let mut pool = WorkerPool::new(1);
        let here = std::thread::current().id();
        let ids = pool.run(|_| std::thread::current().id());
        assert_eq!(ids, vec![here]);
    }

    #[test]
    fn pool_timed_reports_durations() {
        let mut pool = WorkerPool::new(4);
        let (out, times) = pool.run_timed(|w| w);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(times.len(), 4);
    }

    #[test]
    fn pool_runs_many_phases_without_respawning() {
        let mut pool = WorkerPool::new(4);
        let mut total = 0usize;
        for phase in 0..32 {
            total += pool.run(|w| w + phase).iter().sum::<usize>();
        }
        assert_eq!(total, (0..32).map(|p| 4 * p + 6).sum::<usize>());
    }

    #[test]
    fn pool_propagates_worker_panics() {
        let mut pool = WorkerPool::new(4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|w| {
                if w == 2 {
                    panic!("boom");
                }
                w
            })
        }));
        assert!(caught.is_err(), "panic must propagate to the caller");
        // The pool stays usable after a propagated panic.
        let out = pool.run(|w| w);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_thread_pool_panics() {
        let _ = WorkerPool::new(0);
    }
}
