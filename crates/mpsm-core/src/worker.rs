//! Worker orchestration: chunking and phase-parallel execution.
//!
//! MPSM assigns every worker an equal share of each input and runs the
//! four phases as parallel sections separated by barriers (the paper
//! needs only *one* real synchronization point — public runs must exist
//! before the join phase; we realize phase boundaries by joining scoped
//! threads, which is the same barrier expressed structurally).

use std::ops::Range;
use std::time::{Duration, Instant};

/// Split `len` items into `parts` contiguous ranges whose sizes differ
/// by at most one (the paper's "equally sized chunks").
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "cannot chunk into zero parts");
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Run `f(worker_id)` on `threads` parallel workers, returning their
/// results in worker order. A `threads == 1` call runs inline (useful
/// for debugging and for the single-core baseline of Figure 13).
pub fn run_parallel<R, F>(threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker");
    if threads == 1 {
        return vec![f(0)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let f = &f;
                scope.spawn(move || f(w))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
    })
}

/// Run `f(worker_id)`, additionally timing each worker. Returns
/// `(results, per-worker durations)`.
pub fn run_parallel_timed<R, F>(threads: usize, f: F) -> (Vec<R>, Vec<Duration>)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let pairs = run_parallel(threads, |w| {
        let start = Instant::now();
        let r = f(w);
        (r, start.elapsed())
    });
    pairs.into_iter().unzip()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_without_overlap() {
        for len in [0usize, 1, 7, 100, 101, 103] {
            for parts in [1usize, 2, 3, 7, 32] {
                let ranges = chunk_ranges(len, parts);
                assert_eq!(ranges.len(), parts);
                let mut pos = 0;
                for r in &ranges {
                    assert_eq!(r.start, pos);
                    pos = r.end;
                }
                assert_eq!(pos, len);
            }
        }
    }

    #[test]
    fn chunk_sizes_are_balanced() {
        let ranges = chunk_ranges(10, 4);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn more_parts_than_items_yields_empty_chunks() {
        let ranges = chunk_ranges(2, 5);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![1, 1, 0, 0, 0]);
    }

    #[test]
    fn parallel_results_arrive_in_worker_order() {
        let out = run_parallel(8, |w| w * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = run_parallel(1, |w| w + 1);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn timed_variant_reports_durations() {
        let (out, times) = run_parallel_timed(4, |w| w);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(times.len(), 4);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_parts_panics() {
        let _ = chunk_ranges(10, 0);
    }
}
