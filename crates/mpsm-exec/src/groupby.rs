//! Sort-based early aggregation over MPSM's run-structured output.
//!
//! The paper (§6/§7): "MPSM does not produce completely sorted output.
//! However, each worker's partition is subdivided into sorted runs.
//! This interesting physical property might be exploited in further
//! operations" — e.g. "early aggregation" (§2). This module is that
//! exploitation: a group-by over the join result that *merges* the
//! key-ascending runs produced by
//! [`mpsm_core::sink::SortedRunsSink`] instead of hashing every row.
//! With P-MPSM's range partitioning the runs of different workers cover
//! disjoint key ranges, so the merge degenerates to cheap
//! concatenation-with-local-merge — no global sort, no hash table.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An aggregate folded per key over `(key, value)` rows.
pub trait KeyAggregate: Default {
    /// Result per group.
    type Output;
    /// Fold one value into the group state.
    fn fold(&mut self, value: u64);
    /// Extract the group result.
    fn result(self) -> Self::Output;
}

/// `SUM(value)` per key (wrapping).
#[derive(Debug, Default, Clone, Copy)]
pub struct SumAgg(u64);

impl KeyAggregate for SumAgg {
    type Output = u64;
    fn fold(&mut self, value: u64) {
        self.0 = self.0.wrapping_add(value);
    }
    fn result(self) -> u64 {
        self.0
    }
}

/// `COUNT(*)` per key.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountAgg(u64);

impl KeyAggregate for CountAgg {
    type Output = u64;
    fn fold(&mut self, _value: u64) {
        self.0 += 1;
    }
    fn result(self) -> u64 {
        self.0
    }
}

/// `MAX(value)` per key.
#[derive(Debug, Default, Clone, Copy)]
pub struct MaxAgg(Option<u64>);

impl KeyAggregate for MaxAgg {
    type Output = u64;
    fn fold(&mut self, value: u64) {
        self.0 = Some(self.0.map_or(value, |m| m.max(value)));
    }
    fn result(self) -> u64 {
        self.0.unwrap_or(0)
    }
}

/// Group-by-key over key-ascending runs via k-way merge; returns
/// `(key, aggregate)` pairs in ascending key order.
///
/// Complexity `O(N log k)` for `N` rows in `k` runs — with MPSM output,
/// `k = T²` at most (each worker contributes ≤ T runs), independent of
/// `N`. A hash-based group-by is `O(N)` but with random access; the
/// merge is fully sequential (commandment C2 carried into the
/// aggregation).
pub fn sorted_group_by<A: KeyAggregate>(runs: &[Vec<(u64, u64)>]) -> Vec<(u64, A::Output)> {
    for run in runs {
        debug_assert!(run.windows(2).all(|w| w[0].0 <= w[1].0), "runs must be key-ascending");
    }
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = runs
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_empty())
        .map(|(i, r)| Reverse((r[0].0, i, 0)))
        .collect();

    let mut out: Vec<(u64, A::Output)> = Vec::new();
    let mut current: Option<(u64, A)> = None;
    while let Some(Reverse((key, run, off))) = heap.pop() {
        let value = runs[run][off].1;
        match &mut current {
            Some((k, agg)) if *k == key => agg.fold(value),
            _ => {
                if let Some((k, agg)) = current.take() {
                    out.push((k, agg.result()));
                }
                let mut agg = A::default();
                agg.fold(value);
                current = Some((key, agg));
            }
        }
        let next = off + 1;
        if next < runs[run].len() {
            heap.push(Reverse((runs[run][next].0, run, next)));
        }
    }
    if let Some((k, agg)) = current {
        out.push((k, agg.result()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_runs_into_sorted_groups() {
        let runs = vec![vec![(1, 10), (3, 30)], vec![(1, 5), (2, 20)], vec![], vec![(3, 1)]];
        let sums = sorted_group_by::<SumAgg>(&runs);
        assert_eq!(sums, vec![(1, 15), (2, 20), (3, 31)]);
        let counts = sorted_group_by::<CountAgg>(&runs);
        assert_eq!(counts, vec![(1, 2), (2, 1), (3, 2)]);
        let maxes = sorted_group_by::<MaxAgg>(&runs);
        assert_eq!(maxes, vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn empty_input() {
        assert!(sorted_group_by::<SumAgg>(&[]).is_empty());
        assert!(sorted_group_by::<SumAgg>(&[vec![], vec![]]).is_empty());
    }

    #[test]
    fn single_run_is_grouped_in_place() {
        let runs = vec![vec![(5, 1), (5, 2), (9, 3)]];
        assert_eq!(sorted_group_by::<SumAgg>(&runs), vec![(5, 3), (9, 3)]);
    }

    #[test]
    fn matches_hash_based_reference() {
        use std::collections::HashMap;
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 56
        };
        let mut runs: Vec<Vec<(u64, u64)>> = Vec::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for _ in 0..7 {
            let mut run: Vec<(u64, u64)> = (0..200).map(|_| (next(), next())).collect();
            run.sort_unstable();
            for &(k, v) in &run {
                *reference.entry(k).or_default() =
                    reference.get(&k).copied().unwrap_or(0).wrapping_add(v);
            }
            runs.push(run);
        }
        let got = sorted_group_by::<SumAgg>(&runs);
        assert_eq!(got.len(), reference.len());
        for (k, v) in got {
            assert_eq!(reference[&k], v, "key {k}");
        }
    }
}
