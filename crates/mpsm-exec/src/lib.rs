//! Minimal relational executor running the paper's benchmark query.
//!
//! The paper evaluates "the common case that two relations R and S are
//! scanned, a selection is applied, and then the results are joined"
//! (§5), with the aggregate `SELECT max(R.payload + S.payload)` on top.
//! This crate provides exactly that pipeline as composable operators —
//! enough of a query engine to execute the paper's workload end to end
//! without pretending to be a full DBMS:
//!
//! * [`scan::Relation`] — a named, typed base table;
//! * [`ops::Select`] — a filtered scan (predicate over key/payload);
//! * [`ops::JoinOp`] — an equi-join node parameterized by any
//!   [`mpsm_core::join::JoinAlgorithm`];
//! * [`ops::MaxPayloadSum`] / [`ops::CountRows`] — the aggregates the
//!   evaluation uses;
//! * [`query`] — the ready-made paper query;
//! * [`groupby`] — sort-based early aggregation exploiting MPSM's
//!   run-structured output (the §7 extension).
//!
//! ## Serving many queries at once
//!
//! The paper's join owns the whole machine; a service cannot. The
//! [`sched`] module adds a multi-query scheduler that admits many
//! concurrent paper queries against **one** shared
//! [`mpsm_core::worker::SharedWorkerPool`] — bounded admission,
//! futures-style [`sched::QueryTicket`]s, phase-granular fair
//! interleaving, and queue/phase timings in EXPLAIN — and [`session`]
//! layers a client-facing relation catalog on top. Start at
//! [`session::Session`] or [`sched::Scheduler`].
//!
//! ## NUMA-affine placement
//!
//! Every execution flows through an
//! [`mpsm_core::context::ExecContext`] ([`query::paper_query_in`] is
//! the unified path; the pool- and thread-based entry points wrap a
//! flat context). A scheduler configured with a multi-node
//! [`sched::SchedulerConfig::topology`] pins each admitted query to
//! the least-loaded node, and every plan's EXPLAIN output grows a
//! `Placement [node=…, local=…%, remote=…%]` line reporting where the
//! join ran and how node-local its audited memory traffic was.
//!
//! ## Sorted-run caching
//!
//! Phases 1–2 of an MPSM join sort each input into public runs that
//! depend only on the relation and the splitter layout — not on the
//! query. The [`run_cache`] module caches those runs keyed by
//! `(relation id, version, splitter fingerprint)`; a
//! [`session::Session`] owns one by default, so repeated joins over
//! registered relations skip partition + sort entirely and go straight
//! to merge-join. EXPLAIN grows a `RunCache [R=hit, S=miss; …]` line,
//! and re-registering a relation bumps its catalog version, which
//! invalidates every run set built from older versions.
//!
//! ## Mutable relations and consistent snapshots
//!
//! Registered relations accept writes — [`session::Session::append`],
//! [`session::Session::update`], [`session::Session::delete`] — which
//! land in a per-relation append-only delta log ([`snapshot::DeltaLog`])
//! without disturbing the immutable sorted base the run cache serves.
//! Each submitted query captures a [`snapshot::Snapshot`] per side at
//! admission: base version plus delta watermark. The join merges the
//! visible delta in on the fly (one extra sorted run, with superseded
//! base keys masked), so writers never block readers and a running join
//! never tears. A background compactor owned by the [`sched::Scheduler`]
//! folds deltas into new base versions — cache invalidation falls out of
//! the ordinary version bump. EXPLAIN grows
//! `Snapshot [R: base=vN, delta=K tuples]` rows.

#![warn(missing_docs)]

pub mod groupby;
pub mod ops;
pub mod plan;
pub mod query;
pub mod run_cache;
pub mod scan;
pub mod sched;
pub mod session;
pub mod snapshot;

pub use groupby::{sorted_group_by, CountAgg, KeyAggregate, MaxAgg, SumAgg};
pub use ops::{CountRows, JoinOp, MaxPayloadSum, Select};
pub use plan::{
    AnytimeInfo, PlacementInfo, PlanStep, QueryPlan, QueueCounters, RunCacheInfo, RunCacheOutcome,
    SnapshotInfo,
};
pub use query::{
    paper_query, paper_query_anytime, paper_query_in, paper_query_on, PaperQueryResult,
};
pub use run_cache::{
    splitter_fingerprint, BuildPermit, Lookup, RunCache, RunCacheConfig, RunCacheStats, RunKey,
};
pub use scan::Relation;
pub use sched::{
    CompactionConfig, CompactionTask, Priority, QueryError, QueryOutput, QueryStatus, QueryTicket,
    Scheduler, SchedulerConfig, SchedulerMetrics, SubmitError,
};
pub use session::{JoinSpec, Predicate, QuerySpec, Session, WriteError};
pub use snapshot::{DeltaLog, RelationState, Snapshot};
