//! Minimal relational executor running the paper's benchmark query.
//!
//! The paper evaluates "the common case that two relations R and S are
//! scanned, a selection is applied, and then the results are joined"
//! (§5), with the aggregate `SELECT max(R.payload + S.payload)` on top.
//! This crate provides exactly that pipeline as composable operators —
//! enough of a query engine to execute the paper's workload end to end
//! without pretending to be a full DBMS:
//!
//! * [`scan::Relation`] — a named, typed base table;
//! * [`ops::Select`] — a filtered scan (predicate over key/payload);
//! * [`ops::JoinOp`] — an equi-join node parameterized by any
//!   [`mpsm_core::join::JoinAlgorithm`];
//! * [`ops::MaxPayloadSum`] / [`ops::CountRows`] — the aggregates the
//!   evaluation uses;
//! * [`query`] — the ready-made paper query;
//! * [`groupby`] — sort-based early aggregation exploiting MPSM's
//!   run-structured output (the §7 extension).

pub mod groupby;
pub mod ops;
pub mod plan;
pub mod query;
pub mod scan;

pub use groupby::{sorted_group_by, CountAgg, KeyAggregate, MaxAgg, SumAgg};
pub use ops::{CountRows, JoinOp, MaxPayloadSum, Select};
pub use plan::{PlanStep, QueryPlan};
pub use query::{paper_query, PaperQueryResult};
pub use scan::Relation;
