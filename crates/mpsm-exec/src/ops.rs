//! Relational operators: filtered scan, join, aggregates.
//!
//! The pipeline shape is fixed to the paper's evaluation plan
//! (`scan → select → join → aggregate`), so the operators compose by
//! value rather than through a general iterator/volcano interface —
//! deliberate minimalism: the join is the system under test, the
//! executor only has to feed it realistically (a selection means "no
//! referential integrity or indexes could be exploited", §5).

use mpsm_core::context::ExecContext;
use mpsm_core::join::{JoinAlgorithm, PooledJoin};
use mpsm_core::sink::{CountSink, JoinSink, MaxAggSink};
use mpsm_core::stats::JoinStats;
use mpsm_core::worker::{chunk_ranges, run_parallel, SharedWorkerPool};
use mpsm_core::Tuple;

use crate::scan::Relation;

/// A filtered scan: materializes the tuples of `relation` satisfying
/// `predicate`. Runs in parallel over input chunks.
pub struct Select<'a, P: Fn(&Tuple) -> bool + Sync> {
    relation: &'a Relation,
    predicate: P,
}

impl<'a, P: Fn(&Tuple) -> bool + Sync> Select<'a, P> {
    /// Create a filtered scan.
    pub fn new(relation: &'a Relation, predicate: P) -> Self {
        Select { relation, predicate }
    }

    /// Execute with `threads` workers (fresh threads per call).
    pub fn execute(&self, threads: usize) -> Vec<Tuple> {
        let tuples = self.relation.tuples();
        let ranges = chunk_ranges(tuples.len(), threads.max(1));
        let parts = run_parallel(threads.max(1), |w| {
            tuples[ranges[w].clone()]
                .iter()
                .filter(|t| (self.predicate)(t))
                .copied()
                .collect::<Vec<_>>()
        });
        Self::concat(parts)
    }

    /// Execute on a shared worker pool: the filter scan is submitted as
    /// one tagged phase, so scheduled queries never spawn threads for
    /// their selections.
    pub fn execute_on(&self, pool: &SharedWorkerPool) -> Vec<Tuple> {
        let tuples = self.relation.tuples();
        let ranges = chunk_ranges(tuples.len(), pool.threads());
        let parts = pool.run(|w| {
            tuples[ranges[w].clone()]
                .iter()
                .filter(|t| (self.predicate)(t))
                .copied()
                .collect::<Vec<_>>()
        });
        Self::concat(parts)
    }

    /// Execute inside an execution context: the scan runs as one tagged
    /// phase on the context's pool. Base relations are unplaced
    /// (globally interleaved) in the NUMA model, so the selection
    /// contributes no placement decisions — the join it feeds does.
    pub fn execute_in(&self, cx: &ExecContext) -> Vec<Tuple> {
        self.execute_on(cx.pool())
    }

    fn concat(parts: Vec<Vec<Tuple>>) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for mut p in parts {
            out.append(&mut p);
        }
        out
    }
}

/// An equi-join node over two tuple streams, parameterized by the join
/// algorithm under test.
pub struct JoinOp<'a, J: JoinAlgorithm> {
    algorithm: &'a J,
}

impl<'a, J: JoinAlgorithm> JoinOp<'a, J> {
    /// Wrap a join algorithm as an operator.
    pub fn new(algorithm: &'a J) -> Self {
        JoinOp { algorithm }
    }

    /// Execute the join, feeding matches into sink `S`.
    pub fn execute<S: JoinSink>(&self, r: &[Tuple], s: &[Tuple]) -> (S::Result, JoinStats) {
        self.algorithm.join_with_sink::<S>(r, s)
    }

    /// Execute the join inside an execution context: phases on the
    /// context's pool, run storage from its node-local arenas, access
    /// audit into its per-phase counters (see
    /// [`mpsm_core::join::JoinAlgorithm::join_in`]).
    pub fn execute_in<S: JoinSink>(
        &self,
        cx: &ExecContext,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats) {
        self.algorithm.join_in::<S>(cx, r, s)
    }
}

impl<'a, J: PooledJoin> JoinOp<'a, J> {
    /// Execute the join with its phases submitted to a shared pool.
    pub fn execute_on<S: JoinSink>(
        &self,
        pool: &SharedWorkerPool,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (S::Result, JoinStats) {
        self.algorithm.join_with_sink_on::<S>(pool, r, s)
    }
}

/// The paper's aggregate: `max(R.payload + S.payload)`.
pub struct MaxPayloadSum;

impl MaxPayloadSum {
    /// Run over a join operator's output.
    pub fn over<J: JoinAlgorithm>(
        join: &JoinOp<'_, J>,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (Option<u64>, JoinStats) {
        join.execute::<MaxAggSink>(r, s)
    }

    /// Run over a join operator's output, on a shared pool.
    pub fn over_on<J: PooledJoin>(
        pool: &SharedWorkerPool,
        join: &JoinOp<'_, J>,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (Option<u64>, JoinStats) {
        join.execute_on::<MaxAggSink>(pool, r, s)
    }

    /// Run over a join operator's output, inside an execution context.
    pub fn over_in<J: JoinAlgorithm>(
        cx: &ExecContext,
        join: &JoinOp<'_, J>,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (Option<u64>, JoinStats) {
        join.execute_in::<MaxAggSink>(cx, r, s)
    }
}

/// `COUNT(*)` over the join result.
pub struct CountRows;

impl CountRows {
    /// Run over a join operator's output.
    pub fn over<J: JoinAlgorithm>(
        join: &JoinOp<'_, J>,
        r: &[Tuple],
        s: &[Tuple],
    ) -> (u64, JoinStats) {
        join.execute::<CountSink>(r, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsm_core::join::p_mpsm::PMpsmJoin;
    use mpsm_core::join::JoinConfig;

    fn rel(name: &str, keys: &[u64]) -> Relation {
        Relation::new(
            name,
            keys.iter().enumerate().map(|(i, &k)| Tuple::new(k, i as u64)).collect(),
        )
    }

    #[test]
    fn select_filters_in_parallel() {
        let r = rel("r", &(0..1000u64).collect::<Vec<_>>());
        let sel = Select::new(&r, |t| t.key % 10 == 0);
        for threads in [1, 4] {
            let out = sel.execute(threads);
            assert_eq!(out.len(), 100);
            assert!(out.iter().all(|t| t.key % 10 == 0));
        }
    }

    #[test]
    fn select_preserves_order_within_result() {
        let r = rel("r", &[5, 1, 8, 3]);
        let out = Select::new(&r, |t| t.key > 2).execute(2);
        let keys: Vec<u64> = out.iter().map(|t| t.key).collect();
        assert_eq!(keys, vec![5, 8, 3], "chunk order concatenation");
    }

    #[test]
    fn join_op_and_aggregates() {
        let r = rel("r", &[1, 2, 3]);
        let s = rel("s", &[2, 3, 3]);
        let algo = PMpsmJoin::new(JoinConfig::with_threads(2));
        let join = JoinOp::new(&algo);
        let (count, _) = CountRows::over(&join, r.tuples(), s.tuples());
        assert_eq!(count, 3);
        let (max, _) = MaxPayloadSum::over(&join, r.tuples(), s.tuples());
        // Matches: (2: 1+0), (3: 2+1), (3: 2+2) → max 4.
        assert_eq!(max, Some(4));
    }

    #[test]
    fn empty_select_yields_empty_join() {
        let r = rel("r", &[1, 2, 3]);
        let s = rel("s", &[1, 2, 3]);
        let none = Select::new(&r, |_| false).execute(2);
        let algo = PMpsmJoin::new(JoinConfig::with_threads(2));
        let join = JoinOp::new(&algo);
        let (count, _) = CountRows::over(&join, &none, s.tuples());
        assert_eq!(count, 0);
    }
}
