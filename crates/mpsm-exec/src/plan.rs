//! Query plans and EXPLAIN output.
//!
//! The executor's pipeline shape is fixed (scan → select → join →
//! aggregate, the paper's evaluation plan), but which join runs, with
//! which roles, threads, and estimated cardinalities is worth seeing —
//! especially since the paper's HyPer context compiles exactly such
//! plans \[21\]. [`QueryPlan`] describes one pipeline instance and
//! renders the usual indented EXPLAIN tree.

use std::fmt;

/// One node of the (linear) plan tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanStep {
    /// Base-table scan.
    Scan {
        /// Relation name.
        relation: String,
        /// Base cardinality.
        rows: usize,
    },
    /// Filter over the child scan.
    Select {
        /// Rows surviving the predicate (exact, post-execution; the
        /// executor materializes selections).
        rows_out: usize,
    },
}

/// A described execution of the paper's pipeline.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Join algorithm display name.
    pub algorithm: String,
    /// Worker threads used by the join.
    pub threads: usize,
    /// Private-side (build/partitioned) input pipeline.
    pub private: Vec<PlanStep>,
    /// Public-side input pipeline.
    pub public: Vec<PlanStep>,
    /// Aggregate on top.
    pub aggregate: String,
    /// Join output cardinality if the sink counted it.
    pub join_rows: Option<u64>,
}

impl QueryPlan {
    /// Render the indented EXPLAIN tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Aggregate [{}]\n", self.aggregate));
        out.push_str(&format!(
            "└─ Join [{}; T = {}{}]\n",
            self.algorithm,
            self.threads,
            self.join_rows.map_or(String::new(), |r| format!("; out = {r} rows")),
        ));
        let render_side = |label: &str, steps: &[PlanStep], last: bool| -> String {
            let (branch, pad) =
                if last { ("   └─", "      ") } else { ("   ├─", "   │  ") };
            let mut side = format!("{branch} {label}:\n");
            for (i, step) in steps.iter().rev().enumerate() {
                let indent = pad.to_string() + &"   ".repeat(i);
                match step {
                    PlanStep::Select { rows_out } => {
                        side.push_str(&format!("{indent}└─ Select [out = {rows_out} rows]\n"));
                    }
                    PlanStep::Scan { relation, rows } => {
                        side.push_str(&format!("{indent}└─ Scan {relation} [{rows} rows]\n"));
                    }
                }
            }
            side
        };
        out.push_str(&render_side("private (R)", &self.private, false));
        out.push_str(&render_side("public (S)", &self.public, true));
        out
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryPlan {
        QueryPlan {
            algorithm: "P-MPSM".into(),
            threads: 8,
            private: vec![
                PlanStep::Scan { relation: "orders".into(), rows: 1000 },
                PlanStep::Select { rows_out: 500 },
            ],
            public: vec![
                PlanStep::Scan { relation: "lineitem".into(), rows: 4000 },
                PlanStep::Select { rows_out: 4000 },
            ],
            aggregate: "max(R.payload + S.payload)".into(),
            join_rows: Some(2000),
        }
    }

    #[test]
    fn explain_contains_every_node() {
        let text = sample().explain();
        for needle in [
            "Aggregate [max(R.payload + S.payload)]",
            "Join [P-MPSM; T = 8; out = 2000 rows]",
            "Scan orders [1000 rows]",
            "Select [out = 500 rows]",
            "Scan lineitem [4000 rows]",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn display_matches_explain() {
        let p = sample();
        assert_eq!(format!("{p}"), p.explain());
    }

    #[test]
    fn join_rows_are_optional() {
        let mut p = sample();
        p.join_rows = None;
        assert!(p.explain().contains("Join [P-MPSM; T = 8]"));
    }
}
