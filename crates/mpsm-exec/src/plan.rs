//! Query plans and EXPLAIN output.
//!
//! The executor's pipeline shape is fixed (scan → select → join →
//! aggregate, the paper's evaluation plan), but which join runs, with
//! which roles, threads, and estimated cardinalities is worth seeing —
//! especially since the paper's HyPer context compiles exactly such
//! plans \[21\]. [`QueryPlan`] describes one pipeline instance and
//! renders the usual indented EXPLAIN tree.
//!
//! Scheduled executions (see [`crate::sched`]) additionally report how
//! long the query waited in the admission queue and the per-phase
//! critical-path timings of the join, both rendered as extra EXPLAIN
//! nodes.

use std::fmt;

/// One node of the (linear) plan tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanStep {
    /// Base-table scan.
    Scan {
        /// Relation name.
        relation: String,
        /// Base cardinality.
        rows: usize,
    },
    /// Filter over the child scan.
    Select {
        /// Rows surviving the predicate (exact, post-execution; the
        /// executor materializes selections).
        rows_out: usize,
    },
}

impl PlanStep {
    fn label(&self) -> String {
        match self {
            PlanStep::Scan { relation, rows } => format!("Scan {relation} [{rows} rows]"),
            PlanStep::Select { rows_out } => format!("Select [out = {rows_out} rows]"),
        }
    }
}

/// NUMA placement of a join's execution, derived from the
/// [`mpsm_core::context::ExecContext`] that ran it and rendered as the
/// `Placement` EXPLAIN node.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementInfo {
    /// The node every worker of the query sat on, when the scheduler
    /// pinned the query to one socket (`None` = workers spread over
    /// the machine).
    pub node: Option<u32>,
    /// Percentage of the join's audited accesses that hit node-local
    /// memory.
    pub local_pct: f64,
    /// Percentage that crossed to a remote node.
    pub remote_pct: f64,
    /// The context's topology had a single node: placement is trivial
    /// and rendered as `Placement [flat, …]` — an explicit value, so
    /// flat-scheduler tests need no `unwrap` chains to distinguish
    /// "no placement info" from "nothing to place".
    pub flat: bool,
    /// Bytes resident in the context's NUMA arena per node at
    /// plan-assembly time (index = node id) — how much run/partition
    /// storage the query's world holds on each socket. Empty when the
    /// execution path did not sample the arena (the pre-PR-8 shape);
    /// the label then renders exactly as before.
    pub arena_bytes: Vec<u64>,
}

impl PlacementInfo {
    fn label(&self) -> String {
        let node = if self.flat {
            "flat".to_string()
        } else {
            match self.node {
                Some(n) => format!("node={n}"),
                None => "node=spread".to_string(),
            }
        };
        let arena = if self.arena_bytes.is_empty() {
            String::new()
        } else {
            let per_node: Vec<String> = self.arena_bytes.iter().map(|b| b.to_string()).collect();
            format!(", arena={} B", per_node.join("/"))
        };
        format!(
            "Placement [{node}, local={:.1}%, remote={:.1}%{arena}]",
            self.local_pct, self.remote_pct
        )
    }
}

/// The consistent snapshot one join input was executed against,
/// rendered as a `Snapshot` EXPLAIN node: the base version the side's
/// cached runs key on, and how many delta ops the snapshot merged in on
/// the fly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Which input the snapshot covers (`"R"` or `"S"`).
    pub side: &'static str,
    /// Catalog version of the immutable base the snapshot pinned.
    pub base_version: u64,
    /// Delta ops visible at the snapshot's watermark (0 = the side was
    /// clean; the query read pure base runs).
    pub delta: usize,
}

impl SnapshotInfo {
    fn label(&self) -> String {
        format!(
            "Snapshot [{}: base=v{}, delta={} tuples]",
            self.side, self.base_version, self.delta
        )
    }
}

/// How far an interruptible (deadline-carrying) query got before its
/// [`mpsm_core::join::anytime::AnytimeToken`] expired, rendered as the
/// `Anytime` EXPLAIN node. Present exactly when the query executed on
/// the anytime merge path; `complete` queries render it too (coverage
/// 100%), so a plan reader can tell "ran anytime and finished" from
/// "ran the ordinary path".
#[derive(Debug, Clone, PartialEq)]
pub struct AnytimeInfo {
    /// Fraction of the private input merged, in `[0, 1]`.
    pub coverage: f64,
    /// Private runs merged to completion.
    pub merged_runs: usize,
    /// Private runs total.
    pub total_runs: usize,
    /// Whether the merge ran to completion before the token expired.
    pub complete: bool,
    /// Whether the merge stopped early because a `rows_cap` was
    /// satisfied. A capped stop is voluntary — the caller got every row
    /// it asked for — so it is not an SLA miss and not a partial answer
    /// even though `complete` is false and coverage is below 100%.
    pub capped: bool,
    /// Per-key-range coverage histogram (one entry per non-empty
    /// private run, ascending key order). Empty when the execution
    /// predates the histogram or never reached the merge.
    pub ranges: Vec<mpsm_core::join::anytime::KeyRangeCoverage>,
}

impl AnytimeInfo {
    fn label(&self) -> String {
        let mut label = format!(
            "Anytime [coverage={:.1}%, runs={}/{}, {}]",
            self.coverage * 100.0,
            self.merged_runs,
            self.total_runs,
            if self.complete {
                "complete"
            } else if self.capped {
                "capped"
            } else {
                "partial"
            },
        );
        if !self.ranges.is_empty() {
            // Render at most 8 key ranges so wide machines stay on one
            // readable line; the elided tail is summarized by count.
            let shown = self.ranges.iter().take(8);
            let body = shown
                .map(|kr| format!("{}..{}={:.0}%", kr.lo, kr.hi, kr.fraction * 100.0))
                .collect::<Vec<_>>()
                .join(" ");
            let elided = self.ranges.len().saturating_sub(8);
            let tail = if elided > 0 { format!(" +{elided}") } else { String::new() };
            label.push_str(&format!(" ranges[{body}{tail}]"));
        }
        label
    }
}

/// Scheduler-lifetime SLA counters sampled when the query finished,
/// appended to the `Queue` EXPLAIN row. Optional so unscheduled (and
/// pre-existing) plans render exactly as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueCounters {
    /// Queued queries evicted by higher-priority arrivals (always 0
    /// since degrade-don't-reject; kept for label stability).
    pub shed: u64,
    /// Queries that finished past their deadline (partial or late).
    pub deadline_missed: u64,
    /// Queries that returned a partial (coverage < 100%) answer.
    pub partial_answers: u64,
    /// Queries admitted in degraded mode (forced tight anytime budget)
    /// under overload.
    pub degraded: u64,
}

/// What the run cache did for one join input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunCacheOutcome {
    /// Sorted runs were served from the cache; the side skipped
    /// partition + sort.
    Hit,
    /// Runs were built by this query (and published when it held the
    /// build permit).
    Miss,
    /// The side was not cacheable (filtered, unregistered, or the
    /// session runs uncached).
    Bypass,
}

impl RunCacheOutcome {
    fn as_str(self) -> &'static str {
        match self {
            RunCacheOutcome::Hit => "hit",
            RunCacheOutcome::Miss => "miss",
            RunCacheOutcome::Bypass => "bypass",
        }
    }
}

/// Per-query run-cache report, rendered as the `RunCache` EXPLAIN
/// node: the outcome for each input plus the owning cache's lifetime
/// totals at plan-assembly time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunCacheInfo {
    /// Outcome for the private input `R`.
    pub r: RunCacheOutcome,
    /// Outcome for the public input `S`.
    pub s: RunCacheOutcome,
    /// Cache-lifetime hits.
    pub hits: u64,
    /// Cache-lifetime misses.
    pub misses: u64,
    /// Cache-lifetime budget evictions.
    pub evictions: u64,
}

impl RunCacheInfo {
    fn label(&self) -> String {
        format!(
            "RunCache [R={}, S={}; hits={}, misses={}, evictions={}]",
            self.r.as_str(),
            self.s.as_str(),
            self.hits,
            self.misses,
            self.evictions,
        )
    }
}

/// A described execution of the paper's pipeline.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Join algorithm display name.
    pub algorithm: String,
    /// Worker threads used by the join.
    pub threads: usize,
    /// Private-side (build/partitioned) input pipeline.
    pub private: Vec<PlanStep>,
    /// Public-side input pipeline.
    pub public: Vec<PlanStep>,
    /// Aggregate on top.
    pub aggregate: String,
    /// Join output cardinality if the sink counted it.
    pub join_rows: Option<u64>,
    /// Time the query waited in the scheduler's admission queue before
    /// execution started, in ms (`None` for unscheduled executions).
    pub queue_wait_ms: Option<f64>,
    /// Scheduler SLA counters at completion time, appended to the
    /// `Queue` row when present (requires `queue_wait_ms`).
    pub queue_counters: Option<QueueCounters>,
    /// Anytime-merge coverage, when the query ran interruptibly.
    pub anytime: Option<AnytimeInfo>,
    /// Critical-path duration of each join phase, in ms, when the
    /// execution recorded them.
    pub phases_ms: Option<[f64; 4]>,
    /// Tuples that entered the join (selected R + selected S) — the
    /// normalizer for the per-tuple phase rates row. Only rendered when
    /// `phases_ms` is also present.
    pub phase_tuples: Option<u64>,
    /// The sort tuning the execution context used
    /// (`SortTuning::describe()`), rendered as the `SortKernel` node so
    /// a plan reader can tell which finishing kernel sorted the runs
    /// and where the choice came from (default / auto-tuned /
    /// explicit).
    pub sort_kernel: Option<String>,
    /// NUMA placement and locality of the join, when it executed
    /// inside an [`mpsm_core::context::ExecContext`].
    pub placement: Option<PlacementInfo>,
    /// Run-cache outcomes, when the query ran through a cache-aware
    /// session.
    pub run_cache: Option<RunCacheInfo>,
    /// The consistent snapshots the query's inputs were pinned to, one
    /// entry per catalog-resolved side (empty for inputs outside any
    /// session catalog).
    pub snapshots: Vec<SnapshotInfo>,
}

/// A rendered EXPLAIN node: a label plus child nodes.
struct Node {
    label: String,
    children: Vec<Node>,
}

impl Node {
    fn new(label: impl Into<String>) -> Self {
        Node { label: label.into(), children: Vec::new() }
    }

    fn child(mut self, c: Node) -> Self {
        self.children.push(c);
        self
    }

    /// Standard tree rendering: every child is introduced by `├─ ` /
    /// `└─ `, and descendants of a non-last child keep the `│ `
    /// continuation — correct at any depth, which the old
    /// fixed-three-space renderer was not once a side pipeline grew
    /// beyond two steps.
    fn render(&self, prefix: &str, out: &mut String) {
        let n = self.children.len();
        for (i, child) in self.children.iter().enumerate() {
            let last = i + 1 == n;
            let branch = if last { "└─ " } else { "├─ " };
            let cont = if last { "   " } else { "│  " };
            out.push_str(prefix);
            out.push_str(branch);
            out.push_str(&child.label);
            out.push('\n');
            child.render(&format!("{prefix}{cont}"), out);
        }
    }
}

impl QueryPlan {
    /// Render the indented EXPLAIN tree.
    pub fn explain(&self) -> String {
        // A side's steps are stored scan-first; rendered outermost
        // (last step) down to the scan.
        let side = |label: &str, steps: &[PlanStep]| -> Node {
            let mut node = Node::new(format!("{label}:"));
            let mut slot = &mut node;
            for step in steps.iter().rev() {
                slot.children.push(Node::new(step.label()));
                slot = slot.children.last_mut().expect("just pushed");
            }
            node
        };

        let mut join = Node::new(format!(
            "Join [{}; T = {}{}]",
            self.algorithm,
            self.threads,
            self.join_rows.map_or(String::new(), |r| format!("; out = {r} rows")),
        ));
        if let Some(placement) = &self.placement {
            join = join.child(Node::new(placement.label()));
        }
        if let Some(anytime) = &self.anytime {
            join = join.child(Node::new(anytime.label()));
        }
        for snapshot in &self.snapshots {
            join = join.child(Node::new(snapshot.label()));
        }
        if let Some(kernel) = &self.sort_kernel {
            join = join.child(Node::new(format!("SortKernel [{kernel}]")));
        }
        if let Some(cache) = &self.run_cache {
            join = join.child(Node::new(cache.label()));
        }
        if let Some(p) = self.phases_ms {
            join = join.child(Node::new(format!(
                "Phases [1: {:.3} ms, 2: {:.3} ms, 3: {:.3} ms, 4: {:.3} ms]",
                p[0], p[1], p[2], p[3],
            )));
            // Per-tuple rates, grouped by what the phases do: sort =
            // run production (phases 1 + 3), scatter = the partition
            // pass (phase 2), merge = the join itself (phase 4). The
            // normalizer is the tuples that entered the join, so the
            // numbers compare directly with the sort bench's ns/tuple.
            if let Some(tuples) = self.phase_tuples {
                if tuples > 0 {
                    let per = |ms: f64| ms * 1e6 / tuples as f64;
                    join = join.child(Node::new(format!(
                        "Phases [sort={:.1} ns/t, scatter={:.1} ns/t, merge={:.1} ns/t]",
                        per(p[0] + p[2]),
                        per(p[1]),
                        per(p[3]),
                    )));
                }
            }
        }
        join =
            join.child(side("private (R)", &self.private)).child(side("public (S)", &self.public));

        let aggregate = Node::new(format!("Aggregate [{}]", self.aggregate)).child(join);
        let root = match self.queue_wait_ms {
            Some(wait) => {
                let counters = self.queue_counters.map_or(String::new(), |c| {
                    format!(
                        "; shed={}, deadline_missed={}, partial={}, degraded={}",
                        c.shed, c.deadline_missed, c.partial_answers, c.degraded
                    )
                });
                Node::new(format!("Queue [wait = {wait:.3} ms{counters}]")).child(aggregate)
            }
            None => aggregate,
        };

        let mut out = String::new();
        out.push_str(&root.label);
        out.push('\n');
        root.render("", &mut out);
        out
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryPlan {
        QueryPlan {
            algorithm: "P-MPSM".into(),
            threads: 8,
            private: vec![
                PlanStep::Scan { relation: "orders".into(), rows: 1000 },
                PlanStep::Select { rows_out: 500 },
            ],
            public: vec![
                PlanStep::Scan { relation: "lineitem".into(), rows: 4000 },
                PlanStep::Select { rows_out: 4000 },
            ],
            aggregate: "max(R.payload + S.payload)".into(),
            join_rows: Some(2000),
            queue_wait_ms: None,
            queue_counters: None,
            anytime: None,
            phases_ms: None,
            phase_tuples: None,
            sort_kernel: None,
            placement: None,
            run_cache: None,
            snapshots: vec![],
        }
    }

    #[test]
    fn explain_contains_every_node() {
        let text = sample().explain();
        for needle in [
            "Aggregate [max(R.payload + S.payload)]",
            "Join [P-MPSM; T = 8; out = 2000 rows]",
            "Scan orders [1000 rows]",
            "Select [out = 500 rows]",
            "Scan lineitem [4000 rows]",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn display_matches_explain() {
        let p = sample();
        assert_eq!(format!("{p}"), p.explain());
    }

    #[test]
    fn join_rows_are_optional() {
        let mut p = sample();
        p.join_rows = None;
        assert!(p.explain().contains("Join [P-MPSM; T = 8]"));
    }

    #[test]
    fn exact_tree_at_depth_three() {
        // Three steps per side: the tree must stay aligned below depth
        // 2 (each nested step indents exactly one level under its
        // parent, and the `│` continuation of the non-last side runs
        // the full depth of its subtree).
        let mut p = sample();
        p.private.push(PlanStep::Select { rows_out: 100 });
        p.public.push(PlanStep::Select { rows_out: 7 });
        let expected = "\
Aggregate [max(R.payload + S.payload)]
└─ Join [P-MPSM; T = 8; out = 2000 rows]
   ├─ private (R):
   │  └─ Select [out = 100 rows]
   │     └─ Select [out = 500 rows]
   │        └─ Scan orders [1000 rows]
   └─ public (S):
      └─ Select [out = 7 rows]
         └─ Select [out = 4000 rows]
            └─ Scan lineitem [4000 rows]
";
        assert_eq!(p.explain(), expected);
    }

    #[test]
    fn scheduled_plans_render_queue_and_phases() {
        let mut p = sample();
        p.queue_wait_ms = Some(1.25);
        p.phases_ms = Some([0.5, 1.0, 0.25, 2.0]);
        let text = p.explain();
        assert!(text.starts_with("Queue [wait = 1.250 ms]\n└─ Aggregate"), "{text}");
        assert!(
            text.contains("      ├─ Phases [1: 0.500 ms, 2: 1.000 ms, 3: 0.250 ms, 4: 2.000 ms]"),
            "{text}"
        );
        // The queue node shifts the whole pipeline one level deeper;
        // the private side keeps its continuation bars intact.
        assert!(text.contains("      ├─ private (R):\n      │  └─ Select"), "{text}");
    }

    #[test]
    fn phase_rates_row_renders_exactly() {
        // The per-tuple row: sort = phases 1 + 3, scatter = phase 2,
        // merge = phase 4, normalized by the tuples entering the join.
        // 0.5 ms + 0.25 ms over 50k tuples = 15.0 ns/t, and so on.
        let mut p = sample();
        p.phases_ms = Some([0.5, 1.0, 0.25, 2.0]);
        p.phase_tuples = Some(50_000);
        p.sort_kernel = Some("bitonic, block=64, default".into());
        let expected = "\
Aggregate [max(R.payload + S.payload)]
└─ Join [P-MPSM; T = 8; out = 2000 rows]
   ├─ SortKernel [bitonic, block=64, default]
   ├─ Phases [1: 0.500 ms, 2: 1.000 ms, 3: 0.250 ms, 4: 2.000 ms]
   ├─ Phases [sort=15.0 ns/t, scatter=20.0 ns/t, merge=40.0 ns/t]
   ├─ private (R):
   │  └─ Select [out = 500 rows]
   │     └─ Scan orders [1000 rows]
   └─ public (S):
      └─ Select [out = 4000 rows]
         └─ Scan lineitem [4000 rows]
";
        assert_eq!(p.explain(), expected);
        // Zero tuples (empty inputs) suppresses the rate row instead of
        // rendering infinities.
        p.phase_tuples = Some(0);
        assert!(!p.explain().contains("ns/t"), "{}", p.explain());
        // Without the normalizer the ms row still renders alone.
        p.phase_tuples = None;
        assert!(p.explain().contains("Phases [1: 0.500 ms"), "{}", p.explain());
        assert!(!p.explain().contains("ns/t"));
    }

    #[test]
    fn queue_counters_render_exactly() {
        // Satellite: the SLA counters join the Queue row. Without the
        // optional counters the row keeps its pre-existing shape (the
        // `scheduled_plans_render_queue_and_phases` test above), so old
        // exact-output expectations stay valid.
        let mut p = sample();
        p.queue_wait_ms = Some(0.75);
        p.queue_counters =
            Some(QueueCounters { shed: 2, deadline_missed: 1, partial_answers: 3, degraded: 4 });
        let text = p.explain();
        assert!(
            text.starts_with(
                "Queue [wait = 0.750 ms; shed=2, deadline_missed=1, partial=3, degraded=4]\n"
            ),
            "{text}"
        );
        // Counters without a queue wait never render: the Queue row
        // exists only for scheduled executions.
        p.queue_wait_ms = None;
        assert!(!p.explain().contains("shed="), "{}", p.explain());
    }

    #[test]
    fn anytime_node_renders_exactly() {
        let mut p = sample();
        p.anytime = Some(AnytimeInfo {
            coverage: 0.625,
            merged_runs: 5,
            total_runs: 8,
            complete: false,
            capped: false,
            ranges: vec![],
        });
        let expected = "\
Aggregate [max(R.payload + S.payload)]
└─ Join [P-MPSM; T = 8; out = 2000 rows]
   ├─ Anytime [coverage=62.5%, runs=5/8, partial]
   ├─ private (R):
   │  └─ Select [out = 500 rows]
   │     └─ Scan orders [1000 rows]
   └─ public (S):
      └─ Select [out = 4000 rows]
         └─ Scan lineitem [4000 rows]
";
        assert_eq!(p.explain(), expected);
        p.anytime = Some(AnytimeInfo {
            coverage: 1.0,
            merged_runs: 8,
            total_runs: 8,
            complete: true,
            capped: false,
            ranges: vec![],
        });
        assert!(
            p.explain().contains("Anytime [coverage=100.0%, runs=8/8, complete]"),
            "{}",
            p.explain()
        );
        // A rows_cap stop renders as "capped", not "partial": the
        // caller got every row it asked for.
        p.anytime = Some(AnytimeInfo {
            coverage: 0.4,
            merged_runs: 3,
            total_runs: 8,
            complete: false,
            capped: true,
            ranges: vec![],
        });
        assert!(
            p.explain().contains("Anytime [coverage=40.0%, runs=3/8, capped]"),
            "{}",
            p.explain()
        );
    }

    #[test]
    fn anytime_key_range_histogram_renders_on_the_anytime_row() {
        use mpsm_core::join::anytime::KeyRangeCoverage;

        let kr = |lo: u64, hi: u64, fraction: f64| KeyRangeCoverage { lo, hi, fraction };
        let mut p = sample();
        p.anytime = Some(AnytimeInfo {
            coverage: 0.5,
            merged_runs: 1,
            total_runs: 3,
            complete: false,
            capped: false,
            ranges: vec![kr(0, 99, 1.0), kr(100, 199, 0.5), kr(200, 299, 0.0)],
        });
        assert!(
            p.explain().contains(
                "Anytime [coverage=50.0%, runs=1/3, partial] \
                 ranges[0..99=100% 100..199=50% 200..299=0%]"
            ),
            "{}",
            p.explain()
        );
        // A wide machine elides the histogram tail instead of wrapping
        // the row.
        p.anytime = Some(AnytimeInfo {
            coverage: 1.0,
            merged_runs: 10,
            total_runs: 10,
            complete: true,
            capped: false,
            ranges: (0..10u64).map(|i| kr(i * 10, i * 10 + 9, 1.0)).collect(),
        });
        let text = p.explain();
        assert!(!text.contains("90..99=100%"), "tail elided: {text}");
        assert!(text.contains(" +2]"), "elision count renders: {text}");
    }

    #[test]
    fn placement_node_renders_exactly() {
        // The acceptance shape of the NUMA refactor: a pinned query's
        // EXPLAIN carries the Placement node directly under the join.
        let mut p = sample();
        p.placement = Some(PlacementInfo {
            node: Some(2),
            local_pct: 97.7,
            remote_pct: 2.3,
            flat: false,
            arena_bytes: vec![],
        });
        let expected = "\
Aggregate [max(R.payload + S.payload)]
└─ Join [P-MPSM; T = 8; out = 2000 rows]
   ├─ Placement [node=2, local=97.7%, remote=2.3%]
   ├─ private (R):
   │  └─ Select [out = 500 rows]
   │     └─ Scan orders [1000 rows]
   └─ public (S):
      └─ Select [out = 4000 rows]
         └─ Scan lineitem [4000 rows]
";
        assert_eq!(p.explain(), expected);
        // A spread (unpinned) execution names no node.
        p.placement = Some(PlacementInfo {
            node: None,
            local_pct: 31.25,
            remote_pct: 68.75,
            flat: false,
            arena_bytes: vec![],
        });
        assert!(
            p.explain().contains("Placement [node=spread, local=31.2%, remote=68.8%]"),
            "{}",
            p.explain()
        );
        // A single-node topology renders the explicit flat placement.
        p.placement = Some(PlacementInfo {
            node: Some(0),
            local_pct: 100.0,
            remote_pct: 0.0,
            flat: true,
            arena_bytes: vec![],
        });
        assert!(
            p.explain().contains("Placement [flat, local=100.0%, remote=0.0%]"),
            "{}",
            p.explain()
        );
    }

    #[test]
    fn placement_arena_bytes_render_exactly() {
        // The carried PR 5 EXPLAIN item: per-node arena residency joins
        // the Placement row. One entry per node, slash-separated, in
        // node-id order.
        let mut p = sample();
        p.placement = Some(PlacementInfo {
            node: Some(1),
            local_pct: 92.5,
            remote_pct: 7.5,
            flat: false,
            arena_bytes: vec![0, 16384, 0, 512],
        });
        let expected = "\
Aggregate [max(R.payload + S.payload)]
└─ Join [P-MPSM; T = 8; out = 2000 rows]
   ├─ Placement [node=1, local=92.5%, remote=7.5%, arena=0/16384/0/512 B]
   ├─ private (R):
   │  └─ Select [out = 500 rows]
   │     └─ Scan orders [1000 rows]
   └─ public (S):
      └─ Select [out = 4000 rows]
         └─ Scan lineitem [4000 rows]
";
        assert_eq!(p.explain(), expected);
        // A flat machine has one node and therefore one arena figure.
        p.placement = Some(PlacementInfo {
            node: Some(0),
            local_pct: 100.0,
            remote_pct: 0.0,
            flat: true,
            arena_bytes: vec![4096],
        });
        assert!(
            p.explain().contains("Placement [flat, local=100.0%, remote=0.0%, arena=4096 B]"),
            "{}",
            p.explain()
        );
    }

    #[test]
    fn snapshot_rows_render_exactly() {
        let mut p = sample();
        p.snapshots = vec![
            SnapshotInfo { side: "R", base_version: 3, delta: 4 },
            SnapshotInfo { side: "S", base_version: 1, delta: 0 },
        ];
        let expected = "\
Aggregate [max(R.payload + S.payload)]
└─ Join [P-MPSM; T = 8; out = 2000 rows]
   ├─ Snapshot [R: base=v3, delta=4 tuples]
   ├─ Snapshot [S: base=v1, delta=0 tuples]
   ├─ private (R):
   │  └─ Select [out = 500 rows]
   │     └─ Scan orders [1000 rows]
   └─ public (S):
      └─ Select [out = 4000 rows]
         └─ Scan lineitem [4000 rows]
";
        assert_eq!(p.explain(), expected);
    }

    #[test]
    fn run_cache_node_renders_exactly() {
        let mut p = sample();
        p.run_cache = Some(RunCacheInfo {
            r: RunCacheOutcome::Hit,
            s: RunCacheOutcome::Miss,
            hits: 3,
            misses: 2,
            evictions: 1,
        });
        let expected = "\
Aggregate [max(R.payload + S.payload)]
└─ Join [P-MPSM; T = 8; out = 2000 rows]
   ├─ RunCache [R=hit, S=miss; hits=3, misses=2, evictions=1]
   ├─ private (R):
   │  └─ Select [out = 500 rows]
   │     └─ Scan orders [1000 rows]
   └─ public (S):
      └─ Select [out = 4000 rows]
         └─ Scan lineitem [4000 rows]
";
        assert_eq!(p.explain(), expected);
        p.run_cache.as_mut().expect("set above").s = RunCacheOutcome::Bypass;
        assert!(p.explain().contains("RunCache [R=hit, S=bypass;"), "{}", p.explain());
    }

    #[test]
    fn empty_side_renders_just_the_label() {
        let mut p = sample();
        p.private.clear();
        let text = p.explain();
        assert!(text.contains("├─ private (R):\n"), "{text}");
    }
}
