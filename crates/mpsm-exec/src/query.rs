//! The paper's benchmark query, end to end (§5.1).
//!
//! ```sql
//! SELECT max(R.payload + S.payload)
//! FROM R, S
//! WHERE R.joinkey = S.joinkey
//! ```
//!
//! with optional selections on both inputs (the paper applies a
//! selection so "no referential integrity (foreign keys) or indexes
//! could be exploited").

use std::sync::Arc;
use std::time::{Duration, Instant};

use mpsm_core::context::ExecContext;
use mpsm_core::join::anytime::{
    merge_run_sets_anytime, merge_run_sets_anytime_capped, AnytimeOutcome, AnytimeToken,
};
use mpsm_core::join::delta::{merge_delta_sides_in, DeltaSide};
use mpsm_core::join::runs::{build_run_set, join_runs_in, RunsInput, SharedRunSet};
use mpsm_core::join::{JoinAlgorithm, PooledJoin};
use mpsm_core::sink::{CollectSink, MaxAggSink};
use mpsm_core::stats::{JoinStats, Phase};
use mpsm_core::worker::SharedWorkerPool;
use mpsm_core::Tuple;
use mpsm_numa::NumaBuf;

use crate::ops::{JoinOp, MaxPayloadSum, Select};
use crate::plan::{AnytimeInfo, PlacementInfo, PlanStep, QueryPlan, RunCacheInfo, RunCacheOutcome};
use crate::run_cache::{splitter_fingerprint, BuildPermit, Lookup, RunCache, RunKey};
use crate::scan::Relation;
use crate::session::{Predicate, QuerySpec};
use crate::snapshot::Snapshot;

/// Result of one paper-query execution.
#[derive(Debug, Clone)]
pub struct PaperQueryResult {
    /// `max(R.payload + S.payload)`, `None` if the join is empty.
    pub max_payload_sum: Option<u64>,
    /// Tuples surviving the R selection.
    pub r_selected: usize,
    /// Tuples surviving the S selection.
    pub s_selected: usize,
    /// Join phase statistics.
    pub stats: JoinStats,
    /// The executed plan, for EXPLAIN-style display.
    pub plan: QueryPlan,
    /// Joined `(key, r_payload, s_payload)` rows in key order, present
    /// only when the spec asked to collect them
    /// ([`QuerySpec::collect_rows`](crate::session::QuerySpec::collect_rows)).
    /// On a deadline-hit anytime query this is a key-order **prefix**
    /// of the full join (see [`mpsm_core::join::anytime`]).
    pub rows: Option<Vec<(u64, u64, u64)>>,
}

/// Run `scan → select → join → max` with the given join algorithm.
/// `threads` drives the parallel selections (the join uses its own
/// configuration).
pub fn paper_query<J, PR, PS>(
    r: &Relation,
    s: &Relation,
    r_pred: PR,
    s_pred: PS,
    algorithm: &J,
    threads: usize,
) -> PaperQueryResult
where
    J: JoinAlgorithm,
    PR: Fn(&Tuple) -> bool + Sync,
    PS: Fn(&Tuple) -> bool + Sync,
{
    let r_sel = Select::new(r, r_pred).execute(threads);
    let s_sel = Select::new(s, s_pred).execute(threads);
    let join = JoinOp::new(algorithm);
    let (max, stats) = MaxPayloadSum::over(&join, &r_sel, &s_sel);
    assemble(algorithm.name(), threads, r, s, r_sel.len(), s_sel.len(), max, stats)
}

/// [`paper_query`] with every parallel section — both selections and
/// all join phases — submitted to a caller-provided shared pool. The
/// pool's width is the degree of parallelism; no threads are spawned.
///
/// This is the execution path of the [`crate::sched`] scheduler: many
/// concurrent queries call this against the same pool, and their phases
/// interleave FIFO-fairly instead of oversubscribing the machine. The
/// returned plan carries the join's per-phase timings
/// ([`QueryPlan::phases_ms`]); the scheduler adds the queue wait.
pub fn paper_query_on<J, PR, PS>(
    pool: &SharedWorkerPool,
    r: &Relation,
    s: &Relation,
    r_pred: PR,
    s_pred: PS,
    algorithm: &J,
) -> PaperQueryResult
where
    J: PooledJoin,
    PR: Fn(&Tuple) -> bool + Sync,
    PS: Fn(&Tuple) -> bool + Sync,
{
    paper_query_in(&ExecContext::over_pool(pool), r, s, r_pred, s_pred, algorithm)
}

/// [`paper_query`] inside an [`ExecContext`] — the unified execution
/// path: selections and join phases run on the context's pool, run and
/// partition storage comes from its node-local arenas, and the plan's
/// `Placement` node reports which node the query was pinned to (if any)
/// plus the audited local/remote split of the join's memory traffic.
///
/// One context should serve one query (the scheduler derives a fresh
/// context per admitted query); reusing a context accumulates counters
/// across executions and the placement line reports the mix.
pub fn paper_query_in<J, PR, PS>(
    cx: &ExecContext,
    r: &Relation,
    s: &Relation,
    r_pred: PR,
    s_pred: PS,
    algorithm: &J,
) -> PaperQueryResult
where
    J: JoinAlgorithm,
    PR: Fn(&Tuple) -> bool + Sync,
    PS: Fn(&Tuple) -> bool + Sync,
{
    let r_sel = Select::new(r, r_pred).execute_in(cx);
    let s_sel = Select::new(s, s_pred).execute_in(cx);
    let join = JoinOp::new(algorithm);
    let (max, stats) = MaxPayloadSum::over_in(cx, &join, &r_sel, &s_sel);
    let mut out =
        assemble(algorithm.name(), cx.threads(), r, s, r_sel.len(), s_sel.len(), max, stats);
    out.plan.phases_ms = Some(out.stats.phases_ms());
    out.plan.phase_tuples = Some((r_sel.len() + s_sel.len()) as u64);
    out.plan.sort_kernel = Some(cx.sort_tuning().describe());
    out.plan.placement = Some(placement_of(cx));
    out
}

/// Derive the plan's `Placement` node from a context's audited memory
/// traffic.
fn placement_of(cx: &ExecContext) -> PlacementInfo {
    let remote = cx.counters().remote_fraction();
    PlacementInfo {
        node: cx.single_node().map(|n| n.0),
        local_pct: (1.0 - remote) * 100.0,
        remote_pct: remote * 100.0,
        flat: cx.topology().nodes <= 1,
        arena_bytes: cx.arena().stats().iter().map(|s| s.bytes).collect(),
    }
}

/// [`paper_query_in`] with a sorted-run cache consulted for both
/// unfiltered, catalog-registered inputs.
///
/// Per side, three outcomes (reported on the plan's `RunCache` node):
///
/// * **hit** — the cache holds the relation's public sorted runs for
///   this `(id, version, splitter fingerprint)` key; partition + sort
///   are skipped and the merge phase joins the cached runs directly.
/// * **miss** — no entry; the side is built from base tuples and, if
///   this query won the single-flight race, the produced runs are
///   published for later queries. Losing the race still executes
///   (uncached) — a key is never computed twice into one slot.
/// * **bypass** — the side is filtered or unregistered, so its runs
///   are query-specific and never touch the cache.
pub(crate) fn paper_query_cached(
    cx: &ExecContext,
    spec: &QuerySpec,
    cache: &Arc<RunCache>,
) -> PaperQueryResult {
    let config = spec.join.config();
    let radix_bits = config.radix_bits;
    let fingerprint = splitter_fingerprint(cx.threads(), radix_bits);

    let r_prep = prep_side(cx, &spec.r, &spec.r_pred, spec.r_filtered, cache, fingerprint);
    let s_prep = prep_side(cx, &spec.s, &spec.s_pred, spec.s_filtered, cache, fingerprint);
    let r_input = side_input(&r_prep, &spec.r);
    let s_input = side_input(&s_prep, &spec.s);

    let out = join_runs_in::<MaxAggSink>(cx, r_input, s_input, radix_bits);
    if let Some(permit) = r_prep.permit {
        permit.publish(out.r_runs.clone());
    }
    if let Some(permit) = s_prep.permit {
        permit.publish(out.s_runs.clone());
    }

    let mut result = assemble(
        spec.join.name(),
        cx.threads(),
        &spec.r,
        &spec.s,
        r_prep.rows,
        s_prep.rows,
        out.result,
        out.stats,
    );
    result.plan.phases_ms = Some(result.stats.phases_ms());
    result.plan.phase_tuples = Some((r_prep.rows + s_prep.rows) as u64);
    result.plan.sort_kernel = Some(cx.sort_tuning().describe());
    result.plan.placement = Some(placement_of(cx));
    let totals = cache.stats();
    result.plan.run_cache = Some(RunCacheInfo {
        r: r_prep.outcome,
        s: s_prep.outcome,
        hits: totals.hits,
        misses: totals.misses,
        evictions: totals.evictions,
    });
    result
}

/// One join input's cache disposition, resolved before the join runs.
struct SidePrep {
    /// Selected tuples, present only when the side is filtered.
    selected: Option<Vec<Tuple>>,
    /// Cached runs, present only on a hit.
    cached: Option<SharedRunSet>,
    /// Single-flight build permit, present only when this query won a
    /// miss and must publish the runs it builds.
    permit: Option<BuildPermit>,
    /// What the plan's `RunCache` node reports for this side.
    outcome: RunCacheOutcome,
    /// Rows entering the join from this side.
    rows: usize,
}

fn prep_side(
    cx: &ExecContext,
    rel: &Relation,
    pred: &Predicate,
    filtered: bool,
    cache: &Arc<RunCache>,
    fingerprint: u64,
) -> SidePrep {
    if filtered {
        // Query-specific rows: runs would be useless to other queries.
        let selected = Select::new(rel, |t| pred(t)).execute_in(cx);
        let rows = selected.len();
        return SidePrep {
            selected: Some(selected),
            cached: None,
            permit: None,
            outcome: RunCacheOutcome::Bypass,
            rows,
        };
    }
    if rel.version() == 0 {
        // Unregistered relations have no identity to key on.
        return SidePrep {
            selected: None,
            cached: None,
            permit: None,
            outcome: RunCacheOutcome::Bypass,
            rows: rel.len(),
        };
    }
    let key = RunKey { relation: rel.id(), version: rel.version(), fingerprint };
    match cache.lookup(key) {
        Lookup::Hit(runs) => SidePrep {
            selected: None,
            cached: Some(runs),
            permit: None,
            outcome: RunCacheOutcome::Hit,
            rows: rel.len(),
        },
        Lookup::Miss(permit) => SidePrep {
            selected: None,
            cached: None,
            permit: Some(permit),
            outcome: RunCacheOutcome::Miss,
            rows: rel.len(),
        },
        // Another query is building this key right now; run uncached
        // rather than wait (never compute twice into one slot).
        Lookup::Busy => SidePrep {
            selected: None,
            cached: None,
            permit: None,
            outcome: RunCacheOutcome::Miss,
            rows: rel.len(),
        },
    }
}

/// The paper query over consistent snapshots with live deltas — the
/// HTAP read path. Each side joins as base runs (served from the run
/// cache keyed on the snapshot's **base** version, so writes never
/// poison a key) plus an on-the-fly-sorted run of the delta's added
/// tuples, with deleted/overwritten base keys masked inside the merge.
/// Taken whenever at least one captured snapshot has a non-zero delta
/// watermark; clean queries stay on [`paper_query_cached`] /
/// [`paper_query_in`] unchanged.
pub(crate) fn paper_query_snapshot(cx: &ExecContext, spec: &QuerySpec) -> PaperQueryResult {
    let radix_bits = spec.join.config().radix_bits;
    let fingerprint = splitter_fingerprint(cx.threads(), radix_bits);
    let wall = Instant::now();
    let mut stats = JoinStats::new(cx.threads());

    let r_prep = prep_snapshot_side(
        cx,
        true,
        &spec.r,
        spec.r_snapshot.as_ref(),
        &spec.r_pred,
        spec.r_filtered,
        spec.cache.as_ref(),
        fingerprint,
        radix_bits,
        &mut stats,
    );
    let s_prep = prep_snapshot_side(
        cx,
        false,
        &spec.s,
        spec.s_snapshot.as_ref(),
        &spec.s_pred,
        spec.s_filtered,
        spec.cache.as_ref(),
        fingerprint,
        radix_bits,
        &mut stats,
    );

    let r_side = DeltaSide { base: &r_prep.base, delta: r_prep.delta.as_ref(), mask: &r_prep.mask };
    let s_side = DeltaSide { base: &s_prep.base, delta: s_prep.delta.as_ref(), mask: &s_prep.mask };
    let (r_rows, s_rows) = (r_side.logical_tuples(), s_side.logical_tuples());
    let max = merge_delta_sides_in::<MaxAggSink>(cx, r_side, s_side, &mut stats);
    stats.wall = wall.elapsed();

    let mut result =
        assemble(spec.join.name(), cx.threads(), &spec.r, &spec.s, r_rows, s_rows, max, stats);
    result.plan.phases_ms = Some(result.stats.phases_ms());
    result.plan.phase_tuples = Some((r_rows + s_rows) as u64);
    result.plan.sort_kernel = Some(cx.sort_tuning().describe());
    result.plan.placement = Some(placement_of(cx));
    if let Some(cache) = &spec.cache {
        let totals = cache.stats();
        result.plan.run_cache = Some(RunCacheInfo {
            r: r_prep.outcome,
            s: s_prep.outcome,
            hits: totals.hits,
            misses: totals.misses,
            evictions: totals.evictions,
        });
    }
    result
}

/// One snapshot side, resolved to merge inputs: base runs, the sorted
/// delta run, and the base-key mask.
struct SnapPrep {
    base: SharedRunSet,
    delta: Option<NumaBuf<Tuple>>,
    mask: Vec<u64>,
    outcome: RunCacheOutcome,
}

#[allow(clippy::too_many_arguments)]
fn prep_snapshot_side(
    cx: &ExecContext,
    private: bool,
    rel: &Relation,
    snapshot: Option<&Snapshot>,
    pred: &Predicate,
    filtered: bool,
    cache: Option<&Arc<RunCache>>,
    fingerprint: u64,
    radix_bits: u32,
    stats: &mut JoinStats,
) -> SnapPrep {
    let (partition_phase, sort_phase) =
        if private { (Phase::Two, Phase::Three) } else { (Phase::One, Phase::One) };
    let plain = |tuples: &[Tuple], stats: &mut JoinStats| {
        Arc::new(build_run_set(cx, tuples, radix_bits, partition_phase, sort_phase, stats))
    };
    if filtered {
        // Query-specific rows: materialize the snapshot's literal
        // state (base + visible delta), filter, and build private
        // runs. Never cached — same bypass rule as the clean path.
        let source = match snapshot {
            Some(snapshot) => snapshot.materialize(),
            None => rel.tuples().to_vec(),
        };
        let selected: Vec<Tuple> = source.into_iter().filter(|t| pred(t)).collect();
        return SnapPrep {
            base: plain(&selected, stats),
            delta: None,
            mask: vec![],
            outcome: RunCacheOutcome::Bypass,
        };
    }
    let Some(snapshot) = snapshot else {
        // The side lives outside any catalog: no snapshot, no cache
        // identity — build from its raw tuples.
        return SnapPrep {
            base: plain(rel.tuples(), stats),
            delta: None,
            mask: vec![],
            outcome: RunCacheOutcome::Bypass,
        };
    };

    let overlay = snapshot.overlay();
    let base_rel = snapshot.base();
    let (base, outcome) = match cache {
        Some(cache) if base_rel.version() > 0 => {
            let key = RunKey { relation: base_rel.id(), version: base_rel.version(), fingerprint };
            match cache.lookup(key) {
                Lookup::Hit(runs) => (runs, RunCacheOutcome::Hit),
                Lookup::Miss(permit) => {
                    let built = plain(base_rel.tuples(), stats);
                    permit.publish(built.clone());
                    (built, RunCacheOutcome::Miss)
                }
                // Someone else is building this base; don't wait.
                Lookup::Busy => (plain(base_rel.tuples(), stats), RunCacheOutcome::Miss),
            }
        }
        _ => (plain(base_rel.tuples(), stats), RunCacheOutcome::Bypass),
    };

    // The delta's adds become one extra sorted run — tiny, so one
    // worker sorts it with the tuned kernels; its cost books under the
    // side's sort phase.
    let delta = if overlay.adds.is_empty() {
        None
    } else {
        let sort_start = Instant::now();
        let mut scope = cx.scope(0);
        let run = cx.sorted_run(0, &overlay.adds, &mut scope);
        let mut durations = vec![Duration::ZERO; cx.threads()];
        durations[0] = sort_start.elapsed();
        stats.record_phase(sort_phase, &durations);
        cx.record(sort_phase, [scope.finish()]);
        Some(run)
    };
    SnapPrep { base, delta, mask: overlay.masked, outcome }
}

/// The paper query with an interruptible merge phase — the SLA-serving
/// path. Both sides resolve to sorted run sets (cache-served when
/// clean and registered), then [`merge_run_sets_anytime`] joins them
/// under `token`: when the token expires mid-merge the query returns
/// best-so-far results plus a coverage estimate on the plan's
/// `Anytime` row instead of failing.
///
/// With [`QuerySpec::collect_rows`](crate::session::QuerySpec::collect_rows)
/// set, the joined rows come back sorted by `(key, r_payload,
/// s_payload)` and truncated to the cap; a partial answer's rows are a
/// key-order prefix of the full join's (the anytime contract). The cap
/// is *streaming*: the merge stops between blocks once enough rows
/// exist, so a capped query never pays for rows its caller discards —
/// its coverage (and its aggregate, computed over the merged-so-far
/// rows before truncation) reflects the key prefix actually merged.
pub fn paper_query_anytime(
    cx: &ExecContext,
    spec: &QuerySpec,
    token: &AnytimeToken,
) -> PaperQueryResult {
    let radix_bits = spec.join.config().radix_bits;
    let fingerprint = splitter_fingerprint(cx.threads(), radix_bits);
    let wall = Instant::now();
    let mut stats = JoinStats::new(cx.threads());

    let r_side = resolve_anytime_side(
        cx,
        true,
        &spec.r,
        spec.r_snapshot.as_ref(),
        &spec.r_pred,
        spec.r_filtered,
        spec.cache.as_ref(),
        fingerprint,
        radix_bits,
        &mut stats,
    );
    let s_side = resolve_anytime_side(
        cx,
        false,
        &spec.s,
        spec.s_snapshot.as_ref(),
        &spec.s_pred,
        spec.s_filtered,
        spec.cache.as_ref(),
        fingerprint,
        radix_bits,
        &mut stats,
    );

    fn info<R>(out: &AnytimeOutcome<R>) -> AnytimeInfo {
        AnytimeInfo {
            coverage: out.coverage(),
            merged_runs: out.merged_runs,
            total_runs: out.total_runs,
            complete: out.complete,
            capped: out.capped,
            ranges: out.ranges.clone(),
        }
    }
    let (anytime, rows, max) = match spec.rows_cap {
        Some(cap) => {
            // Streaming cap: the merge itself stops (between key-aligned
            // blocks) once at least `cap` rows exist, instead of
            // materializing the whole join and truncating. The coverage
            // on the Anytime row therefore reports how little of the
            // input a capped query actually had to merge.
            let out = merge_run_sets_anytime_capped::<CollectSink>(
                cx,
                &r_side.runs,
                &s_side.runs,
                token,
                Some(cap),
                &mut stats,
            );
            let anytime = info(&out);
            let mut rows = out.result;
            rows.sort_unstable();
            let max = rows.iter().map(|&(_, rp, sp)| rp.wrapping_add(sp)).max();
            rows.truncate(cap);
            (anytime, Some(rows), max)
        }
        None => {
            let out = merge_run_sets_anytime::<MaxAggSink>(
                cx,
                &r_side.runs,
                &s_side.runs,
                token,
                &mut stats,
            );
            (info(&out), None, out.result)
        }
    };
    stats.wall = wall.elapsed();

    let mut result = assemble(
        spec.join.name(),
        cx.threads(),
        &spec.r,
        &spec.s,
        r_side.rows,
        s_side.rows,
        max,
        stats,
    );
    result.rows = rows;
    result.plan.anytime = Some(anytime);
    result.plan.phases_ms = Some(result.stats.phases_ms());
    result.plan.phase_tuples = Some((r_side.rows + s_side.rows) as u64);
    result.plan.sort_kernel = Some(cx.sort_tuning().describe());
    result.plan.placement = Some(placement_of(cx));
    if let Some(cache) = &spec.cache {
        let totals = cache.stats();
        result.plan.run_cache = Some(RunCacheInfo {
            r: r_side.outcome,
            s: s_side.outcome,
            hits: totals.hits,
            misses: totals.misses,
            evictions: totals.evictions,
        });
    }
    result
}

/// The result of an anytime query whose deadline had already passed
/// when a coordinator popped it: an empty partial (coverage 0, zero
/// runs merged) produced without touching the inputs. The scheduler
/// uses this to honour an SLA that expired in the queue without
/// spending merge work it is certain to discard.
pub(crate) fn expired_in_queue_result(cx: &ExecContext, spec: &QuerySpec) -> PaperQueryResult {
    let stats = JoinStats::new(cx.threads());
    let mut result = assemble(spec.join.name(), cx.threads(), &spec.r, &spec.s, 0, 0, None, stats);
    result.rows = spec.rows_cap.map(|_| Vec::new());
    result.plan.anytime = Some(AnytimeInfo {
        coverage: 0.0,
        merged_runs: 0,
        total_runs: 0,
        complete: false,
        capped: false,
        ranges: vec![],
    });
    result
}

/// One anytime join input, resolved to sorted runs.
struct AnytimeSide {
    runs: SharedRunSet,
    outcome: RunCacheOutcome,
    /// Rows entering the join from this side.
    rows: usize,
}

#[allow(clippy::too_many_arguments)]
fn resolve_anytime_side(
    cx: &ExecContext,
    private: bool,
    rel: &Relation,
    snapshot: Option<&Snapshot>,
    pred: &Predicate,
    filtered: bool,
    cache: Option<&Arc<RunCache>>,
    fingerprint: u64,
    radix_bits: u32,
    stats: &mut JoinStats,
) -> AnytimeSide {
    let (partition_phase, sort_phase) =
        if private { (Phase::Two, Phase::Three) } else { (Phase::One, Phase::One) };
    let build = |tuples: &[Tuple], stats: &mut JoinStats| {
        Arc::new(build_run_set(cx, tuples, radix_bits, partition_phase, sort_phase, stats))
    };
    let dirty = snapshot.is_some_and(|s| s.delta_len() > 0);
    if filtered || dirty {
        // Filtered rows are query-specific and a dirty snapshot's
        // literal state has no cacheable version: both materialize and
        // build fresh runs (correctness over reuse — the interruptible
        // path favours a well-defined prefix contract over the
        // delta-merge optimization).
        let selected: Vec<Tuple> = match (snapshot, filtered) {
            (Some(snapshot), true) => {
                snapshot.materialize().into_iter().filter(|t| pred(t)).collect()
            }
            (Some(snapshot), false) => snapshot.materialize(),
            (None, _) => Select::new(rel, |t| pred(t)).execute_in(cx),
        };
        let rows = selected.len();
        return AnytimeSide {
            runs: build(&selected, stats),
            outcome: RunCacheOutcome::Bypass,
            rows,
        };
    }
    // Clean side: the snapshot's base (or the raw handle) is the
    // canonical tuple source, and its version keys the run cache.
    let base_rel: &Relation = match snapshot {
        Some(snapshot) => snapshot.base(),
        None => rel,
    };
    let rows = base_rel.len();
    let (runs, outcome) = match cache {
        Some(cache) if base_rel.version() > 0 => {
            let key = RunKey { relation: base_rel.id(), version: base_rel.version(), fingerprint };
            match cache.lookup(key) {
                Lookup::Hit(runs) => (runs, RunCacheOutcome::Hit),
                Lookup::Miss(permit) => {
                    let built = build(base_rel.tuples(), stats);
                    permit.publish(built.clone());
                    (built, RunCacheOutcome::Miss)
                }
                // Someone else is building this base; don't wait.
                Lookup::Busy => (build(base_rel.tuples(), stats), RunCacheOutcome::Miss),
            }
        }
        _ => (build(base_rel.tuples(), stats), RunCacheOutcome::Bypass),
    };
    AnytimeSide { runs, outcome, rows }
}

fn side_input<'a>(prep: &'a SidePrep, rel: &'a Relation) -> RunsInput<'a> {
    match (&prep.cached, &prep.selected) {
        (Some(runs), _) => RunsInput::Runs(runs.clone()),
        (None, Some(sel)) => RunsInput::Tuples(sel),
        (None, None) => RunsInput::Tuples(rel.tuples()),
    }
}

#[allow(clippy::too_many_arguments)]
fn assemble(
    algorithm: &str,
    threads: usize,
    r: &Relation,
    s: &Relation,
    r_selected: usize,
    s_selected: usize,
    max: Option<u64>,
    stats: JoinStats,
) -> PaperQueryResult {
    let plan = QueryPlan {
        algorithm: algorithm.to_string(),
        threads,
        private: vec![
            PlanStep::Scan { relation: r.name().to_string(), rows: r.len() },
            PlanStep::Select { rows_out: r_selected },
        ],
        public: vec![
            PlanStep::Scan { relation: s.name().to_string(), rows: s.len() },
            PlanStep::Select { rows_out: s_selected },
        ],
        aggregate: "max(R.payload + S.payload)".to_string(),
        join_rows: None,
        queue_wait_ms: None,
        queue_counters: None,
        anytime: None,
        phases_ms: None,
        phase_tuples: None,
        sort_kernel: None,
        placement: None,
        run_cache: None,
        snapshots: vec![],
    };
    PaperQueryResult { max_payload_sum: max, r_selected, s_selected, stats, plan, rows: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsm_core::join::b_mpsm::BMpsmJoin;
    use mpsm_core::join::p_mpsm::PMpsmJoin;
    use mpsm_core::join::JoinConfig;

    fn rel(name: &str, n: u64) -> Relation {
        Relation::new(name, (0..n).map(|k| Tuple::new(k, k)).collect())
    }

    #[test]
    fn full_pipeline_on_known_data() {
        let r = rel("R", 100);
        let s = rel("S", 100);
        let algo = PMpsmJoin::new(JoinConfig::with_threads(4));
        let out = paper_query(&r, &s, |_| true, |_| true, &algo, 4);
        assert_eq!(out.r_selected, 100);
        assert_eq!(out.s_selected, 100);
        assert_eq!(out.max_payload_sum, Some(99 + 99));
    }

    #[test]
    fn selection_narrows_the_join() {
        let r = rel("R", 100);
        let s = rel("S", 100);
        let algo = BMpsmJoin::new(JoinConfig::with_threads(2));
        // Keep keys < 50 in R, keys >= 40 in S: overlap 40..50.
        let out = paper_query(&r, &s, |t| t.key < 50, |t| t.key >= 40, &algo, 2);
        assert_eq!(out.r_selected, 50);
        assert_eq!(out.s_selected, 60);
        assert_eq!(out.max_payload_sum, Some(49 + 49));
    }

    #[test]
    fn empty_join_returns_none() {
        let r = rel("R", 10);
        let s = rel("S", 10);
        let algo = PMpsmJoin::new(JoinConfig::with_threads(2));
        let out = paper_query(&r, &s, |t| t.key < 3, |t| t.key > 7, &algo, 2);
        assert_eq!(out.max_payload_sum, None);
    }

    #[test]
    fn plan_explains_the_pipeline() {
        let r = rel("R", 100);
        let s = rel("S", 200);
        let algo = PMpsmJoin::new(JoinConfig::with_threads(2));
        let out = paper_query(&r, &s, |t| t.key < 10, |_| true, &algo, 2);
        let text = out.plan.explain();
        assert!(text.contains("Join [P-MPSM; T = 2]"), "{text}");
        assert!(text.contains("Scan R [100 rows]"), "{text}");
        assert!(text.contains("Select [out = 10 rows]"), "{text}");
        assert!(text.contains("Scan S [200 rows]"), "{text}");
    }

    #[test]
    fn pooled_query_matches_spawning_query() {
        let r = rel("R", 400);
        let s = Relation::new("S", (0..1600u64).map(|i| Tuple::new(i % 400, i)).collect());
        let algo = PMpsmJoin::new(JoinConfig::with_threads(4));
        let spawning = paper_query(&r, &s, |t| t.key % 2 == 0, |_| true, &algo, 4);
        let pool = SharedWorkerPool::new(4);
        let pooled = paper_query_on(&pool, &r, &s, |t| t.key % 2 == 0, |_| true, &algo);
        assert_eq!(pooled.max_payload_sum, spawning.max_payload_sum);
        assert_eq!(pooled.r_selected, spawning.r_selected);
        assert_eq!(pooled.s_selected, spawning.s_selected);
        assert!(pooled.plan.phases_ms.is_some(), "pooled plans record phase timings");
        assert!(pool.phases_served() > 0, "all sections ran on the shared pool");
    }

    #[test]
    fn context_query_reports_placement() {
        use mpsm_numa::{NodeId, Topology};

        let r = rel("R", 300);
        let s = Relation::new("S", (0..1200u64).map(|i| Tuple::new(i % 300, i)).collect());
        let algo = PMpsmJoin::new(JoinConfig::with_threads(4));
        // Spread over the paper machine: workers on all four sockets.
        let cx = ExecContext::new(Topology::paper_machine(), 4);
        let out = paper_query_in(&cx, &r, &s, |_| true, |_| true, &algo);
        let placement = out.plan.placement.clone().expect("context queries report placement");
        assert_eq!(placement.node, None, "4 workers round-robin over 4 sockets");
        assert!(placement.remote_pct > 0.0, "cross-socket scatter traffic exists");
        assert!(out.plan.explain().contains("Placement [node=spread"), "{}", out.plan.explain());
        // Pinned to one node: everything except the interleaved
        // base-table reads is local, so locality beats the spread run.
        let pinned = cx.pinned_to(NodeId(1));
        let out = paper_query_in(&pinned, &r, &s, |_| true, |_| true, &algo);
        let pinned_placement = out.plan.placement.clone().expect("placement");
        assert_eq!(pinned_placement.node, Some(1));
        assert!(
            pinned_placement.local_pct > placement.local_pct,
            "pinned {} % vs spread {} %",
            pinned_placement.local_pct,
            placement.local_pct
        );
        assert!(out.plan.explain().contains("Placement [node=1, local="), "{}", out.plan.explain());
    }

    #[test]
    fn algorithms_agree_on_the_query() {
        let r = rel("R", 500);
        let s = Relation::new("S", (0..2000u64).map(|i| Tuple::new(i % 500, i)).collect());
        let p = PMpsmJoin::new(JoinConfig::with_threads(4));
        let b = BMpsmJoin::new(JoinConfig::with_threads(4));
        let out_p = paper_query(&r, &s, |_| true, |_| true, &p, 4);
        let out_b = paper_query(&r, &s, |_| true, |_| true, &b, 4);
        assert_eq!(out_p.max_payload_sum, out_b.max_payload_sum);
    }
}
