//! The sorted-run cache: cross-query reuse of MPSM's phase 1–3 output.
//!
//! The paper's §7 observes that the sorted runs an MPSM join produces
//! are a free by-product; this module keeps them. A [`RunCache`] maps
//! `(relation id, version, splitter fingerprint)` to the shared
//! [`SharedRunSet`] a previous query built, so a repeat query over an
//! unchanged relation skips partition + sort entirely and goes straight
//! to the merge phase.
//!
//! ## Key derivation
//!
//! [`RunKey`] combines the catalog identity of a relation — stable
//! `id` plus monotonic `version`, both stamped by
//! [`crate::session::Session::register`] — with a
//! [`splitter_fingerprint`]: an FNV-1a hash of the run-layout inputs
//! (worker count, radix bits, layout version). Two queries share runs
//! only if the same bytes would be partitioned the same way.
//!
//! ## Invalidation
//!
//! Three mechanisms, all cheap:
//! * **version keying** — re-registering a name bumps the version, so
//!   stale entries simply stop being addressable;
//!   [`RunCache::invalidate_relation`] additionally drops them eagerly.
//! * **TTL** — entries older than [`RunCacheConfig::ttl`] are treated
//!   as absent on lookup and swept opportunistically on publish (the
//!   datalevin `:expire-at` idiom: expiry enforced at read time, a
//!   sweeper reclaims space later).
//! * **byte budget** — publishing evicts least-recently-used `Ready`
//!   entries until the cache fits [`RunCacheConfig::byte_budget`]
//!   (the storage layer's bounded-frame idiom, upgraded FIFO → LRU).
//!
//! ## Single-flight
//!
//! The first miss installs a `Building` placeholder and receives a
//! [`BuildPermit`]; concurrent misses on the same key see the
//! placeholder and get [`Lookup::Busy`] — they run uncached rather
//! than duplicating the build into the same slot or blocking on a
//! possibly-slow builder. Dropping an unused permit (builder panicked
//! or bailed) removes the placeholder so the key can be built again.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mpsm_core::join::runs::SharedRunSet;

/// Tuning for a [`RunCache`].
#[derive(Debug, Clone)]
pub struct RunCacheConfig {
    /// Total bytes of run storage the cache may retain.
    pub byte_budget: usize,
    /// Age at which an entry stops being served.
    pub ttl: Duration,
}

impl Default for RunCacheConfig {
    fn default() -> Self {
        RunCacheConfig { byte_budget: 256 << 20, ttl: Duration::from_secs(600) }
    }
}

/// Bump when the run layout produced by
/// [`mpsm_core::join::runs::build_run_set`] changes incompatibly.
const RUN_LAYOUT_VERSION: u64 = 1;

/// FNV-1a over the inputs that determine a relation's run layout.
/// Runs built with a different worker count or radix width partition
/// the key domain differently and must not alias in the cache.
pub fn splitter_fingerprint(threads: usize, radix_bits: u32) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for word in [RUN_LAYOUT_VERSION, threads as u64, radix_bits as u64] {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Cache key: which relation bytes, partitioned how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Stable catalog id of the relation.
    pub relation: u64,
    /// Catalog version the runs were built from.
    pub version: u64,
    /// [`splitter_fingerprint`] of the layout parameters.
    pub fingerprint: u64,
}

#[derive(Debug)]
struct Entry {
    runs: SharedRunSet,
    bytes: usize,
    inserted_at: Instant,
    last_used: Instant,
}

#[derive(Debug)]
enum Slot {
    /// A permit holder is building this key right now.
    Building,
    /// Published runs.
    Ready(Entry),
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<RunKey, Slot>,
    /// Bytes held by `Ready` entries.
    bytes: usize,
}

/// Counter snapshot (see [`RunCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCacheStats {
    /// Lookups served from a `Ready` entry.
    pub hits: u64,
    /// Lookups that found nothing servable (includes `Busy`).
    pub misses: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Entries dropped because their TTL lapsed.
    pub expirations: u64,
    /// Run sets successfully published.
    pub inserts: u64,
    /// `Ready` entries currently resident.
    pub entries: usize,
    /// Bytes currently resident.
    pub bytes: usize,
}

/// The outcome of [`RunCache::lookup`].
pub enum Lookup {
    /// Cached runs, ready to merge.
    Hit(SharedRunSet),
    /// Nothing cached — the caller should build and publish through
    /// the permit.
    Miss(BuildPermit),
    /// Another query is building this key; run uncached, do not
    /// publish.
    Busy,
}

/// Cross-query cache of sorted run sets. See the module docs.
#[derive(Debug)]
pub struct RunCache {
    config: RunCacheConfig,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    expirations: AtomicU64,
    inserts: AtomicU64,
}

impl RunCache {
    /// Create a cache with `config`.
    pub fn new(config: RunCacheConfig) -> Self {
        RunCache {
            config,
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expirations: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// Look up `key`, claiming the build on a miss (single-flight).
    pub fn lookup(self: &Arc<Self>, key: RunKey) -> Lookup {
        let now = Instant::now();
        let mut inner = self.inner.lock().expect("run cache poisoned");
        match inner.map.get_mut(&key) {
            Some(Slot::Ready(entry)) => {
                if now.duration_since(entry.inserted_at) >= self.config.ttl {
                    let bytes = entry.bytes;
                    inner.map.remove(&key);
                    inner.bytes -= bytes;
                    self.expirations.fetch_add(1, Ordering::Relaxed);
                    // Fall through to a miss: this query rebuilds.
                } else {
                    entry.last_used = now;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Lookup::Hit(Arc::clone(&entry.runs));
                }
            }
            Some(Slot::Building) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Lookup::Busy;
            }
            None => {}
        }
        inner.map.insert(key, Slot::Building);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Lookup::Miss(BuildPermit { cache: Arc::clone(self), key, armed: true })
    }

    /// Eagerly drop every entry of `relation` older than
    /// `keep_version` (called by `register` on a version bump;
    /// `Building` placeholders are left for their permits to resolve).
    pub fn invalidate_relation(&self, relation: u64, keep_version: u64) {
        let mut inner = self.inner.lock().expect("run cache poisoned");
        let stale: Vec<RunKey> = inner
            .map
            .iter()
            .filter(|(k, slot)| {
                k.relation == relation && k.version < keep_version && matches!(slot, Slot::Ready(_))
            })
            .map(|(k, _)| *k)
            .collect();
        for key in stale {
            if let Some(Slot::Ready(entry)) = inner.map.remove(&key) {
                inner.bytes -= entry.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Counter + occupancy snapshot.
    pub fn stats(&self) -> RunCacheStats {
        let inner = self.inner.lock().expect("run cache poisoned");
        RunCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expirations: self.expirations.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: inner.map.values().filter(|s| matches!(s, Slot::Ready(_))).count(),
            bytes: inner.bytes,
        }
    }

    /// The configured budget/TTL.
    pub fn config(&self) -> &RunCacheConfig {
        &self.config
    }

    fn publish_inner(&self, key: RunKey, runs: SharedRunSet) {
        let now = Instant::now();
        let bytes = runs.bytes();
        let mut inner = self.inner.lock().expect("run cache poisoned");
        // Opportunistic TTL sweep (the datalevin sweeper, run at write
        // time instead of on a background thread).
        let expired: Vec<RunKey> = inner
            .map
            .iter()
            .filter(|(_, slot)| match slot {
                Slot::Ready(e) => now.duration_since(e.inserted_at) >= self.config.ttl,
                Slot::Building => false,
            })
            .map(|(k, _)| *k)
            .collect();
        for k in expired {
            if let Some(Slot::Ready(e)) = inner.map.remove(&k) {
                inner.bytes -= e.bytes;
                self.expirations.fetch_add(1, Ordering::Relaxed);
            }
        }
        if bytes > self.config.byte_budget {
            // The set alone busts the budget: drop the placeholder and
            // give up rather than evicting the whole cache for it.
            inner.map.remove(&key);
            return;
        }
        // LRU eviction until the new set fits.
        while inner.bytes + bytes > self.config.byte_budget {
            let victim = inner
                .map
                .iter()
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready(e) => Some((*k, e.last_used)),
                    Slot::Building => None,
                })
                .min_by_key(|&(_, used)| used)
                .map(|(k, _)| k);
            let Some(victim) = victim else { break };
            if let Some(Slot::Ready(e)) = inner.map.remove(&victim) {
                inner.bytes -= e.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.bytes += bytes;
        inner.map.insert(key, Slot::Ready(Entry { runs, bytes, inserted_at: now, last_used: now }));
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    fn abandon(&self, key: RunKey) {
        let mut inner = self.inner.lock().expect("run cache poisoned");
        if let Some(Slot::Building) = inner.map.get(&key) {
            inner.map.remove(&key);
        }
    }
}

/// The exclusive right to populate one cache slot, handed out by
/// [`RunCache::lookup`] on a miss. [`BuildPermit::publish`] fills the
/// slot; dropping the permit unfilled (panic, error path) releases it
/// so a later query can claim the build.
pub struct BuildPermit {
    cache: Arc<RunCache>,
    key: RunKey,
    armed: bool,
}

impl BuildPermit {
    /// Publish freshly built runs under the permit's key.
    pub fn publish(mut self, runs: SharedRunSet) {
        self.armed = false;
        self.cache.publish_inner(self.key, runs);
    }

    /// The key this permit claims.
    pub fn key(&self) -> RunKey {
        self.key
    }
}

impl Drop for BuildPermit {
    fn drop(&mut self) {
        if self.armed {
            self.cache.abandon(self.key);
        }
    }
}

impl std::fmt::Debug for BuildPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuildPermit").field("key", &self.key).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsm_core::join::runs::RunSet;
    use mpsm_core::Tuple;
    use mpsm_numa::{NodeId, NumaBuf};

    fn run_set(tuples: usize) -> SharedRunSet {
        let data: Vec<Tuple> = (0..tuples as u64).map(|k| Tuple::new(k, k)).collect();
        Arc::new(RunSet::new(vec![NumaBuf::from_vec(NodeId(0), data)]))
    }

    fn key(relation: u64, version: u64) -> RunKey {
        RunKey { relation, version, fingerprint: splitter_fingerprint(4, 10) }
    }

    #[test]
    fn miss_then_publish_then_hit() {
        let cache = Arc::new(RunCache::new(RunCacheConfig::default()));
        let Lookup::Miss(permit) = cache.lookup(key(1, 1)) else {
            panic!("first lookup must miss");
        };
        permit.publish(run_set(100));
        match cache.lookup(key(1, 1)) {
            Lookup::Hit(runs) => assert_eq!(runs.total_tuples(), 100),
            _ => panic!("second lookup must hit"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, 100 * std::mem::size_of::<Tuple>());
    }

    #[test]
    fn building_slot_reports_busy_until_resolved() {
        let cache = Arc::new(RunCache::new(RunCacheConfig::default()));
        let Lookup::Miss(permit) = cache.lookup(key(1, 1)) else { panic!() };
        assert!(matches!(cache.lookup(key(1, 1)), Lookup::Busy), "single-flight");
        permit.publish(run_set(10));
        assert!(matches!(cache.lookup(key(1, 1)), Lookup::Hit(_)));
    }

    #[test]
    fn dropping_a_permit_releases_the_slot() {
        let cache = Arc::new(RunCache::new(RunCacheConfig::default()));
        let Lookup::Miss(permit) = cache.lookup(key(1, 1)) else { panic!() };
        drop(permit);
        assert!(matches!(cache.lookup(key(1, 1)), Lookup::Miss(_)), "slot released");
    }

    #[test]
    fn zero_ttl_expires_immediately() {
        let cache = Arc::new(RunCache::new(RunCacheConfig {
            ttl: Duration::ZERO,
            ..RunCacheConfig::default()
        }));
        let Lookup::Miss(permit) = cache.lookup(key(1, 1)) else { panic!() };
        permit.publish(run_set(10));
        assert!(matches!(cache.lookup(key(1, 1)), Lookup::Miss(_)), "expired on read");
        assert_eq!(cache.stats().expirations, 1);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let tuple = std::mem::size_of::<Tuple>();
        let cache = Arc::new(RunCache::new(RunCacheConfig {
            byte_budget: 250 * tuple,
            ttl: Duration::from_secs(600),
        }));
        for rel in 1..=2u64 {
            let Lookup::Miss(p) = cache.lookup(key(rel, 1)) else { panic!() };
            p.publish(run_set(100));
        }
        // Touch relation 1 so relation 2 is the LRU victim.
        assert!(matches!(cache.lookup(key(1, 1)), Lookup::Hit(_)));
        let Lookup::Miss(p) = cache.lookup(key(3, 1)) else { panic!() };
        p.publish(run_set(100));
        assert_eq!(cache.stats().evictions, 1);
        assert!(matches!(cache.lookup(key(1, 1)), Lookup::Hit(_)), "recently used survives");
        assert!(matches!(cache.lookup(key(3, 1)), Lookup::Hit(_)), "new entry resident");
        assert!(!matches!(cache.lookup(key(2, 1)), Lookup::Hit(_)), "LRU victim gone");
    }

    #[test]
    fn oversized_sets_are_not_cached() {
        let tuple = std::mem::size_of::<Tuple>();
        let cache = Arc::new(RunCache::new(RunCacheConfig {
            byte_budget: 10 * tuple,
            ttl: Duration::from_secs(600),
        }));
        let Lookup::Miss(p) = cache.lookup(key(1, 1)) else { panic!() };
        p.publish(run_set(100));
        assert_eq!(cache.stats().inserts, 0);
        assert!(matches!(cache.lookup(key(1, 1)), Lookup::Miss(_)));
    }

    #[test]
    fn invalidate_relation_drops_only_older_versions() {
        let cache = Arc::new(RunCache::new(RunCacheConfig::default()));
        for version in 1..=3u64 {
            let Lookup::Miss(p) = cache.lookup(key(7, version)) else { panic!() };
            p.publish(run_set(10));
        }
        let Lookup::Miss(p) = cache.lookup(key(8, 1)) else { panic!() };
        p.publish(run_set(10));
        cache.invalidate_relation(7, 3);
        assert!(matches!(cache.lookup(key(7, 3)), Lookup::Hit(_)), "current version kept");
        assert!(matches!(cache.lookup(key(8, 1)), Lookup::Hit(_)), "other relations kept");
        assert!(!matches!(cache.lookup(key(7, 1)), Lookup::Hit(_)));
        assert!(!matches!(cache.lookup(key(7, 2)), Lookup::Hit(_)));
    }

    #[test]
    fn fingerprint_separates_layouts() {
        assert_ne!(splitter_fingerprint(4, 10), splitter_fingerprint(8, 10));
        assert_ne!(splitter_fingerprint(4, 10), splitter_fingerprint(4, 11));
        assert_eq!(splitter_fingerprint(4, 10), splitter_fingerprint(4, 10));
    }
}
