//! Base relations.

use mpsm_core::Tuple;

/// A named, in-memory base table of join tuples.
///
/// Registered relations additionally carry a catalog identity: a
/// stable `id` shared by every version of the same name, and a
/// monotonic `version` bumped on each re-registration. The pair is
/// what cache keys and invalidation hang off — an unregistered
/// relation reports `(0, 0)` and is never cached.
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    tuples: Vec<Tuple>,
    id: u64,
    version: u64,
}

impl Relation {
    /// Create a relation from tuples (unregistered: no identity yet).
    pub fn new(name: impl Into<String>, tuples: Vec<Tuple>) -> Self {
        Relation { name: name.into(), tuples, id: 0, version: 0 }
    }

    /// The relation's name (for plan display).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stable catalog id (0 = not registered with any session).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Monotonic catalog version (0 = not registered; bumped every
    /// time the name is re-registered).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Stamp the catalog identity onto this relation (done once by
    /// [`crate::session::Session::register`]).
    pub(crate) fn with_identity(mut self, id: u64, version: u64) -> Self {
        self.id = id;
        self.version = version;
        self
    }

    /// The stored tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_basics() {
        let r = Relation::new("orders", vec![Tuple::new(1, 2)]);
        assert_eq!(r.name(), "orders");
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        assert_eq!(r.tuples()[0], Tuple::new(1, 2));
    }

    #[test]
    fn empty_relation() {
        let r = Relation::new("empty", vec![]);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn unregistered_relations_have_no_identity() {
        let r = Relation::new("raw", vec![]);
        assert_eq!((r.id(), r.version()), (0, 0));
        let stamped = r.with_identity(3, 2);
        assert_eq!((stamped.id(), stamped.version()), (3, 2));
    }
}
