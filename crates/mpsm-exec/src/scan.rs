//! Base relations.

use mpsm_core::Tuple;

/// A named, in-memory base table of join tuples.
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Create a relation from tuples.
    pub fn new(name: impl Into<String>, tuples: Vec<Tuple>) -> Self {
        Relation { name: name.into(), tuples }
    }

    /// The relation's name (for plan display).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stored tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_basics() {
        let r = Relation::new("orders", vec![Tuple::new(1, 2)]);
        assert_eq!(r.name(), "orders");
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        assert_eq!(r.tuples()[0], Tuple::new(1, 2));
    }

    #[test]
    fn empty_relation() {
        let r = Relation::new("empty", vec![]);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }
}
