//! The concurrent query scheduler: many paper queries, one shared
//! worker pool.
//!
//! The MPSM paper assumes a join owns the whole machine; a system
//! serving many clients cannot — concurrent callers of
//! [`paper_query`](crate::query::paper_query) would each spawn their
//! own workers and oversubscribe every core. The scheduler inverts
//! that: it provisions **one** [`SharedWorkerPool`] and admits
//! queries against it.
//!
//! * **Batched admission** — [`Scheduler::submit`] never touches the
//!   scheduler's main queue lock: it appends to a cheap pending buffer
//!   and returns. Coordinators drain up to
//!   [`SchedulerConfig::admission_batch`] pending submissions per main
//!   lock acquisition, so a thundering herd of submitters amortizes the
//!   admission scan instead of serializing on it.
//! * **Degrade, don't reject** — at most `max_in_flight` queries
//!   execute concurrently and up to `queue_capacity` more wait at full
//!   service; beyond that, admission *degrades* instead of rejecting: an
//!   overflow query (or the youngest queued query of a strictly lower
//!   [`Priority`] class, when the arrival outranks it) is admitted with
//!   a forced tight anytime budget, so it returns a coverage-stamped
//!   partial answer instead of an error.
//! * **Phase-granular fairness** — an executing query submits its
//!   selections and join phases to the shared pool one at a time; the
//!   pool's FIFO turnstile admits competitors between those phases, so
//!   a large query cannot monopolize the workers while a small one
//!   starves.
//! * **Asynchronous results** — [`Scheduler::submit`] returns a
//!   [`QueryTicket`] immediately; poll it with [`QueryTicket::status`]
//!   / [`QueryTicket::try_result`] or block on [`QueryTicket::wait`].
//! * **Isolation** — a query whose predicate (or join phase) panics
//!   fails only its own ticket ([`QueryError::Panicked`]); the pool,
//!   the coordinators, and every other in-flight query keep running.
//! * **Observability** — each result's plan reports queue wait and
//!   per-phase timings (rendered by EXPLAIN), and
//!   [`Scheduler::metrics`] aggregates submission/completion counters
//!   and queue latency across the scheduler's lifetime.
//!
//! ```
//! use mpsm_exec::sched::{Scheduler, SchedulerConfig};
//! use mpsm_exec::session::QuerySpec;
//! use mpsm_exec::Relation;
//! use mpsm_core::Tuple;
//! use std::sync::Arc;
//!
//! // 2 shared workers, at most 2 queries executing, 8 queued.
//! let scheduler = Scheduler::new(SchedulerConfig::new(2).max_in_flight(2).queue_capacity(8));
//! let r = Arc::new(Relation::new("R", (0..100u64).map(|k| Tuple::new(k, k)).collect()));
//! let s = Arc::new(Relation::new("S", (0..100u64).map(|k| Tuple::new(k, k)).collect()));
//!
//! // Five concurrent joins over two workers — more than the pool
//! // width; the scheduler interleaves their phases.
//! let tickets: Vec<_> = (0..5u64)
//!     .map(|i| {
//!         let spec = QuerySpec::join(&r, &s).filter_r(move |t| t.key >= i);
//!         scheduler.submit(spec).expect("admission rejected")
//!     })
//!     .collect();
//! for ticket in tickets {
//!     let out = ticket.wait().expect("query failed");
//!     assert_eq!(out.result.max_payload_sum, Some(99 + 99));
//! }
//! assert_eq!(scheduler.metrics().completed, 5);
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mpsm_core::context::ExecContext;
use mpsm_core::join::anytime::AnytimeToken;
use mpsm_core::worker::SharedWorkerPool;
use mpsm_numa::{NodeId, Topology};

use crate::plan::QueueCounters;
use crate::query::PaperQueryResult;
use crate::run_cache::RunCache;
use crate::session::QuerySpec;

/// Admission priority class of a query. Orders the backlog: a
/// coordinator always pops the highest class first (FIFO within a
/// class), and when the queue overflows an arriving query may *degrade*
/// the youngest queued query of a strictly lower class instead of
/// being degraded itself — load degrades batch work before interactive
/// work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Bulk/background work: popped last, shed first under overload.
    Batch,
    /// The default class (every pre-SLA submission behaves exactly as
    /// before: FIFO, rejected — never shed — on overflow).
    #[default]
    Normal,
    /// Latency-sensitive work: popped first; sheds queued `Normal` and
    /// `Batch` queries when the backlog is full.
    Interactive,
}

/// Sizing of a [`Scheduler`]: pool width, concurrency budget, queue
/// bound, and the (simulated) machine topology queries are placed on.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Width of the shared worker pool (the machine share this
    /// scheduler may use; every query's phases run at this
    /// parallelism).
    pub pool_threads: usize,
    /// Queries executing concurrently (coordinator threads). More
    /// in-flight queries means better pool utilization between a
    /// competitor's phases but more peak memory for materialized
    /// selections and runs.
    pub max_in_flight: usize,
    /// Submissions allowed to wait beyond the executing ones before
    /// [`Scheduler::submit`] starts rejecting.
    pub queue_capacity: usize,
    /// The NUMA topology of the machine the scheduler places queries
    /// on. With a multi-node topology the scheduler is **NUMA-affine**:
    /// each admitted query is pinned to the least-loaded node, so its
    /// runs, partitions, and phases stay on one socket while concurrent
    /// queries use the others. The default (a flat single-node machine)
    /// disables placement.
    pub topology: Topology,
    /// Run the sort-kernel microbench sweep once at startup and use the
    /// winning [`mpsm_core::sort::SortTuning`] for every query this
    /// scheduler executes. Off by default: the sweep costs a few hundred
    /// milliseconds and makes the chosen kernel machine-dependent, so
    /// tests and short-lived schedulers stick with the fixed default.
    pub auto_tune_sort: bool,
    /// Deadlines below this are rejected at submit with
    /// [`SubmitError::DeadlineInfeasible`] — the service's floor on
    /// what it will even attempt (a zero deadline is always
    /// infeasible). Deterministic by design: no execution-time
    /// estimation, so admission decisions are reproducible.
    pub min_feasible_deadline: Duration,
    /// Bound on the drop-time drain: [`Scheduler`]'s `Drop` waits this
    /// long for admitted queries to finish, then abandons the (wedged)
    /// coordinator threads instead of hanging shutdown. Queries still
    /// queued behind a wedged coordinator never complete their tickets
    /// in that case — bounded shutdown is the contract a server needs.
    pub drain_timeout: Duration,
    /// Pending submissions a coordinator admits per main-lock
    /// acquisition. Submitters only touch the cheap pending buffer, so
    /// this is the batching factor between submission concurrency and
    /// the admission scan.
    pub admission_batch: usize,
    /// Anytime block budget forced onto a query admitted in *degraded*
    /// mode (overflow beyond `max_in_flight + queue_capacity`). Each
    /// unit is one key-aligned merge block
    /// ([`mpsm_core::join::anytime::ANYTIME_BLOCK_TUPLES`] tuples), so
    /// the budget bounds a degraded query's phase-4 work while
    /// guaranteeing a non-empty, coverage-stamped prefix answer.
    pub degraded_budget: u64,
}

impl SchedulerConfig {
    /// A scheduler over `pool_threads` shared workers, with 2 queries
    /// in flight, a 16-deep admission queue, and a flat (non-NUMA)
    /// topology.
    pub fn new(pool_threads: usize) -> Self {
        SchedulerConfig {
            pool_threads,
            max_in_flight: 2,
            queue_capacity: 16,
            topology: Topology::flat(pool_threads as u32),
            auto_tune_sort: false,
            min_feasible_deadline: Duration::ZERO,
            drain_timeout: Duration::from_secs(60),
            admission_batch: 32,
            degraded_budget: 4,
        }
    }

    /// Builder-style override of the in-flight budget.
    pub fn max_in_flight(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one in-flight query");
        self.max_in_flight = n;
        self
    }

    /// Builder-style override of the queue bound (0 = execute-or-reject).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Builder-style override of the machine topology (enables
    /// NUMA-affine query placement when it has more than one node).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Builder-style opt-in to per-machine sort-kernel auto-tuning
    /// (see [`SchedulerConfig::auto_tune_sort`]).
    pub fn auto_tune_sort(mut self, enabled: bool) -> Self {
        self.auto_tune_sort = enabled;
        self
    }

    /// Builder-style override of the deadline feasibility floor.
    pub fn min_feasible_deadline(mut self, floor: Duration) -> Self {
        self.min_feasible_deadline = floor;
        self
    }

    /// Builder-style override of the drop-time drain bound.
    pub fn drain_timeout(mut self, timeout: Duration) -> Self {
        self.drain_timeout = timeout;
        self
    }

    /// Builder-style override of the per-lock admission batch.
    pub fn admission_batch(mut self, n: usize) -> Self {
        assert!(n > 0, "admission must make progress");
        self.admission_batch = n;
        self
    }

    /// Builder-style override of the degraded-mode anytime budget.
    pub fn degraded_budget(mut self, blocks: u64) -> Self {
        assert!(blocks > 0, "a degraded query must be allowed at least one block");
        self.degraded_budget = blocks;
        self
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
    }
}

/// Sizing of the background delta compactor a [`Scheduler`] may run
/// (see [`Scheduler::start_compactor`]). Compaction folds a relation's
/// delta log into a new sorted base version off the query path; the
/// knobs bound how eagerly and how much.
#[derive(Debug, Clone)]
pub struct CompactionConfig {
    /// Delta ops that make a relation *eligible* for a background
    /// sweep. Writers below the threshold only pay the (tiny) merge at
    /// read time; the periodic sweep ignores them.
    pub threshold: usize,
    /// How long the compactor sleeps between sweeps when nobody nudges
    /// it (writers nudge as soon as a delta crosses the threshold).
    pub interval: Duration,
    /// Budget per sweep: at most this many relations are folded before
    /// the compactor goes back to sleep, so a burst of dirty relations
    /// cannot occupy the pool indefinitely.
    pub max_per_sweep: usize,
    /// After publishing a new base version, immediately build and cache
    /// its sorted runs (single-flighted through the run cache), so the
    /// next analytic query starts from a warm hit instead of a miss.
    pub warm_cache: bool,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig {
            threshold: 4096,
            interval: Duration::from_millis(50),
            max_per_sweep: 4,
            warm_cache: true,
        }
    }
}

impl CompactionConfig {
    /// A config whose background sweep never triggers on its own:
    /// compaction happens only through explicit calls (e.g.
    /// `Session::compact`). Deterministic tests and delta-fraction
    /// benchmarks use this to hold the delta where they put it.
    pub fn manual() -> Self {
        CompactionConfig::default().threshold(usize::MAX).interval(Duration::from_secs(3600))
    }

    /// Builder-style override of the eligibility threshold.
    pub fn threshold(mut self, ops: usize) -> Self {
        self.threshold = ops;
        self
    }

    /// Builder-style override of the sweep interval.
    pub fn interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Builder-style override of the per-sweep budget.
    pub fn max_per_sweep(mut self, n: usize) -> Self {
        assert!(n > 0, "a sweep must be allowed to compact something");
        self.max_per_sweep = n;
        self
    }

    /// Builder-style override of run-cache warming.
    pub fn warm_cache(mut self, enabled: bool) -> Self {
        self.warm_cache = enabled;
        self
    }
}

/// What the background compactor runs each sweep. Implemented by the
/// session's shared catalog; kept as a trait so the scheduler owns the
/// *thread* without owning (or even knowing about) the catalog — no
/// reference cycle between `Session` and `Scheduler`.
pub trait CompactionTask: Send + Sync {
    /// Fold eligible deltas per `config`; returns how many relations
    /// were compacted (folded into the scheduler's `compactions`
    /// metric).
    fn compact_pending(&self, cx: &ExecContext, config: &CompactionConfig) -> usize;
}

/// Why a submission was not admitted. Overload is *not* a reason:
/// since degrade-don't-reject, a full queue admits the query in
/// degraded mode (forced tight anytime budget) instead of rejecting it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The scheduler is shutting down and accepts no new work.
    ShuttingDown,
    /// The submitted deadline is below the scheduler's
    /// [`SchedulerConfig::min_feasible_deadline`] floor (or zero):
    /// admission refuses SLAs it cannot possibly honor instead of
    /// queueing work guaranteed to return an empty partial.
    DeadlineInfeasible {
        /// The deadline the submission asked for.
        deadline: Duration,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::ShuttingDown => write!(f, "scheduler is shutting down"),
            SubmitError::DeadlineInfeasible { deadline } => {
                write!(f, "deadline of {deadline:?} is below the feasibility floor")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a submitted query produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The submission was never admitted (blocking convenience paths
    /// fold [`SubmitError`] into this).
    Rejected(SubmitError),
    /// The query panicked while executing (e.g. a predicate or a join
    /// phase); other queries are unaffected.
    Panicked(String),
    /// The query was evicted from the admission queue by a
    /// higher-priority arrival while the backlog was full. The
    /// scheduler no longer produces this — overload *degrades* queries
    /// (forced tight anytime budget) instead of shedding them — but the
    /// variant (and its stable wire code) is kept so old clients still
    /// decode it.
    Shed,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Rejected(e) => write!(f, "query rejected: {e}"),
            QueryError::Panicked(msg) => write!(f, "query panicked: {msg}"),
            QueryError::Shed => write!(f, "query shed by a higher-priority arrival"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A completed scheduled query: the paper-query result plus the
/// scheduling times (also folded into the result's EXPLAIN plan).
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The query result, with [`crate::plan::QueryPlan::queue_wait_ms`]
    /// and [`crate::plan::QueryPlan::phases_ms`] populated.
    pub result: PaperQueryResult,
    /// Time spent waiting in the admission queue.
    pub queue_wait: Duration,
    /// Execution wall time (first selection through aggregate).
    pub execution: Duration,
}

/// Where a submitted query currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// Waiting in the admission queue.
    Queued,
    /// Executing on the shared pool.
    Running,
    /// Finished (result or error available).
    Done,
}

enum TicketState {
    Queued,
    Running,
    // Boxed: a QueryOutput (plan + stats) is ~300 bytes, the other
    // variants are empty.
    Done(Box<Result<QueryOutput, QueryError>>),
}

struct TicketCell {
    state: Mutex<TicketState>,
    cv: Condvar,
}

impl TicketCell {
    fn set(&self, state: TicketState) {
        *self.state.lock().expect("ticket poisoned") = state;
        self.cv.notify_all();
    }
}

/// A futures-style handle to one submitted query: poll with
/// [`QueryTicket::status`] / [`QueryTicket::try_result`], or block on
/// [`QueryTicket::wait`].
pub struct QueryTicket {
    id: u64,
    cell: Arc<TicketCell>,
}

impl QueryTicket {
    /// The query's scheduler-assigned id (also the owner id tagging its
    /// phases on the shared pool).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Non-blocking status probe.
    pub fn status(&self) -> QueryStatus {
        match *self.cell.state.lock().expect("ticket poisoned") {
            TicketState::Queued => QueryStatus::Queued,
            TicketState::Running => QueryStatus::Running,
            TicketState::Done(_) => QueryStatus::Done,
        }
    }

    /// The result, if the query already finished (clones; the ticket
    /// stays usable).
    pub fn try_result(&self) -> Option<Result<QueryOutput, QueryError>> {
        match &*self.cell.state.lock().expect("ticket poisoned") {
            TicketState::Done(result) => Some(result.as_ref().clone()),
            _ => None,
        }
    }

    /// Block until the query finishes and take the result.
    pub fn wait(self) -> Result<QueryOutput, QueryError> {
        let mut state = self.cell.state.lock().expect("ticket poisoned");
        loop {
            match &*state {
                TicketState::Done(result) => return result.as_ref().clone(),
                _ => state = self.cell.cv.wait(state).expect("ticket poisoned"),
            }
        }
    }
}

/// Lifetime counters of a scheduler (monotonic; read at any time).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulerMetrics {
    /// Queries admitted (queued or executed).
    pub submitted: u64,
    /// Queries finished successfully.
    pub completed: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Queries that panicked while executing.
    pub panicked: u64,
    /// Total time admitted queries spent queued, in microseconds
    /// (divide by `completed + panicked` for the mean queue latency).
    pub queue_wait_micros: u64,
    /// Sorted-run cache hits (query sides served from cached runs);
    /// 0 when the scheduler has no attached cache.
    pub cache_hits: u64,
    /// Sorted-run cache misses (sides that had to partition + sort).
    pub cache_misses: u64,
    /// Cached run sets dropped by invalidation or the byte budget.
    pub cache_evictions: u64,
    /// Delta compactions performed (background sweeps and explicit
    /// [`crate::session::Session::compact`] calls alike).
    pub compactions: u64,
    /// Queued queries evicted by higher-priority arrivals under
    /// overload. Always 0 since degrade-don't-reject (kept for metric
    /// stability; see [`SchedulerMetrics::degraded`]).
    pub shed: u64,
    /// Queries that finished past their deadline — returned a partial
    /// answer, or a complete one later than promised.
    pub deadline_missed: u64,
    /// Queries that returned a partial (coverage < 100%) answer.
    pub partial_answers: u64,
    /// Queries admitted in degraded mode under overload: instead of a
    /// rejection or a shed, the query ran with a forced tight anytime
    /// budget and returned a coverage-stamped partial.
    pub degraded: u64,
}

#[derive(Default)]
struct AtomicMetrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    panicked: AtomicU64,
    queue_wait_micros: AtomicU64,
    compactions: AtomicU64,
    shed: AtomicU64,
    deadline_missed: AtomicU64,
    partial_answers: AtomicU64,
    degraded: AtomicU64,
}

struct QueuedQuery {
    id: u64,
    spec: QuerySpec,
    cell: Arc<TicketCell>,
    submitted_at: Instant,
    priority: Priority,
    /// Absolute deadline, fixed at submit time — the SLA covers queue
    /// wait, not just execution.
    deadline_at: Option<Instant>,
    /// Admitted under overload: the coordinator forces the configured
    /// tight anytime budget so the query returns a coverage-stamped
    /// partial instead of occupying the pool at full service.
    degraded: bool,
}

#[derive(Default)]
struct QueueState {
    backlog: VecDeque<QueuedQuery>,
    /// Queries popped by a coordinator and not yet finished.
    running: usize,
    shutdown: bool,
}

/// Submission staging buffer. [`Scheduler::submit`] only ever touches
/// this (cheap, short-hold) lock; coordinators drain it into the main
/// queue in batches. `shutdown` is set here first on drop, so a submit
/// serialized after it can never strand a ticket in a buffer nobody
/// will drain.
#[derive(Default)]
struct PendingState {
    queue: VecDeque<QueuedQuery>,
    shutdown: bool,
}

struct SchedCore {
    queue: Mutex<QueueState>,
    /// Submissions staged by [`Scheduler::submit`], waiting for a
    /// coordinator to admit them in a batch. Lock order where both are
    /// held: `queue` before `pending` (submit and drop hold only one at
    /// a time).
    pending: Mutex<PendingState>,
    work_cv: Condvar,
    metrics: AtomicMetrics,
    /// Full-service budget: `backlog + running` beyond
    /// `max_in_flight + queue_capacity` admits in degraded mode.
    max_in_flight: usize,
    queue_capacity: usize,
    min_feasible_deadline: Duration,
    drain_timeout: Duration,
    admission_batch: usize,
    degraded_budget: u64,
    /// Coordinator threads still alive, with a condvar `Drop` waits on
    /// (bounded) for the drain to finish.
    live_coordinators: Mutex<usize>,
    drained_cv: Condvar,
    next_id: AtomicU64,
    /// Queries currently pinned to each node (NUMA-affine placement
    /// picks the least-loaded one; empty when the topology is flat).
    /// One mutex guards the whole vector so a claim's min-scan and
    /// increment are atomic — two coordinators claiming concurrently
    /// must not both pick the same "least-loaded" node. Claims happen
    /// once per query, never inside a phase.
    node_load: Mutex<Vec<usize>>,
}

impl SchedCore {
    /// Claim the least-loaded node for one query (`None` on a flat
    /// topology). Ties break toward the lower node id, so a freshly
    /// started scheduler fills sockets 0, 1, 2, … in order.
    fn claim_node(&self) -> Option<NodeId> {
        let mut load = self.node_load.lock().expect("node load poisoned");
        if load.len() <= 1 {
            return None;
        }
        let node = load
            .iter()
            .enumerate()
            .min_by_key(|&(_, &l)| l)
            .map(|(n, _)| n)
            .expect("at least two nodes");
        load[node] += 1;
        Some(NodeId(node as u32))
    }

    fn release_node(&self, node: Option<NodeId>) {
        if let Some(node) = node {
            self.node_load.lock().expect("node load poisoned")[node.0 as usize] -= 1;
        }
    }

    /// Drain up to `admission_batch` staged submissions into the main
    /// backlog — one pending-lock acquisition, one pass of admission
    /// decisions, amortized over the whole batch. Called with the main
    /// queue lock held (the `queue → pending` side of the lock order).
    ///
    /// Overload policy, per drained query: while `backlog + running`
    /// is at the full-service budget, the arrival either *degrades* the
    /// youngest queued query of a strictly lower class (keeping its
    /// queue position) and is admitted at full service, or — when
    /// nothing outranks — is admitted degraded itself. Nothing is ever
    /// rejected or shed.
    fn admit_pending(&self, queue: &mut QueueState) {
        let batch: Vec<QueuedQuery> = {
            let mut pending = self.pending.lock().expect("pending buffer poisoned");
            let k = self.admission_batch.min(pending.queue.len());
            pending.queue.drain(..k).collect()
        };
        let budget = self.max_in_flight + self.queue_capacity;
        for mut job in batch {
            if queue.backlog.len() + queue.running >= budget {
                let victim = queue
                    .backlog
                    .iter_mut()
                    .enumerate()
                    .filter(|(_, q)| !q.degraded && q.priority < job.priority)
                    .min_by_key(|(i, q)| (q.priority, std::cmp::Reverse(*i)))
                    .map(|(_, q)| q);
                match victim {
                    Some(victim) => victim.degraded = true,
                    None => job.degraded = true,
                }
                self.metrics.degraded.fetch_add(1, Ordering::Relaxed);
            }
            queue.backlog.push_back(job);
        }
    }

    /// Whether any staged submissions are waiting for admission.
    fn has_pending(&self) -> bool {
        !self.pending.lock().expect("pending buffer poisoned").queue.is_empty()
    }
}

/// The multi-query scheduler. See the module docs for the model and a
/// runnable example; [`crate::session::Session`] layers a relation
/// catalog on top.
pub struct Scheduler {
    core: Arc<SchedCore>,
    cx: Arc<ExecContext>,
    coordinators: Vec<std::thread::JoinHandle<()>>,
    /// Sorted-run cache attached to every submitted spec (and read by
    /// [`Scheduler::metrics`]); `None` = every query runs uncached.
    run_cache: Option<Arc<RunCache>>,
    /// Background compactor thread plus its wake/shutdown control,
    /// when [`Scheduler::start_compactor`] attached one.
    compactor: Option<CompactorHandle>,
}

struct CompactorCtl {
    state: Mutex<CompactorState>,
    cv: Condvar,
}

#[derive(Default)]
struct CompactorState {
    shutdown: bool,
    /// Set by writers whose delta crossed the threshold; a sweep runs
    /// as soon as the compactor wakes instead of after a full interval.
    nudged: bool,
}

struct CompactorHandle {
    ctl: Arc<CompactorCtl>,
    thread: std::thread::JoinHandle<()>,
}

impl Scheduler {
    /// Provision the shared pool and its execution context, and start
    /// the coordinator threads.
    pub fn new(config: SchedulerConfig) -> Self {
        assert!(config.pool_threads > 0, "need at least one pool worker");
        assert!(config.max_in_flight > 0, "need at least one in-flight query");
        let mut cx = ExecContext::new(config.topology.clone(), config.pool_threads);
        if config.auto_tune_sort {
            // Tune on the scheduler's base context (not the global
            // `SortTuning::install`): derived per-query contexts inherit
            // it, while other schedulers and direct callers in the same
            // process keep the deterministic default.
            cx = cx.with_sort_tuning(mpsm_core::sort::SortTuning::auto_tune());
        }
        let cx = Arc::new(cx);
        let nodes = if config.topology.nodes > 1 { config.topology.nodes as usize } else { 0 };
        let core = Arc::new(SchedCore {
            queue: Mutex::new(QueueState::default()),
            pending: Mutex::new(PendingState::default()),
            work_cv: Condvar::new(),
            metrics: AtomicMetrics::default(),
            max_in_flight: config.max_in_flight,
            queue_capacity: config.queue_capacity,
            min_feasible_deadline: config.min_feasible_deadline,
            drain_timeout: config.drain_timeout,
            admission_batch: config.admission_batch,
            degraded_budget: config.degraded_budget,
            live_coordinators: Mutex::new(config.max_in_flight),
            drained_cv: Condvar::new(),
            next_id: AtomicU64::new(1),
            node_load: Mutex::new(vec![0; nodes]),
        });
        let coordinators = (0..config.max_in_flight)
            .map(|_| {
                let core = Arc::clone(&core);
                let cx = Arc::clone(&cx);
                std::thread::spawn(move || {
                    // The guard decrements the live count on any exit —
                    // orderly shutdown or a (should-be-impossible) panic
                    // — so the drop-time drain never waits on a corpse.
                    struct LiveGuard(Arc<SchedCore>);
                    impl Drop for LiveGuard {
                        fn drop(&mut self) {
                            let mut live =
                                self.0.live_coordinators.lock().expect("live count poisoned");
                            *live -= 1;
                            self.0.drained_cv.notify_all();
                        }
                    }
                    let _guard = LiveGuard(Arc::clone(&core));
                    coordinator_loop(&core, &cx);
                })
            })
            .collect();
        Scheduler { core, cx, coordinators, run_cache: None, compactor: None }
    }

    /// Attach a sorted-run cache: every subsequently submitted query
    /// consults it for unfiltered, catalog-registered inputs, and
    /// [`Scheduler::metrics`] reports its hit/miss/eviction counters.
    pub fn with_run_cache(mut self, cache: Arc<RunCache>) -> Self {
        self.run_cache = Some(cache);
        self
    }

    /// Start the background delta compactor. `task` (the session's
    /// catalog) is swept every [`CompactionConfig::interval`] — or
    /// immediately after [`Scheduler::nudge_compactor`] — and each
    /// relation it folds bumps the `compactions` metric. At most one
    /// compactor per scheduler; it drains on drop before the
    /// coordinators do.
    pub fn start_compactor(&mut self, task: Arc<dyn CompactionTask>, config: CompactionConfig) {
        assert!(self.compactor.is_none(), "compactor already started");
        let ctl = Arc::new(CompactorCtl {
            state: Mutex::new(CompactorState::default()),
            cv: Condvar::new(),
        });
        let thread = {
            let ctl = Arc::clone(&ctl);
            let core = Arc::clone(&self.core);
            // The compactor gets its own derived context so its
            // build/sort audits never leak into per-query placement
            // reports (owner id 0 is never assigned to a query).
            let cx = self.cx.for_owner(0);
            std::thread::spawn(move || compactor_loop(&ctl, &core, &cx, &*task, &config))
        };
        self.compactor = Some(CompactorHandle { ctl, thread });
    }

    /// Wake the compactor before its next interval tick (writers call
    /// this through the session once a delta crosses the threshold).
    /// A no-op when no compactor is attached.
    pub fn nudge_compactor(&self) {
        if let Some(compactor) = &self.compactor {
            compactor.ctl.state.lock().expect("compactor ctl poisoned").nudged = true;
            compactor.ctl.cv.notify_one();
        }
    }

    /// Fold `n` explicit compactions into the `compactions` metric
    /// (the session's manual [`crate::session::Session::compact`] path
    /// reports through this).
    pub(crate) fn note_compactions(&self, n: u64) {
        self.core.metrics.compactions.fetch_add(n, Ordering::Relaxed);
    }

    /// Submit a query. Returns a ticket immediately; the submission is
    /// staged in a cheap pending buffer and admitted by a coordinator
    /// in a batch (see [`SchedulerConfig::admission_batch`]).
    ///
    /// SLA admission: a deadline below the configured feasibility floor
    /// (or zero) is rejected outright with
    /// [`SubmitError::DeadlineInfeasible`] — the only load-independent
    /// refusal left. Overload never rejects: beyond the full-service
    /// budget a query is admitted in *degraded* mode (forced tight
    /// anytime budget, coverage-stamped partial answer), with
    /// higher-priority arrivals degrading lower-class backlog before
    /// themselves. The absolute deadline is fixed here, so queue wait
    /// counts against the SLA.
    pub fn submit(&self, mut spec: QuerySpec) -> Result<QueryTicket, SubmitError> {
        if spec.cache.is_none() {
            spec.cache = self.run_cache.clone();
        }
        if let Some(deadline) = spec.deadline {
            if deadline.is_zero() || deadline < self.core.min_feasible_deadline {
                self.core.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::DeadlineInfeasible { deadline });
            }
        }
        let priority = spec.priority;
        let deadline_at = spec.deadline.map(|d| Instant::now() + d);
        let id = self.core.next_id.fetch_add(1, Ordering::Relaxed);
        let cell =
            Arc::new(TicketCell { state: Mutex::new(TicketState::Queued), cv: Condvar::new() });
        {
            let mut pending = self.core.pending.lock().expect("pending buffer poisoned");
            if pending.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            pending.queue.push_back(QueuedQuery {
                id,
                spec,
                cell: Arc::clone(&cell),
                submitted_at: Instant::now(),
                priority,
                deadline_at,
                degraded: false,
            });
        }
        self.core.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        // A brief main-lock acquisition (no admission work) before the
        // notify: it serializes with a coordinator between its
        // empty-check and its wait, so the wakeup cannot be lost.
        drop(self.core.queue.lock().expect("scheduler queue poisoned"));
        self.core.work_cv.notify_one();
        Ok(QueryTicket { id, cell })
    }

    /// The shared pool (width, phase counters, tracing).
    pub fn pool(&self) -> &SharedWorkerPool {
        self.cx.pool()
    }

    /// The scheduler's base execution context (topology, placement,
    /// arena). Each admitted query derives its own context from this
    /// one, so per-query audits do not accumulate here.
    pub fn context(&self) -> &ExecContext {
        &self.cx
    }

    /// Snapshot of the lifetime counters (cache counters are zero when
    /// no run cache is attached).
    pub fn metrics(&self) -> SchedulerMetrics {
        let m = &self.core.metrics;
        let cache = self.run_cache.as_ref().map(|c| c.stats()).unwrap_or_default();
        SchedulerMetrics {
            submitted: m.submitted.load(Ordering::Relaxed),
            completed: m.completed.load(Ordering::Relaxed),
            rejected: m.rejected.load(Ordering::Relaxed),
            panicked: m.panicked.load(Ordering::Relaxed),
            queue_wait_micros: m.queue_wait_micros.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            compactions: m.compactions.load(Ordering::Relaxed),
            shed: m.shed.load(Ordering::Relaxed),
            deadline_missed: m.deadline_missed.load(Ordering::Relaxed),
            partial_answers: m.partial_answers.load(Ordering::Relaxed),
            degraded: m.degraded.load(Ordering::Relaxed),
        }
    }

    /// Queries currently waiting for execution (staged for admission or
    /// already in the admission queue).
    pub fn queued(&self) -> usize {
        let backlog = self.core.queue.lock().expect("scheduler queue poisoned").backlog.len();
        backlog + self.core.pending.lock().expect("pending buffer poisoned").queue.len()
    }

    /// Queries currently executing on the shared pool.
    pub fn in_flight(&self) -> usize {
        self.core.queue.lock().expect("scheduler queue poisoned").running
    }
}

impl Drop for Scheduler {
    /// Graceful shutdown: the compactor exits first (no new versions
    /// appear under draining queries), then already-admitted queries
    /// (executing *and* queued) are drained to completion, then the
    /// coordinators exit.
    ///
    /// The drain is **bounded** by [`SchedulerConfig::drain_timeout`]:
    /// a coordinator wedged inside a query (a parked predicate, a
    /// livelocked phase) cannot hang shutdown. On timeout the wedged
    /// threads are abandoned — they hold `Arc`s of everything they
    /// touch, so this is leak-bounded, not unsound — and any queries
    /// still queued behind them never complete their tickets.
    fn drop(&mut self) {
        if let Some(compactor) = self.compactor.take() {
            compactor.ctl.state.lock().expect("compactor ctl poisoned").shutdown = true;
            compactor.ctl.cv.notify_all();
            let _ = compactor.thread.join();
        }
        // Pending buffer first: a submit serialized after this point
        // fails with ShuttingDown instead of staging a ticket the
        // draining coordinators might miss.
        self.core.pending.lock().expect("pending buffer poisoned").shutdown = true;
        self.core.queue.lock().expect("scheduler queue poisoned").shutdown = true;
        self.core.work_cv.notify_all();
        let deadline = Instant::now() + self.core.drain_timeout;
        let mut live = self.core.live_coordinators.lock().expect("live count poisoned");
        while *live > 0 {
            let Some(left) =
                deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero())
            else {
                break;
            };
            live = self.core.drained_cv.wait_timeout(live, left).expect("live count poisoned").0;
        }
        let drained = *live == 0;
        drop(live);
        if drained {
            for handle in self.coordinators.drain(..) {
                let _ = handle.join();
            }
        } else {
            // Wedged coordinator: abandon the handles. Joining would
            // block forever; a bounded shutdown is the server contract.
            self.coordinators.clear();
        }
    }
}

fn compactor_loop(
    ctl: &CompactorCtl,
    core: &SchedCore,
    cx: &ExecContext,
    task: &dyn CompactionTask,
    config: &CompactionConfig,
) {
    loop {
        {
            let mut state = ctl.state.lock().expect("compactor ctl poisoned");
            if !state.nudged && !state.shutdown {
                let (next, _) =
                    ctl.cv.wait_timeout(state, config.interval).expect("compactor ctl poisoned");
                state = next;
            }
            if state.shutdown {
                return;
            }
            state.nudged = false;
        }
        let folded = task.compact_pending(cx, config);
        if folded > 0 {
            core.metrics.compactions.fetch_add(folded as u64, Ordering::Relaxed);
        }
    }
}

fn coordinator_loop(core: &SchedCore, cx: &ExecContext) {
    loop {
        let job = {
            let mut queue = core.queue.lock().expect("scheduler queue poisoned");
            loop {
                // Admit a batch of staged submissions first — up to
                // `admission_batch` per acquisition of this lock.
                core.admit_pending(&mut queue);
                // Pop the highest priority class; FIFO within a class
                // (the earliest index wins a tie).
                let next = queue
                    .backlog
                    .iter()
                    .enumerate()
                    .max_by_key(|(i, q)| (q.priority, std::cmp::Reverse(*i)))
                    .map(|(i, _)| i);
                if let Some(i) = next {
                    let job = queue.backlog.remove(i).expect("index from enumerate");
                    queue.running += 1;
                    break job;
                }
                if core.has_pending() {
                    // More staged than one batch: admit again without
                    // waiting.
                    continue;
                }
                if queue.shutdown {
                    return;
                }
                queue = core.work_cv.wait(queue).expect("scheduler queue poisoned");
            }
        };
        let queue_wait = job.submitted_at.elapsed();
        core.metrics.queue_wait_micros.fetch_add(queue_wait.as_micros() as u64, Ordering::Relaxed);

        // Derive this query's context: phases tagged with its id on the
        // pool, and — when the machine spans nodes — the whole query
        // pinned to the least-loaded socket so its runs, partitions,
        // and phases stay node-local (the EXPLAIN `Placement` line
        // reports the node and the audited locality). The node is
        // claimed before the ticket turns `Running`, so an observer
        // seeing `Running` knows placement happened.
        let node = core.claim_node();
        job.cell.set(TicketState::Running);
        let owned = cx.for_owner(job.id);
        let query_cx = match node {
            Some(node) => owned.pinned_to(node),
            None => owned,
        };
        // Degraded admission forces a deterministic block budget: the
        // query merges at least one key-aligned block (so its answer
        // carries coverage > 0) and at most `degraded_budget`, however
        // late it starts. A client deadline, if any, still governs the
        // expired-in-queue fast path below.
        let token = if job.degraded {
            AnytimeToken::budget(core.degraded_budget)
        } else {
            match job.deadline_at {
                Some(at) => AnytimeToken::at(at),
                None => AnytimeToken::never(),
            }
        };
        let started = Instant::now();
        // Deadline already blown while queued: skip execution entirely
        // and return the degraded (empty, coverage-0) answer — the
        // anytime contract turns an SLA miss into a partial result, not
        // a rejection.
        let expired_in_queue = job.deadline_at.is_some_and(|at| Instant::now() >= at);
        let outcome = if expired_in_queue {
            Ok(crate::query::expired_in_queue_result(&query_cx, &job.spec))
        } else {
            catch_unwind(AssertUnwindSafe(|| {
                job.spec.join.run_with_token(&query_cx, &job.spec, &token)
            }))
        };
        core.release_node(node);
        let done = match outcome {
            Ok(mut result) => {
                // A rows_cap stop (`capped`) is a voluntary early exit —
                // the caller got every row it asked for — so it counts
                // as neither a partial answer nor an SLA miss.
                let partial =
                    result.plan.anytime.as_ref().is_some_and(|a| !a.complete && !a.capped);
                if partial {
                    core.metrics.partial_answers.fetch_add(1, Ordering::Relaxed);
                }
                if job.deadline_at.is_some_and(|at| partial || Instant::now() > at) {
                    core.metrics.deadline_missed.fetch_add(1, Ordering::Relaxed);
                }
                result.plan.queue_wait_ms = Some(queue_wait.as_secs_f64() * 1e3);
                result.plan.queue_counters = Some(QueueCounters {
                    shed: core.metrics.shed.load(Ordering::Relaxed),
                    deadline_missed: core.metrics.deadline_missed.load(Ordering::Relaxed),
                    partial_answers: core.metrics.partial_answers.load(Ordering::Relaxed),
                    degraded: core.metrics.degraded.load(Ordering::Relaxed),
                });
                core.metrics.completed.fetch_add(1, Ordering::Relaxed);
                Ok(QueryOutput { result, queue_wait, execution: started.elapsed() })
            }
            Err(payload) => {
                core.metrics.panicked.fetch_add(1, Ordering::Relaxed);
                Err(QueryError::Panicked(panic_message(payload)))
            }
        };
        // Release the admission slot *before* publishing the result: a
        // client that resubmits the instant `wait()` returns must not
        // be rejected because its finished query still counts as
        // in-flight.
        core.queue.lock().expect("scheduler queue poisoned").running -= 1;
        job.cell.set(TicketState::Done(Box::new(done)));
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::paper_query;
    use crate::scan::Relation;
    use crate::session::QuerySpec;
    use mpsm_core::join::p_mpsm::PMpsmJoin;
    use mpsm_core::join::JoinConfig;
    use mpsm_core::Tuple;

    fn rel(name: &str, n: u64) -> Arc<Relation> {
        Arc::new(Relation::new(name, (0..n).map(|k| Tuple::new(k, k)).collect()))
    }

    #[test]
    fn single_query_matches_serial_execution() {
        let r = rel("R", 200);
        let s = rel("S", 200);
        let serial = paper_query(
            &r,
            &s,
            |t| t.key % 3 == 0,
            |_| true,
            &PMpsmJoin::new(JoinConfig::with_threads(2)),
            2,
        );
        let scheduler = Scheduler::new(SchedulerConfig::new(2));
        let out = scheduler
            .submit(QuerySpec::join(&r, &s).filter_r(|t| t.key % 3 == 0))
            .expect("admitted")
            .wait()
            .expect("query failed");
        assert_eq!(out.result.max_payload_sum, serial.max_payload_sum);
        assert_eq!(out.result.r_selected, serial.r_selected);
        assert!(out.result.plan.queue_wait_ms.is_some());
        assert!(out.result.plan.explain().contains("Queue [wait ="));
    }

    #[test]
    fn ticket_reports_lifecycle() {
        let r = rel("R", 50);
        let s = rel("S", 50);
        let scheduler = Scheduler::new(SchedulerConfig::new(1));
        let ticket = scheduler.submit(QuerySpec::join(&r, &s)).expect("admitted");
        // The query may be anywhere in queued → running → done by now;
        // wait() must converge regardless.
        let _ = ticket.status();
        let out = ticket.wait().expect("query failed");
        assert_eq!(out.result.max_payload_sum, Some(49 + 49));
    }

    #[test]
    fn try_result_becomes_available() {
        let r = rel("R", 30);
        let s = rel("S", 30);
        let scheduler = Scheduler::new(SchedulerConfig::new(1));
        let ticket = scheduler.submit(QuerySpec::join(&r, &s)).expect("admitted");
        // Bounded spin: completion must arrive.
        let mut result = None;
        for _ in 0..10_000 {
            if let Some(r) = ticket.try_result() {
                result = Some(r);
                break;
            }
            std::thread::yield_now();
        }
        let out = result.expect("query never finished").expect("query failed");
        assert_eq!(out.result.max_payload_sum, Some(29 + 29));
        assert_eq!(ticket.status(), QueryStatus::Done);
    }

    #[test]
    fn overflow_admits_degraded_instead_of_rejecting() {
        // Large enough that the join spans several anytime blocks, so
        // a one-block degraded budget yields a strict partial.
        let r = rel("R", 20_000);
        let s = rel("S", 20_000);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let scheduler = Scheduler::new(
            SchedulerConfig::new(2).max_in_flight(1).queue_capacity(0).degraded_budget(1),
        );
        let blocker = scheduler.submit(gated_query(&r, &s, &gate)).expect("admitted");
        while blocker.status() != QueryStatus::Running {
            std::thread::yield_now();
        }
        // Stage two arrivals while the lone slot is occupied. When the
        // coordinator drains the pending buffer, the first fills the
        // only budget slot (max_in_flight=1, capacity=0) and the
        // second — with no lower-class victim queued — is admitted in
        // degraded mode instead of being rejected.
        let full =
            scheduler.submit(QuerySpec::join(&r, &s).collect_rows(50_000)).expect("admitted");
        let degraded = scheduler
            .submit(QuerySpec::join(&r, &s).collect_rows(50_000))
            .expect("degrade, don't reject");
        assert_eq!(scheduler.queued(), 2, "both staged, neither rejected");
        open_gate(&gate);
        assert!(blocker.wait().is_ok());
        let full = full.wait().expect("query failed").result;
        let full_rows = full.rows.expect("collected rows");
        let out = degraded.wait().expect("a degraded query still answers").result;
        let anytime = out.plan.anytime.as_ref().expect("anytime row");
        assert!(!anytime.complete, "the forced budget must stop the merge early");
        assert!(anytime.coverage > 0.0, "degraded answers always carry >0 coverage");
        assert!(anytime.coverage < 1.0, "coverage {}", anytime.coverage);
        let rows = out.rows.expect("collected rows");
        assert!(!rows.is_empty(), "at least one block merges before the budget expires");
        assert_eq!(
            rows.as_slice(),
            &full_rows[..rows.len()],
            "degraded rows are a key-order prefix of the full answer"
        );
        let m = scheduler.metrics();
        assert_eq!(m.rejected, 0, "overload never rejects");
        assert_eq!(m.degraded, 1);
        assert_eq!(m.partial_answers, 1);
    }

    #[test]
    fn finished_query_frees_its_admission_slot_immediately() {
        let r = rel("R", 40);
        let s = rel("S", 40);
        // Execute-or-reject mode: one slot, zero backlog. A closed-loop
        // client resubmitting right after wait() must never be
        // rejected — the slot is released before the result publishes.
        let scheduler = Scheduler::new(SchedulerConfig::new(1).max_in_flight(1).queue_capacity(0));
        for round in 0..20 {
            let ticket = scheduler
                .submit(QuerySpec::join(&r, &s))
                .unwrap_or_else(|e| panic!("round {round}: slot not freed: {e}"));
            ticket.wait().expect("query failed");
        }
        assert_eq!(scheduler.metrics().rejected, 0);
    }

    #[test]
    fn drop_drains_admitted_queries() {
        let r = rel("R", 60);
        let s = rel("S", 60);
        let scheduler = Scheduler::new(SchedulerConfig::new(1).max_in_flight(1));
        let tickets: Vec<_> =
            (0..6).map(|_| scheduler.submit(QuerySpec::join(&r, &s)).expect("admitted")).collect();
        drop(scheduler);
        for ticket in tickets {
            assert!(ticket.wait().is_ok(), "admitted queries must drain on shutdown");
        }
    }

    #[test]
    fn submit_after_drop_is_impossible_by_construction() {
        // (The scheduler is consumed by drop; this pins the ShuttingDown
        // path through the internal flag instead.)
        let r = rel("R", 10);
        let s = rel("S", 10);
        let scheduler = Scheduler::new(SchedulerConfig::new(1));
        scheduler.core.pending.lock().expect("pending").shutdown = true;
        assert_eq!(
            scheduler.submit(QuerySpec::join(&r, &s)).err(),
            Some(SubmitError::ShuttingDown)
        );
    }

    #[test]
    fn node_claims_balance_load_and_release() {
        use mpsm_numa::Topology;

        let scheduler = Scheduler::new(SchedulerConfig::new(2).topology(Topology::paper_machine()));
        let core = &scheduler.core;
        // Fresh scheduler fills sockets in order.
        let claims: Vec<_> = (0..4).map(|_| core.claim_node()).collect();
        assert_eq!(
            claims,
            vec![Some(NodeId(0)), Some(NodeId(1)), Some(NodeId(2)), Some(NodeId(3))]
        );
        // All nodes equally loaded: the tie breaks toward node 0.
        assert_eq!(core.claim_node(), Some(NodeId(0)));
        // Releasing node 2 makes it the least loaded.
        core.release_node(Some(NodeId(2)));
        assert_eq!(core.claim_node(), Some(NodeId(2)));
    }

    #[test]
    fn numa_scheduler_pins_queries_and_reports_placement() {
        use mpsm_numa::Topology;

        let r = rel("R", 120);
        let s = rel("S", 120);
        let scheduler = Scheduler::new(
            SchedulerConfig::new(4).max_in_flight(2).topology(Topology::paper_machine()),
        );
        // Sequential queries always land on the emptiest node — after
        // each completes its claim is released, so node 0 wins every
        // tie again.
        for round in 0..3 {
            let out = scheduler
                .submit(QuerySpec::join(&r, &s))
                .expect("admitted")
                .wait()
                .expect("query failed");
            let placement = out.result.plan.placement.as_ref().expect("placement");
            assert_eq!(placement.node, Some(0), "round {round}");
            assert!(
                placement.local_pct > 50.0,
                "pinned query must be mostly local, got {} %",
                placement.local_pct
            );
            assert!(out.result.plan.explain().contains("Placement [node=0"));
        }
        // A burst of concurrent queries: every one gets pinned to some
        // node and finishes. (Which nodes depends on completion timing
        // — queries release their claim when done — so the spreading
        // *policy* is pinned deterministically by
        // `node_claims_balance_load_and_release` above, not here.)
        let tickets: Vec<_> =
            (0..6).map(|_| scheduler.submit(QuerySpec::join(&r, &s)).expect("admitted")).collect();
        let nodes: Vec<Option<u32>> = tickets
            .into_iter()
            .map(|t| {
                let out = t.wait().expect("query failed");
                out.result.plan.placement.as_ref().and_then(|p| p.node)
            })
            .collect();
        assert!(nodes.iter().all(|n| n.is_some()), "every query is pinned somewhere");
        // All claims were released on completion.
        let load = scheduler.core.node_load.lock().expect("node load");
        assert!(load.iter().all(|&l| l == 0), "claims must drain to zero: {load:?}");
    }

    #[test]
    fn flat_scheduler_reports_single_node_placement() {
        let r = rel("R", 60);
        let s = rel("S", 60);
        let scheduler = Scheduler::new(SchedulerConfig::new(2));
        let out = scheduler
            .submit(QuerySpec::join(&r, &s))
            .expect("admitted")
            .wait()
            .expect("query failed");
        let placement = out.result.plan.placement.as_ref().expect("placement");
        assert_eq!(placement.node, Some(0), "flat topology has exactly one node");
        assert!(placement.flat, "single-node topologies mark the placement flat");
        assert!((placement.local_pct - 100.0).abs() < 1e-9);
        assert!(
            out.result.plan.explain().contains("Placement [flat, local=100.0%"),
            "{}",
            out.result.plan.explain()
        );
    }

    #[test]
    fn scheduled_queries_report_their_sort_kernel() {
        let r = rel("R", 60);
        let s = rel("S", 60);
        // auto_tune_sort defaults to off, so every query reports the
        // fixed deterministic tuning.
        let config = SchedulerConfig::new(2);
        assert!(!config.auto_tune_sort);
        let scheduler = Scheduler::new(config);
        assert_eq!(scheduler.context().sort_tuning(), mpsm_core::sort::SortTuning::DEFAULT);
        let out = scheduler
            .submit(QuerySpec::join(&r, &s))
            .expect("admitted")
            .wait()
            .expect("query failed");
        let explain = out.result.plan.explain();
        assert!(
            explain.contains("SortKernel [bitonic, block=64, default]"),
            "EXPLAIN must surface the kernel the query sorted with:\n{explain}"
        );
        assert!(explain.contains(" ns/t"), "per-phase rates must render:\n{explain}");
    }

    /// A query whose `filter_r` blocks until the gate opens, pinning
    /// the coordinator it runs on.
    fn gated_query(
        r: &Arc<Relation>,
        s: &Arc<Relation>,
        gate: &Arc<(Mutex<bool>, Condvar)>,
    ) -> QuerySpec {
        let gate = Arc::clone(gate);
        QuerySpec::join(r, s).filter_r(move |_| {
            let (open, cv) = &*gate;
            let mut open = open.lock().expect("gate poisoned");
            while !*open {
                open = cv.wait(open).expect("gate poisoned");
            }
            true
        })
    }

    fn open_gate(gate: &Arc<(Mutex<bool>, Condvar)>) {
        let (open, cv) = &**gate;
        *open.lock().expect("gate poisoned") = true;
        cv.notify_all();
    }

    #[test]
    fn backlog_pops_by_priority_class_fifo_within() {
        let r = rel("R", 40);
        let s = rel("S", 40);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let scheduler = Scheduler::new(SchedulerConfig::new(1).max_in_flight(1).queue_capacity(8));
        let blocker = scheduler.submit(gated_query(&r, &s, &gate)).expect("admitted");
        while blocker.status() != QueryStatus::Running {
            std::thread::yield_now();
        }
        // Queue 5 queries while the lone coordinator is pinned; each
        // records its pop order from inside its selection.
        let order = Arc::new(Mutex::new(Vec::new()));
        let mark = |name: &'static str, priority: Priority| {
            let order = Arc::clone(&order);
            scheduler
                .submit(QuerySpec::join(&r, &s).priority(priority).filter_r(move |t| {
                    if t.key == 0 {
                        order.lock().expect("order poisoned").push(name);
                    }
                    true
                }))
                .expect("admitted")
        };
        let tickets = vec![
            mark("batch-1", Priority::Batch),
            mark("normal-1", Priority::Normal),
            mark("interactive-1", Priority::Interactive),
            mark("normal-2", Priority::Normal),
            mark("interactive-2", Priority::Interactive),
        ];
        open_gate(&gate);
        blocker.wait().expect("blocker failed");
        for t in tickets {
            t.wait().expect("query failed");
        }
        assert_eq!(
            *order.lock().expect("order poisoned"),
            vec!["interactive-1", "interactive-2", "normal-1", "normal-2", "batch-1"],
            "highest class first, FIFO within a class"
        );
    }

    #[test]
    fn overflow_degrades_a_lower_class_queued_query_in_place() {
        let r = rel("R", 20_000);
        let s = rel("S", 20_000);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let scheduler = Scheduler::new(
            SchedulerConfig::new(2).max_in_flight(1).queue_capacity(0).degraded_budget(1),
        );
        let blocker = scheduler.submit(gated_query(&r, &s, &gate)).expect("admitted");
        while blocker.status() != QueryStatus::Running {
            std::thread::yield_now();
        }
        // A Batch query fills the only budget slot; the Interactive
        // arrival overflows. Instead of shedding or rejecting anyone,
        // admission picks the youngest strictly-lower-class queued
        // query — the Batch one — and degrades *it*, in place: it
        // keeps its queue position and still answers, just under a
        // forced tight budget. The Interactive query runs at full
        // service.
        let batch = scheduler
            .submit(QuerySpec::join(&r, &s).priority(Priority::Batch).collect_rows(50_000))
            .expect("admitted");
        let interactive = scheduler
            .submit(QuerySpec::join(&r, &s).priority(Priority::Interactive).collect_rows(50_000))
            .expect("admitted at full service");
        open_gate(&gate);
        assert!(blocker.wait().is_ok());
        let full = interactive.wait().expect("query failed").result;
        assert!(full.plan.anytime.as_ref().expect("anytime row").complete);
        let full_rows = full.rows.expect("collected rows");
        let out = batch.wait().expect("degraded, not shed").result;
        let anytime = out.plan.anytime.as_ref().expect("anytime row");
        assert!(!anytime.complete, "the victim ran under the degraded budget");
        assert!(anytime.coverage > 0.0);
        let rows = out.rows.expect("collected rows");
        assert_eq!(rows.as_slice(), &full_rows[..rows.len()], "prefix contract holds");
        let m = scheduler.metrics();
        assert_eq!(m.shed, 0, "nothing is ever shed outright");
        assert_eq!(m.rejected, 0);
        assert_eq!(m.degraded, 1);
        // The plan carries the SLA counters, including the new one.
        let explain = out.plan.explain();
        assert!(explain.contains("degraded=1"), "{explain}");
        assert!(explain.contains("shed=0"), "{explain}");
    }

    #[test]
    fn admission_drains_in_bounded_batches() {
        let r = rel("R", 30);
        let s = rel("S", 30);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let scheduler = Scheduler::new(
            SchedulerConfig::new(1).max_in_flight(1).queue_capacity(16).admission_batch(2),
        );
        let blocker = scheduler.submit(gated_query(&r, &s, &gate)).expect("admitted");
        while blocker.status() != QueryStatus::Running {
            std::thread::yield_now();
        }
        let tickets: Vec<_> =
            (0..5).map(|_| scheduler.submit(QuerySpec::join(&r, &s)).expect("admitted")).collect();
        // submit() only stages into the pending buffer; each drain call
        // moves at most `admission_batch` entries into the queue proper.
        {
            let mut queue = scheduler.core.queue.lock().expect("queue");
            assert_eq!(queue.backlog.len(), 0, "submissions stage in the pending buffer");
            scheduler.core.admit_pending(&mut queue);
            assert_eq!(queue.backlog.len(), 2);
            scheduler.core.admit_pending(&mut queue);
            assert_eq!(queue.backlog.len(), 4);
            scheduler.core.admit_pending(&mut queue);
            assert_eq!(queue.backlog.len(), 5, "the final short batch drains the rest");
        }
        assert_eq!(scheduler.metrics().degraded, 0, "capacity was never exceeded");
        open_gate(&gate);
        assert!(blocker.wait().is_ok());
        for t in tickets {
            t.wait().expect("query failed");
        }
    }

    #[test]
    fn infeasible_deadlines_are_rejected_at_submit() {
        let r = rel("R", 10);
        let s = rel("S", 10);
        let scheduler = Scheduler::new(
            SchedulerConfig::new(1).min_feasible_deadline(Duration::from_millis(10)),
        );
        let below = scheduler.submit(QuerySpec::join(&r, &s).deadline(Duration::from_millis(2)));
        assert_eq!(
            below.err(),
            Some(SubmitError::DeadlineInfeasible { deadline: Duration::from_millis(2) })
        );
        // A zero deadline is infeasible even with no configured floor.
        let zero_floor = Scheduler::new(SchedulerConfig::new(1));
        let zero = zero_floor.submit(QuerySpec::join(&r, &s).deadline(Duration::ZERO));
        assert_eq!(zero.err(), Some(SubmitError::DeadlineInfeasible { deadline: Duration::ZERO }));
        assert_eq!(scheduler.metrics().rejected, 1);
        // At or above the floor, admission proceeds.
        let ok = scheduler.submit(QuerySpec::join(&r, &s).deadline(Duration::from_secs(3600)));
        assert!(ok.expect("feasible deadline admitted").wait().is_ok());
    }

    #[test]
    fn deadline_expired_in_queue_returns_an_empty_partial() {
        let r = rel("R", 40);
        let s = rel("S", 40);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let scheduler = Scheduler::new(SchedulerConfig::new(1).max_in_flight(1));
        let blocker = scheduler.submit(gated_query(&r, &s, &gate)).expect("admitted");
        while blocker.status() != QueryStatus::Running {
            std::thread::yield_now();
        }
        let sla = scheduler
            .submit(QuerySpec::join(&r, &s).deadline(Duration::from_millis(10)).collect_rows(100))
            .expect("admitted");
        // Let the SLA expire while the query is still queued.
        std::thread::sleep(Duration::from_millis(30));
        open_gate(&gate);
        assert!(blocker.wait().is_ok());
        let out = sla.wait().expect("an SLA miss degrades, it does not fail");
        let anytime = out.result.plan.anytime.as_ref().expect("anytime row");
        assert!(!anytime.complete);
        assert_eq!(anytime.coverage, 0.0);
        assert_eq!(out.result.max_payload_sum, None);
        assert_eq!(out.result.rows.as_deref(), Some(&[][..]), "empty row prefix");
        let m = scheduler.metrics();
        assert_eq!(m.deadline_missed, 1);
        assert_eq!(m.partial_answers, 1);
        let explain = out.result.plan.explain();
        assert!(explain.contains("Anytime [coverage=0.0%, runs=0/0, partial]"), "{explain}");
        assert!(explain.contains("deadline_missed=1"), "{explain}");
    }

    #[test]
    fn generous_deadline_completes_with_full_coverage() {
        let r = rel("R", 80);
        let s = rel("S", 80);
        let scheduler = Scheduler::new(SchedulerConfig::new(2));
        let out = scheduler
            .submit(QuerySpec::join(&r, &s).deadline(Duration::from_secs(3600)))
            .expect("admitted")
            .wait()
            .expect("query failed");
        let anytime = out.result.plan.anytime.as_ref().expect("anytime row");
        assert!(anytime.complete);
        assert!((anytime.coverage - 1.0).abs() < 1e-12);
        assert_eq!(out.result.max_payload_sum, Some(79 + 79));
        let m = scheduler.metrics();
        assert_eq!(m.deadline_missed, 0);
        assert_eq!(m.partial_answers, 0);
    }

    #[test]
    fn rows_cap_stops_the_merge_without_an_sla_miss() {
        let r = rel("R", 80);
        let s = rel("S", 80);
        let scheduler = Scheduler::new(SchedulerConfig::new(2));
        let out = scheduler
            .submit(QuerySpec::join(&r, &s).deadline(Duration::from_secs(3600)).collect_rows(5))
            .expect("admitted")
            .wait()
            .expect("query failed");
        let anytime = out.result.plan.anytime.as_ref().expect("anytime row");
        assert!(anytime.capped, "the merge stops once the cap is satisfied");
        assert!(!anytime.complete);
        assert!(
            anytime.coverage > 0.0 && anytime.coverage < 1.0,
            "a capped query merges only a key prefix, coverage {}",
            anytime.coverage
        );
        // The rows are the exact key-order prefix the caller asked for…
        let rows = out.result.rows.as_ref().expect("collected rows");
        assert_eq!(rows.as_slice(), &[(0, 0, 0), (1, 1, 1), (2, 2, 2), (3, 3, 3), (4, 4, 4)]);
        // …and the aggregate covers only the merged prefix — evidence
        // the merge really stopped rather than materializing the full
        // join and truncating afterwards.
        let merged_max = out.result.max_payload_sum.expect("non-empty join");
        assert!(merged_max < 79 + 79, "merge must stop at the cap, got max {merged_max}");
        let m = scheduler.metrics();
        assert_eq!(m.deadline_missed, 0, "a cap stop is not an SLA miss");
        assert_eq!(m.partial_answers, 0, "a capped answer satisfied its request");
        assert!(out.result.plan.explain().contains("capped]"), "{}", out.result.plan.explain());
    }

    #[test]
    fn drop_drain_is_bounded_when_a_coordinator_wedges() {
        let r = rel("R", 40);
        let s = rel("S", 40);
        // The gate never opens: the lone coordinator wedges inside the
        // query forever. Drop must still return within the configured
        // drain timeout (plus scheduling slack), abandoning the thread.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let scheduler = Scheduler::new(
            SchedulerConfig::new(1).max_in_flight(1).drain_timeout(Duration::from_millis(100)),
        );
        let parked = scheduler.submit(gated_query(&r, &s, &gate)).expect("admitted");
        while parked.status() != QueryStatus::Running {
            std::thread::yield_now();
        }
        let start = Instant::now();
        drop(scheduler);
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(10),
            "bounded drain must not hang on a wedged coordinator (took {elapsed:?})"
        );
        // The wedged query never completed; its ticket is still live.
        assert_ne!(parked.status(), QueryStatus::Done);
        // Unblock the abandoned thread so the test process exits clean.
        open_gate(&gate);
    }

    #[test]
    fn metrics_track_queue_latency() {
        let r = rel("R", 80);
        let s = rel("S", 80);
        let scheduler = Scheduler::new(SchedulerConfig::new(2).max_in_flight(1));
        let tickets: Vec<_> =
            (0..4).map(|_| scheduler.submit(QuerySpec::join(&r, &s)).expect("admitted")).collect();
        for t in tickets {
            t.wait().expect("query failed");
        }
        let m = scheduler.metrics();
        assert_eq!(m.submitted, 4);
        assert_eq!(m.completed, 4);
        assert_eq!(m.panicked, 0);
    }
}
