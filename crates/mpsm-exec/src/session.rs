//! Sessions: the client-facing, name-oriented API over the scheduler.
//!
//! A [`Session`] owns a [`Scheduler`] (and therefore one shared worker
//! pool) plus a catalog of registered relations. Clients describe
//! queries as [`QuerySpec`]s — owned, `'static` descriptions built
//! from [`std::sync::Arc`]-shared relations and predicates — and
//! either block on [`Session::query`] or go asynchronous via
//! [`Session::submit`] and the returned [`QueryTicket`].
//!
//! ```
//! use mpsm_exec::session::{QuerySpec, Session};
//! use mpsm_exec::sched::SchedulerConfig;
//! use mpsm_exec::Relation;
//! use mpsm_core::Tuple;
//!
//! let session = Session::new(SchedulerConfig::new(2));
//! let r = session.register(Relation::new("R", (0..50u64).map(|k| Tuple::new(k, k)).collect()));
//! let s = session.register(Relation::new("S", (0..50u64).map(|k| Tuple::new(k, 2 * k)).collect()));
//!
//! // Blocking convenience path.
//! let out = session
//!     .query(QuerySpec::join(&r, &s).filter_r(|t| t.key < 10))
//!     .expect("query failed");
//! assert_eq!(out.result.max_payload_sum, Some(9 + 18));
//!
//! // Asynchronous path: submit many, wait later.
//! let tickets: Vec<_> = (0..4)
//!     .map(|i| {
//!         let spec = QuerySpec::join(&r, &s).filter_s(move |t| t.key >= i * 10);
//!         session.submit(spec).expect("admission rejected")
//!     })
//!     .collect();
//! for ticket in tickets {
//!     assert!(ticket.wait().expect("query failed").result.max_payload_sum.is_some());
//! }
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mpsm_core::context::ExecContext;
use mpsm_core::join::p_mpsm::PMpsmJoin;
use mpsm_core::join::{b_mpsm::BMpsmJoin, JoinAlgorithm, JoinConfig};
use mpsm_core::Tuple;

use crate::query::{paper_query_cached, paper_query_in, PaperQueryResult};
use crate::run_cache::{RunCache, RunCacheConfig};
use crate::scan::Relation;
use crate::sched::{QueryError, QueryOutput, QueryTicket, Scheduler, SchedulerConfig, SubmitError};

/// An owned, shareable selection predicate.
pub type Predicate = Arc<dyn Fn(&Tuple) -> bool + Send + Sync>;

/// Which join algorithm a scheduled query runs, with its configuration.
///
/// The configured thread count is ignored on the scheduled path — the
/// scheduler's shared pool decides the worker count `T`; the remaining
/// knobs (radix bits, CDF fan, role policy) apply unchanged.
#[derive(Debug, Clone)]
pub enum JoinSpec {
    /// Range-partitioned MPSM (the paper's main-memory variant, §3.2).
    PMpsm(JoinConfig),
    /// Basic MPSM (absolutely skew-immune, §2.1).
    BMpsm(JoinConfig),
}

impl JoinSpec {
    /// P-MPSM with paper-default knobs.
    pub fn p_mpsm() -> Self {
        JoinSpec::PMpsm(JoinConfig::with_threads(1))
    }

    /// B-MPSM with paper-default knobs.
    pub fn b_mpsm() -> Self {
        JoinSpec::BMpsm(JoinConfig::with_threads(1))
    }

    /// The configured knobs (shared by both variants).
    pub(crate) fn config(&self) -> &JoinConfig {
        match self {
            JoinSpec::PMpsm(cfg) | JoinSpec::BMpsm(cfg) => cfg,
        }
    }

    /// The algorithm's display name, as plans render it.
    pub(crate) fn name(&self) -> &'static str {
        match self {
            JoinSpec::PMpsm(_) => "P-MPSM",
            JoinSpec::BMpsm(_) => "B-MPSM",
        }
    }

    /// Run the paper query described by `spec` inside `cx` (the
    /// scheduler derives one context per query, carrying its owner tag
    /// and node pinning).
    ///
    /// When the spec carries a run cache and at least one side is
    /// cacheable — unfiltered and catalog-registered — execution goes
    /// through the run-set path, which consults and populates the
    /// cache. Otherwise the plain four-phase path runs.
    pub(crate) fn run(&self, cx: &ExecContext, spec: &QuerySpec) -> PaperQueryResult {
        if let Some(cache) = &spec.cache {
            let r_cacheable = !spec.r_filtered && spec.r.version() > 0;
            let s_cacheable = !spec.s_filtered && spec.s.version() > 0;
            if r_cacheable || s_cacheable {
                return paper_query_cached(cx, spec, cache);
            }
        }
        fn go<J: JoinAlgorithm>(
            cx: &ExecContext,
            spec: &QuerySpec,
            algorithm: &J,
        ) -> PaperQueryResult {
            let (r_pred, s_pred) = (&spec.r_pred, &spec.s_pred);
            paper_query_in(cx, &spec.r, &spec.s, |t| r_pred(t), |t| s_pred(t), algorithm)
        }
        match self {
            JoinSpec::PMpsm(cfg) => go(cx, spec, &PMpsmJoin::new(cfg.clone())),
            JoinSpec::BMpsm(cfg) => go(cx, spec, &BMpsmJoin::new(cfg.clone())),
        }
    }
}

/// An owned description of one paper query — everything the scheduler
/// needs to run `scan → select → join → max` later, on another thread.
#[derive(Clone)]
pub struct QuerySpec {
    pub(crate) r: Arc<Relation>,
    pub(crate) s: Arc<Relation>,
    pub(crate) r_pred: Predicate,
    pub(crate) s_pred: Predicate,
    pub(crate) join: JoinSpec,
    /// Whether `filter_r` was called — filtered sides bypass the run
    /// cache (their sorted runs are query-specific).
    pub(crate) r_filtered: bool,
    /// Whether `filter_s` was called.
    pub(crate) s_filtered: bool,
    /// The session's run cache, attached at submit time.
    pub(crate) cache: Option<Arc<RunCache>>,
}

impl QuerySpec {
    /// Join `r ⋈ s` with no selections, using P-MPSM defaults.
    pub fn join(r: &Arc<Relation>, s: &Arc<Relation>) -> Self {
        QuerySpec {
            r: Arc::clone(r),
            s: Arc::clone(s),
            r_pred: Arc::new(|_| true),
            s_pred: Arc::new(|_| true),
            join: JoinSpec::p_mpsm(),
            r_filtered: false,
            s_filtered: false,
            cache: None,
        }
    }

    /// Set the selection on the private input `R`.
    pub fn filter_r(mut self, pred: impl Fn(&Tuple) -> bool + Send + Sync + 'static) -> Self {
        self.r_pred = Arc::new(pred);
        self.r_filtered = true;
        self
    }

    /// Set the selection on the public input `S`.
    pub fn filter_s(mut self, pred: impl Fn(&Tuple) -> bool + Send + Sync + 'static) -> Self {
        self.s_pred = Arc::new(pred);
        self.s_filtered = true;
        self
    }

    /// Choose the join algorithm (default: P-MPSM).
    pub fn algorithm(mut self, join: JoinSpec) -> Self {
        self.join = join;
        self
    }
}

impl std::fmt::Debug for QuerySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuerySpec")
            .field("r", &self.r.name())
            .field("s", &self.s.name())
            .field("join", &self.join)
            .finish_non_exhaustive()
    }
}

/// A client session: one scheduler (one shared pool), a versioned
/// relation catalog, and (by default) a sorted-run cache shared by
/// every query on the session. See the module docs for a walkthrough.
pub struct Session {
    scheduler: Scheduler,
    catalog: Mutex<HashMap<String, Arc<Relation>>>,
    /// Monotonic catalog-id allocator (ids start at 1; 0 means
    /// "unregistered" on a [`Relation`]).
    next_id: AtomicU64,
    run_cache: Option<Arc<RunCache>>,
}

impl Session {
    /// Open a session with its own scheduler and a default-configured
    /// run cache.
    pub fn new(config: SchedulerConfig) -> Self {
        Session::with_run_cache(config, RunCacheConfig::default())
    }

    /// Open a session with an explicitly configured run cache.
    pub fn with_run_cache(config: SchedulerConfig, cache: RunCacheConfig) -> Self {
        let cache = Arc::new(RunCache::new(cache));
        let scheduler = Scheduler::new(config).with_run_cache(Arc::clone(&cache));
        Session {
            scheduler,
            catalog: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            run_cache: Some(cache),
        }
    }

    /// Open a session with no run cache: every query partitions and
    /// sorts from scratch (the pre-cache behaviour; useful as a
    /// benchmark baseline).
    pub fn uncached(config: SchedulerConfig) -> Self {
        Session {
            scheduler: Scheduler::new(config),
            catalog: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            run_cache: None,
        }
    }

    /// Register a relation under its own name, returning the shared,
    /// identity-stamped handle query specs are built from.
    ///
    /// First registration of a name allocates a fresh stable id and
    /// stamps version 1. Re-registering the name keeps the id and
    /// bumps the version — which invalidates every cached run set
    /// built from older versions. Already-submitted queries keep the
    /// `Arc` (and therefore the exact version) they captured.
    pub fn register(&self, relation: Relation) -> Arc<Relation> {
        let mut catalog = self.catalog.lock().expect("catalog poisoned");
        let (id, version) = match catalog.get(relation.name()) {
            Some(prev) => (prev.id(), prev.version() + 1),
            None => (self.next_id.fetch_add(1, Ordering::Relaxed), 1),
        };
        let handle = Arc::new(relation.with_identity(id, version));
        catalog.insert(handle.name().to_string(), Arc::clone(&handle));
        drop(catalog);
        if let Some(cache) = &self.run_cache {
            cache.invalidate_relation(id, version);
        }
        handle
    }

    /// Look up a registered relation by name (the newest version).
    pub fn relation(&self, name: &str) -> Option<Arc<Relation>> {
        self.catalog.lock().expect("catalog poisoned").get(name).cloned()
    }

    /// The session's sorted-run cache, if caching is enabled.
    pub fn run_cache(&self) -> Option<&Arc<RunCache>> {
        self.run_cache.as_ref()
    }

    /// Submit a query for asynchronous execution. Fails fast when the
    /// scheduler's admission queue is full.
    pub fn submit(&self, mut spec: QuerySpec) -> Result<QueryTicket, SubmitError> {
        spec.cache = self.run_cache.clone();
        self.scheduler.submit(spec)
    }

    /// Submit and block until the result is available. Admission
    /// rejections surface as [`QueryError::Rejected`].
    pub fn query(&self, spec: QuerySpec) -> Result<QueryOutput, QueryError> {
        match self.submit(spec) {
            Ok(ticket) => ticket.wait(),
            Err(err) => Err(QueryError::Rejected(err)),
        }
    }

    /// The underlying scheduler (pool metrics, direct submission).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(name: &str, n: u64) -> Relation {
        Relation::new(name, (0..n).map(|k| Tuple::new(k, k)).collect())
    }

    #[test]
    fn catalog_registers_and_resolves() {
        let session = Session::new(SchedulerConfig::new(1));
        session.register(rel("orders", 10));
        assert_eq!(session.relation("orders").expect("registered").len(), 10);
        assert!(session.relation("lineitem").is_none());
    }

    #[test]
    fn blocking_query_round_trip() {
        let session = Session::new(SchedulerConfig::new(2));
        let r = session.register(rel("R", 100));
        let s = session.register(rel("S", 100));
        let out = session
            .query(QuerySpec::join(&r, &s).filter_r(|t| t.key < 50).filter_s(|t| t.key >= 40))
            .expect("query failed");
        assert_eq!(out.result.max_payload_sum, Some(49 + 49));
        assert_eq!(out.result.r_selected, 50);
        assert_eq!(out.result.s_selected, 60);
        assert!(out.result.plan.queue_wait_ms.is_some(), "scheduled plans report queue wait");
    }

    #[test]
    fn b_mpsm_spec_agrees_with_p_mpsm_spec() {
        let session = Session::new(SchedulerConfig::new(2));
        let r = session.register(rel("R", 300));
        let s = session
            .register(Relation::new("S", (0..900u64).map(|i| Tuple::new(i % 300, i)).collect()));
        let p = session.query(QuerySpec::join(&r, &s)).expect("P-MPSM failed");
        let b = session
            .query(QuerySpec::join(&r, &s).algorithm(JoinSpec::b_mpsm()))
            .expect("B-MPSM failed");
        assert_eq!(p.result.max_payload_sum, b.result.max_payload_sum);
    }

    #[test]
    fn register_stamps_identity_and_bumps_versions() {
        let session = Session::new(SchedulerConfig::new(1));
        let v1 = session.register(rel("orders", 10));
        assert!(v1.id() > 0, "registered relations get a non-zero id");
        assert_eq!(v1.version(), 1);
        let other = session.register(rel("lineitem", 5));
        assert_ne!(other.id(), v1.id(), "distinct names get distinct ids");
        let v2 = session.register(rel("orders", 20));
        assert_eq!(v2.id(), v1.id(), "re-registration keeps the stable id");
        assert_eq!(v2.version(), 2, "re-registration bumps the version");
        assert_eq!(v1.version(), 1, "old handles keep the version they captured");
        assert_eq!(session.relation("orders").expect("resolves").len(), 20);
    }

    #[test]
    fn repeated_queries_hit_the_cache_and_agree_with_uncached() {
        let cached = Session::new(SchedulerConfig::new(2));
        let uncached = Session::uncached(SchedulerConfig::new(2));
        let (r_data, s_data): (Vec<_>, Vec<_>) = (
            (0..400u64).map(|k| Tuple::new(k, k)).collect(),
            (0..1600u64).map(|i| Tuple::new(i % 400, i)).collect(),
        );
        let r = cached.register(Relation::new("R", r_data.clone()));
        let s = cached.register(Relation::new("S", s_data.clone()));
        let ur = uncached.register(Relation::new("R", r_data));
        let us = uncached.register(Relation::new("S", s_data));
        let expect = uncached.query(QuerySpec::join(&ur, &us)).expect("uncached").result;
        assert!(uncached.run_cache().is_none());
        for round in 0..3 {
            let out = cached.query(QuerySpec::join(&r, &s)).expect("cached").result;
            assert_eq!(out.max_payload_sum, expect.max_payload_sum, "round {round}");
            let info = out.plan.run_cache.expect("cached sessions report RunCache");
            if round > 0 {
                use crate::plan::RunCacheOutcome;
                assert_eq!(info.r, RunCacheOutcome::Hit, "round {round}");
                assert_eq!(info.s, RunCacheOutcome::Hit, "round {round}");
            }
        }
        let stats = cached.run_cache().expect("caching on by default").stats();
        assert_eq!(stats.misses, 2, "first round misses both sides");
        assert_eq!(stats.hits, 4, "two later rounds hit both sides");
        let metrics = cached.scheduler().metrics();
        assert_eq!((metrics.cache_hits, metrics.cache_misses), (4, 2));
        let uncached_metrics = uncached.scheduler().metrics();
        assert_eq!((uncached_metrics.cache_hits, uncached_metrics.cache_misses), (0, 0));
    }

    #[test]
    fn filtered_sides_bypass_the_cache() {
        let session = Session::new(SchedulerConfig::new(2));
        let r = session.register(rel("R", 200));
        let s = session.register(rel("S", 200));
        let out = session
            .query(QuerySpec::join(&r, &s).filter_r(|t| t.key < 50))
            .expect("query failed")
            .result;
        assert_eq!(out.max_payload_sum, Some(49 + 49));
        let info = out.plan.run_cache.expect("RunCache node present");
        use crate::plan::RunCacheOutcome;
        assert_eq!(info.r, RunCacheOutcome::Bypass, "filtered side never cached");
        assert_eq!(info.s, RunCacheOutcome::Miss, "unfiltered side populates");
    }

    #[test]
    fn spec_debug_is_compact() {
        let r = Arc::new(rel("R", 1));
        let s = Arc::new(rel("S", 1));
        let text = format!("{:?}", QuerySpec::join(&r, &s));
        assert!(text.contains("\"R\"") && text.contains("PMpsm"), "{text}");
    }
}
