//! Sessions: the client-facing, name-oriented API over the scheduler.
//!
//! A [`Session`] owns a [`Scheduler`] (and therefore one shared worker
//! pool) plus a catalog of registered relations. Clients describe
//! queries as [`QuerySpec`]s — owned, `'static` descriptions built
//! from [`std::sync::Arc`]-shared relations and predicates — and
//! either block on [`Session::query`] or go asynchronous via
//! [`Session::submit`] and the returned [`QueryTicket`].
//!
//! ```
//! use mpsm_exec::session::{QuerySpec, Session};
//! use mpsm_exec::sched::SchedulerConfig;
//! use mpsm_exec::Relation;
//! use mpsm_core::Tuple;
//!
//! let session = Session::new(SchedulerConfig::new(2));
//! let r = session.register(Relation::new("R", (0..50u64).map(|k| Tuple::new(k, k)).collect()));
//! let s = session.register(Relation::new("S", (0..50u64).map(|k| Tuple::new(k, 2 * k)).collect()));
//!
//! // Blocking convenience path.
//! let out = session
//!     .query(QuerySpec::join(&r, &s).filter_r(|t| t.key < 10))
//!     .expect("query failed");
//! assert_eq!(out.result.max_payload_sum, Some(9 + 18));
//!
//! // Asynchronous path: submit many, wait later.
//! let tickets: Vec<_> = (0..4)
//!     .map(|i| {
//!         let spec = QuerySpec::join(&r, &s).filter_s(move |t| t.key >= i * 10);
//!         session.submit(spec).expect("admission rejected")
//!     })
//!     .collect();
//! for ticket in tickets {
//!     assert!(ticket.wait().expect("query failed").result.max_payload_sum.is_some());
//! }
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use mpsm_core::context::ExecContext;
use mpsm_core::join::p_mpsm::PMpsmJoin;
use mpsm_core::join::{b_mpsm::BMpsmJoin, JoinAlgorithm, JoinConfig};
use mpsm_core::Tuple;

use crate::query::{paper_query_in, PaperQueryResult};
use crate::scan::Relation;
use crate::sched::{QueryError, QueryOutput, QueryTicket, Scheduler, SchedulerConfig, SubmitError};

/// An owned, shareable selection predicate.
pub type Predicate = Arc<dyn Fn(&Tuple) -> bool + Send + Sync>;

/// Which join algorithm a scheduled query runs, with its configuration.
///
/// The configured thread count is ignored on the scheduled path — the
/// scheduler's shared pool decides the worker count `T`; the remaining
/// knobs (radix bits, CDF fan, role policy) apply unchanged.
#[derive(Debug, Clone)]
pub enum JoinSpec {
    /// Range-partitioned MPSM (the paper's main-memory variant, §3.2).
    PMpsm(JoinConfig),
    /// Basic MPSM (absolutely skew-immune, §2.1).
    BMpsm(JoinConfig),
}

impl JoinSpec {
    /// P-MPSM with paper-default knobs.
    pub fn p_mpsm() -> Self {
        JoinSpec::PMpsm(JoinConfig::with_threads(1))
    }

    /// B-MPSM with paper-default knobs.
    pub fn b_mpsm() -> Self {
        JoinSpec::BMpsm(JoinConfig::with_threads(1))
    }

    /// Run the paper query described by `spec` inside `cx` (the
    /// scheduler derives one context per query, carrying its owner tag
    /// and node pinning).
    pub(crate) fn run(
        &self,
        cx: &ExecContext,
        r: &Relation,
        s: &Relation,
        r_pred: &Predicate,
        s_pred: &Predicate,
    ) -> PaperQueryResult {
        fn go<J: JoinAlgorithm>(
            cx: &ExecContext,
            r: &Relation,
            s: &Relation,
            r_pred: &Predicate,
            s_pred: &Predicate,
            algorithm: &J,
        ) -> PaperQueryResult {
            paper_query_in(cx, r, s, |t| r_pred(t), |t| s_pred(t), algorithm)
        }
        match self {
            JoinSpec::PMpsm(cfg) => go(cx, r, s, r_pred, s_pred, &PMpsmJoin::new(cfg.clone())),
            JoinSpec::BMpsm(cfg) => go(cx, r, s, r_pred, s_pred, &BMpsmJoin::new(cfg.clone())),
        }
    }
}

/// An owned description of one paper query — everything the scheduler
/// needs to run `scan → select → join → max` later, on another thread.
#[derive(Clone)]
pub struct QuerySpec {
    pub(crate) r: Arc<Relation>,
    pub(crate) s: Arc<Relation>,
    pub(crate) r_pred: Predicate,
    pub(crate) s_pred: Predicate,
    pub(crate) join: JoinSpec,
}

impl QuerySpec {
    /// Join `r ⋈ s` with no selections, using P-MPSM defaults.
    pub fn join(r: &Arc<Relation>, s: &Arc<Relation>) -> Self {
        QuerySpec {
            r: Arc::clone(r),
            s: Arc::clone(s),
            r_pred: Arc::new(|_| true),
            s_pred: Arc::new(|_| true),
            join: JoinSpec::p_mpsm(),
        }
    }

    /// Set the selection on the private input `R`.
    pub fn filter_r(mut self, pred: impl Fn(&Tuple) -> bool + Send + Sync + 'static) -> Self {
        self.r_pred = Arc::new(pred);
        self
    }

    /// Set the selection on the public input `S`.
    pub fn filter_s(mut self, pred: impl Fn(&Tuple) -> bool + Send + Sync + 'static) -> Self {
        self.s_pred = Arc::new(pred);
        self
    }

    /// Choose the join algorithm (default: P-MPSM).
    pub fn algorithm(mut self, join: JoinSpec) -> Self {
        self.join = join;
        self
    }
}

impl std::fmt::Debug for QuerySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuerySpec")
            .field("r", &self.r.name())
            .field("s", &self.s.name())
            .field("join", &self.join)
            .finish_non_exhaustive()
    }
}

/// A client session: one scheduler (one shared pool) plus a relation
/// catalog. See the module docs for a walkthrough.
pub struct Session {
    scheduler: Scheduler,
    catalog: Mutex<HashMap<String, Arc<Relation>>>,
}

impl Session {
    /// Open a session with its own scheduler.
    pub fn new(config: SchedulerConfig) -> Self {
        Session { scheduler: Scheduler::new(config), catalog: Mutex::new(HashMap::new()) }
    }

    /// Register a relation under its own name, returning the shared
    /// handle query specs are built from. Re-registering a name
    /// replaces the old relation (already-submitted queries keep the
    /// version they captured).
    pub fn register(&self, relation: Relation) -> Arc<Relation> {
        let handle = Arc::new(relation);
        self.catalog
            .lock()
            .expect("catalog poisoned")
            .insert(handle.name().to_string(), Arc::clone(&handle));
        handle
    }

    /// Look up a registered relation by name.
    pub fn relation(&self, name: &str) -> Option<Arc<Relation>> {
        self.catalog.lock().expect("catalog poisoned").get(name).cloned()
    }

    /// Submit a query for asynchronous execution. Fails fast when the
    /// scheduler's admission queue is full.
    pub fn submit(&self, spec: QuerySpec) -> Result<QueryTicket, SubmitError> {
        self.scheduler.submit(spec)
    }

    /// Submit and block until the result is available. Admission
    /// rejections surface as [`QueryError::Rejected`].
    pub fn query(&self, spec: QuerySpec) -> Result<QueryOutput, QueryError> {
        match self.scheduler.submit(spec) {
            Ok(ticket) => ticket.wait(),
            Err(err) => Err(QueryError::Rejected(err)),
        }
    }

    /// The underlying scheduler (pool metrics, direct submission).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(name: &str, n: u64) -> Relation {
        Relation::new(name, (0..n).map(|k| Tuple::new(k, k)).collect())
    }

    #[test]
    fn catalog_registers_and_resolves() {
        let session = Session::new(SchedulerConfig::new(1));
        session.register(rel("orders", 10));
        assert_eq!(session.relation("orders").expect("registered").len(), 10);
        assert!(session.relation("lineitem").is_none());
    }

    #[test]
    fn blocking_query_round_trip() {
        let session = Session::new(SchedulerConfig::new(2));
        let r = session.register(rel("R", 100));
        let s = session.register(rel("S", 100));
        let out = session
            .query(QuerySpec::join(&r, &s).filter_r(|t| t.key < 50).filter_s(|t| t.key >= 40))
            .expect("query failed");
        assert_eq!(out.result.max_payload_sum, Some(49 + 49));
        assert_eq!(out.result.r_selected, 50);
        assert_eq!(out.result.s_selected, 60);
        assert!(out.result.plan.queue_wait_ms.is_some(), "scheduled plans report queue wait");
    }

    #[test]
    fn b_mpsm_spec_agrees_with_p_mpsm_spec() {
        let session = Session::new(SchedulerConfig::new(2));
        let r = session.register(rel("R", 300));
        let s = session
            .register(Relation::new("S", (0..900u64).map(|i| Tuple::new(i % 300, i)).collect()));
        let p = session.query(QuerySpec::join(&r, &s)).expect("P-MPSM failed");
        let b = session
            .query(QuerySpec::join(&r, &s).algorithm(JoinSpec::b_mpsm()))
            .expect("B-MPSM failed");
        assert_eq!(p.result.max_payload_sum, b.result.max_payload_sum);
    }

    #[test]
    fn spec_debug_is_compact() {
        let r = Arc::new(rel("R", 1));
        let s = Arc::new(rel("S", 1));
        let text = format!("{:?}", QuerySpec::join(&r, &s));
        assert!(text.contains("\"R\"") && text.contains("PMpsm"), "{text}");
    }
}
