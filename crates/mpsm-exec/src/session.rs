//! Sessions: the client-facing, name-oriented API over the scheduler.
//!
//! A [`Session`] owns a [`Scheduler`] (and therefore one shared worker
//! pool) plus a catalog of registered relations. Clients describe
//! queries as [`QuerySpec`]s — owned, `'static` descriptions built
//! from [`std::sync::Arc`]-shared relations and predicates — and
//! either block on [`Session::query`] or go asynchronous via
//! [`Session::submit`] and the returned [`QueryTicket`].
//!
//! ```
//! use mpsm_exec::session::{QuerySpec, Session};
//! use mpsm_exec::sched::SchedulerConfig;
//! use mpsm_exec::Relation;
//! use mpsm_core::Tuple;
//!
//! let session = Session::new(SchedulerConfig::new(2));
//! let r = session.register(Relation::new("R", (0..50u64).map(|k| Tuple::new(k, k)).collect()));
//! let s = session.register(Relation::new("S", (0..50u64).map(|k| Tuple::new(k, 2 * k)).collect()));
//!
//! // Blocking convenience path.
//! let out = session
//!     .query(QuerySpec::join(&r, &s).filter_r(|t| t.key < 10))
//!     .expect("query failed");
//! assert_eq!(out.result.max_payload_sum, Some(9 + 18));
//!
//! // Asynchronous path: submit many, wait later.
//! let tickets: Vec<_> = (0..4)
//!     .map(|i| {
//!         let spec = QuerySpec::join(&r, &s).filter_s(move |t| t.key >= i * 10);
//!         session.submit(spec).expect("admission rejected")
//!     })
//!     .collect();
//! for ticket in tickets {
//!     assert!(ticket.wait().expect("query failed").result.max_payload_sum.is_some());
//! }
//! ```
//!
//! ## The write path
//!
//! Registered relations are **mutable**: [`Session::append`],
//! [`Session::update`], and [`Session::delete`] land in the relation's
//! delta log without touching its immutable sorted base. Every query
//! captures a consistent [`Snapshot`] of each side at submit time —
//! the delta prefix visible then is merged into the join on the fly;
//! later writes are invisible. A background compactor (or an explicit
//! [`Session::compact`]) folds the delta into a new base version,
//! which re-keys the run cache through the ordinary version-bump
//! machinery.
//!
//! ```
//! use mpsm_exec::session::{QuerySpec, Session};
//! use mpsm_exec::sched::SchedulerConfig;
//! use mpsm_exec::Relation;
//! use mpsm_core::Tuple;
//!
//! let session = Session::new(SchedulerConfig::new(2));
//! let r = session.register(Relation::new("R", (0..10u64).map(|k| Tuple::new(k, k)).collect()));
//! let s = session.register(Relation::new("S", (0..10u64).map(|k| Tuple::new(k, k)).collect()));
//!
//! session.append("R", [Tuple::new(9, 100)]).expect("R is registered");
//! session.delete("S", 3).expect("S is registered");
//! let out = session.query(QuerySpec::join(&r, &s)).expect("query failed");
//! assert_eq!(out.result.max_payload_sum, Some(100 + 9));
//! assert!(out.result.plan.explain().contains("Snapshot [R: base=v1, delta=1 tuples]"));
//!
//! // Folding the delta bumps the base version; answers don't change.
//! assert!(session.compact("R"));
//! let out = session.query(QuerySpec::join(&r, &s)).expect("query failed");
//! assert_eq!(out.result.max_payload_sum, Some(100 + 9));
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use std::time::Duration;

use mpsm_core::context::ExecContext;
use mpsm_core::join::anytime::AnytimeToken;
use mpsm_core::join::delta::{materialize, DeltaOp};
use mpsm_core::join::p_mpsm::PMpsmJoin;
use mpsm_core::join::runs::build_run_set;
use mpsm_core::join::{b_mpsm::BMpsmJoin, JoinAlgorithm, JoinConfig};
use mpsm_core::stats::{JoinStats, Phase};
use mpsm_core::Tuple;

use crate::plan::SnapshotInfo;
use crate::query::{
    paper_query_anytime, paper_query_cached, paper_query_in, paper_query_snapshot, PaperQueryResult,
};
use crate::run_cache::{splitter_fingerprint, Lookup, RunCache, RunCacheConfig, RunKey};
use crate::scan::Relation;
use crate::sched::{
    CompactionConfig, CompactionTask, Priority, QueryError, QueryOutput, QueryTicket, Scheduler,
    SchedulerConfig, SubmitError,
};
use crate::snapshot::{DeltaLog, RelationState, Snapshot};

/// An owned, shareable selection predicate.
pub type Predicate = Arc<dyn Fn(&Tuple) -> bool + Send + Sync>;

/// Why a write was not applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteError {
    /// No relation with this name is registered in the session's
    /// catalog (writes need a delta log to land in; register first).
    UnknownRelation(String),
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::UnknownRelation(name) => {
                write!(f, "no relation named {name:?} is registered")
            }
        }
    }
}

impl std::error::Error for WriteError {}

/// Which join algorithm a scheduled query runs, with its configuration.
///
/// The configured thread count is ignored on the scheduled path — the
/// scheduler's shared pool decides the worker count `T`; the remaining
/// knobs (radix bits, CDF fan, role policy) apply unchanged.
#[derive(Debug, Clone)]
pub enum JoinSpec {
    /// Range-partitioned MPSM (the paper's main-memory variant, §3.2).
    PMpsm(JoinConfig),
    /// Basic MPSM (absolutely skew-immune, §2.1).
    BMpsm(JoinConfig),
}

impl JoinSpec {
    /// P-MPSM with paper-default knobs.
    pub fn p_mpsm() -> Self {
        JoinSpec::PMpsm(JoinConfig::with_threads(1))
    }

    /// B-MPSM with paper-default knobs.
    pub fn b_mpsm() -> Self {
        JoinSpec::BMpsm(JoinConfig::with_threads(1))
    }

    /// The configured knobs (shared by both variants).
    pub(crate) fn config(&self) -> &JoinConfig {
        match self {
            JoinSpec::PMpsm(cfg) | JoinSpec::BMpsm(cfg) => cfg,
        }
    }

    /// The algorithm's display name, as plans render it.
    pub(crate) fn name(&self) -> &'static str {
        match self {
            JoinSpec::PMpsm(_) => "P-MPSM",
            JoinSpec::BMpsm(_) => "B-MPSM",
        }
    }

    /// Run the paper query described by `spec` inside `cx` (the
    /// scheduler derives one context per query, carrying its owner tag
    /// and node pinning).
    ///
    /// Routing, most specific first:
    ///
    /// 1. A spec carrying a deadline or a row collection cap — or a
    ///    live `token` (degraded admission hands plain queries a block
    ///    budget too) — takes the **anytime** path: a run-oriented
    ///    execution (P-MPSM-style regardless of the configured
    ///    algorithm) whose merge is interruptible by `token` and
    ///    reports coverage on the plan's `Anytime` row.
    /// 2. A side whose captured snapshot has pending delta ops sends
    ///    the whole query down the snapshot-merge path (base runs —
    ///    cache-served when possible — plus the sorted delta run, with
    ///    masked base keys skipped in the merge).
    /// 3. Otherwise, with a run cache attached and at least one
    ///    cacheable side — unfiltered and catalog-registered — the
    ///    run-set path consults and populates the cache.
    /// 4. Otherwise the plain four-phase path runs.
    pub(crate) fn run_with_token(
        &self,
        cx: &ExecContext,
        spec: &QuerySpec,
        token: &AnytimeToken,
    ) -> PaperQueryResult {
        let live_token = !matches!(token, AnytimeToken::Never);
        if spec.deadline.is_some() || spec.rows_cap.is_some() || live_token {
            let mut result = paper_query_anytime(cx, spec, token);
            Self::append_snapshot_rows(&mut result, spec);
            return result;
        }
        self.run(cx, spec)
    }

    /// [`JoinSpec::run_with_token`] without the anytime routing (a
    /// token-free spec never consults one).
    pub(crate) fn run(&self, cx: &ExecContext, spec: &QuerySpec) -> PaperQueryResult {
        // A side needs the snapshot path when its snapshot carries
        // pending delta ops, or when compaction moved the lineage past
        // the handle (the snapshot's base is a newer version than the
        // Arc the client holds — its tuples, not the handle's, are the
        // live relation).
        let needs_snapshot = |snapshot: &Option<Snapshot>, handle: &Arc<Relation>| {
            snapshot.as_ref().is_some_and(|s| s.delta_len() > 0 || !Arc::ptr_eq(s.base(), handle))
        };
        let dirty =
            needs_snapshot(&spec.r_snapshot, &spec.r) || needs_snapshot(&spec.s_snapshot, &spec.s);
        let cacheable = spec.cache.is_some()
            && ((!spec.r_filtered && spec.r.version() > 0)
                || (!spec.s_filtered && spec.s.version() > 0));
        let mut result = if dirty {
            paper_query_snapshot(cx, spec)
        } else if cacheable {
            paper_query_cached(cx, spec, spec.cache.as_ref().expect("checked by `cacheable`"))
        } else {
            fn go<J: JoinAlgorithm>(
                cx: &ExecContext,
                spec: &QuerySpec,
                algorithm: &J,
            ) -> PaperQueryResult {
                let (r_pred, s_pred) = (&spec.r_pred, &spec.s_pred);
                paper_query_in(cx, &spec.r, &spec.s, |t| r_pred(t), |t| s_pred(t), algorithm)
            }
            match self {
                JoinSpec::PMpsm(cfg) => go(cx, spec, &PMpsmJoin::new(cfg.clone())),
                JoinSpec::BMpsm(cfg) => go(cx, spec, &BMpsmJoin::new(cfg.clone())),
            }
        };
        Self::append_snapshot_rows(&mut result, spec);
        result
    }

    /// Every catalog-resolved side reports the snapshot it was pinned
    /// to — also when the delta was empty and execution took a clean
    /// path.
    fn append_snapshot_rows(result: &mut PaperQueryResult, spec: &QuerySpec) {
        for (side, snapshot) in [("R", &spec.r_snapshot), ("S", &spec.s_snapshot)] {
            if let Some(snapshot) = snapshot {
                result.plan.snapshots.push(SnapshotInfo {
                    side,
                    base_version: snapshot.base_version(),
                    delta: snapshot.delta_len(),
                });
            }
        }
    }
}

/// An owned description of one paper query — everything the scheduler
/// needs to run `scan → select → join → max` later, on another thread.
#[derive(Clone)]
pub struct QuerySpec {
    pub(crate) r: Arc<Relation>,
    pub(crate) s: Arc<Relation>,
    pub(crate) r_pred: Predicate,
    pub(crate) s_pred: Predicate,
    pub(crate) join: JoinSpec,
    /// Whether `filter_r` was called — filtered sides bypass the run
    /// cache (their sorted runs are query-specific).
    pub(crate) r_filtered: bool,
    /// Whether `filter_s` was called.
    pub(crate) s_filtered: bool,
    /// The session's run cache, attached at submit time.
    pub(crate) cache: Option<Arc<RunCache>>,
    /// Consistent snapshot of `r`, captured at submit time when the
    /// handle resolves in the session catalog.
    pub(crate) r_snapshot: Option<Snapshot>,
    /// Consistent snapshot of `s`.
    pub(crate) s_snapshot: Option<Snapshot>,
    /// SLA deadline, measured from submit (so queue wait counts
    /// against it). Routes the query down the anytime path.
    pub(crate) deadline: Option<Duration>,
    /// Admission class (default [`Priority::Normal`]).
    pub(crate) priority: Priority,
    /// Collect up to this many joined rows (key order) alongside the
    /// aggregate. Routes the query down the anytime path.
    pub(crate) rows_cap: Option<usize>,
}

impl QuerySpec {
    /// Join `r ⋈ s` with no selections, using P-MPSM defaults.
    pub fn join(r: &Arc<Relation>, s: &Arc<Relation>) -> Self {
        QuerySpec {
            r: Arc::clone(r),
            s: Arc::clone(s),
            r_pred: Arc::new(|_| true),
            s_pred: Arc::new(|_| true),
            join: JoinSpec::p_mpsm(),
            r_filtered: false,
            s_filtered: false,
            cache: None,
            r_snapshot: None,
            s_snapshot: None,
            deadline: None,
            priority: Priority::Normal,
            rows_cap: None,
        }
    }

    /// Set the selection on the private input `R`.
    pub fn filter_r(mut self, pred: impl Fn(&Tuple) -> bool + Send + Sync + 'static) -> Self {
        self.r_pred = Arc::new(pred);
        self.r_filtered = true;
        self
    }

    /// Set the selection on the public input `S`.
    pub fn filter_s(mut self, pred: impl Fn(&Tuple) -> bool + Send + Sync + 'static) -> Self {
        self.s_pred = Arc::new(pred);
        self.s_filtered = true;
        self
    }

    /// Choose the join algorithm (default: P-MPSM).
    pub fn algorithm(mut self, join: JoinSpec) -> Self {
        self.join = join;
        self
    }

    /// Set an SLA deadline, measured from submission. A deadline-hit
    /// query returns best-so-far rows plus a coverage estimate instead
    /// of failing (the plan's `Anytime` row reports both).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set the admission class (default [`Priority::Normal`]). On
    /// queue overflow an arrival may shed a strictly-lower-priority
    /// queued query instead of being rejected.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Collect joined `(key, r_payload, s_payload)` rows — in key
    /// order, up to `cap` — alongside the aggregate.
    pub fn collect_rows(mut self, cap: usize) -> Self {
        self.rows_cap = Some(cap);
        self
    }
}

impl std::fmt::Debug for QuerySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuerySpec")
            .field("r", &self.r.name())
            .field("s", &self.s.name())
            .field("join", &self.join)
            .finish_non_exhaustive()
    }
}

/// One lineage of a name: the identity record of every epoch it ever
/// produced, plus the epoch states still retained.
///
/// The two grow differently on purpose. `versions` — two `u64`s per
/// compaction — is kept forever so `resolve` can place any handle ever
/// returned. The epoch `Arc`s themselves are garbage collected by
/// [`Lineage::gc`]: under steady writes-plus-compaction the retained
/// set stays O(live snapshots) instead of growing by one epoch per
/// fold.
struct Lineage {
    /// `(id, version)` of every epoch, oldest → newest; never shrinks.
    versions: Vec<(u64, u64)>,
    /// Epoch states still retained, oldest → newest. The newest is
    /// always present; older ones survive only while pinned.
    epochs: Vec<Arc<RelationState>>,
}

impl Lineage {
    fn root(state: Arc<RelationState>) -> Self {
        let base = state.base();
        Lineage { versions: vec![(base.id(), base.version())], epochs: vec![state] }
    }

    fn newest(&self) -> &Arc<RelationState> {
        self.epochs.last().expect("a lineage always retains its newest epoch")
    }

    fn push(&mut self, state: Arc<RelationState>) {
        let base = state.base();
        self.versions.push((base.id(), base.version()));
        self.epochs.push(state);
    }

    fn owns(&self, id: u64, version: u64) -> bool {
        self.versions.iter().any(|&(i, v)| i == id && v == version)
    }

    /// Drop retained epochs nothing outside the catalog pins. The
    /// newest epoch always survives — it is the live read/write target
    /// and what every handle of this lineage resolves to; an older one
    /// survives only while a [`Snapshot`] (or an in-flight compaction)
    /// still holds its `Arc`.
    fn gc(&mut self) {
        let newest = self.epochs.len().saturating_sub(1);
        let mut idx = 0;
        self.epochs.retain(|state| {
            let keep = idx == newest || Arc::strong_count(state) > 1;
            idx += 1;
            keep
        });
    }
}

/// One catalog slot: the name's history as **lineages** of
/// [`RelationState`] epochs. `register` starts a new lineage (new
/// contents — handles from older lineages must keep their old world);
/// compaction appends an epoch *within* the current lineage (same
/// logical contents, new base version — handles keep tracking live
/// writes right through it). Epoch identities stay recorded forever so
/// any handle ever returned still resolves; the epoch *states* are
/// garbage collected once nothing pins them.
#[derive(Default)]
struct MutableEntry {
    lineages: Vec<Lineage>,
}

impl MutableEntry {
    fn current(&self) -> &Arc<RelationState> {
        self.lineages.last().expect("an entry always holds at least one lineage").newest()
    }

    /// Resolve a handle's `(id, version)` to the state its queries
    /// should read: the **newest** epoch of whichever lineage the
    /// handle belongs to. Within a lineage compaction is transparent
    /// (the folded state is the same logical relation, plus any writes
    /// since); across lineages a re-registration replaced the data,
    /// so older handles stay pinned to their lineage's final world.
    fn resolve(&self, id: u64, version: u64) -> Option<&Arc<RelationState>> {
        self.lineages.iter().rev().find(|lineage| lineage.owns(id, version)).map(Lineage::newest)
    }

    /// Run the epoch GC across every lineage of this name.
    fn gc(&mut self) {
        for lineage in &mut self.lineages {
            lineage.gc();
        }
    }
}

/// The session state shared with the scheduler's background compactor:
/// the catalog, the id allocator, the run cache, and the compaction
/// knobs. Kept apart from [`Session`] (which owns the [`Scheduler`])
/// so the compactor thread holding an `Arc` of this creates no
/// ownership cycle.
struct SessionShared {
    catalog: Mutex<HashMap<String, MutableEntry>>,
    /// Monotonic catalog-id allocator (ids start at 1; 0 means
    /// "unregistered" on a [`Relation`]).
    next_id: AtomicU64,
    run_cache: Option<Arc<RunCache>>,
    compaction: CompactionConfig,
}

impl SessionShared {
    /// The snapshot for a query-side handle: the retained epoch whose
    /// base identity matches the handle, at the delta watermark
    /// observed now. `None` when the handle never came from this
    /// catalog (unregistered, or a foreign session's).
    fn snapshot_for(&self, handle: &Arc<Relation>) -> Option<Snapshot> {
        if handle.version() == 0 {
            return None;
        }
        let catalog = self.catalog.lock().expect("catalog poisoned");
        let entry = catalog.get(handle.name())?;
        entry.resolve(handle.id(), handle.version()).map(RelationState::snapshot)
    }

    /// Fold one relation's pending delta into a new base version.
    /// Returns `false` when there was nothing to fold or a concurrent
    /// re-register won the race (its version bump supersedes ours).
    fn compact_relation(&self, cx: &ExecContext, name: &str, warm_cache: bool) -> bool {
        // Capture the epoch and watermark to fold; the merge itself
        // runs outside the catalog lock (writers keep writing — their
        // ops land past the watermark and survive in the tail).
        let (state, watermark) = {
            let catalog = self.catalog.lock().expect("catalog poisoned");
            let Some(entry) = catalog.get(name) else { return false };
            let state = Arc::clone(entry.current());
            let watermark = state.delta().len();
            if watermark == 0 {
                return false;
            }
            (state, watermark)
        };
        let base = state.base();
        let merged = materialize(base.tuples(), &state.delta().ops_prefix(watermark));
        let (id, new_version) = (base.id(), base.version() + 1);
        let new_base = Arc::new(Relation::new(base.name(), merged).with_identity(id, new_version));
        {
            let mut catalog = self.catalog.lock().expect("catalog poisoned");
            let Some(entry) = catalog.get_mut(name) else { return false };
            if !Arc::ptr_eq(entry.current(), &state) {
                // A register() replaced the epoch while we merged; its
                // contents win, our fold is stale.
                return false;
            }
            let tail = Arc::new(DeltaLog::with_ops(state.delta().ops_from(watermark)));
            entry
                .lineages
                .last_mut()
                .expect("an entry always holds at least one lineage")
                .push(Arc::new(RelationState::with_delta(Arc::clone(&new_base), tail)));
            // Release our own pin on the superseded epoch before
            // collecting — with it held that epoch would always look
            // snapshot-pinned and survive one sweep too many.
            drop(state);
            entry.gc();
        }
        if let Some(cache) = &self.run_cache {
            // The version bump retires every older cached run set …
            cache.invalidate_relation(id, new_version);
            if warm_cache {
                // … and optionally pre-builds the new version's runs so
                // the next analytic query opens on a hit. Single-flight:
                // if a query is already building this key, skip.
                let radix_bits = JoinConfig::with_threads(1).radix_bits;
                let key = RunKey {
                    relation: id,
                    version: new_version,
                    fingerprint: splitter_fingerprint(cx.threads(), radix_bits),
                };
                if let Lookup::Miss(permit) = cache.lookup(key) {
                    let mut stats = JoinStats::new(cx.threads());
                    let runs = build_run_set(
                        cx,
                        new_base.tuples(),
                        radix_bits,
                        Phase::One,
                        Phase::One,
                        &mut stats,
                    );
                    permit.publish(Arc::new(runs));
                }
            }
        }
        true
    }
}

impl CompactionTask for SessionShared {
    fn compact_pending(&self, cx: &ExecContext, config: &CompactionConfig) -> usize {
        let eligible: Vec<String> = {
            let catalog = self.catalog.lock().expect("catalog poisoned");
            let mut names: Vec<String> = catalog
                .iter()
                .filter(|(_, entry)| entry.current().delta().len() >= config.threshold.max(1))
                .map(|(name, _)| name.clone())
                .collect();
            names.sort();
            names.truncate(config.max_per_sweep);
            names
        };
        eligible.iter().filter(|name| self.compact_relation(cx, name, config.warm_cache)).count()
    }
}

/// A client session: one scheduler (one shared pool), a versioned
/// catalog of **mutable** relations, and (by default) a sorted-run
/// cache shared by every query on the session. See the module docs for
/// a walkthrough of both the read and the write path.
pub struct Session {
    scheduler: Scheduler,
    shared: Arc<SessionShared>,
}

impl Session {
    /// Open a session with its own scheduler, a default-configured run
    /// cache, and a default background compactor.
    pub fn new(config: SchedulerConfig) -> Self {
        Session::with_run_cache(config, RunCacheConfig::default())
    }

    /// Open a session with an explicitly configured run cache.
    pub fn with_run_cache(config: SchedulerConfig, cache: RunCacheConfig) -> Self {
        Session::with_compaction(config, cache, CompactionConfig::default())
    }

    /// Open a session with explicit run-cache *and* compaction
    /// configuration (pass [`CompactionConfig::manual`] to keep the
    /// background sweep from ever firing on its own).
    pub fn with_compaction(
        config: SchedulerConfig,
        cache: RunCacheConfig,
        compaction: CompactionConfig,
    ) -> Self {
        Session::build(config, Some(Arc::new(RunCache::new(cache))), compaction)
    }

    /// Open a session with no run cache: every query partitions and
    /// sorts from scratch (the pre-cache behaviour; useful as a
    /// benchmark baseline).
    pub fn uncached(config: SchedulerConfig) -> Self {
        Session::build(config, None, CompactionConfig::default())
    }

    fn build(
        config: SchedulerConfig,
        cache: Option<Arc<RunCache>>,
        compaction: CompactionConfig,
    ) -> Self {
        let mut scheduler = Scheduler::new(config);
        if let Some(cache) = &cache {
            scheduler = scheduler.with_run_cache(Arc::clone(cache));
        }
        let shared = Arc::new(SessionShared {
            catalog: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            run_cache: cache,
            compaction,
        });
        scheduler.start_compactor(
            Arc::clone(&shared) as Arc<dyn CompactionTask>,
            shared.compaction.clone(),
        );
        Session { scheduler, shared }
    }

    /// Register a relation under its own name, returning the shared,
    /// identity-stamped handle query specs are built from.
    ///
    /// First registration of a name allocates a fresh stable id and
    /// stamps version 1. Re-registering the name keeps the id and
    /// bumps the version — which invalidates every cached run set
    /// built from older versions and starts a fresh, empty delta log.
    /// Already-submitted queries keep the `Arc` (and therefore the
    /// exact version and snapshot) they captured.
    pub fn register(&self, relation: Relation) -> Arc<Relation> {
        let mut catalog = self.shared.catalog.lock().expect("catalog poisoned");
        let (id, version) = match catalog.get(relation.name()) {
            Some(entry) => {
                let current = entry.current().base();
                (current.id(), current.version() + 1)
            }
            None => (self.shared.next_id.fetch_add(1, Ordering::Relaxed), 1),
        };
        let handle = Arc::new(relation.with_identity(id, version));
        let entry = catalog.entry(handle.name().to_string()).or_default();
        entry.lineages.push(Lineage::root(Arc::new(RelationState::new(Arc::clone(&handle)))));
        entry.gc();
        drop(catalog);
        if let Some(cache) = &self.shared.run_cache {
            cache.invalidate_relation(id, version);
        }
        handle
    }

    /// Look up a registered relation by name (the newest base version;
    /// pending delta ops are not folded in — they surface through
    /// queries and [`Session::compact`]).
    pub fn relation(&self, name: &str) -> Option<Arc<Relation>> {
        let catalog = self.shared.catalog.lock().expect("catalog poisoned");
        catalog.get(name).map(|entry| Arc::clone(entry.current().base()))
    }

    /// Append tuples to a registered relation's delta. Returns the new
    /// delta watermark (ops visible to a snapshot captured now).
    pub fn append(
        &self,
        name: &str,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<usize, WriteError> {
        self.write(name, tuples.into_iter().map(DeltaOp::Append))
    }

    /// Upsert: delete every tuple with `key`, then insert
    /// `(key, payload)`. Returns the new delta watermark.
    pub fn update(&self, name: &str, key: u64, payload: u64) -> Result<usize, WriteError> {
        self.write(name, [DeltaOp::Update { key, payload }])
    }

    /// Delete every tuple with `key`. Returns the new delta watermark.
    pub fn delete(&self, name: &str, key: u64) -> Result<usize, WriteError> {
        self.write(name, [DeltaOp::Delete { key }])
    }

    fn write(
        &self,
        name: &str,
        ops: impl IntoIterator<Item = DeltaOp>,
    ) -> Result<usize, WriteError> {
        // The ops land in the *current* epoch's log under the catalog
        // lock: compaction swaps epochs under the same lock, so a
        // write can never slip into an epoch that was already folded
        // (no lost writes). The lock is held for one Vec::extend.
        let watermark = {
            let catalog = self.shared.catalog.lock().expect("catalog poisoned");
            let entry =
                catalog.get(name).ok_or_else(|| WriteError::UnknownRelation(name.to_string()))?;
            entry.current().delta().extend(ops)
        };
        if watermark >= self.shared.compaction.threshold {
            self.scheduler.nudge_compactor();
        }
        Ok(watermark)
    }

    /// Pending delta ops on a relation's current epoch (`None` for
    /// unknown names). 0 means queries read pure base runs.
    pub fn delta_len(&self, name: &str) -> Option<usize> {
        let catalog = self.shared.catalog.lock().expect("catalog poisoned");
        catalog.get(name).map(|entry| entry.current().delta().len())
    }

    /// Epoch states the catalog still retains for `name`, across all
    /// of its lineages (`None` for unknown names). Compaction appends
    /// an epoch per fold and the epoch GC drops the ones no live
    /// snapshot pins, so under steady writes-plus-compaction this
    /// stays proportional to the number of live snapshots rather than
    /// the number of folds ever performed.
    pub fn retained_epochs(&self, name: &str) -> Option<usize> {
        let catalog = self.shared.catalog.lock().expect("catalog poisoned");
        catalog.get(name).map(|entry| entry.lineages.iter().map(|l| l.epochs.len()).sum())
    }

    /// Fold a relation's pending delta into a new base version right
    /// now, on the caller's thread (deterministic alternative to the
    /// background sweep; tests and benchmarks use this). Returns
    /// whether a fold happened.
    pub fn compact(&self, name: &str) -> bool {
        let folded = self.shared.compact_relation(
            self.scheduler.context(),
            name,
            self.shared.compaction.warm_cache,
        );
        if folded {
            self.scheduler.note_compactions(1);
        }
        folded
    }

    /// The session's sorted-run cache, if caching is enabled.
    pub fn run_cache(&self) -> Option<&Arc<RunCache>> {
        self.shared.run_cache.as_ref()
    }

    /// Submit a query for asynchronous execution. Fails fast when the
    /// scheduler's admission queue is full.
    ///
    /// This is the snapshot capture point: each side that resolves in
    /// the catalog is pinned to its epoch and delta watermark *here*,
    /// before the query ever waits in the admission queue — writes
    /// racing the queue wait are invisible to it.
    pub fn submit(&self, mut spec: QuerySpec) -> Result<QueryTicket, SubmitError> {
        spec.cache = self.shared.run_cache.clone();
        spec.r_snapshot = self.shared.snapshot_for(&spec.r);
        spec.s_snapshot = self.shared.snapshot_for(&spec.s);
        self.scheduler.submit(spec)
    }

    /// Submit and block until the result is available. Admission
    /// rejections surface as [`QueryError::Rejected`].
    pub fn query(&self, spec: QuerySpec) -> Result<QueryOutput, QueryError> {
        match self.submit(spec) {
            Ok(ticket) => ticket.wait(),
            Err(err) => Err(QueryError::Rejected(err)),
        }
    }

    /// The underlying scheduler (pool metrics, direct submission).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(name: &str, n: u64) -> Relation {
        Relation::new(name, (0..n).map(|k| Tuple::new(k, k)).collect())
    }

    #[test]
    fn catalog_registers_and_resolves() {
        let session = Session::new(SchedulerConfig::new(1));
        session.register(rel("orders", 10));
        assert_eq!(session.relation("orders").expect("registered").len(), 10);
        assert!(session.relation("lineitem").is_none());
    }

    #[test]
    fn blocking_query_round_trip() {
        let session = Session::new(SchedulerConfig::new(2));
        let r = session.register(rel("R", 100));
        let s = session.register(rel("S", 100));
        let out = session
            .query(QuerySpec::join(&r, &s).filter_r(|t| t.key < 50).filter_s(|t| t.key >= 40))
            .expect("query failed");
        assert_eq!(out.result.max_payload_sum, Some(49 + 49));
        assert_eq!(out.result.r_selected, 50);
        assert_eq!(out.result.s_selected, 60);
        assert!(out.result.plan.queue_wait_ms.is_some(), "scheduled plans report queue wait");
    }

    #[test]
    fn b_mpsm_spec_agrees_with_p_mpsm_spec() {
        let session = Session::new(SchedulerConfig::new(2));
        let r = session.register(rel("R", 300));
        let s = session
            .register(Relation::new("S", (0..900u64).map(|i| Tuple::new(i % 300, i)).collect()));
        let p = session.query(QuerySpec::join(&r, &s)).expect("P-MPSM failed");
        let b = session
            .query(QuerySpec::join(&r, &s).algorithm(JoinSpec::b_mpsm()))
            .expect("B-MPSM failed");
        assert_eq!(p.result.max_payload_sum, b.result.max_payload_sum);
    }

    #[test]
    fn register_stamps_identity_and_bumps_versions() {
        let session = Session::new(SchedulerConfig::new(1));
        let v1 = session.register(rel("orders", 10));
        assert!(v1.id() > 0, "registered relations get a non-zero id");
        assert_eq!(v1.version(), 1);
        let other = session.register(rel("lineitem", 5));
        assert_ne!(other.id(), v1.id(), "distinct names get distinct ids");
        let v2 = session.register(rel("orders", 20));
        assert_eq!(v2.id(), v1.id(), "re-registration keeps the stable id");
        assert_eq!(v2.version(), 2, "re-registration bumps the version");
        assert_eq!(v1.version(), 1, "old handles keep the version they captured");
        assert_eq!(session.relation("orders").expect("resolves").len(), 20);
    }

    #[test]
    fn repeated_queries_hit_the_cache_and_agree_with_uncached() {
        let cached = Session::new(SchedulerConfig::new(2));
        let uncached = Session::uncached(SchedulerConfig::new(2));
        let (r_data, s_data): (Vec<_>, Vec<_>) = (
            (0..400u64).map(|k| Tuple::new(k, k)).collect(),
            (0..1600u64).map(|i| Tuple::new(i % 400, i)).collect(),
        );
        let r = cached.register(Relation::new("R", r_data.clone()));
        let s = cached.register(Relation::new("S", s_data.clone()));
        let ur = uncached.register(Relation::new("R", r_data));
        let us = uncached.register(Relation::new("S", s_data));
        let expect = uncached.query(QuerySpec::join(&ur, &us)).expect("uncached").result;
        assert!(uncached.run_cache().is_none());
        for round in 0..3 {
            let out = cached.query(QuerySpec::join(&r, &s)).expect("cached").result;
            assert_eq!(out.max_payload_sum, expect.max_payload_sum, "round {round}");
            let info = out.plan.run_cache.expect("cached sessions report RunCache");
            if round > 0 {
                use crate::plan::RunCacheOutcome;
                assert_eq!(info.r, RunCacheOutcome::Hit, "round {round}");
                assert_eq!(info.s, RunCacheOutcome::Hit, "round {round}");
            }
        }
        let stats = cached.run_cache().expect("caching on by default").stats();
        assert_eq!(stats.misses, 2, "first round misses both sides");
        assert_eq!(stats.hits, 4, "two later rounds hit both sides");
        let metrics = cached.scheduler().metrics();
        assert_eq!((metrics.cache_hits, metrics.cache_misses), (4, 2));
        let uncached_metrics = uncached.scheduler().metrics();
        assert_eq!((uncached_metrics.cache_hits, uncached_metrics.cache_misses), (0, 0));
    }

    #[test]
    fn filtered_sides_bypass_the_cache() {
        let session = Session::new(SchedulerConfig::new(2));
        let r = session.register(rel("R", 200));
        let s = session.register(rel("S", 200));
        let out = session
            .query(QuerySpec::join(&r, &s).filter_r(|t| t.key < 50))
            .expect("query failed")
            .result;
        assert_eq!(out.max_payload_sum, Some(49 + 49));
        let info = out.plan.run_cache.expect("RunCache node present");
        use crate::plan::RunCacheOutcome;
        assert_eq!(info.r, RunCacheOutcome::Bypass, "filtered side never cached");
        assert_eq!(info.s, RunCacheOutcome::Miss, "unfiltered side populates");
    }

    #[test]
    fn spec_debug_is_compact() {
        let r = Arc::new(rel("R", 1));
        let s = Arc::new(rel("S", 1));
        let text = format!("{:?}", QuerySpec::join(&r, &s));
        assert!(text.contains("\"R\"") && text.contains("PMpsm"), "{text}");
    }

    #[test]
    fn writes_are_visible_to_later_queries_and_plans() {
        let session = Session::new(SchedulerConfig::new(2));
        let r = session.register(rel("R", 50));
        let s = session.register(rel("S", 50));
        // Clean query first: Snapshot rows render with delta=0.
        let clean = session.query(QuerySpec::join(&r, &s)).expect("clean").result;
        assert_eq!(clean.max_payload_sum, Some(49 + 49));
        assert!(
            clean.plan.explain().contains("Snapshot [R: base=v1, delta=0 tuples]"),
            "{}",
            clean.plan.explain()
        );
        // Append a tuple that dominates the aggregate.
        assert_eq!(session.append("R", [Tuple::new(49, 1000)]).expect("registered"), 1);
        assert_eq!(session.delta_len("R"), Some(1));
        let dirty = session.query(QuerySpec::join(&r, &s)).expect("dirty").result;
        assert_eq!(dirty.max_payload_sum, Some(1000 + 49));
        assert_eq!(dirty.r_selected, 51, "logical cardinality includes the delta");
        assert!(
            dirty.plan.explain().contains("Snapshot [R: base=v1, delta=1 tuples]"),
            "{}",
            dirty.plan.explain()
        );
        // Delete + update through the same path.
        session.delete("S", 49).expect("registered");
        session.update("S", 48, 500).expect("registered");
        let out = session.query(QuerySpec::join(&r, &s)).expect("written").result;
        assert_eq!(out.max_payload_sum, Some(48 + 500), "S key 49 gone, 48 upserted to 500");
        assert_eq!(out.s_selected, 49, "one S tuple deleted, one replaced");
    }

    #[test]
    fn writes_error_on_unknown_relations() {
        let session = Session::new(SchedulerConfig::new(1));
        assert_eq!(
            session.append("ghost", [Tuple::new(1, 1)]),
            Err(WriteError::UnknownRelation("ghost".into()))
        );
        assert!(session.delta_len("ghost").is_none());
        assert!(!session.compact("ghost"), "nothing to fold");
        let err = WriteError::UnknownRelation("ghost".into());
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn compaction_folds_the_delta_and_bumps_the_version() {
        let session = Session::new(SchedulerConfig::new(2));
        let r = session.register(rel("R", 100));
        let s = session.register(rel("S", 100));
        session.append("R", (100..120u64).map(|k| Tuple::new(k, k))).expect("registered");
        session.delete("R", 0).expect("registered");
        let before = session.query(QuerySpec::join(&r, &s)).expect("before").result;

        assert!(session.compact("R"));
        assert!(!session.compact("R"), "second fold has nothing to do");
        assert_eq!(session.delta_len("R"), Some(0), "delta folded into the base");
        let current = session.relation("R").expect("resolves");
        assert_eq!(current.version(), 2, "compaction bumps the catalog version");
        assert_eq!(current.len(), 100 + 20 - 1, "new base holds the folded state");
        assert_eq!(session.scheduler().metrics().compactions, 1);

        // Old handles keep answering from their captured snapshot; a
        // fresh handle sees the compacted base.
        let after_old = session.query(QuerySpec::join(&r, &s)).expect("old handle").result;
        assert_eq!(after_old.max_payload_sum, before.max_payload_sum);
        let after_new = session.query(QuerySpec::join(&current, &s)).expect("new handle").result;
        assert_eq!(after_new.max_payload_sum, before.max_payload_sum);
        assert!(
            after_new.plan.explain().contains("Snapshot [R: base=v2, delta=0 tuples]"),
            "{}",
            after_new.plan.explain()
        );
    }

    #[test]
    fn background_compactor_folds_past_the_threshold() {
        use std::time::Duration;
        let session = Session::with_compaction(
            SchedulerConfig::new(2),
            RunCacheConfig::default(),
            CompactionConfig::default().threshold(8).interval(Duration::from_millis(5)),
        );
        session.register(rel("R", 64));
        session.append("R", (64..80u64).map(|k| Tuple::new(k, k))).expect("registered");
        // The write crossed the threshold and nudged the compactor;
        // wait (bounded) for the background fold to land.
        let mut folded = false;
        for _ in 0..2000 {
            if session.relation("R").expect("resolves").version() == 2 {
                folded = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(folded, "background compactor never folded the delta");
        assert_eq!(session.delta_len("R"), Some(0));
        assert!(session.scheduler().metrics().compactions >= 1);
        assert_eq!(session.relation("R").expect("resolves").len(), 80);
    }

    #[test]
    fn manual_compaction_config_never_fires_on_its_own() {
        let session = Session::with_compaction(
            SchedulerConfig::new(1),
            RunCacheConfig::default(),
            CompactionConfig::manual(),
        );
        session.register(rel("R", 10));
        session.append("R", (0..100u64).map(|k| Tuple::new(k, k))).expect("registered");
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(session.relation("R").expect("resolves").version(), 1, "no background fold");
        assert_eq!(session.delta_len("R"), Some(100));
        assert!(session.compact("R"), "manual fold still works");
        assert_eq!(session.relation("R").expect("resolves").version(), 2);
    }

    #[test]
    fn epoch_gc_retains_only_pinned_and_newest_epochs() {
        let session = Session::with_compaction(
            SchedulerConfig::new(1),
            RunCacheConfig::default(),
            CompactionConfig::manual(),
        );
        let orders = session.register(rel("orders", 64));
        // Pin the version-1 world the way a long-running query would.
        let pinned = session.shared.snapshot_for(&orders).expect("registered");

        for round in 0..16u64 {
            session.append("orders", [Tuple::new(1000 + round, round)]).expect("write");
            assert!(session.compact("orders"), "round {round} folds one op");
        }
        // 16 folds produced 16 new epochs, but the catalog retains
        // exactly two states: the pinned v1 epoch and the newest one.
        assert_eq!(session.retained_epochs("orders"), Some(2));
        assert_eq!(session.relation("orders").expect("resolves").version(), 17);
        // The pinned snapshot still reads its captured world …
        assert_eq!(pinned.materialize().len(), 64, "pinned epoch survives the GC");
        // … and identity outlives the collected epochs: the original
        // v1 handle still resolves (to the newest epoch's state).
        let snap = session.shared.snapshot_for(&orders).expect("identity kept forever");
        assert_eq!(snap.base_version(), 17);
        assert_eq!(snap.materialize().len(), 64 + 16);
        drop(snap);

        // Dropping the pin lets the next fold's sweep collect v1.
        drop(pinned);
        session.append("orders", [Tuple::new(9999, 0)]).expect("write");
        assert!(session.compact("orders"));
        assert_eq!(session.retained_epochs("orders"), Some(1), "only the newest epoch remains");

        // Re-registration starts a new lineage; the old lineage keeps
        // its final epoch so old handles still answer.
        session.register(rel("orders", 8));
        assert_eq!(session.retained_epochs("orders"), Some(2));
        let old = session.shared.snapshot_for(&orders).expect("old lineage resolves");
        assert_eq!(old.materialize().len(), 64 + 17);
    }
}
