//! Consistent snapshots over mutable relations.
//!
//! A registered relation lives as a [`RelationState`]: an immutable
//! base [`Relation`] (whose sorted runs the run cache keeps, keyed by
//! `(id, base version, fingerprint)`) plus an append-only [`DeltaLog`]
//! of [`DeltaOp`]s. Writers only ever push onto the log; readers
//! capture a [`Snapshot`] — the state `Arc` plus the log length at
//! admission — and everything after that watermark is invisible to
//! them. That one `(Arc, usize)` pair is the whole isolation story:
//! the base is immutable, the log is append-only, so a prefix never
//! changes after it was captured. Writers never block readers and
//! vice versa; the only lock is the catalog map itself, held for the
//! duration of a push or a pointer clone.
//!
//! Compaction folds a delta prefix into a new base (bumping the
//! catalog version, which invalidates older cached run sets through
//! the existing `RunKey` machinery) and starts a fresh state whose log
//! carries the un-compacted tail. In-flight snapshots keep their old
//! state `Arc` — they stay consistent, pinned to the world they
//! admitted under.

use std::sync::{Arc, Mutex};

use mpsm_core::join::delta::{materialize, DeltaOp, DeltaOverlay};
use mpsm_core::Tuple;

use crate::scan::Relation;

/// An append-only log of writes against one relation version. The log
/// is the write side of snapshot isolation: pushes go under a mutex
/// (writers are rare and cheap), reads clone a prefix bounded by a
/// previously observed length.
#[derive(Debug, Default)]
pub struct DeltaLog {
    ops: Mutex<Vec<DeltaOp>>,
}

impl DeltaLog {
    /// An empty log.
    pub fn new() -> Self {
        DeltaLog::default()
    }

    /// A log pre-seeded with `ops` (compaction hands the un-compacted
    /// tail to the successor state this way).
    pub fn with_ops(ops: Vec<DeltaOp>) -> Self {
        DeltaLog { ops: Mutex::new(ops) }
    }

    /// Append one op; returns the new length (the watermark a snapshot
    /// taken now would capture).
    pub fn append(&self, op: DeltaOp) -> usize {
        let mut ops = self.ops.lock().expect("delta log poisoned");
        ops.push(op);
        ops.len()
    }

    /// Append many ops atomically; returns the new length.
    pub fn extend(&self, batch: impl IntoIterator<Item = DeltaOp>) -> usize {
        let mut ops = self.ops.lock().expect("delta log poisoned");
        ops.extend(batch);
        ops.len()
    }

    /// Current length — the watermark for a snapshot captured now.
    pub fn len(&self) -> usize {
        self.ops.lock().expect("delta log poisoned").len()
    }

    /// Whether the log holds no ops.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clone the first `watermark` ops (everything a snapshot at that
    /// watermark may see). Saturates at the current length.
    pub fn ops_prefix(&self, watermark: usize) -> Vec<DeltaOp> {
        let ops = self.ops.lock().expect("delta log poisoned");
        ops[..watermark.min(ops.len())].to_vec()
    }

    /// Clone the ops *after* `watermark` — the tail compaction must
    /// carry into the successor state.
    pub fn ops_from(&self, watermark: usize) -> Vec<DeltaOp> {
        let ops = self.ops.lock().expect("delta log poisoned");
        ops[watermark.min(ops.len())..].to_vec()
    }
}

/// One version epoch of a mutable relation: the immutable sorted-base
/// side (what the run cache serves) and the hot delta log. The catalog
/// points at the current state; snapshots and compaction pin older
/// ones for as long as they need them.
#[derive(Debug, Clone)]
pub struct RelationState {
    base: Arc<Relation>,
    delta: Arc<DeltaLog>,
}

impl RelationState {
    /// A fresh epoch around `base` with an empty delta.
    pub fn new(base: Arc<Relation>) -> Self {
        RelationState { base, delta: Arc::new(DeltaLog::new()) }
    }

    /// An epoch with a pre-seeded delta (the compaction hand-off).
    pub fn with_delta(base: Arc<Relation>, delta: Arc<DeltaLog>) -> Self {
        RelationState { base, delta }
    }

    /// The immutable base relation of this epoch.
    pub fn base(&self) -> &Arc<Relation> {
        &self.base
    }

    /// The epoch's delta log.
    pub fn delta(&self) -> &Arc<DeltaLog> {
        &self.delta
    }

    /// Capture a consistent snapshot: this state plus the delta length
    /// observed *now*. Lock-free apart from one log-length read.
    pub fn snapshot(self: &Arc<Self>) -> Snapshot {
        Snapshot { state: Arc::clone(self), watermark: self.delta.len() }
    }
}

/// A consistent view of one relation: a pinned [`RelationState`] and a
/// delta watermark. Everything the paper query reads about a side —
/// base runs, overlay, logical cardinality — derives from this pair,
/// so concurrent writes and compactions cannot tear a running join.
#[derive(Debug, Clone)]
pub struct Snapshot {
    state: Arc<RelationState>,
    watermark: usize,
}

impl Snapshot {
    /// Snapshot an exact `(state, watermark)` pair (tests and the
    /// compactor use this; normal capture goes through
    /// [`RelationState::snapshot`]).
    pub fn at(state: Arc<RelationState>, watermark: usize) -> Self {
        Snapshot { state, watermark }
    }

    /// The pinned state.
    pub fn state(&self) -> &Arc<RelationState> {
        &self.state
    }

    /// The base relation this snapshot reads.
    pub fn base(&self) -> &Arc<Relation> {
        self.state.base()
    }

    /// The base relation's catalog version (the `vN` EXPLAIN shows).
    pub fn base_version(&self) -> u64 {
        self.state.base().version()
    }

    /// Number of delta ops visible to this snapshot.
    pub fn delta_len(&self) -> usize {
        self.watermark
    }

    /// Fold the visible delta prefix into an overlay (adds + masked
    /// base keys).
    pub fn overlay(&self) -> DeltaOverlay {
        DeltaOverlay::from_ops(&self.state.delta.ops_prefix(self.watermark))
    }

    /// Replay the visible prefix over the base — the literal state this
    /// snapshot represents. The oracle for isolation tests, and what
    /// filtered sides (which bypass the run path) scan.
    pub fn materialize(&self) -> Vec<Tuple> {
        materialize(self.state.base().tuples(), &self.state.delta.ops_prefix(self.watermark))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(n: u64) -> Arc<Relation> {
        Arc::new(Relation::new("R", (0..n).map(|k| Tuple::new(k, k)).collect()))
    }

    #[test]
    fn snapshots_pin_the_watermark_they_captured() {
        let state = Arc::new(RelationState::new(base(10)));
        let before = state.snapshot();
        state.delta().append(DeltaOp::Append(Tuple::new(100, 1)));
        let after = state.snapshot();
        state.delta().extend([DeltaOp::Delete { key: 0 }, DeltaOp::Update { key: 1, payload: 9 }]);

        assert_eq!(before.delta_len(), 0);
        assert_eq!(after.delta_len(), 1);
        assert_eq!(before.materialize().len(), 10, "older snapshot sees no writes");
        assert_eq!(after.materialize().len(), 11, "newer snapshot sees exactly its prefix");
        assert!(before.overlay().is_empty());
        assert_eq!(state.delta().len(), 3);
    }

    #[test]
    fn prefix_and_tail_partition_the_log() {
        let log = DeltaLog::new();
        for k in 0..6u64 {
            log.append(DeltaOp::Append(Tuple::new(k, k)));
        }
        let head = log.ops_prefix(4);
        let tail = log.ops_from(4);
        assert_eq!((head.len(), tail.len()), (4, 2));
        assert_eq!(log.ops_prefix(99).len(), 6, "prefix saturates");
        assert!(log.ops_from(99).is_empty(), "tail saturates");
        assert!(!log.is_empty());
    }

    #[test]
    fn overlay_agrees_with_materialize() {
        let state = Arc::new(RelationState::new(base(20)));
        state.delta().extend([
            DeltaOp::Append(Tuple::new(30, 3)),
            DeltaOp::Delete { key: 5 },
            DeltaOp::Update { key: 7, payload: 70 },
        ]);
        let snap = state.snapshot();
        let mut via_overlay = snap.overlay().apply(snap.base().tuples());
        let mut via_replay = snap.materialize();
        via_overlay.sort_unstable_by_key(|t| (t.key, t.payload));
        via_replay.sort_unstable_by_key(|t| (t.key, t.payload));
        assert_eq!(via_overlay, via_replay);
    }
}
