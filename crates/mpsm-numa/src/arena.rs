//! Node-tagged allocations.
//!
//! A [`NumaBuf`] is a heap buffer with a declared *home node*. On the real
//! paper machine the home node would be enforced with `numactl`/
//! `mbind`; in this simulated substrate the tag exists so that algorithms
//! and audits can classify every access as local or remote. The join
//! algorithms in `mpsm-core` allocate run storage through a [`NumaArena`]
//! so that per-node allocation volumes can be reported, mirroring the
//! paper's claim that all sorting happens in local RAM partitions.

use std::ops::{Deref, DerefMut};

use parking_lot::Mutex;

use crate::topology::{NodeId, Topology};

/// A buffer of `T` homed on a specific NUMA node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaBuf<T> {
    home: NodeId,
    data: Vec<T>,
}

impl<T> NumaBuf<T> {
    /// Wrap an existing vector, declaring its home node.
    pub fn from_vec(home: NodeId, data: Vec<T>) -> Self {
        NumaBuf { home, data }
    }

    /// Allocate an empty buffer with `capacity` reserved on `home`.
    pub fn with_capacity(home: NodeId, capacity: usize) -> Self {
        NumaBuf { home, data: Vec::with_capacity(capacity) }
    }

    /// The node this buffer is homed on.
    pub fn home(&self) -> NodeId {
        self.home
    }

    /// Unwrap into the underlying vector.
    pub fn into_inner(self) -> Vec<T> {
        self.data
    }

    /// Borrow the underlying vector mutably.
    pub fn vec_mut(&mut self) -> &mut Vec<T> {
        &mut self.data
    }
}

impl<T: Clone + Default> NumaBuf<T> {
    /// Allocate a zero-initialised buffer of `len` elements on `home`.
    pub fn zeroed(home: NodeId, len: usize) -> Self {
        NumaBuf { home, data: vec![T::default(); len] }
    }
}

impl<T> Deref for NumaBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> DerefMut for NumaBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

/// Per-node allocation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeAllocStats {
    /// Buffers currently allocated from this node.
    pub buffers: u64,
    /// Bytes currently allocated from this node.
    pub bytes: u64,
}

/// Allocation bookkeeper handing out node-homed buffers.
///
/// The arena does not own the buffers it vends (they are ordinary `Vec`s
/// underneath); it tracks per-node allocation volume so experiments can
/// assert NUMA-affine placement, e.g. "every worker's runs live on its
/// own node".
#[derive(Debug)]
pub struct NumaArena {
    topology: Topology,
    stats: Mutex<Vec<NodeAllocStats>>,
}

impl NumaArena {
    /// Create an arena for `topology`.
    pub fn new(topology: Topology) -> Self {
        let stats = Mutex::new(vec![NodeAllocStats::default(); topology.nodes as usize]);
        NumaArena { topology, stats }
    }

    /// The topology this arena allocates for.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Allocate a buffer of `len` default-initialised elements homed on
    /// `node`.
    ///
    /// # Panics
    /// Panics if `node` is outside the topology.
    pub fn alloc<T: Clone + Default>(&self, node: NodeId, len: usize) -> NumaBuf<T> {
        assert!(node.0 < self.topology.nodes, "node {node} outside topology");
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let mut stats = self.stats.lock();
        stats[node.0 as usize].buffers += 1;
        stats[node.0 as usize].bytes += bytes;
        NumaBuf::zeroed(node, len)
    }

    /// Adopt an existing vector, homing it on `node` and accounting it.
    pub fn adopt<T>(&self, node: NodeId, data: Vec<T>) -> NumaBuf<T> {
        assert!(node.0 < self.topology.nodes, "node {node} outside topology");
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        let mut stats = self.stats.lock();
        stats[node.0 as usize].buffers += 1;
        stats[node.0 as usize].bytes += bytes;
        NumaBuf::from_vec(node, data)
    }

    /// Snapshot of per-node allocation statistics.
    pub fn stats(&self) -> Vec<NodeAllocStats> {
        self.stats.lock().clone()
    }

    /// Total bytes allocated across all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.stats.lock().iter().map(|s| s.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_remember_their_home() {
        let buf: NumaBuf<u64> = NumaBuf::zeroed(NodeId(2), 8);
        assert_eq!(buf.home(), NodeId(2));
        assert_eq!(buf.len(), 8);
        assert!(buf.iter().all(|&x| x == 0));
    }

    #[test]
    fn deref_allows_slice_ops() {
        let mut buf: NumaBuf<u32> = NumaBuf::zeroed(NodeId(0), 4);
        buf[0] = 7;
        buf.sort_unstable();
        assert_eq!(&buf[..], &[0, 0, 0, 7]);
    }

    #[test]
    fn arena_accounts_per_node() {
        let arena = NumaArena::new(Topology::paper_machine());
        let _a: NumaBuf<u64> = arena.alloc(NodeId(0), 100);
        let _b: NumaBuf<u64> = arena.alloc(NodeId(0), 50);
        let _c: NumaBuf<u64> = arena.alloc(NodeId(3), 10);
        let stats = arena.stats();
        assert_eq!(stats[0].buffers, 2);
        assert_eq!(stats[0].bytes, 150 * 8);
        assert_eq!(stats[3].buffers, 1);
        assert_eq!(arena.total_bytes(), 160 * 8);
    }

    #[test]
    fn adopt_accounts_existing_vec() {
        let arena = NumaArena::new(Topology::flat(4));
        let buf = arena.adopt(NodeId(0), vec![1u8, 2, 3]);
        assert_eq!(buf.home(), NodeId(0));
        assert_eq!(arena.stats()[0].bytes, 3);
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn alloc_on_unknown_node_panics() {
        let arena = NumaArena::new(Topology::flat(4));
        let _: NumaBuf<u8> = arena.alloc(NodeId(1), 1);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let buf: NumaBuf<u64> = NumaBuf::with_capacity(NodeId(1), 32);
        assert!(buf.is_empty());
    }

    #[test]
    fn into_inner_roundtrip() {
        let buf = NumaBuf::from_vec(NodeId(0), vec![9u64, 1]);
        assert_eq!(buf.into_inner(), vec![9, 1]);
    }
}
