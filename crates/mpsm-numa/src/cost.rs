//! Latency cost model calibrated against the paper's Figure 1.
//!
//! The model prices a memory access by two orthogonal properties:
//!
//! * **locality** — does the touched cache line live on the worker's own
//!   NUMA node or on a remote one?
//! * **pattern** — is the access part of a sequential scan (the hardware
//!   prefetcher hides latency, commandment C2) or a random access?
//!
//! plus a separate price for **synchronization events** (atomic
//! read-modify-write on contended cache lines, commandment C3).
//!
//! Calibration targets, from Figure 1 of the paper (32 workers, 50M-tuple
//! chunks of 16-byte tuples):
//!
//! | experiment | NUMA-affine | NUMA-agnostic | ratio |
//! |------------|-------------|---------------|-------|
//! | (1) sort local vs. globally allocated | 12 946 ms | 41 734 ms | 3.22× |
//! | (2) partition prefix-sum vs. synchronized | 7 440 ms | 22 756 ms | 3.06× |
//! | (3) merge join both-local vs. one-remote | 837 ms | 1 000 ms | 1.19× |

use crate::counters::AccessCounters;

/// Classification of a priced memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Sequential scan of node-local memory.
    LocalSeq,
    /// Random access into node-local memory.
    LocalRand,
    /// Sequential scan of a remote node's memory (prefetcher-friendly).
    RemoteSeq,
    /// Random access into a remote node's memory (the pattern the paper's
    /// commandment C1 forbids).
    RemoteRand,
}

impl AccessKind {
    /// All four kinds, in a fixed order usable for array indexing.
    pub const ALL: [AccessKind; 4] = [
        AccessKind::LocalSeq,
        AccessKind::LocalRand,
        AccessKind::RemoteSeq,
        AccessKind::RemoteRand,
    ];

    /// Dense index of this kind, matching [`AccessKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            AccessKind::LocalSeq => 0,
            AccessKind::LocalRand => 1,
            AccessKind::RemoteSeq => 2,
            AccessKind::RemoteRand => 3,
        }
    }

    /// Derive the kind from locality and pattern flags.
    pub fn from_flags(local: bool, sequential: bool) -> Self {
        match (local, sequential) {
            (true, true) => AccessKind::LocalSeq,
            (true, false) => AccessKind::LocalRand,
            (false, true) => AccessKind::RemoteSeq,
            (false, false) => AccessKind::RemoteRand,
        }
    }
}

/// Nanosecond prices per *tuple-sized* (16-byte) access, plus a price per
/// synchronization event.
///
/// Only the ratios matter for reproducing the paper's figures; the
/// absolute scale is anchored so that the Figure 1 experiment (3) —
/// a two-run merge scan — matches the paper's 837 ms for 32 × 50M tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// ns per 16-byte access, indexed by [`AccessKind::index`].
    pub ns_per_access: [f64; 4],
    /// ns per synchronization event (test-and-set / fetch-add on a
    /// contended line, as in Figure 1 experiment (2)).
    pub ns_per_sync: f64,
}

impl CostModel {
    /// Model calibrated against Figure 1 (see module docs).
    ///
    /// Derivation at the paper's scale (32 workers × 50M tuples):
    /// * experiment (3): each worker streams 2 × 50M tuples in 837 ms
    ///   when both runs are local → `local_seq ≈ 837e6 / 100M ≈ 8 ns`
    ///   per tuple (one 16-byte tuple per access, two runs). With the
    ///   second run remote the time is 1000 ms, so
    ///   `remote_seq = 2 × 1000/837 − 1 ≈ 1.39 × local_seq`.
    /// * experiment (1): sorting 50M tuples locally takes 12 946 ms.
    ///   Pricing sort traffic as `n·(log2 n + 2)` random accesses gives
    ///   `local_rand ≈ 9 ns`. On a globally allocated array 3/4 of those
    ///   accesses are remote; 41 734 ms requires
    ///   `remote_rand ≈ 4 × local_rand`.
    /// * experiment (2): scatter of 50M tuples with prefix sums = 7 440 ms
    ///   (one local random write per tuple plus a sequential read);
    ///   with a synchronized index = 22 756 ms, so the sync event costs
    ///   `≈ (22 756 − 7 440) ms / 50M ≈ 306 ns`.
    pub fn paper_calibrated() -> Self {
        let local_seq = 8.37;
        let local_rand = 9.0;
        CostModel {
            ns_per_access: [
                local_seq,
                local_rand,
                local_seq * 1.39, // remote sequential: prefetcher mostly hides it
                local_rand * 4.0, // remote random: the expensive pattern
            ],
            ns_per_sync: 306.0,
        }
    }

    /// Price a number of accesses of one kind, in nanoseconds.
    pub fn access_ns(&self, kind: AccessKind, count: u64) -> f64 {
        self.ns_per_access[kind.index()] * count as f64
    }

    /// Price a number of synchronization events, in nanoseconds.
    pub fn sync_ns(&self, count: u64) -> f64 {
        self.ns_per_sync * count as f64
    }

    /// Total modeled nanoseconds for a set of counters.
    pub fn total_ns(&self, counters: &AccessCounters) -> f64 {
        let mut ns = 0.0;
        for kind in AccessKind::ALL {
            ns += self.access_ns(kind, counters.accesses(kind));
        }
        ns + self.sync_ns(counters.syncs())
    }

    /// Total modeled milliseconds for a set of counters.
    pub fn total_ms(&self, counters: &AccessCounters) -> f64 {
        self.total_ns(counters) / 1e6
    }

    /// Blended per-access cost for memory spread uniformly over all nodes
    /// (`remote_fraction` of touches land remote), used when pricing
    /// globally interleaved allocations.
    pub fn blended_ns(&self, sequential: bool, remote_fraction: f64) -> f64 {
        let (local, remote) = if sequential {
            (AccessKind::LocalSeq, AccessKind::RemoteSeq)
        } else {
            (AccessKind::LocalRand, AccessKind::RemoteRand)
        };
        self.ns_per_access[local.index()] * (1.0 - remote_fraction)
            + self.ns_per_access[remote.index()] * remote_fraction
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_index_into_all() {
        for (i, k) in AccessKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn from_flags_covers_all_combinations() {
        assert_eq!(AccessKind::from_flags(true, true), AccessKind::LocalSeq);
        assert_eq!(AccessKind::from_flags(true, false), AccessKind::LocalRand);
        assert_eq!(AccessKind::from_flags(false, true), AccessKind::RemoteSeq);
        assert_eq!(AccessKind::from_flags(false, false), AccessKind::RemoteRand);
    }

    #[test]
    fn remote_random_is_most_expensive() {
        let m = CostModel::paper_calibrated();
        let costs = m.ns_per_access;
        assert!(costs[AccessKind::RemoteRand.index()] > costs[AccessKind::LocalRand.index()]);
        assert!(costs[AccessKind::RemoteSeq.index()] > costs[AccessKind::LocalSeq.index()]);
        assert!(costs[AccessKind::LocalRand.index()] > costs[AccessKind::LocalSeq.index()]);
    }

    #[test]
    fn sequential_remote_penalty_is_mild() {
        // Commandment C2: remote sequential must be far cheaper than
        // remote random — the whole point of the MPSM design.
        let m = CostModel::paper_calibrated();
        let seq_penalty = m.ns_per_access[AccessKind::RemoteSeq.index()]
            / m.ns_per_access[AccessKind::LocalSeq.index()];
        let rand_penalty = m.ns_per_access[AccessKind::RemoteRand.index()]
            / m.ns_per_access[AccessKind::LocalRand.index()];
        assert!(seq_penalty < 1.5);
        assert!(rand_penalty > 3.0);
    }

    #[test]
    fn blended_cost_interpolates() {
        let m = CostModel::paper_calibrated();
        let all_local = m.blended_ns(false, 0.0);
        let all_remote = m.blended_ns(false, 1.0);
        let mixed = m.blended_ns(false, 0.5);
        assert_eq!(all_local, m.ns_per_access[AccessKind::LocalRand.index()]);
        assert_eq!(all_remote, m.ns_per_access[AccessKind::RemoteRand.index()]);
        assert!((mixed - (all_local + all_remote) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn total_combines_accesses_and_syncs() {
        let m = CostModel::paper_calibrated();
        let mut c = AccessCounters::default();
        c.record(AccessKind::LocalSeq, 1000);
        c.record_syncs(10);
        let expected = m.access_ns(AccessKind::LocalSeq, 1000) + m.sync_ns(10);
        assert!((m.total_ns(&c) - expected).abs() < 1e-9);
    }
}
