//! Access counters: the measurable side of the NUMA commandments.
//!
//! Algorithms under audit record how many tuple-sized accesses of each
//! [`AccessKind`] they perform plus how many synchronization events they
//! execute. Counters are plain (non-atomic) per worker and merged after
//! the parallel section — deliberately mirroring commandment C3: the
//! instrumentation itself must not introduce shared-state contention.

use crate::cost::AccessKind;
use crate::topology::{CoreId, NodeId, Topology};

/// Tallies of accesses by kind plus synchronization events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessCounters {
    accesses: [u64; 4],
    syncs: u64,
}

impl AccessCounters {
    /// A fresh, all-zero counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `count` accesses of `kind`.
    pub fn record(&mut self, kind: AccessKind, count: u64) {
        self.accesses[kind.index()] += count;
    }

    /// Record `count` synchronization events (atomic RMW on shared state).
    pub fn record_syncs(&mut self, count: u64) {
        self.syncs += count;
    }

    /// Accesses recorded for `kind`.
    pub fn accesses(&self, kind: AccessKind) -> u64 {
        self.accesses[kind.index()]
    }

    /// Total accesses over all kinds.
    pub fn total_accesses(&self) -> u64 {
        self.accesses.iter().sum()
    }

    /// Synchronization events recorded.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Fraction of all accesses that touched remote memory.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            return 0.0;
        }
        let remote = self.accesses(AccessKind::RemoteSeq) + self.accesses(AccessKind::RemoteRand);
        remote as f64 / total as f64
    }

    /// Fraction of all accesses that were random (not prefetcher-friendly).
    pub fn random_fraction(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            return 0.0;
        }
        let random = self.accesses(AccessKind::LocalRand) + self.accesses(AccessKind::RemoteRand);
        random as f64 / total as f64
    }

    /// Merge another counter set into this one (used to combine
    /// per-worker tallies after a parallel phase).
    pub fn merge(&mut self, other: &AccessCounters) {
        for i in 0..4 {
            self.accesses[i] += other.accesses[i];
        }
        self.syncs += other.syncs;
    }

    /// Sum a collection of per-worker counters.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a AccessCounters>) -> AccessCounters {
        let mut out = AccessCounters::default();
        for p in parts {
            out.merge(p);
        }
        out
    }
}

/// A per-worker recording scope: knows which core the worker runs on and
/// classifies accesses against buffer home nodes.
///
/// This is the object instrumented algorithms thread through their inner
/// loops; classification is two comparisons and an add, cheap enough to
/// leave enabled in the audit binaries.
#[derive(Debug, Clone)]
pub struct CounterScope {
    topology: Topology,
    core: CoreId,
    counters: AccessCounters,
}

impl CounterScope {
    /// Create a scope for a worker pinned (logically) to `core`.
    pub fn new(topology: Topology, core: CoreId) -> Self {
        CounterScope { topology, core, counters: AccessCounters::default() }
    }

    /// The core this scope records for.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The node this worker's local memory lives on.
    pub fn node(&self) -> NodeId {
        self.topology.node_of(self.core)
    }

    /// Record `count` accesses to memory homed on `home`.
    pub fn touch(&mut self, home: NodeId, sequential: bool, count: u64) {
        let local = self.topology.is_local(self.core, home);
        self.counters.record(AccessKind::from_flags(local, sequential), count);
    }

    /// Record accesses to *globally interleaved* memory: the expected
    /// remote share is priced by splitting the count according to the
    /// topology's remote fraction.
    pub fn touch_interleaved(&mut self, sequential: bool, count: u64) {
        let remote = (count as f64 * self.topology.remote_fraction()).round() as u64;
        let local = count - remote.min(count);
        self.counters.record(AccessKind::from_flags(true, sequential), local);
        self.counters.record(AccessKind::from_flags(false, sequential), remote.min(count));
    }

    /// Record `count` synchronization events.
    pub fn sync(&mut self, count: u64) {
        self.counters.record_syncs(count);
    }

    /// Finish the scope and return the recorded counters.
    pub fn finish(self) -> AccessCounters {
        self.counters
    }

    /// Borrow the counters recorded so far.
    pub fn counters(&self) -> &AccessCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut c = AccessCounters::new();
        c.record(AccessKind::LocalSeq, 10);
        c.record(AccessKind::RemoteRand, 5);
        c.record_syncs(2);
        assert_eq!(c.accesses(AccessKind::LocalSeq), 10);
        assert_eq!(c.accesses(AccessKind::RemoteRand), 5);
        assert_eq!(c.total_accesses(), 15);
        assert_eq!(c.syncs(), 2);
    }

    #[test]
    fn fractions() {
        let mut c = AccessCounters::new();
        c.record(AccessKind::LocalSeq, 30);
        c.record(AccessKind::RemoteRand, 10);
        assert!((c.remote_fraction() - 0.25).abs() < 1e-12);
        assert!((c.random_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_counters_have_zero_fractions() {
        let c = AccessCounters::new();
        assert_eq!(c.remote_fraction(), 0.0);
        assert_eq!(c.random_fraction(), 0.0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = AccessCounters::new();
        a.record(AccessKind::LocalRand, 7);
        a.record_syncs(1);
        let mut b = AccessCounters::new();
        b.record(AccessKind::LocalRand, 3);
        b.record(AccessKind::RemoteSeq, 4);
        a.merge(&b);
        assert_eq!(a.accesses(AccessKind::LocalRand), 10);
        assert_eq!(a.accesses(AccessKind::RemoteSeq), 4);
        assert_eq!(a.syncs(), 1);
    }

    #[test]
    fn merged_over_workers() {
        let parts: Vec<AccessCounters> = (0..4)
            .map(|i| {
                let mut c = AccessCounters::new();
                c.record(AccessKind::LocalSeq, i as u64 + 1);
                c
            })
            .collect();
        let total = AccessCounters::merged(parts.iter());
        assert_eq!(total.accesses(AccessKind::LocalSeq), 1 + 2 + 3 + 4);
    }

    #[test]
    fn scope_classifies_locality() {
        let topo = Topology::paper_machine();
        // Worker on core 0 → node 0.
        let mut scope = CounterScope::new(topo, CoreId(0));
        scope.touch(NodeId(0), true, 100); // local seq
        scope.touch(NodeId(1), true, 50); // remote seq
        scope.touch(NodeId(2), false, 25); // remote rand
        let c = scope.finish();
        assert_eq!(c.accesses(AccessKind::LocalSeq), 100);
        assert_eq!(c.accesses(AccessKind::RemoteSeq), 50);
        assert_eq!(c.accesses(AccessKind::RemoteRand), 25);
    }

    #[test]
    fn scope_interleaved_split() {
        let topo = Topology::paper_machine(); // remote fraction 0.75
        let mut scope = CounterScope::new(topo, CoreId(0));
        scope.touch_interleaved(false, 100);
        let c = scope.finish();
        assert_eq!(c.accesses(AccessKind::RemoteRand), 75);
        assert_eq!(c.accesses(AccessKind::LocalRand), 25);
    }

    #[test]
    fn scope_interleaved_on_flat_topology_is_all_local() {
        let topo = Topology::flat(8);
        let mut scope = CounterScope::new(topo, CoreId(3));
        scope.touch_interleaved(true, 64);
        let c = scope.finish();
        assert_eq!(c.accesses(AccessKind::LocalSeq), 64);
        assert_eq!(c.remote_fraction(), 0.0);
    }
}
