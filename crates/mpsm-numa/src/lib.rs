//! Simulated NUMA substrate for the MPSM join reproduction.
//!
//! The MPSM paper ("Massively Parallel Sort-Merge Joins in Main Memory
//! Multi-Core Database Systems", VLDB 2012) was evaluated on a 4-socket
//! Intel X7560 machine where non-uniform memory access is a physical
//! property. This crate replaces that hardware with a *software model*
//! that preserves the behaviour the paper's design rules depend on:
//!
//! * a configurable [`Topology`] describing nodes, cores, and SMT contexts
//!   (the default mirrors the paper's 4 × 8 × 2 machine, Figure 11);
//! * [`arena::NumaArena`] / [`arena::NumaBuf`], buffers tagged with a home
//!   node so algorithms can be audited for local vs. remote traffic;
//! * [`counters::AccessCounters`], per-thread tallies of
//!   local/remote × sequential/random accesses and synchronization events
//!   (the quantities behind the paper's three NUMA "commandments");
//! * [`cost::CostModel`], a latency model calibrated against the paper's
//!   Figure 1 micro-benchmarks that converts counters into simulated time;
//! * [`microbench`], instrumented re-implementations of the three
//!   Figure 1 experiments.
//!
//! The model is deliberately simple: it counts *what* an algorithm touches
//! and *how* (sequentially or randomly, locally or remotely), then prices
//! those touches. That is exactly the level of abstraction at which the
//! paper argues — its commandments C1–C3 are statements about access
//! patterns, not about micro-architecture.

#![warn(missing_docs)]

pub mod arena;
pub mod cost;
pub mod counters;
pub mod microbench;
pub mod topology;

pub use arena::{NumaArena, NumaBuf};
pub use cost::{AccessKind, CostModel};
pub use counters::{AccessCounters, CounterScope};
pub use topology::{CoreId, NodeId, Topology};
