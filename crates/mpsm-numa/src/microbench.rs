//! The three Figure 1 micro-benchmarks, instrumented.
//!
//! Figure 1 of the paper motivates the NUMA commandments with three
//! experiments run by 32 threads over 50M-tuple chunks:
//!
//! 1. **sort**: sorting each chunk in the worker's local RAM partition vs.
//!    sorting on a globally allocated (interleaved) array — paper: 12 946 ms
//!    vs. 41 734 ms (3.2×);
//! 2. **partitioning**: scattering tuples into partition arrays whose write
//!    positions come from precomputed prefix sums vs. from a test-and-set
//!    synchronized index variable — paper: 7 440 ms vs. 22 756 ms (3.1×);
//! 3. **merge join**: sequentially merge-scanning two runs where the second
//!    run is local vs. remote — paper: 837 ms vs. 1 000 ms (1.2×).
//!
//! This module re-executes the three access patterns. Where the pattern's
//! penalty exists on any shared-memory multi-core (experiment 2 —
//! synchronization) we *measure* real wall-clock time. Where the penalty
//! requires physical NUMA distance (experiments 1 and 3 — remote memory)
//! we *model* the time by counting accesses and pricing them with the
//! calibrated [`CostModel`]; the NUMA-affine variants are additionally
//! measured for real to anchor the scale.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::cost::CostModel;
use crate::counters::{AccessCounters, CounterScope};
use crate::topology::{CoreId, Topology};

/// A 16-byte record matching the paper's `[joinkey: 64-bit, payload: 64-bit]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Rec {
    key: u64,
    payload: u64,
}

/// SplitMix64: tiny, seedable generator for benchmark data (keeps this
/// substrate crate free of the `rand` dependency).
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Configuration shared by the three experiments.
#[derive(Debug, Clone)]
pub struct MicrobenchConfig {
    /// Simulated machine (defaults to the paper's 4 × 8 × 2 box).
    pub topology: Topology,
    /// Number of worker threads (paper: 32).
    pub workers: usize,
    /// Tuples per worker chunk (paper: 50M = 50 · 2^20; default here is
    /// scaled down to keep the harness fast).
    pub tuples_per_worker: usize,
    /// RNG seed for the generated chunks.
    pub seed: u64,
    /// Cost model used for the modeled variants.
    pub model: CostModel,
}

impl Default for MicrobenchConfig {
    fn default() -> Self {
        MicrobenchConfig {
            topology: Topology::paper_machine(),
            workers: 32,
            tuples_per_worker: 1 << 20,
            seed: 0x4d50_534d, // "MPSM"
            model: CostModel::paper_calibrated(),
        }
    }
}

/// Result of one experiment variant.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// Display label, e.g. `"sort local"`.
    pub label: &'static str,
    /// Time predicted by the access-count cost model, in ms.
    pub modeled_ms: f64,
    /// Real wall-clock time, in ms, where the variant is executable
    /// without physical NUMA hardware.
    pub measured_ms: Option<f64>,
    /// The access counters behind the model.
    pub counters: AccessCounters,
}

/// Result of one of the three Figure 1 experiments.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment name, e.g. `"(1) sort"`.
    pub name: &'static str,
    /// NUMA-affine ("green") variant.
    pub affine: VariantResult,
    /// NUMA-agnostic ("red"/"yellow") variant.
    pub agnostic: VariantResult,
}

impl ExperimentResult {
    /// Modeled slowdown of the NUMA-agnostic variant.
    pub fn modeled_ratio(&self) -> f64 {
        self.agnostic.modeled_ms / self.affine.modeled_ms
    }

    /// Measured slowdown, if both variants were measured.
    pub fn measured_ratio(&self) -> Option<f64> {
        match (self.agnostic.measured_ms, self.affine.measured_ms) {
            (Some(a), Some(b)) if b > 0.0 => Some(a / b),
            _ => None,
        }
    }
}

fn gen_chunk(n: usize, seed: u64) -> Vec<Rec> {
    let mut rng = SplitMix64(seed);
    (0..n).map(|_| Rec { key: rng.next() & 0xffff_ffff, payload: rng.next() }).collect()
}

/// Number of priced accesses for sorting `n` tuples with the paper's
/// three-phase sort: one radix read+scatter pass (2·n) plus
/// `n · log2(n)` comparison-phase touches.
fn sort_access_count(n: usize) -> u64 {
    let n64 = n as u64;
    let log = (n.max(2) as f64).log2();
    (n64 as f64 * (log + 2.0)) as u64
}

/// Experiment (1): parallel chunk sorting, local vs. globally allocated.
pub fn exp1_sort(cfg: &MicrobenchConfig) -> ExperimentResult {
    let n = cfg.tuples_per_worker;
    let t = cfg.workers;

    // --- NUMA-affine: every worker sorts its chunk on its own node. ---
    // Counters: all sort traffic is local random.
    let mut affine_counters = AccessCounters::default();
    for w in 0..t {
        let mut scope = CounterScope::new(cfg.topology.clone(), CoreId(w as u32));
        let home = scope.node();
        scope.touch(home, false, sort_access_count(n));
        affine_counters.merge(&scope.finish());
    }
    // Measured: really sort T chunks in parallel (thread-local Vecs —
    // first-touch local on any host).
    let started = Instant::now();
    std::thread::scope(|s| {
        for w in 0..t {
            let seed = cfg.seed.wrapping_add(w as u64);
            s.spawn(move || {
                let mut chunk = gen_chunk(n, seed);
                chunk.sort_unstable_by_key(|r| r.key);
                std::hint::black_box(&chunk);
            });
        }
    });
    let affine_measured = started.elapsed().as_secs_f64() * 1e3;

    // --- NUMA-agnostic: the array is globally allocated (interleaved);
    // the topology's remote fraction of the random traffic goes remote.
    let mut agnostic_counters = AccessCounters::default();
    for w in 0..t {
        let mut scope = CounterScope::new(cfg.topology.clone(), CoreId(w as u32));
        scope.touch_interleaved(false, sort_access_count(n));
        agnostic_counters.merge(&scope.finish());
    }

    // Per-worker wall time = total / workers (perfectly parallel phases).
    let per_worker = |c: &AccessCounters| cfg.model.total_ms(c) / t as f64;
    ExperimentResult {
        name: "(1) sort",
        affine: VariantResult {
            label: "sort local",
            modeled_ms: per_worker(&affine_counters),
            measured_ms: Some(affine_measured),
            counters: affine_counters,
        },
        agnostic: VariantResult {
            label: "sort global (interleaved)",
            modeled_ms: per_worker(&agnostic_counters),
            measured_ms: None,
            counters: agnostic_counters,
        },
    }
}

/// Per-tuple cost of the prefix-sum scatter at the paper's scale:
/// 7 440 ms / 50M tuples. The absolute scatter cost is dominated by
/// effects below this model's granularity (TLB misses on 32 open write
/// streams, memory-bandwidth saturation), so experiment (2) anchors its
/// base to the paper's own green measurement; the *difference* between
/// the variants — one test-and-set synchronized index update per tuple,
/// the commandment-C3 content — is predicted from [`CostModel::ns_per_sync`]
/// and additionally measured live below.
pub const SCATTER_NS_PER_TUPLE: f64 = 148.8;

/// Experiment (2): scatter with precomputed prefix sums vs. a
/// test-and-set synchronized write index per partition.
///
/// Both variants run for real: synchronization contention does not need
/// NUMA hardware to hurt.
pub fn exp2_partition(cfg: &MicrobenchConfig) -> ExperimentResult {
    let n = cfg.tuples_per_worker;
    let t = cfg.workers;
    let total = n * t;

    let data: Vec<Rec> = gen_chunk(total, cfg.seed);
    let parts = t; // one partition per worker, as in the paper
    let mask = (parts - 1) as u64;
    assert!(parts.is_power_of_two(), "worker count must be a power of two for the scatter mask");
    let part_of = |r: &Rec| (r.key & mask) as usize;

    // ---

    // Affine/green: histogram pass + prefix sums + sequential scatter into
    // precomputed disjoint ranges.
    let started = Instant::now();
    // Per-worker histograms.
    let chunks: Vec<&[Rec]> = data.chunks(n).collect();
    let mut histograms: Vec<Vec<usize>> = vec![vec![0; parts]; t];
    std::thread::scope(|s| {
        for (w, (chunk, hist)) in chunks.iter().zip(histograms.iter_mut()).enumerate() {
            let _ = w;
            s.spawn(move || {
                for r in *chunk {
                    hist[part_of(r)] += 1;
                }
            });
        }
    });
    // Column-wise prefix sums: worker w writes partition p at
    // offset sum(hist[0..w][p]).
    let mut part_sizes = vec![0usize; parts];
    for h in &histograms {
        for (p, c) in h.iter().enumerate() {
            part_sizes[p] += c;
        }
    }
    let mut outputs: Vec<Vec<Rec>> =
        part_sizes.iter().map(|&sz| vec![Rec::default(); sz]).collect();
    // Carve each partition into per-worker windows.
    let mut windows: Vec<Vec<&mut [Rec]>> = Vec::with_capacity(t);
    {
        let mut remaining: Vec<&mut [Rec]> = outputs.iter_mut().map(|v| v.as_mut_slice()).collect();
        for hist in &histograms {
            let mut row = Vec::with_capacity(parts);
            for (take, rem) in hist.iter().zip(remaining.iter_mut()) {
                let slot = std::mem::take(rem);
                let (head, tail) = slot.split_at_mut(*take);
                row.push(head);
                *rem = tail;
            }
            windows.push(row);
        }
    }
    std::thread::scope(|s| {
        for (chunk, row) in chunks.iter().zip(windows) {
            s.spawn(move || {
                let mut cursors = vec![0usize; row.len()];
                let mut row = row;
                for r in *chunk {
                    let p = part_of(r);
                    row[p][cursors[p]] = *r;
                    cursors[p] += 1;
                }
            });
        }
    });
    let affine_measured = started.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(&outputs);

    // Affine counters: 2 passes over the chunk (histogram + scatter read)
    // sequential local, plus one sequential write per tuple into the
    // (remote, but sequential) target window.
    let mut affine_counters = AccessCounters::default();
    for w in 0..t {
        let mut scope = CounterScope::new(cfg.topology.clone(), CoreId(w as u32));
        let home = scope.node();
        scope.touch(home, true, 2 * n as u64);
        scope.touch_interleaved(true, n as u64);
        affine_counters.merge(&scope.finish());
    }

    // --- Agnostic/red: every write first does fetch_add on the target
    // partition's shared index variable.
    let started = Instant::now();
    let sync_outputs: Vec<Vec<AtomicU64>> =
        part_sizes.iter().map(|&sz| (0..sz * 2).map(|_| AtomicU64::new(0)).collect()).collect();
    let indices: Vec<AtomicU64> = (0..parts).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|s| {
        for chunk in &chunks {
            let sync_outputs = &sync_outputs;
            let indices = &indices;
            s.spawn(move || {
                for r in *chunk {
                    let p = part_of(r);
                    // Test-and-set synchronized next-write position.
                    let slot = indices[p].fetch_add(1, Ordering::Relaxed) as usize;
                    sync_outputs[p][slot * 2].store(r.key, Ordering::Relaxed);
                    sync_outputs[p][slot * 2 + 1].store(r.payload, Ordering::Relaxed);
                }
            });
        }
    });
    let agnostic_measured = started.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(&sync_outputs);

    let mut agnostic_counters = AccessCounters::default();
    for w in 0..t {
        let mut scope = CounterScope::new(cfg.topology.clone(), CoreId(w as u32));
        let home = scope.node();
        scope.touch(home, true, n as u64); // read own chunk
        scope.touch_interleaved(false, n as u64); // random write position
        scope.sync(n as u64); // one fetch_add per tuple
        agnostic_counters.merge(&scope.finish());
    }

    // Anchored model (see SCATTER_NS_PER_TUPLE): base per-tuple scatter
    // cost from the paper's green bar, plus one sync event per tuple for
    // the red bar.
    let green_ms = n as f64 * SCATTER_NS_PER_TUPLE / 1e6;
    let red_ms = n as f64 * (SCATTER_NS_PER_TUPLE + cfg.model.ns_per_sync) / 1e6;
    ExperimentResult {
        name: "(2) partitioning",
        affine: VariantResult {
            label: "precomputed prefix sums",
            modeled_ms: green_ms,
            measured_ms: Some(affine_measured),
            counters: affine_counters,
        },
        agnostic: VariantResult {
            label: "synchronized index",
            modeled_ms: red_ms,
            measured_ms: Some(agnostic_measured),
            counters: agnostic_counters,
        },
    }
}

/// Experiment (3): merge-join scan of two runs; the second run is local
/// vs. remote (sequential either way — commandment C2).
pub fn exp3_merge_join(cfg: &MicrobenchConfig) -> ExperimentResult {
    let n = cfg.tuples_per_worker;
    let t = cfg.workers;

    // Measured (both-local on the host): really merge T pairs of sorted runs.
    let started = Instant::now();
    std::thread::scope(|s| {
        for w in 0..t {
            let seed = cfg.seed.wrapping_add(w as u64);
            s.spawn(move || {
                let mut a = gen_chunk(n, seed);
                let mut b = gen_chunk(n, seed ^ 0xdead_beef);
                a.sort_unstable_by_key(|r| r.key);
                b.sort_unstable_by_key(|r| r.key);
                let gen_ready = Instant::now();
                let (mut i, mut j, mut matches) = (0usize, 0usize, 0u64);
                while i < a.len() && j < b.len() {
                    match a[i].key.cmp(&b[j].key) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            matches += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
                std::hint::black_box((matches, gen_ready));
            });
        }
    });
    let affine_measured = started.elapsed().as_secs_f64() * 1e3;

    let mut affine_counters = AccessCounters::default();
    let mut agnostic_counters = AccessCounters::default();
    for w in 0..t {
        let topo = &cfg.topology;
        let core = CoreId(w as u32);
        let home = topo.node_of(core);
        // A remote node (any other); on a flat topology it stays local.
        let remote = crate::topology::NodeId((home.0 + 1) % topo.nodes);

        let mut scope = CounterScope::new(topo.clone(), core);
        scope.touch(home, true, n as u64); // own run
        scope.touch(home, true, n as u64); // second run, local
        affine_counters.merge(&scope.finish());

        let mut scope = CounterScope::new(topo.clone(), core);
        scope.touch(home, true, n as u64); // own run
        scope.touch(remote, true, n as u64); // second run, remote
        agnostic_counters.merge(&scope.finish());
    }

    let per_worker = |c: &AccessCounters| cfg.model.total_ms(c) / t as f64;
    ExperimentResult {
        name: "(3) merge join",
        affine: VariantResult {
            label: "second run local",
            modeled_ms: per_worker(&affine_counters),
            measured_ms: Some(affine_measured),
            counters: affine_counters,
        },
        agnostic: VariantResult {
            label: "second run remote",
            modeled_ms: per_worker(&agnostic_counters),
            measured_ms: None,
            counters: agnostic_counters,
        },
    }
}

/// Run all three Figure 1 experiments.
pub fn figure1(cfg: &MicrobenchConfig) -> Vec<ExperimentResult> {
    vec![exp1_sort(cfg), exp2_partition(cfg), exp3_merge_join(cfg)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> MicrobenchConfig {
        MicrobenchConfig { workers: 4, tuples_per_worker: 1 << 12, ..MicrobenchConfig::default() }
    }

    #[test]
    fn exp1_models_the_paper_ratio() {
        let r = exp1_sort(&tiny_cfg());
        // Paper: 41 734 / 12 946 ≈ 3.22. The model should land close.
        let ratio = r.modeled_ratio();
        assert!((2.8..3.7).contains(&ratio), "sort NUMA penalty ratio {ratio}");
    }

    #[test]
    fn exp1_at_paper_scale_matches_absolute_numbers() {
        // At 50M tuples/worker the modeled local sort should be within
        // 20% of the paper's 12 946 ms.
        let cfg = MicrobenchConfig { tuples_per_worker: 50 << 20, ..MicrobenchConfig::default() };
        let n = cfg.tuples_per_worker;
        let mut scope = CounterScope::new(cfg.topology.clone(), CoreId(0));
        scope.touch(crate::topology::NodeId(0), false, sort_access_count(n));
        let ms = cfg.model.total_ms(scope.counters());
        assert!((10_000.0..16_000.0).contains(&ms), "modeled local sort {ms} ms");
    }

    #[test]
    fn exp2_sync_variant_is_slower_measured() {
        let r = exp2_partition(&tiny_cfg());
        // Both variants run for real; at this tiny test scale the
        // measured numbers are noise (contention needs volume), so only
        // their presence is asserted here — `fig01_numa` runs at scale.
        let measured = r.measured_ratio().expect("both variants measured");
        assert!(measured.is_finite() && measured > 0.0);
        // Modeled ratio reproduces the paper's 22 756 / 7 440 ≈ 3.06
        // by construction of the anchored base + derived sync price.
        assert!((2.9..3.2).contains(&r.modeled_ratio()), "ratio {}", r.modeled_ratio());
    }

    #[test]
    fn exp2_preserves_all_tuples() {
        // Covered implicitly by the scatter windows summing to the
        // partition sizes; run at a size where off-by-ones would panic.
        let cfg = MicrobenchConfig { workers: 4, tuples_per_worker: 1000, ..tiny_cfg() };
        let _ = exp2_partition(&cfg);
    }

    #[test]
    fn exp3_remote_penalty_is_mild() {
        let r = exp3_merge_join(&tiny_cfg());
        let ratio = r.modeled_ratio();
        // Paper: 1000 / 837 ≈ 1.19.
        assert!((1.05..1.35).contains(&ratio), "merge join remote ratio {ratio}");
    }

    #[test]
    fn figure1_returns_three_experiments() {
        let rs = figure1(&tiny_cfg());
        assert_eq!(rs.len(), 3);
        assert!(rs.iter().all(|r| r.affine.modeled_ms > 0.0));
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        for _ in 0..10 {
            assert_eq!(a.next(), b.next());
        }
    }
}
