//! NUMA topology description.
//!
//! A [`Topology`] is a static description of a machine: how many NUMA
//! nodes it has, how many physical cores sit on each node, and how many
//! hardware threads (SMT contexts) each core exposes. Worker threads are
//! identified by a dense [`CoreId`] in `0..total_contexts()`; the mapping
//! from worker to node follows the paper's machine (Figure 11), where
//! contexts are numbered round-robin across sockets.

use std::fmt;

/// Identifier of a NUMA node (socket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of a hardware context (logical core) a worker is pinned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u32);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Static machine description used by the cost model and the placement
/// bookkeeping of the join algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Number of NUMA nodes (sockets).
    pub nodes: u32,
    /// Physical cores per node.
    pub cores_per_node: u32,
    /// Hardware threads per physical core (1 = no SMT).
    pub smt: u32,
}

impl Topology {
    /// The machine of the paper's evaluation (Figure 11): four Intel
    /// X7560 sockets, eight cores each, two hyper-threads per core —
    /// 32 physical cores, 64 hardware contexts.
    pub fn paper_machine() -> Self {
        Topology { nodes: 4, cores_per_node: 8, smt: 2 }
    }

    /// A uniform (non-NUMA) machine with `cores` physical cores.
    pub fn flat(cores: u32) -> Self {
        Topology { nodes: 1, cores_per_node: cores.max(1), smt: 1 }
    }

    /// A topology sized after the host the process is running on,
    /// modeled as a single node (containers rarely expose NUMA
    /// distances; the simulated topology is what experiments configure
    /// explicitly).
    pub fn host() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get() as u32).unwrap_or(1);
        Self::flat(cores)
    }

    /// Total physical cores.
    pub fn total_cores(&self) -> u32 {
        self.nodes * self.cores_per_node
    }

    /// Total hardware contexts (cores × SMT).
    pub fn total_contexts(&self) -> u32 {
        self.total_cores() * self.smt
    }

    /// The NUMA node a given hardware context belongs to.
    ///
    /// Contexts are distributed round-robin over nodes, matching the
    /// paper's machine where contexts `(0, 4, 8, ...)` share socket 0.
    /// This means the first `nodes` workers land on distinct sockets,
    /// which is the scheduling the paper's NUMA-affine experiments use.
    pub fn node_of(&self, core: CoreId) -> NodeId {
        NodeId(core.0 % self.nodes)
    }

    /// Whether memory homed on `home` is local to a worker on `core`.
    pub fn is_local(&self, core: CoreId, home: NodeId) -> bool {
        self.node_of(core) == home
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes).map(NodeId)
    }

    /// Fraction of uniformly spread memory that is remote to any single
    /// worker; `3/4` on the paper machine. Used by the cost model when
    /// pricing accesses to globally interleaved allocations.
    pub fn remote_fraction(&self) -> f64 {
        if self.nodes <= 1 {
            0.0
        } else {
            (self.nodes - 1) as f64 / self.nodes as f64
        }
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::paper_machine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_matches_figure_11() {
        let t = Topology::paper_machine();
        assert_eq!(t.total_cores(), 32);
        assert_eq!(t.total_contexts(), 64);
        assert_eq!(t.nodes, 4);
    }

    #[test]
    fn contexts_round_robin_over_nodes() {
        let t = Topology::paper_machine();
        assert_eq!(t.node_of(CoreId(0)), NodeId(0));
        assert_eq!(t.node_of(CoreId(1)), NodeId(1));
        assert_eq!(t.node_of(CoreId(4)), NodeId(0));
        assert_eq!(t.node_of(CoreId(32)), NodeId(0));
    }

    #[test]
    fn flat_topology_has_no_remote_memory() {
        let t = Topology::flat(24);
        assert_eq!(t.remote_fraction(), 0.0);
        for c in 0..24 {
            assert!(t.is_local(CoreId(c), NodeId(0)));
        }
    }

    #[test]
    fn remote_fraction_on_paper_machine() {
        assert!((Topology::paper_machine().remote_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn host_topology_is_single_node() {
        let t = Topology::host();
        assert_eq!(t.nodes, 1);
        assert!(t.total_cores() >= 1);
    }

    #[test]
    fn node_ids_enumerates_all() {
        let t = Topology::paper_machine();
        let ids: Vec<_> = t.node_ids().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }
}
